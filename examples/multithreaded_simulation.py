#!/usr/bin/env python
"""Multi-threaded ELFies vs pinballs under Sniper (§IV-B, Fig. 11).

Captures a fixed-length region of an 8-thread OpenMP-style workload
(active-wait barriers), then simulates it both ways:

- **pinball** (constrained): the recorded thread interleaving is
  enforced, so the simulated instruction count matches the recording,
  but the constraint can introduce artificial stalls;
- **ELFie** (unconstrained): threads free-run; simulation ends at a
  ``(PC, count)`` condition from a separate profiling run.  Spin loops
  execute for however long the simulated timing makes threads wait, so
  the instruction count comes out *higher* — the paper's key MT
  observation.

Run:  python examples/multithreaded_simulation.py
"""

from repro.analysis import format_table
from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions
from repro.pinplay import RegionSpec, log_region
from repro.simulators import SniperSim
from repro.workloads import get_app


def pick_end_pc(pinball):
    """A work-loop PC outside any spin loop, with its region count.

    The paper determines the pair with a separate profiling run; here
    the profiling run is a constrained replay with a PC histogram.
    """
    from repro.isa.instructions import Op
    from repro.machine.tool import Tool
    from repro.pinplay.replayer import _InjectionTool, _reconstruct

    class Histogram(Tool):
        wants_instructions = True

        def __init__(self):
            self.counts = {}
            self.spin_pcs = set()

        def on_instruction(self, machine, thread, pc, insn):
            self.counts[pc] = self.counts.get(pc, 0) + 1
            if insn.op is Op.PAUSE:
                for delta in range(-64, 65):
                    self.spin_pcs.add(pc + delta)

    machine = _reconstruct(pinball, seed=0, fs=None)
    machine.attach(_InjectionTool(pinball))
    histogram = Histogram()
    machine.attach(histogram)
    machine.scheduler.replay(pinball.schedule)
    machine.run(max_instructions=sum(s.quantum for s in pinball.schedule))
    work = {pc: count for pc, count in histogram.counts.items()
            if pc not in histogram.spin_pcs}
    end_pc = max(work, key=work.get)
    return end_pc, work[end_pc]


def main() -> None:
    app = get_app("638.imagick_s")
    print("workload: %s, %d threads (OpenMP active-wait)"
          % (app.name, app.threads))
    image = app.build("train")

    region = RegionSpec(start=60_000, length=240_000, name=app.name + ".mt")
    print("capturing a %d-instruction multi-threaded region..."
          % region.length)
    pinball = log_region(image, region, seed=5)
    print("pinball: %d threads, %d instructions recorded"
          % (pinball.num_threads, pinball.region_icount))

    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        marker=MarkerSpec("sniper", 0x11))).convert()

    end_pc, end_count = pick_end_pc(pinball)
    print("end condition: PC 0x%x executed %d times (profiling run)"
          % (end_pc, end_count))

    sim = SniperSim()
    print("simulating the pinball (constrained)...")
    constrained = sim.simulate_pinball(pinball)
    print("simulating the ELFie (unconstrained)...")
    unconstrained = sim.simulate_elfie(artifact.image, end_pc=end_pc,
                                       end_count=end_count, seed=13)

    print()
    print(format_table(
        "Sniper: %s multi-threaded region" % app.name,
        ["mode", "instructions", "vs recorded", "runtime (cycles)",
         "aggregate IPC"],
        [
            ("pinball (constrained)", constrained.instructions,
             "%.2fx" % (constrained.instructions / pinball.region_icount),
             "%.0f" % constrained.runtime_cycles,
             "%.2f" % constrained.ipc),
            ("ELFie (unconstrained)", unconstrained.instructions,
             "%.2fx" % (unconstrained.instructions / pinball.region_icount),
             "%.0f" % unconstrained.runtime_cycles,
             "%.2f" % unconstrained.ipc),
        ],
    ))
    print()
    extra = unconstrained.instructions - constrained.instructions
    print("the ELFie simulation retired %d more instructions (%.1f%%),"
          % (extra, 100.0 * extra / constrained.instructions))
    print("almost entirely spin-loop iterations while threads waited.")


if __name__ == "__main__":
    main()
