#!/usr/bin/env python
"""Validate SimPoint/PinPoints region selection with ELFies (§IV-A).

The traditional way to validate region selection is to simulate the
whole program — which is exactly what region selection exists to avoid.
The paper's alternative runs the whole program and each region's ELFie
*natively* with hardware counters, turning weeks of simulation into an
hour of measurement.

This example runs both flows on one SPEC-like benchmark and compares
their prediction errors and wall-clock costs.

Run:  python examples/validate_region_selection.py [app-name]
"""

import sys
import time

from repro.analysis import format_table
from repro.simpoint import (
    run_pinpoints,
    validate_with_elfies,
    validate_with_simulator,
)
from repro.simulators import CoreSim, CoreSimConfig
from repro.workloads import get_app


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "531.deepsjeng_r"
    app = get_app(app_name)
    print("benchmark: %s (train input)" % app.name)
    image = app.build("train")

    print("== PinPoints: profile, cluster, capture, convert")
    started = time.time()
    pinpoints = run_pinpoints(image, app.name, slice_size=20_000,
                              warmup=40_000, max_k=30, max_alternates=2)
    print("   %d slices, k=%d, %d ELFies, %.1fs"
          % (pinpoints.profile.num_slices, pinpoints.simpoints.k,
             len(pinpoints.elfies), time.time() - started))

    print("== ELFie-based validation (native runs + HW counters)")
    started = time.time()
    native = validate_with_elfies(pinpoints, trials=3)
    native_seconds = time.time() - started

    print("== Traditional validation (whole-program detailed simulation)")
    simulator = CoreSim(CoreSimConfig(frontend="sde"))
    started = time.time()

    def whole_cpi() -> float:
        return simulator.simulate_program(image).user_cpi

    def region_cpi(artifact, region):
        result = simulator.simulate_elfie(artifact.image,
                                          roi_budget=region.length)
        return result.user_cpi if result.instructions_ring3 else None

    simulated = validate_with_simulator(pinpoints, whole_cpi, region_cpi)
    simulated_seconds = time.time() - started

    rows = [
        ("ELFie-based (native)", "%.4f" % native.whole_program_cpi,
         "%.4f" % native.predicted_cpi, "%.2f%%" % native.abs_error_percent,
         "%.0f%%" % (100 * native.covered_weight), "%.1fs" % native_seconds),
        ("simulation-based", "%.4f" % simulated.whole_program_cpi,
         "%.4f" % simulated.predicted_cpi,
         "%.2f%%" % simulated.abs_error_percent,
         "%.0f%%" % (100 * simulated.covered_weight),
         "%.1fs" % simulated_seconds),
    ]
    print()
    print(format_table(
        "validation of %s region selection" % app.name,
        ["method", "true CPI", "predicted CPI", "|error|", "coverage",
         "wall clock"],
        rows,
    ))
    print()
    print("speedup of ELFie-based validation: %.1fx"
          % (simulated_seconds / max(native_seconds, 1e-9)))
    print("(the paper reports weeks -> one hour on real workloads)")


if __name__ == "__main__":
    main()
