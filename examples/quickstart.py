#!/usr/bin/env python
"""Quickstart: capture a region, make an ELFie, run it three ways.

This walks the paper's Fig. 1 pipeline end to end:

1. build a test program (a PX binary — the reproduction's x86 stand-in),
2. run it under the PinPlay logger to capture a region of interest as a
   fat pinball,
3. convert the pinball to a stand-alone ELFie with ``pinball2elf``
   (ROI marker + graceful-exit counters),
4. replay the pinball (constrained), run the ELFie natively
   (unconstrained), and simulate the ELFie with the Sniper-like
   simulator — no simulator modifications required.

Run:  python examples/quickstart.py
"""

from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions, run_elfie
from repro.pinplay import RegionSpec, log_region, replay
from repro.simulators import SniperSim
from repro.workloads import build_executable

PROGRAM = """
_start:
    mov rbx, 1
    mov rcx, 60000
work:
    imul rbx, 6364136223846793005
    add rbx, 1442695040888963407
    ld rax, [accum]
    add rax, rbx
    st [accum], rax
    sub rcx, 1
    cmp rcx, 0
    jnz work
    mov rax, 231                ; exit_group(0)
    mov rdi, 0
    syscall
"""


def main() -> None:
    print("== 1. build the test program")
    image = build_executable(PROGRAM, data_source="accum:\n.quad 0\n")
    print("   ELF executable: %d bytes" % len(image))

    print("== 2. capture a region of interest as a fat pinball")
    region = RegionSpec(start=100_000, length=50_000, warmup=20_000,
                        name="quickstart.r0")
    pinball = log_region(image, region)
    print("   pinball: %d page(s), %d thread(s), %d region instructions,"
          % (len(pinball.pages), pinball.num_threads, pinball.region_icount))
    print("   %d recorded syscalls, stack at %s"
          % (len(pinball.syscalls),
             "0x%x-0x%x" % pinball.stack_range()))

    print("== 3. pinball2elf: convert to a stand-alone ELFie")
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True,                     # graceful exit via HW counters
        marker=MarkerSpec("sniper", 0x42),  # --roi-start sniper:0x42
    )).convert()
    print("   ELFie: %d bytes, entry 0x%x, startup at 0x%x"
          % (len(artifact.image), artifact.entry, artifact.startup_base))

    print("== 4a. constrained replay of the pinball")
    result = replay(pinball)
    print("   replayed %d instructions, matches recording: %s"
          % (result.total_icount, result.matches_recording))

    print("== 4b. native ELFie run (graceful exit at the recorded count)")
    run = run_elfie(artifact.image, seed=7)
    print("   exit: %s, application instructions: %s"
          % (run.status.kind, run.app_icounts))
    print("   perfle counters on stderr: %s"
          % run.perfle_counters())

    print("== 4c. Sniper-like simulation of the ELFie (unmodified)")
    sim = SniperSim().simulate_elfie(artifact.image,
                                     roi_budget=pinball.region_icount)
    print("   simulated %d ROI instructions, runtime %.0f cycles, IPC %.2f"
          % (sim.instructions, sim.runtime_cycles, sim.ipc))


if __name__ == "__main__":
    main()
