#!/usr/bin/env python
"""The system-call handling challenge and the SYSSTATE fix (§II-C2).

A file descriptor opened *before* the captured region does not exist
when the ELFie re-executes the region's ``read()`` — the call fails and
control flow diverges.  The ``pinball_sysstate`` tool reconstructs the
file state from the pinball's syscall log; ``pinball2elf`` embeds
``FD_n`` pre-opens (open + dup2) into the ELFie startup code; running
the ELFie inside the sysstate working directory then reproduces the
captured execution.

Run:  python examples/sysstate_file_replay.py
"""

from repro.core import Pinball2Elf, Pinball2ElfOptions, run_elfie
from repro.machine.vfs import FileSystem
from repro.pinplay import RegionSpec, extract_sysstate, log_region, replay
from repro.workloads import build_executable

PROGRAM = """
_start:
    mov rax, 2              ; open("/etc/dataset.bin") BEFORE the region
    mov rdi, path
    mov rsi, 0
    syscall
    mov r14, rax            ; keep the descriptor
    mov rcx, 20000
warmup:
    sub rcx, 1
    cmp rcx, 0
    jnz warmup
    mov rax, 0              ; read(fd, buf, 16) INSIDE the region
    mov rdi, r14
    mov rsi, buf
    mov rdx, 16
    syscall
    mov r13, rax            ; bytes read (16 on success, -EBADF bare)
    mov rax, 1              ; write(1, buf, 16)
    mov rdi, 1
    mov rsi, buf
    mov rdx, 16
    syscall
    mov rax, 231
    mov rdi, r13
    and rdi, 0xff
    syscall
path:
    .asciz "/etc/dataset.bin"
"""


def main() -> None:
    image = build_executable(PROGRAM, data_source="buf:\n.zero 32\n")
    fs = FileSystem()
    fs.create("/etc/dataset.bin", b"the-captured-data!")

    print("== capture a region that reads from a pre-opened descriptor")
    region = RegionSpec(start=10_000, length=80_000, name="fdcase.r0")
    pinball = log_region(image, region, fs=fs)
    reads = [r for r in pinball.syscalls if r.number == 0]
    print("   region performs %d read() syscall(s) on fd %d"
          % (len(reads), reads[0].args[0]))

    print("== constrained replay: read() is skipped and injected — works")
    result = replay(pinball)   # note: no filesystem provided at all
    print("   exit %s, code %d (bytes read: 16)"
          % (result.status.kind, result.status.code))

    print("== bare ELFie: read() re-executes natively and fails")
    bare = Pinball2Elf(pinball, Pinball2ElfOptions()).convert()
    bare_run = run_elfie(bare.image, seed=1)
    print("   exit %s, code %d, stdout %r"
          % (bare_run.status.kind, bare_run.status.code,
             bytes(bare_run.stdout[:18])))

    print("== pinball_sysstate: reconstruct the file state")
    state = extract_sysstate(pinball)
    for proxy in state.fd_files:
        print("   proxy %s (restores fd %d): %r"
              % (proxy.name, proxy.restore_fd, bytes(proxy.data[:18])))
    print("   BRK.log: %s" % state.brk_log().replace("\n", "  "))

    print("== sysstate ELFie, run in the sysstate workdir: read() works")
    sysstate_fs = FileSystem()
    workdir = state.write_to(sysstate_fs, "/sysstate/workdir")
    fixed = Pinball2Elf(pinball, Pinball2ElfOptions(
        sysstate=state)).convert()
    fixed_run = run_elfie(fixed.image, seed=1, fs=sysstate_fs,
                          workdir=workdir)
    print("   exit %s, code %d, stdout %r"
          % (fixed_run.status.kind, fixed_run.status.code,
             bytes(fixed_run.stdout[:18])))
    assert fixed_run.status.code == 16
    print("   -> identical to the captured execution")


if __name__ == "__main__":
    main()
