"""Whole-machine snapshots: capture/restore bit-identity, dedup, CLI.

The subsystem's claim mirrors the ELFie's: a run that is suspended,
serialized through the canonical snapshot encoding, and resumed on a
fresh machine must be *bit-identical* to one that never stopped — same
instruction stream, same schedule, same syscall results, same epoch
digests.  These tests check the claim directly (digests), through the
lockstep verifier (corpus + multithreaded fuzzer workloads), and
through the store codec (incremental snapshots share page blocks).
"""

import pytest

from repro.core.cli import main
from repro.farm import ArtifactStore
from repro.farm.codec import encode
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.snapshot import (
    MachineSnapshot,
    capture,
    restore,
    snapshot_digest,
    snapshot_info,
)
from repro.verify import lockstep_corpus, run_lockstep_case
from repro.verify.lockstep import mt_cases
from repro.workloads import get_app

CORPUS = "tests/corpus"


@pytest.fixture(scope="module")
def mcf_image():
    return get_app("505.mcf_r").build("test")


def boot(image, seed=0):
    machine = Machine(seed=seed)
    load_elf(machine, image)
    return machine


def wire_roundtrip(snapshot):
    """Round-trip through the canonical bytes, as a store/migration
    would — no shared-object shortcuts."""
    return MachineSnapshot.from_state_bytes(
        {addr: (prot, bytes(data))
         for addr, (prot, data) in snapshot.pages.items()},
        snapshot.state_bytes())


def test_capture_restore_recapture_same_digest(mcf_image):
    machine = boot(mcf_image)
    status = machine.run(max_instructions=40_000)
    assert status.kind == "stopped"
    first = capture(machine)
    resumed = restore(wire_roundtrip(first))
    assert resumed.executed_total == machine.executed_total
    second = capture(resumed)
    assert snapshot_digest(second) == snapshot_digest(first)


def test_resumed_run_finishes_bit_identically(mcf_image):
    straight = boot(mcf_image)
    done = straight.run()
    assert done.kind == "exit"

    interrupted = boot(mcf_image)
    assert interrupted.run(max_instructions=40_000).kind == "stopped"
    resumed = restore(wire_roundtrip(capture(interrupted)))
    status = resumed.run()
    assert status.kind == "exit"
    assert status.code == done.code
    assert resumed.executed_total == straight.executed_total
    assert resumed.mem.snapshot() == straight.mem.snapshot()


def test_schedule_rng_travels_with_the_snapshot(mcf_image):
    """The jitter RNG's Mersenne state is part of the snapshot: a
    resumed machine draws the same quantum sequence, so a nonzero seed
    produces the same interleaving as the uninterrupted run."""
    straight = boot(mcf_image, seed=7)
    straight.run()

    interrupted = boot(mcf_image, seed=7)
    machine = interrupted
    for stop_at in (10_000, 60_000, 110_000):
        status = machine.run(max_instructions=stop_at)
        if status.kind != "stopped":
            break
        machine = restore(wire_roundtrip(capture(machine)))
    status = machine.run()
    assert status.kind == "exit"
    assert machine.executed_total == straight.executed_total
    assert machine.mem.snapshot() == straight.mem.snapshot()


def test_capture_refuses_exited_machine(mcf_image):
    machine = boot(mcf_image)
    machine.run()
    with pytest.raises(ValueError):
        capture(machine)


def test_snapshot_version_gate(mcf_image):
    machine = boot(mcf_image)
    machine.run(max_instructions=10_000)
    snapshot = capture(machine)
    snapshot.version += 1
    with pytest.raises(ValueError):
        restore(snapshot)


def test_snapshot_info_summary(mcf_image):
    machine = boot(mcf_image)
    machine.run(max_instructions=25_000)
    info = snapshot_info(capture(machine, extra={"kind": "test"}))
    assert info["executed_total"] == 25_000
    assert info["pages"] > 0
    assert info["memory_bytes"] == info["pages"] * 4096
    assert "machine" in info["plugins"] and "kernel" in info["plugins"]
    assert info["extra_keys"] == ["kind"]
    assert len(info["digest"]) == 64
    assert info["threads"] and info["threads"][0]["alive"]


def test_lockstep_corpus_and_mt_cases():
    """The assurance gate: every pinned corpus seed plus two generated
    multithreaded (futex) workloads hold digest lockstep between the
    straight run and the suspend/resume run."""
    sweep = lockstep_corpus(CORPUS, hops=2, mt_count=2)
    assert len(sweep.outcomes) >= 8  # 6 corpus seeds + 2 MT cases
    assert sweep.ok, [outcome.summary() for _, outcome in sweep.failures]


def test_lockstep_mt_case_with_many_hops():
    case = mt_cases(count=1)[0]
    assert case.threads >= 2
    outcome = run_lockstep_case(case, hops=4, hop_seed=3)
    assert outcome.ok, outcome.detail


def test_incremental_snapshots_share_page_blocks(mcf_image):
    """Two checkpoints of one run taken a few quanta apart dedupe
    through the content-addressed block pool: >90% of the later
    snapshot's page blocks already exist in the earlier one."""
    machine = boot(mcf_image)
    assert machine.run(max_instructions=60_000).kind == "stopped"
    early = capture(machine)
    assert machine.run(max_instructions=70_000).kind == "stopped"
    late = capture(machine)

    _, early_meta, _ = encode(early, kind="snapshot")
    _, late_meta, _ = encode(late, kind="snapshot")
    early_blocks = {digest for _, _, digest in early_meta["pages"]}
    late_blocks = [digest for _, _, digest in late_meta["pages"]]
    shared = sum(1 for digest in late_blocks if digest in early_blocks)
    assert shared > 0.9 * len(late_blocks)


def test_store_roundtrip_preserves_digest(tmp_path, mcf_image):
    machine = boot(mcf_image)
    machine.run(max_instructions=30_000)
    snapshot = capture(machine, extra={"kind": "test", "index": 3})
    store = ArtifactStore(str(tmp_path))
    store.put("ck", snapshot, kind="snapshot")
    fetched = store.get("ck")
    assert store.kind_of("ck") == "snapshot"
    assert snapshot_digest(fetched) == snapshot_digest(snapshot)
    assert fetched.extra == snapshot.extra

    # both snapshots of the same machine share the block pool
    store.put("ck2", capture(machine), kind="snapshot")
    stats = store.stats()
    assert stats.blocks < 2 * (len(snapshot.pages) + 1)


def test_snapshot_cli_save_info_resume(tmp_path, mcf_image, capsys):
    binary = tmp_path / "mcf.elf"
    binary.write_bytes(mcf_image)
    store = str(tmp_path / "store")

    assert main(["snapshot", "save", "--binary", str(binary),
                 "--at", "50000", "--key", "ck", "--store", store]) == 0
    saved = capsys.readouterr().out
    assert "saved ck at 50000 instructions" in saved

    assert main(["snapshot", "info", "--key", "ck", "--store", store]) == 0
    import json
    info = json.loads(capsys.readouterr().out)
    assert info["executed_total"] == 50_000

    straight = boot(mcf_image)
    done = straight.run()
    assert main(["snapshot", "resume", "--key", "ck",
                 "--store", store]) == done.code
    out = capsys.readouterr().out
    assert "resumed ck from 50000" in out
    assert "instructions: %d" % straight.executed_total in out

    # bounded resume stops at the budget instead of completing
    assert main(["snapshot", "resume", "--key", "ck", "--store", store,
                 "--steps", "1000"]) == 0
    assert "(+1000 since resume)" in capsys.readouterr().out

    assert main(["snapshot", "info", "--key", "missing",
                 "--store", store]) == 1
