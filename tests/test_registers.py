"""Tests for the register file, flags, and XSAVE serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    GPR_NAMES,
    Flags,
    RegisterFile,
    XSAVE_AREA_SIZE,
)


def test_gpr_names_match_x86_encoding_order():
    assert GPR_NAMES[0] == "rax"
    assert GPR_NAMES[4] == "rsp"
    assert GPR_NAMES[7] == "rdi"
    assert GPR_NAMES[15] == "r15"
    assert len(GPR_NAMES) == 16


def test_named_accessors():
    regs = RegisterFile()
    regs.set("rbx", 0x1234)
    assert regs.get("rbx") == 0x1234
    regs.rsp = 0x7FFF0000
    assert regs.get("rsp") == 0x7FFF0000
    regs.rax = -1
    assert regs.rax == (1 << 64) - 1  # truncated to 64 bits


def test_flags_word_round_trip():
    flags = Flags(zf=True, sf=False, cf=True, of=False)
    word = flags.to_word()
    assert word & 0x2  # the always-set bit
    restored = Flags.from_word(word)
    assert restored == flags


@given(st.booleans(), st.booleans(), st.booleans(), st.booleans())
def test_flags_round_trip_property(zf, sf, cf, of):
    flags = Flags(zf=zf, sf=sf, cf=cf, of=of)
    assert Flags.from_word(flags.to_word()) == flags


def test_xsave_area_round_trip():
    regs = RegisterFile()
    regs.xmm[0] = 3.25
    regs.xmm[15] = -1e300
    regs.mxcsr = 0x1FA0
    blob = regs.xsave_bytes()
    assert len(blob) == XSAVE_AREA_SIZE
    other = RegisterFile()
    other.xrstor_bytes(blob)
    assert other.xmm == regs.xmm
    assert other.mxcsr == regs.mxcsr


def test_xrstor_rejects_wrong_size():
    regs = RegisterFile()
    with pytest.raises(ValueError):
        regs.xrstor_bytes(b"\x00" * 10)


def test_copy_is_deep():
    regs = RegisterFile()
    regs.set("rcx", 7)
    regs.flags.zf = True
    clone = regs.copy()
    clone.set("rcx", 9)
    clone.flags.zf = False
    assert regs.get("rcx") == 7
    assert regs.flags.zf


def test_dict_round_trip():
    regs = RegisterFile()
    regs.set("r14", 0xDEAD)
    regs.rip = 0x400123
    regs.fs_base = 0x7000
    regs.xmm[3] = 2.5
    regs.flags.sf = True
    restored = RegisterFile.from_dict(regs.to_dict())
    assert restored == regs


def test_validation_of_sizes():
    with pytest.raises(ValueError):
        RegisterFile(gpr=[0] * 15)
    with pytest.raises(ValueError):
        RegisterFile(xmm=[0.0] * 3)
