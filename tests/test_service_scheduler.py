"""Unit tests for the fair-share scheduler (no sockets, injected clock)."""

import pytest

from repro.service import FairShareScheduler, LeaseLost, QueueFull, UnknownJob


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make(max_queued=1024, lease_timeout=10.0, retries=2):
    clock = Clock()
    scheduler = FairShareScheduler(max_queued=max_queued,
                                   lease_timeout=lease_timeout,
                                   retries=retries, clock=clock)
    return scheduler, clock


def submit(scheduler, client, name, priority=0, memo_key=""):
    status, job = scheduler.submit(client=client, name=name, payload="p",
                                   memo_key=memo_key, priority=priority)
    return status, job


# -- priority and fairness --------------------------------------------------


def test_priority_orders_within_a_client():
    scheduler, _clock = make()
    submit(scheduler, "a", "low", priority=0)
    submit(scheduler, "a", "high", priority=5)
    submit(scheduler, "a", "mid", priority=3)
    order = [scheduler.lease("w").name for _ in range(3)]
    assert order == ["high", "mid", "low"]


def test_fifo_within_equal_priority():
    scheduler, _clock = make()
    for index in range(4):
        submit(scheduler, "a", "job%d" % index)
    order = [scheduler.lease("w").name for _ in range(4)]
    assert order == ["job0", "job1", "job2", "job3"]


def test_fair_share_alternates_between_flooding_clients():
    """Two clients flooding the queue drain in strict alternation,
    regardless of who submitted first."""
    scheduler, _clock = make()
    for index in range(10):
        submit(scheduler, "alice", "alice%d" % index)
    for index in range(10):
        submit(scheduler, "bob", "bob%d" % index)
    owners = [scheduler.lease("w").client for _ in range(20)]
    # in any adjacent window of 2 there is at most one repeat
    for index in range(0, 20, 2):
        assert set(owners[index:index + 2]) == {"alice", "bob"}


def test_weighted_client_drains_proportionally():
    scheduler, _clock = make()
    scheduler.set_weight("heavy", 2.0)
    for index in range(12):
        submit(scheduler, "heavy", "heavy%d" % index)
        submit(scheduler, "light", "light%d" % index)
    first12 = [scheduler.lease("w").client for _ in range(12)]
    assert first12.count("heavy") == 8  # 2:1 share

def test_late_joining_client_is_not_starved_and_does_not_monopolize():
    scheduler, _clock = make()
    for index in range(6):
        submit(scheduler, "early", "early%d" % index)
    for _ in range(4):
        scheduler.lease("w")  # early accrues vtime
    for index in range(4):
        submit(scheduler, "late", "late%d" % index)
    nxt = [scheduler.lease("w").client for _ in range(4)]
    # the newcomer starts at the active floor: it interleaves instead of
    # either waiting for "early" to finish or monopolizing the queue
    assert set(nxt) == {"early", "late"}


# -- backpressure -----------------------------------------------------------


def test_queue_full_raises_and_recovers():
    scheduler, _clock = make(max_queued=3)
    for index in range(3):
        submit(scheduler, "a", "job%d" % index)
    with pytest.raises(QueueFull):
        submit(scheduler, "a", "overflow")
    job = scheduler.lease("w")
    scheduler.complete(job.lease_id, "r1")
    submit(scheduler, "a", "now-fits")  # capacity freed


def test_duplicate_submits_do_not_count_against_capacity():
    scheduler, _clock = make(max_queued=1)
    submit(scheduler, "a", "one", memo_key="same")
    status, job = submit(scheduler, "b", "one-too", memo_key="same")
    assert status == "duplicate"
    assert job.clients == {"a", "b"}


# -- memoized concurrent submissions ----------------------------------------


def test_concurrent_identical_submissions_share_one_job():
    scheduler, _clock = make()
    status1, job1 = submit(scheduler, "a", "calc", memo_key="K")
    status2, job2 = submit(scheduler, "b", "calc", memo_key="K")
    assert (status1, status2) == ("queued", "duplicate")
    assert job1.job_id == job2.job_id
    leased = scheduler.lease("w")
    assert leased.job_id == job1.job_id
    assert scheduler.lease("w2") is None  # only one execution
    scheduler.complete(leased.lease_id, "r1")
    # once settled, the memo mapping clears: a later submit re-runs
    status3, job3 = submit(scheduler, "c", "calc", memo_key="K")
    assert status3 == "queued" and job3.job_id != job1.job_id


# -- leases, heartbeats, expiry ---------------------------------------------


def test_expired_lease_requeues_the_job():
    scheduler, clock = make(lease_timeout=10.0)
    submit(scheduler, "a", "slow")
    job = scheduler.lease("w1")
    clock.advance(11.0)
    expired = scheduler.expire()
    assert [item.job_id for item in expired] == [job.job_id]
    assert job.state == "queued" and "lease expired" in job.error
    again = scheduler.lease("w2")
    assert again.job_id == job.job_id
    assert again.attempts == 2


def test_heartbeat_extends_the_lease():
    scheduler, clock = make(lease_timeout=10.0)
    submit(scheduler, "a", "slow")
    job = scheduler.lease("w1")
    clock.advance(8.0)
    scheduler.heartbeat(job.lease_id)
    clock.advance(8.0)
    assert scheduler.expire() == []  # 16s in, but heartbeat at 8s
    clock.advance(3.0)
    assert len(scheduler.expire()) == 1


def test_lease_expiry_exhausts_retries_into_failure():
    scheduler, clock = make(lease_timeout=5.0, retries=1)
    submit(scheduler, "a", "doomed")
    for _ in range(2):  # 1 + retries attempts
        job = scheduler.lease("w")
        clock.advance(6.0)
        scheduler.expire()
    assert job.state == "failed"
    assert "retries exhausted" in job.error


def test_heartbeat_after_expiry_is_lease_lost():
    scheduler, clock = make(lease_timeout=5.0)
    submit(scheduler, "a", "slow")
    job = scheduler.lease("w1")
    clock.advance(6.0)
    scheduler.expire()
    with pytest.raises(LeaseLost):
        scheduler.heartbeat(job.lease_id)


# -- completion and idempotency ---------------------------------------------


def test_complete_ok_settles_and_records_metrics():
    scheduler, _clock = make()
    submit(scheduler, "a", "job")
    job = scheduler.lease("w")
    scheduler.complete(job.lease_id, "req1", ok=True, wall_s=1.5,
                       icount=1000, worker="w")
    assert job.state == "ok"
    assert job.wall_s == 1.5 and job.icount == 1000


def test_complete_failure_retries_then_fails():
    scheduler, _clock = make(retries=1)
    submit(scheduler, "a", "flaky")
    job = scheduler.lease("w")
    scheduler.complete(job.lease_id, "req1", ok=False, error="boom")
    assert job.state == "queued"  # requeued for the retry
    job2 = scheduler.lease("w")
    assert job2.job_id == job.job_id
    scheduler.complete(job2.lease_id, "req2", ok=False, error="boom again")
    assert job.state == "failed" and job.error == "boom again"


def test_duplicate_complete_same_request_id_is_idempotent():
    scheduler, _clock = make()
    submit(scheduler, "a", "job")
    job = scheduler.lease("w")
    first = scheduler.complete(job.lease_id, "req1", ok=True, wall_s=2.0)
    replay = scheduler.complete(job.lease_id, "req1", ok=False,
                                error="should be ignored")
    assert replay is first
    assert job.state == "ok" and job.error == ""


def test_complete_with_reaped_lease_raises_lease_lost():
    scheduler, clock = make(lease_timeout=5.0)
    submit(scheduler, "a", "slow")
    job = scheduler.lease("w1")
    stale_lease = job.lease_id
    clock.advance(6.0)
    scheduler.expire()  # requeued
    job2 = scheduler.lease("w2")  # re-leased elsewhere
    with pytest.raises(LeaseLost):
        scheduler.complete(stale_lease, "req-late", ok=True)
    # the re-run completes normally
    scheduler.complete(job2.lease_id, "req-new", ok=True)
    assert job.state == "ok"


def test_cancel_queued_job():
    scheduler, _clock = make()
    _status, job = submit(scheduler, "a", "unwanted")
    submit(scheduler, "a", "wanted")
    scheduler.cancel(job.job_id)
    assert job.state == "cancelled"
    assert scheduler.lease("w").name == "wanted"
    assert scheduler.queued == 0


def test_cancel_unknown_job_raises():
    scheduler, _clock = make()
    with pytest.raises(UnknownJob):
        scheduler.cancel("J999999")


def test_stats_shape():
    scheduler, _clock = make()
    submit(scheduler, "a", "one")
    submit(scheduler, "b", "two", priority=2)
    scheduler.lease("w")
    stats = scheduler.stats()
    assert stats["queued"] == 1 and stats["leased"] == 1
    assert stats["jobs"] == 2
    assert set(stats["clients"]) == {"a", "b"}
    for entry in stats["clients"].values():
        assert {"queued", "vtime", "weight"} <= set(entry)
