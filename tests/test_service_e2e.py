"""End-to-end service tests: sockets, real worker processes, campaigns.

The acceptance path of the service: a :class:`ServerThread` over a
two-shard store, two worker *processes* draining the queue over TCP,
and campaign results that are bit-identical to the local ``farm run``
path — cold, warm, and under two clients racing the same campaign.
"""

import multiprocessing
import threading

import pytest

from repro.core.cli import main
from repro.farm import ArtifactStore, executed_jobs, read_manifest
from repro.service import (
    ServerThread,
    connect,
    run_service_campaign,
    worker_main,
)
from repro.simpoint import elfie_validation, run_pinpoints_farm
from repro.workloads import get_app

PIPELINE = dict(slice_size=10_000, warmup=20_000, max_k=4, max_alternates=1)


@pytest.fixture(scope="module")
def mcf_image():
    return get_app("505.mcf_r").build("test")


def start_workers(host, port, count=2, idle_exit_s=8.0):
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(target=worker_main, args=(host, port),
                        kwargs=dict(name="w%d" % index, poll_s=0.3,
                                    idle_exit_s=idle_exit_s))
        for index in range(count)
    ]
    for process in workers:
        process.start()
    return workers


def join_workers(workers):
    for process in workers:
        process.join(60.0)
        assert process.exitcode == 0


def test_service_campaign_bit_identical_to_farm_run(tmp_path, mcf_image):
    # reference: the local multiprocessing path
    local_store = ArtifactStore(str(tmp_path / "local"))
    local = run_pinpoints_farm(
        mcf_image, "505.mcf_r", local_store, jobs=1,
        validations=[elfie_validation("v", trials=1)], **PIPELINE)

    with ServerThread(str(tmp_path / "svc"), shards=2,
                      lease_timeout=5.0) as server:
        host, port = server.server.host, server.server.port
        workers = start_workers(host, port, count=2)
        cold_manifest = str(tmp_path / "cold.jsonl")
        with connect(host, port, client_id="cold") as client:
            outcomes = run_service_campaign(
                {"505.mcf_r": mcf_image}, client,
                manifest_path=cold_manifest,
                validations=[elfie_validation("v", trials=1)], **PIPELINE)
        outcome = outcomes["505.mcf_r"]

        # bit-identical to the local path: same regions, same captured
        # pinballs (pages included), same ELFie images, same validation
        assert [r.name for r in outcome.result.regions] == \
            [r.name for r in local.result.regions]
        assert outcome.result.pinballs.keys() == local.result.pinballs.keys()
        for name, pinball in outcome.result.pinballs.items():
            assert pinball.pages == local.result.pinballs[name].pages
            assert pinball.threads == local.result.pinballs[name].threads
        assert outcome.result.elfies.keys() == local.result.elfies.keys()
        for name, elfie in outcome.result.elfies.items():
            assert elfie.image == local.result.elfies[name].image
        assert outcome.validations["v"].abs_error_percent == \
            local.validations["v"].abs_error_percent
        assert outcome.validations["v"].covered_weight == \
            local.validations["v"].covered_weight

        # the cold run executed over sockets: both workers participated
        # or at least every executed job names a service worker
        cold_records = read_manifest(cold_manifest)
        cold_workers = {record["worker"]
                        for record in executed_jobs(cold_records)
                        if record["stage"] != "assemble"}
        assert cold_workers and cold_workers <= {"w0", "w1", None}

        # warm re-submit: >= 90% of keyed jobs served from the store
        warm_manifest = str(tmp_path / "warm.jsonl")
        with connect(host, port, client_id="warm") as client:
            warm = run_service_campaign(
                {"505.mcf_r": mcf_image}, client,
                manifest_path=warm_manifest,
                validations=[elfie_validation("v", trials=1)], **PIPELINE)
        warm_records = read_manifest(warm_manifest)
        keyed = [record for record in warm_records if record["key"]]
        hits = [record for record in keyed if record["cache"] == "hit"]
        assert len(hits) >= 0.9 * len(keyed)
        assert not executed_jobs(warm_records, "log")
        assert not executed_jobs(warm_records, "convert")
        assert warm["505.mcf_r"].validations["v"].abs_error_percent == \
            local.validations["v"].abs_error_percent

        join_workers(workers)

        # the sharded store spread the campaign across both shards
        stats = server.store.stats()
        assert all(entry["blocks"] > 0 for entry in stats.shards.values())


def test_two_racing_clients_share_single_executions(tmp_path, mcf_image):
    """Two clients submitting the identical campaign concurrently get
    identical results from single executions (in-flight memo dedup)."""
    with ServerThread(str(tmp_path / "svc"), shards=2,
                      lease_timeout=5.0) as server:
        host, port = server.server.host, server.server.port
        workers = start_workers(host, port, count=2)
        outcomes = {}
        errors = []

        def campaign(label):
            try:
                with connect(host, port, client_id=label) as client:
                    outcomes[label] = run_service_campaign(
                        {"505.mcf_r": mcf_image}, client,
                        validations=[elfie_validation("v", trials=1)],
                        **PIPELINE)["505.mcf_r"]
            except Exception as exc:  # surfaced below
                errors.append((label, exc))

        threads = [threading.Thread(target=campaign, args=("c%d" % index,))
                   for index in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300.0)
        join_workers(workers)
        assert not errors, errors

        first, second = outcomes["c0"], outcomes["c1"]
        assert first.result.pinballs.keys() == second.result.pinballs.keys()
        for name in first.result.elfies:
            assert first.result.elfies[name].image == \
                second.result.elfies[name].image
        assert first.validations["v"].abs_error_percent == \
            second.validations["v"].abs_error_percent

        # single execution per memo key: every keyed job ran at most once
        scheduler = server.scheduler
        by_memo = {}
        for job in scheduler.jobs.values():
            if job.memo_key:
                by_memo.setdefault(job.memo_key, []).append(job)
        assert by_memo  # the campaign did queue keyed work
        for memo_key, jobs in by_memo.items():
            executed = [job for job in jobs if job.state == "ok"]
            assert len(executed) <= 1, memo_key


def test_service_cli_start_worker_submit_status(tmp_path, capsys):
    """The CLI wiring: server thread + worker + submit + status."""
    store_dir = str(tmp_path / "svc")
    with ServerThread(store_dir, shards=2, lease_timeout=5.0) as server:
        host, port = server.server.host, server.server.port
        workers = start_workers(host, port, count=2)
        manifest = str(tmp_path / "run.jsonl")
        argv = ["service", "submit", "--host", host, "--port", str(port),
                "--app", "505.mcf_r", "--input", "test",
                "--slice-size", "10000", "--warmup", "20000",
                "--max-k", "4", "--alternates", "1", "--trials", "1",
                "--manifest", manifest]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r:" in out and "coverage" in out

        assert main(["service", "status", "--host", host,
                     "--port", str(port), "--store"]) == 0
        status = capsys.readouterr().out
        assert '"scheduler"' in status and '"shards"' in status
        join_workers(workers)

    # farm stats reads the sharded layout the service wrote
    assert main(["farm", "stats", "--store", store_dir, "--json"]) == 0
    import json as json_module
    stats = json_module.loads(capsys.readouterr().out)
    assert set(stats["shards"]) == {"shard-00", "shard-01"}
