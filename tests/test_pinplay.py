"""Tests for the PinPlay substrate: logging, pinballs, replay, sysstate."""

import pytest

from repro.machine.vfs import FileSystem
from repro.pinplay import (
    LogOptions,
    Pinball,
    RegionSpec,
    extract_sysstate,
    log_region,
    replay,
)
from repro.workloads import build_executable

COUNTER_PROGRAM = """
_start:
    mov rbx, 0
    mov rcx, 2000
loop:
    add rbx, rcx
    imul rbx, 3
    ld rax, [scratch]
    add rax, rbx
    st [scratch], rax
    sub rcx, 1
    cmp rcx, 0
    jnz loop
    mov rax, 231
    mov rdi, 0
    syscall
"""

COUNTER_DATA = "scratch:\n.quad 0\n"


@pytest.fixture(scope="module")
def counter_image():
    return build_executable(COUNTER_PROGRAM, data_source=COUNTER_DATA)


FILE_PROGRAM = """
_start:
    mov rax, 2          ; open("/in.dat") — BEFORE the region
    mov rdi, path
    mov rsi, 0
    syscall
    mov r14, rax        ; keep fd
    mov rcx, 3000       ; region will start inside this delay loop
delay:
    sub rcx, 1
    cmp rcx, 0
    jnz delay
    mov rax, 0          ; read(fd, buf, 8) — INSIDE the region
    mov rdi, r14
    mov rsi, buf
    mov rdx, 8
    syscall
    ld rbx, [buf]
    mov rax, 231
    mov rdi, rbx
    and rdi, 0xff
    syscall
path:
    .asciz "/in.dat"
"""

FILE_DATA = "buf:\n.zero 16\n"


@pytest.fixture(scope="module")
def file_image():
    return build_executable(FILE_PROGRAM, data_source=FILE_DATA)


def _file_fs():
    fs = FileSystem()
    fs.create("/in.dat", bytes([0x2A]) + b"\x00" * 15)
    return fs


def test_log_region_produces_pinball(counter_image):
    region = RegionSpec(start=2000, length=3000, name="test.r0")
    pinball = log_region(counter_image, region, LogOptions(name="test"))
    assert pinball.num_threads == 1
    assert pinball.region_icount == 3000
    assert pinball.pages  # fat pinball has pages
    assert pinball.fat


def test_pinball_captures_register_state(counter_image):
    region = RegionSpec(start=1000, length=500)
    pinball = log_region(counter_image, region)
    regs = pinball.threads[0].regs
    # rip must be inside .text
    assert 0x400000 <= regs.rip < 0x400000 + 4096
    # rcx is the loop counter: it has been decremented from 2000
    assert 0 < regs.get("rcx") < 2000


def test_fat_vs_lazy_page_counts(counter_image):
    region = RegionSpec(start=2000, length=1000)
    fat = log_region(counter_image, region, LogOptions(fat=True))
    lazy = log_region(counter_image, region, LogOptions(fat=False))
    assert set(lazy.pages) <= set(fat.pages)
    assert len(lazy.pages) < len(fat.pages)


def test_replay_is_deterministic(counter_image):
    region = RegionSpec(start=2000, length=3000)
    pinball = log_region(counter_image, region)
    first = replay(pinball, seed=7)
    second = replay(pinball, seed=99)
    assert first.diverged is None
    assert second.diverged is None
    assert first.thread_icounts == second.thread_icounts == {0: 3000}
    # final memory identical
    assert (first.machine.mem.read_u64(0x600000)
            == second.machine.mem.read_u64(0x600000))


def test_replay_reaches_exact_region_end(counter_image):
    region = RegionSpec(start=5000, length=2000)
    pinball = log_region(counter_image, region)
    result = replay(pinball)
    assert result.total_icount == 2000
    assert result.matches_recording


def test_replay_injects_file_reads_without_the_file(file_image):
    """The file only exists at log time; replay injects read() results."""
    region = RegionSpec(start=2000, length=50000, name="file.r0")
    pinball = log_region(file_image, region, fs=_file_fs())
    # replay on a machine with NO /in.dat and no open fd
    result = replay(pinball)
    assert result.matches_recording
    assert result.injected_syscalls >= 1
    # the injected read delivered 0x2a into the buffer
    assert result.machine.mem.read_u8(0x600000) == 0x2A


def test_injectionless_replay_file_read_fails(file_image):
    """-replay:injection 0: the read() re-executes and fails (no fd),
    mimicking a bare ELFie run."""
    region = RegionSpec(start=2000, length=50000)
    pinball = log_region(file_image, region, fs=_file_fs())
    result = replay(pinball, injection=False)
    # program runs to its exit, but the read failed, so the buffer got
    # no data and the exit code differs from the recorded run (0x2a).
    assert result.status.kind == "exit"
    assert result.status.code != 0x2A


def test_pinball_save_load_round_trip(tmp_path, counter_image):
    region = RegionSpec(start=1500, length=2500, warmup=500, name="rt.r1",
                        weight=0.25)
    pinball = log_region(counter_image, region, LogOptions(name="rt"))
    pinball.save(str(tmp_path))
    loaded = Pinball.load(str(tmp_path), "rt")
    assert loaded.region == pinball.region
    assert loaded.threads[0].regs == pinball.threads[0].regs
    assert loaded.pages == pinball.pages
    assert loaded.schedule == pinball.schedule
    assert [r.to_json() for r in loaded.syscalls] == [
        r.to_json() for r in pinball.syscalls
    ]
    # and the loaded pinball replays
    result = replay(loaded)
    assert result.matches_recording


def test_pinball_files_on_disk(tmp_path, counter_image):
    region = RegionSpec(start=1000, length=1000)
    pinball = log_region(counter_image, region, LogOptions(name="disk"))
    pinball.save(str(tmp_path))
    names = {p.name for p in tmp_path.iterdir()}
    assert names == {"disk.text", "disk.0.reg", "disk.sel", "disk.race",
                     "disk.result"}


def test_warmup_extends_captured_window(counter_image):
    region = RegionSpec(start=5000, length=1000, warmup=2000)
    pinball = log_region(counter_image, region)
    # captured window covers warmup + region
    assert pinball.region_icount == 3000
    # register state is from the warmup start
    regs = pinball.threads[0].regs
    assert regs.rip != 0


def test_region_past_program_end_raises(counter_image):
    region = RegionSpec(start=10_000_000, length=100)
    with pytest.raises(ValueError):
        log_region(counter_image, region)


def test_stack_range_detection(counter_image):
    region = RegionSpec(start=1000, length=100)
    pinball = log_region(counter_image, region)
    start, end = pinball.stack_range()
    rsp = pinball.threads[0].regs.rsp
    assert start <= rsp < end


def test_sysstate_extracts_fd_proxy(file_image):
    region = RegionSpec(start=2000, length=50000)
    pinball = log_region(file_image, region, fs=_file_fs())
    state = extract_sysstate(pinball)
    fd_files = state.fd_files
    assert len(fd_files) == 1
    proxy = fd_files[0]
    assert proxy.name == "FD_%d" % proxy.restore_fd
    assert bytes(proxy.data[:1]) == b"\x2a"


def test_sysstate_brk_log(counter_image):
    region = RegionSpec(start=1000, length=1000)
    pinball = log_region(counter_image, region)
    state = extract_sysstate(pinball)
    assert "first_brk 0x" in state.brk_log()
    assert state.last_brk >= state.first_brk >= 0


def test_sysstate_write_to_filesystem(file_image):
    region = RegionSpec(start=2000, length=50000)
    pinball = log_region(file_image, region, fs=_file_fs())
    state = extract_sysstate(pinball)
    fs = FileSystem()
    workdir = state.write_to(fs, "/work")
    assert workdir == "/work"
    assert fs.exists("/work/BRK.log")
    fd_proxy = state.fd_files[0]
    assert fs.contents("/work/" + fd_proxy.name)[:1] == b"\x2a"


def test_sysstate_named_file_opened_in_region():
    source = """
    _start:
        mov rcx, 500
    warm:
        sub rcx, 1
        cmp rcx, 0
        jnz warm
        mov rax, 2          ; open inside the region
        mov rdi, path
        mov rsi, 0
        syscall
        mov rdi, rax
        mov rax, 0
        mov rsi, buf
        mov rdx, 4
        syscall
        mov rax, 231
        mov rdi, 0
        syscall
    path:
        .asciz "/data/cfg.txt"
    """
    image = build_executable(source, data_source="buf:\n.zero 8\n")
    fs = FileSystem()
    fs.create("/data/cfg.txt", b"WXYZ")
    pinball = log_region(image, RegionSpec(start=400, length=50000), fs=fs)
    state = extract_sysstate(pinball)
    named = state.named_files
    assert len(named) == 1
    assert named[0].name == "/data/cfg.txt"
    assert bytes(named[0].data) == b"WXYZ"
    out = FileSystem()
    state.write_to(out, "/ss")
    assert out.contents("/data/cfg.txt") == b"WXYZ"
    assert out.contents("/ss/data/cfg.txt") == b"WXYZ"


def test_multithreaded_log_and_replay():
    from repro.workloads import ProgramBuilder, PhaseSpec

    builder = ProgramBuilder(
        name="mt", threads=4,
        phases=[PhaseSpec("compute", 2000, buffer_kb=16),
                PhaseSpec("stream", 2000, buffer_kb=16)],
    )
    image = builder.build()
    region = RegionSpec(start=8000, length=20000, name="mt.r0")
    pinball = log_region(image, region, seed=3)
    assert pinball.num_threads >= 2
    result = replay(pinball)
    assert result.matches_recording
    assert result.total_icount == sum(
        t.region_icount for t in pinball.threads
    )


def test_multithreaded_replay_repeatable():
    from repro.workloads import ProgramBuilder, PhaseSpec

    builder = ProgramBuilder(
        name="mt2", threads=4,
        phases=[PhaseSpec("pointer_chase", 3000, buffer_kb=16)],
    )
    image = builder.build()
    region = RegionSpec(start=5000, length=15000)
    pinball = log_region(image, region, seed=11)
    a = replay(pinball, seed=1)
    b = replay(pinball, seed=2)
    assert a.diverged is None and b.diverged is None
    assert a.thread_icounts == b.thread_icounts
