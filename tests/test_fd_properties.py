"""Property tests: descriptor sharing follows open-file-description rules.

A dup'ed descriptor is an alias for the same open file description, so
reads and seeks through any alias move one shared offset — and nothing
else (mmap in particular reads the file pread-style and must never
perturb it).  The oracle is a tiny model of fd -> description -> offset
run in lockstep with the kernel over random operation sequences.
"""

from hypothesis import given, settings, strategies as st

from repro.machine import Machine
from repro.machine.kernel import MAP_PRIVATE, NR
from repro.machine.memory import PAGE_SIZE, PROT_RW

FILE_SIZE = 2 * PAGE_SIZE


def _call(machine, thread, number, rdi=0, rsi=0, rdx=0, r10=0, r8=0, r9=0):
    thread.regs.gpr[0] = number
    thread.regs.gpr[7] = rdi
    thread.regs.gpr[6] = rsi
    thread.regs.gpr[2] = rdx
    thread.regs.gpr[10] = r10
    thread.regs.gpr[8] = r8
    thread.regs.gpr[9] = r9
    return machine.kernel.dispatch(thread)


class _Model:
    """Reference semantics: descriptions hold offsets, fds alias them."""

    def __init__(self, root_fd):
        self._next_desc = 0
        self.descs = {0: 0}          # description id -> offset
        self.fds = {root_fd: 0}      # fd -> description id

    def dup(self, fd, new_fd):
        self.fds[new_fd] = self.fds[fd]

    def dup2(self, fd, new_fd):
        if new_fd != fd:
            self.fds[new_fd] = self.fds[fd]

    def read(self, fd, count):
        desc = self.fds[fd]
        offset = self.descs[desc]
        took = max(0, min(count, FILE_SIZE - offset))
        self.descs[desc] = offset + took

    def lseek(self, fd, pos):
        self.descs[self.fds[fd]] = pos

    def offsets(self):
        return {fd: self.descs[desc] for fd, desc in self.fds.items()}


operations = st.lists(
    st.one_of(
        st.tuples(st.just("dup"), st.integers(0, 5)),
        st.tuples(st.just("dup2"), st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.just("dup2_self"), st.integers(0, 5)),
        st.tuples(st.just("read"), st.integers(0, 5), st.integers(0, 200)),
        st.tuples(st.just("lseek"), st.integers(0, 5),
                  st.integers(0, FILE_SIZE)),
        st.tuples(st.just("mmap"), st.integers(0, 5), st.integers(0, 2)),
    ),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_fd_aliases_share_exactly_one_offset(ops):
    machine = Machine(seed=0)
    machine.mem.map(0x1000, 0x10000, PROT_RW)
    thread = machine.create_thread()
    machine.kernel.fs.create("/data", bytes(range(256)) * (FILE_SIZE // 256))
    machine.mem.write(0x1000, b"/data\x00")
    root_fd = _call(machine, thread, NR.OPEN, rdi=0x1000, rsi=0)
    model = _Model(root_fd)
    fd_pool = [root_fd]

    for op in ops:
        kind = op[0]
        fd = fd_pool[op[1] % len(fd_pool)]
        if kind == "dup":
            new_fd = _call(machine, thread, NR.DUP, rdi=fd)
            model.dup(fd, new_fd)
            fd_pool.append(new_fd)
        elif kind == "dup2":
            target = fd_pool[op[2] % len(fd_pool)]
            assert _call(machine, thread, NR.DUP2, rdi=fd,
                         rsi=target) == target
            model.dup2(fd, target)
        elif kind == "dup2_self":
            # dup2(fd, fd): validity probe, must not disturb anything
            assert _call(machine, thread, NR.DUP2, rdi=fd, rsi=fd) == fd
        elif kind == "read":
            _call(machine, thread, NR.READ, rdi=fd, rsi=0x3000, rdx=op[2])
            model.read(fd, op[2])
        elif kind == "lseek":
            assert _call(machine, thread, NR.LSEEK, rdi=fd, rsi=op[2],
                         rdx=0) == op[2]
            model.lseek(fd, op[2])
        elif kind == "mmap":
            offset = op[2] * PAGE_SIZE
            base = _call(machine, thread, NR.MMAP, rdi=0, rsi=PAGE_SIZE,
                         rdx=3, r10=MAP_PRIVATE, r8=fd, r9=offset)
            assert base > 0
            # mapped bytes come from the mmap offset, not the fd offset
            expected = machine.kernel.fs.contents("/data")[offset:offset + 8]
            expected += b"\x00" * (8 - len(expected))  # past-EOF maps zeros
            assert machine.mem.read(base, 8) == expected
        for check_fd, offset in model.offsets().items():
            assert machine.kernel.fdt.fd_offset(check_fd) == offset, (
                "fd %d offset diverged after %r" % (check_fd, op))
