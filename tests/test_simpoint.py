"""Tests for BBV profiling, k-means, SimPoint selection, validation."""

import pytest

from repro.simpoint import (
    collect_bbv,
    cluster_vectors,
    prediction_error,
    run_pinpoints,
    select_simpoints,
    validate_with_elfies,
)
from repro.simpoint.kmeans import project_vectors
from repro.workloads import PhaseSpec, ProgramBuilder

TWO_PHASE = ProgramBuilder(
    name="twophase",
    phases=[
        PhaseSpec("compute", 6000, buffer_kb=16),
        PhaseSpec("pointer_chase", 6000, buffer_kb=64),
        PhaseSpec("compute", 6000, buffer_kb=16),
        PhaseSpec("pointer_chase", 6000, buffer_kb=64),
    ],
)


@pytest.fixture(scope="module")
def two_phase_profile():
    return collect_bbv(TWO_PHASE.build(), slice_size=10_000, seed=1)


def test_bbv_slices_cover_whole_program(two_phase_profile):
    profile = two_phase_profile
    assert profile.num_slices >= 10
    assert sum(profile.slice_icounts) == profile.total_icount
    # all but the last slice are full-size
    assert all(n == profile.slice_size
               for n in profile.slice_icounts[:-1])


def test_bbv_vectors_nonempty_and_plausible(two_phase_profile):
    for vector in two_phase_profile.vectors:
        assert vector
        assert all(count > 0 for count in vector.values())
        # weighted counts sum approximately to the slice size
        assert sum(vector.values()) <= two_phase_profile.slice_size + 1


def test_bbv_slice_cpi_varies_between_phases(two_phase_profile):
    cpis = [two_phase_profile.slice_cpi(i)
            for i in range(two_phase_profile.num_slices - 1)]
    assert max(cpis) > 1.3 * min(cpis)


def test_bbv_whole_program_cpi(two_phase_profile):
    profile = two_phase_profile
    assert profile.whole_program_cpi == pytest.approx(
        profile.total_cycles / profile.total_icount)


def test_bbv_deterministic_across_runs():
    image = TWO_PHASE.build()
    first = collect_bbv(image, slice_size=10_000, seed=5)
    second = collect_bbv(image, slice_size=10_000, seed=5)
    assert first.vectors == second.vectors
    assert first.total_cycles == second.total_cycles


def test_projection_shape():
    vectors = [{1: 5, 2: 5}, {2: 10}, {3: 1}]
    points = project_vectors(vectors, dim=4, seed=0)
    assert points.shape == (3, 4)


def test_kmeans_separates_distinct_phases():
    # two obviously distinct groups of vectors
    group_a = [{100: 90 + i, 200: 10} for i in range(10)]
    group_b = [{300: 80 + i, 400: 20} for i in range(10)]
    result = cluster_vectors(group_a + group_b, max_k=8, seed=3)
    labels = result.labels
    # no cluster mixes members of the two groups (BIC may further split
    # a group, which is fine)
    labels_a = set(labels[:10])
    labels_b = set(labels[10:])
    assert not labels_a & labels_b
    assert 2 <= result.k <= 6


def test_kmeans_single_cluster_for_uniform_input():
    vectors = [{7: 100} for _ in range(12)]
    result = cluster_vectors(vectors, max_k=6, seed=1)
    assert result.k == 1


def test_kmeans_rejects_empty_input():
    with pytest.raises(ValueError):
        cluster_vectors([])


def test_simpoint_weights_sum_to_one(two_phase_profile):
    result = select_simpoints(two_phase_profile, max_k=8)
    assert sum(c.weight for c in result.clusters) == pytest.approx(1.0)


def test_simpoint_representative_is_cluster_member(two_phase_profile):
    result = select_simpoints(two_phase_profile, max_k=8)
    for cluster in result.clusters:
        members = set(result.kmeans.members(cluster.cluster_id))
        assert cluster.representative in members
        for rank in range(1, 3):
            alt = cluster.alternate(rank)
            if alt is not None:
                assert alt in members
                assert alt != cluster.representative


def test_simpoint_regions_align_with_slices(two_phase_profile):
    result = select_simpoints(two_phase_profile, max_k=8)
    for region in result.regions(warmup=5000):
        assert region.start % two_phase_profile.slice_size == 0
        assert region.length == two_phase_profile.slice_size
        assert region.warmup == 5000


def test_alternate_regions_have_alt_names(two_phase_profile):
    result = select_simpoints(two_phase_profile, max_k=8)
    regions = result.regions(max_alternates=2)
    assert any(".alt1" in r.name for r in regions)


def test_prediction_error_definition():
    assert prediction_error(2.0, 2.0) == 0.0
    assert prediction_error(2.0, 1.0) == pytest.approx(0.5)
    assert prediction_error(2.0, 3.0) == pytest.approx(-0.5)
    assert prediction_error(0.0, 1.0) == 0.0


@pytest.fixture(scope="module")
def pinpoints_result():
    image = TWO_PHASE.build()
    return run_pinpoints(image, "twophase", slice_size=10_000,
                         warmup=20_000, max_k=8, max_alternates=1)


def test_pinpoints_captures_fat_pinballs(pinpoints_result):
    assert pinpoints_result.pinballs
    for pinball in pinpoints_result.pinballs.values():
        assert pinball.fat
        assert pinball.program_icount == pinpoints_result.profile.total_icount


def test_pinpoints_generates_elfies(pinpoints_result):
    assert set(pinpoints_result.elfies) == set(pinpoints_result.pinballs)


def test_pinpoints_alternates_listed(pinpoints_result):
    primaries = pinpoints_result.primary_regions
    assert primaries
    for region in primaries:
        for alt in pinpoints_result.alternates_for(region):
            assert alt.name.startswith(region.name + ".alt")


def test_elfie_validation_produces_plausible_error(pinpoints_result):
    validation = validate_with_elfies(pinpoints_result, trials=2)
    assert validation.covered_weight > 0.6
    assert validation.predicted_cpi > 0
    # the pointer-chase cluster has a long cache-warmth transient with
    # identical BBVs, so some error is physical; it must stay bounded
    assert validation.abs_error_percent < 60.0


def test_validation_measurements_reference_primary_weights(pinpoints_result):
    validation = validate_with_elfies(pinpoints_result, trials=1)
    total_weight = sum(m.region.weight for m in validation.measurements)
    assert total_weight == pytest.approx(1.0)
