"""ASLR as a first-class load mode: slide, relocate, record, replay.

The loader slides the whole image by a deterministic seed-derived page
offset and patches ``.pxreloc`` slots so absolute addresses embedded in
code and data stay correct.  Execution must be invariant to the slide
(same output, same exit), and the record -> verify pipeline must work
at a slid base exactly as at the link base — the aslr-invariance CI job
leans on these properties.
"""

from repro.machine import Machine, load_elf
from repro.machine.loader import aslr_slide
from repro.machine.memory import PAGE_SIZE
from repro.pinplay import RegionSpec, log_region, replay
from repro.verify.verifier import verify_pinball
from repro.workloads import build_executable, run_program

# Uses absolute addresses in both code (mov reg, label) and data
# (.quad label) so a wrong or missing relocation shows immediately.
RELOC_HEAVY = """
_start:
    mov rbx, table
    ld rsi, [rbx]           ; *table -> msg
    mov rax, 1
    mov rdi, 1
    mov rdx, 8
    syscall
    mov rbx, counter
    ld rcx, [rbx]
    add rcx, 5
    st [rbx], rcx
    mov rax, 231
    ld rdi, [rbx]
    syscall
"""

RELOC_DATA = """
msg:
    .ascii "relocate"
table:
    .quad msg
counter:
    .quad 37
"""


def _build():
    return build_executable(RELOC_HEAVY, data_source=RELOC_DATA)


def test_aslr_slide_is_deterministic_nonzero_page_aligned():
    for seed in range(20):
        slide = aslr_slide(seed)
        assert slide == aslr_slide(seed)
        assert slide > 0
        assert slide % PAGE_SIZE == 0
    slides = {aslr_slide(seed) for seed in range(20)}
    assert len(slides) > 1  # different seeds spread across bases


def test_execution_is_invariant_to_the_slide():
    image = _build()
    _, base_status, base_loaded = run_program(image)
    machine, status, loaded = run_program(image, aslr_seed=7)
    assert loaded.load_bias == aslr_slide(7)
    assert loaded.entry == base_loaded.entry + loaded.load_bias
    assert status.kind == "exit"
    assert status.code == base_status.code == 42
    assert machine.stdout() == b"relocate"


def test_same_seed_reproduces_the_same_layout():
    image = _build()
    first = load_elf(Machine(seed=0), image, aslr_seed=11)
    second = load_elf(Machine(seed=0), image, aslr_seed=11)
    assert first.entry == second.entry
    assert first.symbols == second.symbols


def test_symbols_follow_the_slide():
    image = _build()
    plain = load_elf(Machine(seed=0), image)
    slid = load_elf(Machine(seed=0), image, aslr_seed=3)
    bias = slid.load_bias
    assert bias > 0
    for name, addr in plain.symbols.items():
        assert slid.symbols[name] == addr + bias


def test_region_recorded_at_slid_base_replays_and_verifies():
    image = _build()
    region = RegionSpec(start=2, length=6, name="aslr-region")
    pinball = log_region(image, region, seed=0, aslr_seed=5)
    # the captured pages carry slid absolute addresses; replay is
    # self-contained and must not care what base was used
    result = replay(pinball)
    assert result.diverged is None
    assert result.total_icount == sum(t.region_icount
                                      for t in pinball.threads)
    report = verify_pinball(image, pinball, seed=0, aslr_seed=5)
    assert report.ok, report.failures


def test_same_region_at_two_bases_same_architectural_work():
    # the aslr-invariance property: selecting one icount window yields
    # regions that do identical work regardless of the base
    image = _build()
    region = RegionSpec(start=2, length=6, name="invariance")
    pinballs = [log_region(image, region, seed=0, aslr_seed=aslr)
                for aslr in (None, 9)]
    for pinball in pinballs:
        result = replay(pinball)
        assert result.diverged is None
    bias = aslr_slide(9)
    plain, slid = [pb.threads[0] for pb in pinballs]
    # same thread, same rip modulo the slide, same per-thread icount
    assert plain.tid == slid.tid
    assert plain.regs.rip + bias == slid.regs.rip
    assert plain.region_icount == slid.region_icount
