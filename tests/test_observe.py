"""Tests for the repro.observe subsystem.

Covers the tracer (span nesting, threading, Chrome trace-event JSON
validity), the metrics registry (percentiles, snapshot round trip),
the null-object hook layer, the machine-level instrumentation, and the
end-to-end contract: spans in a ``farm run --trace`` export agree with
the JSONL run manifest's job records.
"""

import json
import threading

import pytest

from repro.core.cli import main
from repro.farm import read_manifest
from repro.observe import (
    MetricsRegistry,
    Tracer,
    hooks,
    load_snapshot,
    observed,
)
from repro.workloads import PhaseSpec, ProgramBuilder, run_program


# -- hooks (null-object layer) ------------------------------------------------


def test_hooks_default_to_disabled_noops():
    obs = hooks.OBS
    assert obs.enabled is False
    with obs.span("anything", "cat", detail=1) as span:
        span.set(more=2)
    obs.count("a")
    obs.gauge("b", 1.0)
    obs.observe("c", 0.5)
    obs.instant("d")
    obs.complete("e", 0.1)


def test_enable_disable_swaps_the_process_observer():
    assert hooks.OBS.enabled is False
    obs = hooks.enable()
    try:
        assert hooks.OBS is obs
        assert obs.enabled is True
        obs.count("x", 3)
        assert obs.metrics.snapshot()["counters"]["x"] == 3
    finally:
        hooks.disable()
    assert hooks.OBS.enabled is False


def test_observed_restores_previous_observer():
    with observed() as outer:
        assert hooks.OBS is outer
        with observed() as inner:
            assert hooks.OBS is inner
        assert hooks.OBS is outer
    assert hooks.OBS.enabled is False


# -- tracer -------------------------------------------------------------------


def _complete_events(tracer):
    return [e for e in tracer.events() if e["ph"] == "X"]


def test_span_nesting():
    tracer = Tracer()
    assert tracer.depth() == 0
    with tracer.span("parent", "t"):
        assert tracer.depth() == 1
        assert tracer.current().name == "parent"
        with tracer.span("child", "t"):
            assert tracer.depth() == 2
    assert tracer.depth() == 0

    spans = {e["name"]: e for e in _complete_events(tracer)}
    assert set(spans) == {"parent", "child"}
    parent, child = spans["parent"], spans["child"]
    # the child's window is contained in the parent's
    assert parent["ts"] <= child["ts"]
    assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6


def test_span_records_error_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (event,) = _complete_events(tracer)
    assert "ValueError" in event["args"]["error"]
    assert tracer.depth() == 0


def test_spans_across_threads():
    tracer = Tracer()
    # all four threads live at once, so their idents (the trace tids)
    # are guaranteed distinct
    barrier = threading.Barrier(4)

    def work(index):
        barrier.wait(timeout=10)
        with tracer.span("thread-span", worker=index):
            with tracer.span("inner", worker=index):
                barrier.wait(timeout=10)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    events = _complete_events(tracer)
    assert len(events) == 8
    tids = {e["tid"] for e in events if e["name"] == "thread-span"}
    assert len(tids) == 4  # per-thread stacks, per-thread tids


def test_chrome_trace_export_is_valid(tmp_path):
    tracer = Tracer()
    with tracer.span("outer", "cat", app="x"):
        tracer.instant("mark", "cat", detail="d")
    tracer.complete("external", 0.25, "farm", state="ok")
    path = str(tmp_path / "trace.json")
    tracer.export(path)

    with open(path) as handle:
        doc = json.load(handle)
    assert isinstance(doc["traceEvents"], list)
    phases = set()
    for event in doc["traceEvents"]:
        assert isinstance(event["name"], str)
        assert event["ph"] in ("X", "i", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        phases.add(event["ph"])
        if event["ph"] != "M":
            assert event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
    assert phases == {"X", "i", "M"}
    external = next(e for e in doc["traceEvents"] if e["name"] == "external")
    assert external["dur"] == pytest.approx(0.25 * 1e6)


# -- metrics ------------------------------------------------------------------


def test_histogram_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("wall")
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.percentile(50) == 50.0
    assert histogram.percentile(95) == 95.0
    assert histogram.percentile(99) == 99.0
    summary = histogram.summary()
    assert summary["count"] == 100
    assert summary["min"] == 1.0 and summary["max"] == 100.0
    assert summary["p50"] == 50.0
    assert summary["sum"] == pytest.approx(5050.0)


def test_metrics_snapshot_round_trip(tmp_path):
    registry = MetricsRegistry()
    registry.count("syscalls", 7)
    registry.count("syscalls", 3)
    registry.set_gauge("workers", 4)
    for value in (0.1, 0.2, 0.4):
        registry.observe("wall_s", value)

    path = str(tmp_path / "metrics.json")
    registry.export(path)
    loaded = load_snapshot(path)
    assert loaded == registry.snapshot()
    assert loaded["counters"]["syscalls"] == 10
    assert loaded["gauges"]["workers"] == 4
    assert loaded["histograms"]["wall_s"]["count"] == 3

    text = registry.render_text()
    assert "syscalls 10" in text
    assert "wall_s.p95" in text


def test_metric_kind_collisions_are_rejected():
    registry = MetricsRegistry()
    registry.count("name")
    with pytest.raises(ValueError):
        registry.gauge("name")
    with pytest.raises(ValueError):
        registry.histogram("name")


# -- machine instrumentation --------------------------------------------------


def test_machine_run_emits_instruction_and_syscall_metrics():
    image = ProgramBuilder(
        name="obs", phases=[PhaseSpec("compute", 200, buffer_kb=4)],
    ).build()
    with observed() as obs:
        machine, status, _ = run_program(image, seed=1)
    assert status.kind == "exit"
    counters = obs.metrics.snapshot()["counters"]
    total = sum(t.icount for t in machine.threads.values())
    assert counters["cpu.instructions"] == total
    assert counters["kernel.syscalls"] >= 1
    assert counters["kernel.syscall.exit_group"] == 1


def test_disabled_hooks_leave_no_telemetry_behind():
    image = ProgramBuilder(
        name="obs2", phases=[PhaseSpec("compute", 100, buffer_kb=4)],
    ).build()
    run_program(image, seed=1)  # hooks disabled: must simply not crash
    assert hooks.OBS.enabled is False


# -- end to end: farm run --trace vs the JSONL manifest -----------------------


def test_farm_run_trace_spans_match_manifest(tmp_path, capsys):
    store_dir = str(tmp_path / "farm")
    manifest = str(tmp_path / "run.jsonl")
    trace_path = str(tmp_path / "trace.json")
    metrics_path = str(tmp_path / "metrics.json")
    argv = ["--trace", trace_path, "--metrics", metrics_path,
            "farm", "run", "--store", store_dir,
            "--app", "505.mcf_r", "--app", "541.leela_r",
            "--input", "test", "--jobs", "1", "--slice-size", "10000",
            "--warmup", "20000", "--max-k", "4", "--alternates", "1",
            "--trials", "1", "--manifest", manifest]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache-hit rate: 0.0%" in out
    assert "stage wall:" in out

    with open(trace_path) as handle:
        trace = json.load(handle)
    spans = {}
    for event in trace["traceEvents"]:
        if event["ph"] == "X":
            spans.setdefault(event["name"], []).append(event)

    executed = [record for record in read_manifest(manifest)
                if record["cache"] != "hit" and record["wall_s"] > 0]
    assert executed, "campaign should have executed jobs"
    for record in executed:
        matching = spans.get(record["job"])
        assert matching, "no trace span for job %s" % record["job"]
        durations = [event["dur"] / 1e6 for event in matching]
        assert any(abs(dur - record["wall_s"]) < 1e-5 for dur in durations)
        (event,) = matching
        assert event["cat"] == "farm.%s" % record["stage"]
        assert event["args"]["cache"] == record["cache"]

    # the campaign phases traced too
    assert "campaign.build" in spans
    assert "campaign.run" in spans
    stage_cats = {event["cat"] for events in spans.values()
                  for event in events}
    assert "farm.profile" in stage_cats
    assert "farm.log" in stage_cats

    metrics = load_snapshot(metrics_path)
    assert metrics["counters"]["farm.jobs"] == len(read_manifest(manifest))
    assert metrics["counters"]["cpu.instructions"] > 0
    assert metrics["histograms"]["farm.job_wall_s"]["count"] == len(executed)
