"""Tests for the consistent-hash ring behind the sharded store."""

import hashlib
import random

import pytest

from repro.service import HashRing
from repro.service.shards import shard_names


def _digest(value):
    return hashlib.sha256(str(value).encode()).hexdigest()


def test_ring_is_deterministic_across_instances():
    first = HashRing(shard_names(4))
    second = HashRing(list(reversed(shard_names(4))))  # order-independent
    for index in range(500):
        digest = _digest(index)
        assert first.shard_for(digest) == second.shard_for(digest)


def test_ring_covers_every_shard():
    ring = HashRing(shard_names(3))
    owners = {ring.shard_for(_digest(index)) for index in range(1000)}
    assert owners == set(shard_names(3))


def test_ring_balance_within_tolerance():
    ring = HashRing(shard_names(4), vnodes=128)
    fractions = ring.arc_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    for fraction in fractions.values():
        # 128 vnodes keeps every shard within a loose band of 1/N
        assert 0.10 < fraction < 0.45


def test_ring_minimal_movement_on_growth():
    small = HashRing(shard_names(4))
    grown = HashRing(shard_names(5))
    digests = [_digest(index) for index in range(2000)]
    moved = sum(1 for digest in digests
                if small.shard_for(digest) != grown.shard_for(digest))
    # ideal movement is 1/5 of keys; rehash-everything would move ~4/5
    assert moved / len(digests) < 0.35
    # every key that moved, moved TO the new shard
    for digest in digests:
        before, after = small.shard_for(digest), grown.shard_for(digest)
        if before != after:
            assert after == "shard-04"


def test_ring_rejects_bad_configs():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["a", "a"])


def test_ring_lookup_matches_manual_bisect():
    ring = HashRing(["x", "y"], vnodes=8)
    rng = random.Random(7)
    for _ in range(200):
        digest = _digest(rng.random())
        owner = ring.shard_for(digest)
        assert owner in ("x", "y")
