"""Protocol framing tests and fault injection against a live server."""

import socket
import struct
import threading
import time

import pytest

from repro.service import (
    ProtocolError,
    ServerThread,
    ServiceClient,
    ServiceUnavailable,
    ServiceWorker,
)
from repro.service import protocol


def double(value):
    return value * 2


def explode():
    raise RuntimeError("kaboom")


# -- framing ----------------------------------------------------------------


def test_frame_round_trip():
    message = {"verb": "hello", "id": "x:1", "nested": {"a": [1, 2, 3]}}
    frame = protocol.encode_frame(message)
    length = struct.unpack(">I", frame[:4])[0]
    assert length == len(frame) - 4
    left, right = socket.socketpair()
    try:
        protocol.send_message(left, message)
        assert protocol.recv_message(right) == message
    finally:
        left.close()
        right.close()


def test_recv_none_on_clean_eof():
    left, right = socket.socketpair()
    left.close()
    try:
        assert protocol.recv_message(right) is None
    finally:
        right.close()


def test_recv_raises_on_mid_frame_eof():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", 100) + b"only-partial")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.recv_message(right)
    finally:
        right.close()


def test_oversized_header_is_rejected_not_allocated():
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">I", protocol.MAX_FRAME + 1))
        with pytest.raises(ProtocolError, match="claims"):
            protocol.recv_message(right)
    finally:
        left.close()
        right.close()


def test_bad_base64_raises_protocol_error():
    with pytest.raises(ProtocolError):
        protocol.unpack_bytes("!!not base64!!")
    assert protocol.unpack_bytes(protocol.pack_bytes(b"\x00\xffdata")) == \
        b"\x00\xffdata"


# -- fault injection over a live server -------------------------------------


@pytest.fixture()
def service(tmp_path):
    with ServerThread(str(tmp_path / "store"), shards=2,
                      lease_timeout=0.6) as server_thread:
        yield server_thread


def test_dropped_connection_mid_put_artifact(service):
    """A peer dying mid-frame must not dispatch a partial request."""
    host, port = service.server.host, service.server.port
    client = ServiceClient(host, port, client_id="good")
    client.put_artifact("keep/1", {"v": 1}, "object")
    # handcraft a put-artifact frame and cut the connection halfway
    frame = protocol.encode_frame({
        "verb": "put-artifact", "id": "evil:1", "key": "torn/1",
        "kind": "object", "meta": {"blob": "0" * 64},
        "blocks": {"0" * 64: protocol.pack_bytes(b"x" * 10_000)}})
    raw = socket.create_connection((host, port))
    raw.sendall(frame[:len(frame) // 2])
    raw.close()
    time.sleep(0.1)
    # the torn request never executed, and the server still serves
    assert not client.has_artifact("torn/1")
    assert client.get_artifact("keep/1") == {"v": 1}
    client.close()


def test_corrupt_block_upload_is_rejected(service):
    host, port = service.server.host, service.server.port
    client = ServiceClient(host, port, client_id="liar", retries=0)
    from repro.service.client import ServiceError
    with pytest.raises(ServiceError, match="digest"):
        client.call("put-artifact", key="bad/1", kind="object",
                    meta={"blob": "ab" * 32},
                    blocks={"ab" * 32: protocol.pack_bytes(b"wrong bytes")})
    assert not client.has_artifact("bad/1")
    client.close()


def test_worker_death_mid_lease_requeues_and_reruns(service):
    """A silent worker's lease expires; the job re-runs, nothing is
    lost and nothing runs twice-effectively."""
    host, port = service.server.host, service.server.port
    client = ServiceClient(host, port, client_id="campaign")
    submitted = client.submit("double", double, (21,), key="svc/t/double",
                              kind="object")
    assert submitted["status"] == "queued"
    # a "worker" leases the job and immediately dies (no heartbeat)
    dead = ServiceClient(host, port, client_id="dead-worker")
    grant = dead.lease("dead-worker", wait_s=2.0)
    assert grant is not None
    dead.close()  # gone: no heartbeat, no complete
    # a live worker picks the job up after the lease expires
    worker = ServiceWorker(host, port, name="live", poll_s=0.2,
                           idle_exit_s=3.0)
    thread = threading.Thread(target=worker.run)
    thread.start()
    states = client.wait([submitted["job"]["job_id"]], timeout_s=10.0)
    view = states[submitted["job"]["job_id"]]
    worker.stop()
    thread.join(10.0)
    assert view["state"] == "ok"
    assert view["attempts"] == 2          # dead lease + live run
    assert view["worker"] == "live"
    assert client.get_artifact("svc/t/double") == 42
    assert worker.jobs_done == 1
    client.close()


def test_duplicate_complete_same_request_id_is_idempotent(service):
    host, port = service.server.host, service.server.port
    client = ServiceClient(host, port, client_id="campaign")
    submitted = client.submit("double", double, (5,), key="svc/t/dup",
                              kind="object")
    wclient = ServiceClient(host, port, client_id="w")
    grant = wclient.lease("w", wait_s=2.0)
    wclient.put_artifact("svc/t/dup", 10, "object")
    # complete twice with the SAME request id (a retry after a lost
    # response): the second is served from the replay cache
    fields = dict(lease_id=grant["lease_id"], status="ok", error="",
                  wall_s=0.5, icount=None, worker="w", id="w:0:fixed")
    first = wclient.call("complete", **fields)
    second = wclient.call("complete", **fields)
    assert first["job"]["state"] == second["job"]["state"] == "ok"
    assert service.scheduler.get(submitted["job"]["job_id"]).attempts == 1
    assert client.get_artifact("svc/t/dup") == 10
    client.close()
    wclient.close()


def test_failing_job_reports_the_exception(service):
    host, port = service.server.host, service.server.port
    client = ServiceClient(host, port, client_id="campaign")
    submitted = client.submit("explode", explode, (), key="",
                              result_key="svc/t/explode", retries=0)
    worker = ServiceWorker(host, port, name="w", poll_s=0.2,
                           idle_exit_s=2.0)
    thread = threading.Thread(target=worker.run)
    thread.start()
    states = client.wait([submitted["job"]["job_id"]], timeout_s=10.0)
    view = states[submitted["job"]["job_id"]]
    worker.stop()
    thread.join(10.0)
    assert view["state"] == "failed"
    assert "kaboom" in view["error"]
    assert worker.jobs_failed == 1
    client.close()


def test_unknown_verb_and_missing_artifact_error_codes(service):
    host, port = service.server.host, service.server.port
    from repro.service.client import ServiceError
    client = ServiceClient(host, port, retries=0)
    with pytest.raises(ServiceError) as excinfo:
        client.call("no-such-verb")
    assert excinfo.value.code == 400
    with pytest.raises(ServiceError) as excinfo:
        client.get_artifact("never/stored")
    assert excinfo.value.code == 404
    client.close()


# -- client retry behaviour -------------------------------------------------


class FlakyServer:
    """Accepts connections; drops the first N requests mid-response."""

    def __init__(self, inner_host, inner_port, drops):
        self.target = (inner_host, inner_port)
        self.drops = drops
        self.seen = []
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while True:
            try:
                conn, _addr = self.sock.accept()
            except OSError:
                return
            try:
                message = protocol.recv_message(conn)
                if message is None:
                    continue
                self.seen.append(message["id"])
                if len(self.seen) <= self.drops:
                    conn.close()  # swallow the request, say nothing
                    continue
                upstream = socket.create_connection(self.target)
                protocol.send_message(upstream, message)
                reply = protocol.recv_message(upstream)
                upstream.close()
                protocol.send_message(conn, reply)
            except (OSError, ProtocolError):
                pass
            finally:
                conn.close()

    def close(self):
        self.sock.close()


def test_client_retries_with_same_request_id(service):
    """A lost response is retried with the SAME envelope id, so the
    upstream replay cache can make the retry idempotent."""
    host, port = service.server.host, service.server.port
    flaky = FlakyServer(host, port, drops=2)
    client = ServiceClient("127.0.0.1", flaky.port, client_id="c",
                           retries=4, backoff=0.01)
    submitted = client.submit("double", double, (3,), key="svc/t/retry")
    assert submitted["status"] == "queued"
    assert len(flaky.seen) == 3          # two drops + one success
    assert len(set(flaky.seen)) == 1     # identical id every attempt
    flaky.close()
    client.close()


def test_client_gives_up_cleanly_when_unreachable():
    client = ServiceClient("127.0.0.1", 1, retries=1, backoff=0.01)
    with pytest.raises(ServiceUnavailable):
        client.hello()
