"""Tests for the ELF64 writer/reader and linker script."""

import pytest
from hypothesis import given, strategies as st

from repro.elf import (
    ElfBuilder,
    ElfFile,
    ElfFormatError,
    ET_EXEC,
    ET_REL,
    LinkerScript,
    PF_R,
    PF_X,
    PT_LOAD,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
)
from repro.elf.structs import EM_PX


def _simple_exec():
    builder = ElfBuilder(entry=0x400010)
    builder.add_section(".text", b"\x00" * 64, addr=0x400000,
                        flags=SHF_ALLOC | SHF_EXECINSTR, prot=5)
    builder.add_section(".data", b"DATA", addr=0x600000,
                        flags=SHF_ALLOC | SHF_WRITE, prot=3)
    builder.add_symbol("_start", 0x400010)
    builder.add_symbol("blob", 0x600000, size=4)
    return builder.build()


def test_header_round_trip():
    elf = ElfFile(_simple_exec())
    assert elf.header.e_type == ET_EXEC
    assert elf.header.e_machine == EM_PX
    assert elf.entry == 0x400010


def test_magic_bytes():
    image = _simple_exec()
    assert image[:4] == b"\x7fELF"
    assert image[4] == 2  # ELFCLASS64
    assert image[5] == 1  # little-endian


def test_sections_round_trip():
    elf = ElfFile(_simple_exec())
    names = elf.section_names()
    assert ".text" in names and ".data" in names
    assert elf.section(".data").data == b"DATA"
    assert elf.section(".text").addr == 0x400000


def test_program_headers_cover_alloc_sections_only():
    builder = ElfBuilder(entry=0x400000)
    builder.add_section(".text", b"\x01" * 8, addr=0x400000,
                        flags=SHF_ALLOC | SHF_EXECINSTR, prot=5)
    builder.add_section(".stack.7ffd", b"\x02" * 8, addr=0x7FFD0000,
                        flags=0, prot=3)  # non-allocatable: no segment
    elf = ElfFile(builder.build())
    loads = [s for s in elf.segments if s.p_type == PT_LOAD]
    assert len(loads) == 1
    assert loads[0].p_vaddr == 0x400000
    assert loads[0].p_flags == PF_R | PF_X
    # the section is still in the file
    assert elf.section(".stack.7ffd").data == b"\x02" * 8


def test_segment_data_zero_pads_to_memsz():
    elf = ElfFile(_simple_exec())
    seg = elf.segments[0]
    data = elf.segment_data(seg)
    assert len(data) == seg.p_memsz


def test_symbols_round_trip():
    elf = ElfFile(_simple_exec())
    symbols = elf.symbol_map()
    assert symbols["_start"] == 0x400010
    assert symbols["blob"] == 0x600000
    blob = [s for s in elf.symbols if s.name == "blob"][0]
    assert blob.size == 4


def test_relocatable_object_has_no_segments():
    builder = ElfBuilder(e_type=ET_REL)
    builder.add_section(".text.page1", b"\x00" * 16, addr=0x400000,
                        flags=SHF_ALLOC | SHF_EXECINSTR)
    elf = ElfFile(builder.build())
    assert elf.header.e_type == ET_REL
    assert elf.segments == []
    assert elf.has_section(".text.page1")


def test_duplicate_section_name_rejected():
    builder = ElfBuilder()
    builder.add_section(".text", b"", addr=0)
    with pytest.raises(ValueError):
        builder.add_section(".text", b"", addr=0)


def test_bad_magic_rejected():
    with pytest.raises(ElfFormatError):
        ElfFile(b"MZ" + b"\x00" * 100)
    with pytest.raises(ElfFormatError):
        ElfFile(b"\x7fELF")  # too short


def test_many_sections_round_trip():
    builder = ElfBuilder(entry=0x1000)
    for i in range(50):
        builder.add_section(".data.%x" % (0x10000 + i * 0x1000),
                            bytes([i]) * 32, addr=0x10000 + i * 0x1000,
                            flags=SHF_ALLOC | SHF_WRITE, prot=3)
    elf = ElfFile(builder.build())
    assert len(elf.section_names()) >= 50
    for i in range(50):
        section = elf.section(".data.%x" % (0x10000 + i * 0x1000))
        assert section.data == bytes([i]) * 32


@given(st.lists(st.binary(min_size=0, max_size=128), min_size=1, max_size=8))
def test_section_contents_round_trip_property(blobs):
    builder = ElfBuilder(entry=0)
    for i, blob in enumerate(blobs):
        builder.add_section(".s%d" % i, blob, addr=0x1000 * (i + 1),
                            flags=SHF_ALLOC, prot=1)
    elf = ElfFile(builder.build())
    for i, blob in enumerate(blobs):
        assert elf.section(".s%d" % i).data == blob


def test_linker_script_render_parse_round_trip():
    from repro.elf.linkscript import LinkerRegion

    script = LinkerScript(entry_symbol="_start")

    script.regions.append(LinkerRegion(".text.400000", 0x400000, 0x2000))
    script.regions.append(LinkerRegion(".data.600000", 0x600000, 0x1000))
    script.user_code_base = 0x10000000
    text = script.render()
    parsed = LinkerScript.parse(text)
    assert parsed.entry_symbol == "_start"
    assert parsed.regions == script.regions
    assert parsed.user_code_base == 0x10000000


def test_linker_script_link_rejects_overlap():
    from repro.elf.linkscript import LinkerRegion

    builder_a = ElfBuilder(e_type=ET_REL)
    builder_a.add_section(".text.a", b"\x00" * 32, addr=0x400000,
                          flags=SHF_ALLOC | SHF_EXECINSTR)
    builder_b = ElfBuilder(e_type=ET_REL)
    builder_b.add_section(".text.user", b"\x00" * 32, addr=0x400010,
                          flags=SHF_ALLOC | SHF_EXECINSTR)
    script = LinkerScript(entry_symbol="_start",
                          regions=[LinkerRegion(".text.a", 0x400000, 32)])
    with pytest.raises(ValueError):
        script.link(ElfFile(builder_a.build()), ElfFile(builder_b.build()),
                    entry=0x400000)


def test_linker_script_link_combines_objects():
    builder_a = ElfBuilder(e_type=ET_REL)
    builder_a.add_section(".text.a", b"\xaa" * 32, addr=0x400000,
                          flags=SHF_ALLOC | SHF_EXECINSTR)
    builder_a.add_symbol("region_start", 0x400000)
    builder_b = ElfBuilder(e_type=ET_REL)
    builder_b.add_section(".text.user", b"\xbb" * 16, addr=0x500000,
                          flags=SHF_ALLOC | SHF_EXECINSTR)
    script = LinkerScript(entry_symbol="_start")
    linked = script.link(ElfFile(builder_a.build()), ElfFile(builder_b.build()),
                         entry=0x500000)
    elf = ElfFile(linked)
    assert elf.entry == 0x500000
    assert elf.section(".text.a").data == b"\xaa" * 32
    assert elf.section(".text.user").data == b"\xbb" * 16
    assert elf.symbol_map()["region_start"] == 0x400000
    assert len([s for s in elf.segments if s.p_type == PT_LOAD]) == 2
