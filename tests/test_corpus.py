"""The regression corpus replays green, deterministically.

Every file under ``tests/corpus/`` pins a divergence class that the
fuzzer (or a human) once found in the record -> replay -> ELFie
pipeline.  A failure here means a fixed fidelity bug is back; the
failure report includes the minimized seed so the case can be rerun
standalone.
"""

import json
import os

import pytest

from repro.verify import (
    CorpusCase,
    FuzzCase,
    corpus_paths,
    failing,
    format_failure,
    load_corpus_case,
    replay_corpus,
    run_case,
    save_corpus_case,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def test_corpus_is_populated():
    # the shipped corpus pins at least the divergence classes fixed by
    # the verifier work; never let it silently shrink to nothing
    assert len(corpus_paths(CORPUS_DIR)) >= 5


def test_corpus_files_are_well_formed():
    for path in corpus_paths(CORPUS_DIR):
        entry = load_corpus_case(path)
        assert entry.name == os.path.splitext(os.path.basename(path))[0]
        assert entry.bug, "%s: corpus cases must name the bug they pin" % path
        assert isinstance(entry.case, FuzzCase)


@pytest.mark.parametrize(
    "path", corpus_paths(CORPUS_DIR),
    ids=[os.path.splitext(os.path.basename(p))[0]
         for p in corpus_paths(CORPUS_DIR)])
def test_corpus_case_replays_green(path):
    entry = load_corpus_case(path)
    outcome = run_case(entry.case, check_elfie=entry.check_elfie)
    assert outcome.ok, format_failure(entry, outcome)


def test_replay_corpus_end_to_end():
    results = replay_corpus(CORPUS_DIR)
    assert len(results) == len(corpus_paths(CORPUS_DIR))
    bad = failing(results)
    assert not bad, "\n".join(format_failure(e, o) for e, o in bad)


def test_save_and_load_round_trip(tmp_path):
    case = FuzzCase(seed=42, threads=2, iterations=3,
                    features=("arith", "futex"), region_pos=10,
                    region_len_pct=80)
    path = save_corpus_case(str(tmp_path), case, name="round-trip",
                            bug="serialization check", check_elfie=False)
    entry = load_corpus_case(path)
    assert entry.case == case
    assert entry.bug == "serialization check"
    assert not entry.check_elfie
    # the on-disk form is stable, sorted JSON (reviewable diffs)
    with open(path) as handle:
        data = json.load(handle)
    assert data["version"] == 1


def test_format_failure_mentions_seed_and_bug():
    case = FuzzCase(seed=7, features=("arith",))
    entry = CorpusCase(name="demo", case=case, bug="demo bug")
    from repro.verify import FuzzOutcome
    outcome = FuzzOutcome(case=case, ok=False, stage="replay",
                          detail="boom")
    text = format_failure(entry, outcome)
    assert "demo bug" in text
    assert "boom" in text
    assert '"seed": 7' in text
