"""Tests for the LoopPoint subsystem (repro.looppoint).

Covers the full stack: static marker harvesting (module+offset-relative
maps, spin/futex classification), the marker-slice profiler and its
spin-exclusion invariance, deterministic selection, marker-denominated
region windows, the direct and farm-backed pipelines, marker-metered
ELFie validation, replay fidelity of marker-delimited regions, and the
CLI front-end.
"""

import json

import numpy as np
import pytest

from repro.core.cli import main
from repro.farm import ArtifactStore, executed_jobs, read_manifest
from repro.looppoint import (
    MarkerMap,
    MarkerPoint,
    REGION_SELECTOR,
    collect_looppoint,
    harvest_markers,
    pca_project,
    run_looppoint,
    run_looppoint_campaign,
    select_loop_regions,
    validate_looppoint,
)
from repro.verify import verify_pinball
from repro.workloads import MT_APPS, build_executable

#: A program with one work loop, one pause-spin loop, and one futex
#: wait loop: one marker of each classification.
MARKER_ZOO = """
_start:
    mov rcx, 40
work:
    add rbx, 3
    sub rcx, 1
    cmp rcx, 0
    jnz work
    mov rcx, 6
spin:
    pause
    sub rcx, 1
    cmp rcx, 0
    jnz spin
fwait:
    ld4 rcx, [flag]
    cmp rcx, 0
    jnz done
    mov rax, 202
    mov rdi, flag
    mov rsi, 1
    mov rdx, 0
    syscall
    jmp fwait
done:
    mov rax, 231
    mov rdi, 0
    syscall
"""

MARKER_ZOO_DATA = "flag:\n    .quad 1\n"


@pytest.fixture(scope="module")
def zoo_image():
    return build_executable(MARKER_ZOO, data_source=MARKER_ZOO_DATA)


@pytest.fixture(scope="module")
def mt_image():
    return MT_APPS["mt.prodcons"].build("test")


@pytest.fixture(scope="module")
def mt_profile(mt_image):
    return collect_looppoint(mt_image, slice_markers=64, seed=0)


# -- harvesting -----------------------------------------------------------


def test_harvest_classifies_work_spin_futex(zoo_image):
    marker_map = harvest_markers(zoo_image)
    kinds = sorted(m.kind for m in marker_map.markers)
    assert kinds == ["futex", "loop", "spin"]
    work = marker_map.work_markers
    assert len(work) == 1
    assert work[0].symbol == "work"
    assert {m.symbol for m in marker_map.sync_markers} == {"spin", "fwait"}


def test_marker_map_json_round_trip(zoo_image):
    marker_map = harvest_markers(zoo_image)
    restored = MarkerMap.from_json(
        json.loads(json.dumps(marker_map.to_json())))
    assert restored.module == marker_map.module
    assert restored.text_base == marker_map.text_base
    assert restored.version == marker_map.version
    assert restored.markers == marker_map.markers


def test_marker_point_json_round_trip():
    point = MarkerPoint(module="ab12", offset=0x40, count=1234)
    assert MarkerPoint.from_json(point.to_json()) == point


def test_marker_offsets_survive_rebase(zoo_image):
    # the ASLR prerequisite: offsets are module-relative, so resolving
    # the same map at a shifted load base shifts every address by
    # exactly the slide and nothing else
    marker_map = harvest_markers(zoo_image)
    base = marker_map.text_base
    slide = 0x555000
    normal = marker_map.resolve()
    slid = marker_map.resolve(base + slide)
    assert set(slid) == {addr + slide for addr in normal}
    for addr, marker in normal.items():
        assert slid[addr + slide] == marker
    assert (marker_map.work_addresses(base + slide)
            == {a + slide for a in marker_map.work_addresses()})


def test_harvest_is_content_addressed(zoo_image):
    a = harvest_markers(zoo_image)
    b = harvest_markers(zoo_image)
    assert a.module == b.module
    assert a.markers == b.markers


# -- profiling and spin exclusion -----------------------------------------


def test_profile_cuts_slices_on_crossing_multiples(mt_profile):
    assert mt_profile.slices, "MT app must cross work markers"
    # every non-trailing slice holds exactly slice_markers crossings
    for chunk in mt_profile.slices[:-1]:
        assert sum(chunk.vector.values()) == mt_profile.slice_markers
    # slices partition the run: contiguous, monotonically increasing
    for before, after in zip(mt_profile.slices, mt_profile.slices[1:]):
        assert before.end_icount == after.start_icount
        assert before.icount > 0


def test_sync_crossings_excluded_from_vectors(mt_profile):
    marker_map = mt_profile.marker_map
    assert marker_map.sync_markers, "MT apps spin: sync markers expected"
    assert mt_profile.sync_crossings > 0
    sync_offsets = {m.offset for m in marker_map.sync_markers}
    for chunk in mt_profile.slices:
        assert not sync_offsets & set(chunk.vector)


def test_spin_delay_does_not_change_marker_vectors(mt_profile):
    # the satellite invariant: a workload whose ONLY variation is how
    # long its spin loops wind produces byte-identical work vectors —
    # spin time is excluded from the features by construction
    app = MT_APPS["mt.prodcons"]
    slow = collect_looppoint(app.with_spin_delay(app.spin_delay * 5)
                             .build("test"),
                             slice_markers=64, seed=0)
    assert slow.total_icount > mt_profile.total_icount  # spinning costs
    assert slow.work_crossings == mt_profile.work_crossings
    assert len(slow.slices) == len(mt_profile.slices)

    def totals(profile):
        out = {}
        for chunk in profile.slices:
            for offset, count in chunk.vector.items():
                out[offset] = out.get(offset, 0) + count
        return out

    # whole-run per-marker work totals are byte-identical: the delay
    # only winds sync loops, which the vectors exclude
    assert totals(slow) == totals(mt_profile)
    # per-slice vectors are near-identical — crossings near a slice
    # edge may migrate across it as the interleaving stretches, but
    # never more than a small fraction of the slice
    for fast_chunk, slow_chunk in zip(mt_profile.slices, slow.slices):
        drift = sum(abs(fast_chunk.vector.get(k, 0)
                        - slow_chunk.vector.get(k, 0))
                    for k in set(fast_chunk.vector) | set(slow_chunk.vector))
        assert drift <= mt_profile.slice_markers // 4


# -- selection -------------------------------------------------------------


def test_pca_projection_is_deterministic(mt_profile):
    a = pca_project(mt_profile.vectors, dim=4)
    b = pca_project(mt_profile.vectors, dim=4)
    assert a.tobytes() == b.tobytes()


def test_selection_is_byte_reproducible(mt_profile):
    a = select_loop_regions(mt_profile, max_k=6, seed=42)
    b = select_loop_regions(mt_profile, max_k=6, seed=42)
    assert a.kmeans.labels.tobytes() == b.kmeans.labels.tobytes()
    assert np.array_equal(a.kmeans.centroids, b.kmeans.centroids)
    assert [(c.cluster_id, c.weight, c.candidates) for c in a.clusters] \
        == [(c.cluster_id, c.weight, c.candidates) for c in b.clusters]
    assert a.regions(warmup_slices=1) == b.regions(warmup_slices=1)


def test_cluster_weights_are_crossing_shares(mt_profile):
    selection = select_loop_regions(mt_profile, max_k=6, seed=42)
    total = sum(sum(s.vector.values()) for s in mt_profile.slices)
    weights = [c.weight for c in selection.clusters]
    assert abs(sum(weights) - 1.0) < 1e-9
    # one cluster's weight recomputed by hand
    cluster = selection.clusters[0]
    members = selection.kmeans.members(cluster.cluster_id)
    share = sum(sum(mt_profile.slices[int(m)].vector.values())
                for m in members) / total
    assert cluster.weight == pytest.approx(share)


def test_regions_are_marker_denominated(mt_profile):
    selection = select_loop_regions(mt_profile, max_k=6, seed=42)
    regions = selection.regions(warmup_slices=2)
    assert regions
    for region in regions:
        index = selection.slice_of[region.name]
        chunk = mt_profile.slices[index]
        # boundaries land exactly on slice (= crossing-count) edges
        assert region.start == chunk.start_icount
        assert region.length == chunk.icount
        depth = selection.warmup_slices_of[region.name]
        assert depth == min(2, index)
        assert region.warmup == (chunk.start_icount
                                 - mt_profile.slices[index - depth]
                                 .start_icount)
        skip, measure = selection.measure_crossings(region.name)
        assert skip == depth * mt_profile.slice_markers
        assert measure == sum(chunk.vector.values())


# -- pipeline + marker-metered validation ---------------------------------


@pytest.fixture(scope="module")
def mt_result(mt_image):
    return run_looppoint(mt_image, "mt.prodcons", slice_markers=64,
                         max_k=4, seed=0, max_alternates=1)


def test_run_looppoint_produces_marker_bounded_elfies(mt_result):
    assert mt_result.primary_regions
    assert set(mt_result.elfies) == {r.name for r in mt_result.regions}
    for region in mt_result.regions:
        window = mt_result.marker_windows[region.name]
        assert window["measure"] > 0
        assert window["skip"] >= 0
        start, end = mt_result.marker_window(region.name)
        # interior boundaries are (module+offset, count) marker points
        if window["start"] is not None:
            assert start.module == mt_result.profile.marker_map.module
            assert start.count > 0


def test_validate_looppoint_marker_metered(mt_result):
    validation = validate_looppoint(mt_result, seed=7, trials=1)
    assert validation.covered_weight == pytest.approx(1.0)
    for measurement in validation.measurements:
        assert measurement.ok, measurement.detail
        assert measurement.cycles_per_work is not None
        assert measurement.icount_per_work is not None
    # the ratio prediction lands near the truth even under a replay
    # schedule the profiler never saw
    assert validation.abs_error_percent < 30.0


def test_marker_delimited_region_replays_bit_identical(mt_result, mt_image):
    # satellite: a marker-delimited region through the differential
    # verifier — captured pinball replay must be lockstep-identical
    region = mt_result.primary_regions[0]
    pinball = mt_result.pinballs[region.name]
    report = verify_pinball(mt_image, pinball, seed=0)
    assert report.ok, report.divergence


# -- farm campaign ---------------------------------------------------------


def test_campaign_stamps_selector_and_memoizes(mt_image, tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    images = {"mt.prodcons": mt_image}
    kwargs = dict(slice_markers=64, max_k=4, seed=0, max_alternates=0)
    cold_manifest = str(tmp_path / "cold.jsonl")
    cold = run_looppoint_campaign(images, store, jobs=1,
                                  manifest_path=cold_manifest, **kwargs)
    assert "mt.prodcons" in cold
    records = read_manifest(cold_manifest)
    assert records
    assert all(r["selector"] == REGION_SELECTOR for r in records)
    assert executed_jobs(records, "convert")
    # warm rerun: everything memoized, nothing re-executed
    warm_manifest = str(tmp_path / "warm.jsonl")
    warm = run_looppoint_campaign(images, store, jobs=1,
                                  manifest_path=warm_manifest, **kwargs)
    warm_records = read_manifest(warm_manifest)
    assert not executed_jobs(warm_records, "profile")
    assert not executed_jobs(warm_records, "log")
    assert not executed_jobs(warm_records, "convert")
    cold_regions = [r.name for r in cold["mt.prodcons"].result.regions]
    warm_regions = [r.name for r in warm["mt.prodcons"].result.regions]
    assert cold_regions == warm_regions


# -- CLI -------------------------------------------------------------------


def test_cli_looppoint_profile(tmp_path, capsys):
    markers_out = str(tmp_path / "markers.json")
    code = main(["looppoint", "profile", "--app", "mt.prodcons",
                 "--input", "test", "--markers-out", markers_out])
    assert code == 0
    out = capsys.readouterr().out
    assert "work markers" in out
    assert "sync markers (excluded)" in out
    with open(markers_out) as handle:
        restored = MarkerMap.from_json(json.load(handle))
    assert restored.work_markers


def test_cli_looppoint_select_emits_marker_windows(tmp_path, capsys):
    json_out = str(tmp_path / "regions.json")
    code = main(["looppoint", "select", "--app", "mt.prodcons",
                 "--input", "test", "--max-k", "4",
                 "--warmup-slices", "2", "--json", json_out])
    assert code == 0
    with open(json_out) as handle:
        payload = json.load(handle)
    assert payload["selector"] == REGION_SELECTOR
    assert payload["regions"]
    for region in payload["regions"]:
        assert region["measure"] > 0
        assert region["skip"] >= 0
        assert "markers" in region


def test_cli_looppoint_validate(capsys):
    code = main(["looppoint", "validate", "--app", "mt.prodcons",
                 "--input", "test", "--max-k", "4", "--alternates", "0",
                 "--trials", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "predicted" in out
    assert "coverage 100%" in out
