"""The stack-collision problem and its fix (paper §II-B3, Figs. 4-5).

An ELFie carries the parent pinball's stack pages at their original
addresses, which sit inside the address range where the system loader
randomizes the new process stack.  Without the fix, some stack
placements collide and the process dies before any ELFie code executes.
With the fix (non-allocatable stack sections + startup remap) every
placement works.
"""

import pytest

from repro.core import Pinball2Elf, Pinball2ElfOptions, run_elfie
from repro.core.elfie import prepare_elfie_machine
from repro.machine.loader import (
    _randomized_stack_top,
)
from repro.machine.memory import PAGE_SIZE
from repro.pinplay import RegionSpec, log_region
from repro.workloads import build_executable

PROGRAM = """
_start:
    mov rcx, 40000
loop:
    ld rax, [slot]
    add rax, rcx
    st [slot], rax
    sub rcx, 1
    cmp rcx, 0
    jnz loop
    mov rax, 231
    mov rdi, 0
    syscall
"""


@pytest.fixture(scope="module")
def pinball():
    image = build_executable(PROGRAM, data_source="slot:\n.quad 0\n")
    return log_region(image, RegionSpec(start=30_000, length=50_000,
                                        name="stk.r0"))


def _colliding_seeds(pinball, count=400):
    """Stack seeds whose randomized placement overlaps the pinball
    stack (computed analytically from the loader's policy)."""
    stack_start, stack_end = pinball.stack_range()
    seeds = []
    for seed in range(count):
        top = _randomized_stack_top(seed)
        bottom = top - 16 * PAGE_SIZE
        if bottom < stack_end and stack_start < top:
            seeds.append(seed)
    return seeds


def test_randomization_produces_collidable_placements(pinball):
    """The pinball stack range lies inside the loader's randomization
    window, so collisions are possible — the paper's Fig. 4 setup."""
    seeds = _colliding_seeds(pinball)
    assert seeds, "no colliding placement in 400 seeds (window moved?)"


def test_unfixed_elfie_dies_on_collision(pinball):
    """Without the fix, a colliding placement kills the process during
    load (or leaves it a stack too small to start)."""
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, stack_fix=False)).convert()
    seed = _colliding_seeds(pinball)[0]
    run = run_elfie(artifact.image, stack_seed=seed)
    assert run.loader_error is not None
    assert run.status.kind == "signal"
    # killed before any ELFie code executed
    assert run.machine.total_icount() == 0


def test_unfixed_elfie_works_on_lucky_placements(pinball):
    """Non-colliding placements still work without the fix — which is
    exactly why the bug is intermittent in practice."""
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, stack_fix=False)).convert()
    lucky = [seed for seed in range(50)
             if seed not in set(_colliding_seeds(pinball))]
    run = run_elfie(artifact.image, stack_seed=lucky[0])
    assert run.loader_error is None
    assert run.graceful


def test_fixed_elfie_survives_every_colliding_placement(pinball):
    """With non-allocatable stack sections + startup remap, every
    placement loads and runs (Fig. 5's procedure)."""
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, stack_fix=True)).convert()
    for seed in _colliding_seeds(pinball)[:5]:
        run = run_elfie(artifact.image, stack_seed=seed)
        assert run.loader_error is None, seed
        assert run.graceful, seed


def test_fixed_elfie_stack_contents_restored(pinball):
    """After the startup remap, the pinball's stack bytes are back at
    their original addresses."""
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=False)).convert()
    machine, _ = prepare_elfie_machine(artifact.image, seed=0)
    machine.run(max_instructions=400_000)
    stack_start, stack_end = pinball.stack_range()
    rsp = pinball.threads[0].regs.rsp
    expected = pinball.pages[rsp & ~(PAGE_SIZE - 1)][1]
    got = machine.mem.read(rsp & ~(PAGE_SIZE - 1), 256, access=1)
    assert got == expected[:256]
