"""Tests for the Sniper-like, CoreSim-like and gem5-like simulators."""

import pytest

from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions
from repro.pinplay import RegionSpec, log_region
from repro.simulators import (
    BranchPredictor,
    Cache,
    CoreSim,
    CoreSimConfig,
    Gem5Sim,
    HASWELL_LIKE,
    NEHALEM_LIKE,
    SniperConfig,
    SniperSim,
    Tlb,
)
from repro.simulators.sniper import profile_end_condition
from repro.workloads import PhaseSpec, ProgramBuilder, build_executable


# -- component models ---------------------------------------------------------


def test_cache_hit_after_miss():
    cache = Cache("L1", size_kb=4, assoc=2, latency=2)
    first = cache.access(0x1000)
    second = cache.access(0x1000)
    assert first > second == 2
    assert cache.misses == 1
    assert cache.accesses == 2


def test_cache_lru_eviction():
    cache = Cache("tiny", size_kb=4, assoc=2, latency=1)
    sets = cache.sets
    way_stride = sets * 64
    cache.access(0x0)
    cache.access(way_stride)       # same set, second way
    cache.access(2 * way_stride)   # evicts 0x0
    cache.access(way_stride)       # still resident
    assert cache.misses == 3
    cache.access(0x0)              # must miss again
    assert cache.misses == 4


def test_cache_miss_chains_to_parent():
    llc = Cache("LLC", size_kb=64, assoc=4, latency=30)
    l1 = Cache("L1", size_kb=4, assoc=2, latency=2, parent=llc)
    cycles = l1.access(0x4000)
    assert cycles >= 2 + 30  # L1 + LLC (+ memory behind it)
    assert llc.accesses == 1
    # second L1 access does not touch the LLC
    l1.access(0x4000)
    assert llc.accesses == 1


def test_cache_footprint_counts_distinct_lines():
    cache = Cache("L1", size_kb=4, assoc=2, latency=1)
    for addr in (0x0, 0x40, 0x40, 0x80):
        cache.access(addr)
    assert cache.footprint_bytes() == 3 * 64


def test_tlb_hit_miss():
    tlb = Tlb("DTLB", entries=2, miss_penalty=30)
    assert tlb.access(0x1000) == 30
    assert tlb.access(0x1008) == 0      # same page
    assert tlb.access(0x2000) == 30
    assert tlb.access(0x3000) == 30     # evicts page 1
    assert tlb.access(0x1000) == 30


def test_branch_predictor_learns_loop():
    predictor = BranchPredictor(mispredict_penalty=10)
    penalties = [predictor.predict_and_update(0x400, True)
                 for _ in range(10)]
    # after warm-up, a always-taken branch predicts correctly
    assert penalties[-1] == 0
    assert predictor.mispredict_rate < 0.5


def test_branch_predictor_random_pattern_worse_than_biased():
    import random

    rng = random.Random(7)
    biased = BranchPredictor()
    noisy = BranchPredictor()
    for _ in range(400):
        biased.predict_and_update(0x10, rng.random() < 0.95)
        noisy.predict_and_update(0x20, rng.random() < 0.5)
    assert biased.mispredict_rate < noisy.mispredict_rate


# -- end-to-end simulator fixtures -------------------------------------------


@pytest.fixture(scope="module")
def st_pinball_and_elfie():
    image = build_executable(
        """
        _start:
            mov rcx, 40000
        loop:
            ld rax, [buf]
            add rax, rcx
            st [buf], rax
            imul rax, 3
            sub rcx, 1
            cmp rcx, 0
            jnz loop
            mov rax, 231
            mov rdi, 0
            syscall
        """,
        data_source="buf:\n.quad 0\n",
    )
    pinball = log_region(image, RegionSpec(start=30000, length=60000,
                                           name="st.r0"))
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, marker=MarkerSpec("sniper", 3))).convert()
    return pinball, artifact


@pytest.fixture(scope="module")
def mt_pinball_and_elfie():
    builder = ProgramBuilder(
        name="mt", threads=4,
        phases=[PhaseSpec("compute", 4000, buffer_kb=16),
                PhaseSpec("stream", 4000, buffer_kb=16)],
    )
    image = builder.build()
    pinball = log_region(image, RegionSpec(start=20000, length=60000,
                                           name="mt.r0"), seed=2)
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=False, marker=MarkerSpec("sniper", 4))).convert()
    return pinball, artifact


# -- Sniper -------------------------------------------------------------------


def test_sniper_elfie_skips_startup(st_pinball_and_elfie):
    pinball, artifact = st_pinball_and_elfie
    result = SniperSim().simulate_elfie(artifact.image,
                                        roi_budget=pinball.region_icount)
    # only ROI instructions counted — no startup inflation
    assert result.instructions == pinball.region_icount
    assert result.runtime_cycles > 0
    assert 0 < result.ipc <= SniperConfig().dispatch_width


def test_sniper_pinball_matches_recorded_icount(st_pinball_and_elfie):
    pinball, _ = st_pinball_and_elfie
    result = SniperSim().simulate_pinball(pinball)
    assert result.constrained
    assert result.instructions == pinball.region_icount


def test_sniper_st_elfie_and_pinball_icounts_match(st_pinball_and_elfie):
    """Fig. 11: for single-threaded apps, unconstrained ELFie simulation
    retires the same instruction count as constrained pinball replay."""
    pinball, artifact = st_pinball_and_elfie
    elfie = SniperSim().simulate_elfie(artifact.image,
                                       roi_budget=pinball.region_icount)
    replay = SniperSim().simulate_pinball(pinball)
    assert elfie.instructions == replay.instructions


def test_sniper_mt_elfie_retires_more_than_pinball(mt_pinball_and_elfie):
    """Fig. 11: multi-threaded ELFie simulation retires more
    instructions than the pinball recorded, because spin loops run
    unconstrained."""
    pinball, artifact = mt_pinball_and_elfie
    end_pc, end_count = _mt_end_condition(pinball)
    elfie = SniperSim().simulate_elfie(artifact.image, end_pc=end_pc,
                                       end_count=end_count, seed=11)
    replay = SniperSim().simulate_pinball(pinball)
    assert replay.instructions == pinball.region_icount
    assert elfie.instructions > replay.instructions


def _mt_end_condition(pinball):
    """Pick a work-loop PC (max executions, not a spin PAUSE loop)."""
    from repro.machine.tool import Tool
    from repro.pinplay.replayer import _InjectionTool, _reconstruct
    from repro.isa.instructions import Op

    class Histogram(Tool):
        wants_instructions = True

        def __init__(self):
            self.counts = {}
            self.pause_near = set()

        def on_instruction(self, machine, thread, pc, insn):
            self.counts[pc] = self.counts.get(pc, 0) + 1
            if insn.op is Op.PAUSE:
                for delta in range(-64, 65):
                    self.pause_near.add(pc + delta)

    machine = _reconstruct(pinball, seed=0, fs=None)
    injector = _InjectionTool(pinball)
    histogram = Histogram()
    machine.attach(injector)
    machine.attach(histogram)
    machine.scheduler.replay(pinball.schedule)
    budget = sum(s.quantum for s in pinball.schedule)
    machine.run(max_instructions=budget)
    work = {pc: n for pc, n in histogram.counts.items()
            if pc not in histogram.pause_near}
    end_pc = max(work, key=work.get)
    return end_pc, work[end_pc]


def test_sniper_profile_end_condition(st_pinball_and_elfie):
    pinball, _ = st_pinball_and_elfie
    rip = pinball.threads[0].regs.rip
    end_pc, count = profile_end_condition(pinball, rip)
    assert end_pc == rip
    assert count > 0


def test_sniper_end_condition_stops_simulation(st_pinball_and_elfie):
    pinball, artifact = st_pinball_and_elfie
    rip = pinball.threads[0].regs.rip
    _, count = profile_end_condition(pinball, rip)
    result = SniperSim().simulate_elfie(artifact.image, end_pc=rip,
                                        end_count=count // 2)
    assert result.status.detail == "sniper end condition"
    assert result.instructions < pinball.region_icount


# -- CoreSim ------------------------------------------------------------------


def test_coresim_user_vs_fullsystem(st_pinball_and_elfie):
    """Table IV: full-system simulation executes extra ring-0
    instructions, runs longer, and touches a larger data footprint."""
    pinball, artifact = st_pinball_and_elfie
    budget = pinball.region_icount
    user = CoreSim(CoreSimConfig(frontend="sde")).simulate_elfie(
        artifact.image, roi_budget=budget)
    full = CoreSim(CoreSimConfig(frontend="simics")).simulate_elfie(
        artifact.image, roi_budget=budget)
    assert user.instructions_ring0 == 0
    assert full.instructions_ring0 > 0
    # user-space instruction counts are equal in both modes
    assert user.instructions_ring3 == full.instructions_ring3
    assert full.runtime_cycles > user.runtime_cycles
    assert full.data_footprint_bytes > user.data_footprint_bytes
    assert full.dtlb_misses >= user.dtlb_misses
    # the kernel share is small but its effect is disproportionate
    ring0_share = full.instructions_ring0 / full.instructions_ring3
    runtime_delta = (full.runtime_cycles - user.runtime_cycles) / user.runtime_cycles
    assert ring0_share < 0.10
    assert runtime_delta > ring0_share


def test_coresim_whole_program_mode():
    image = build_executable(
        """
        _start:
            mov rcx, 5000
        loop:
            sub rcx, 1
            cmp rcx, 0
            jnz loop
            mov rax, 231
            mov rdi, 0
            syscall
        """
    )
    result = CoreSim().simulate_program(image)
    assert result.status.kind == "exit"
    assert result.instructions_ring3 > 15000
    assert result.cpi > 0


def test_coresim_result_properties(st_pinball_and_elfie):
    pinball, artifact = st_pinball_and_elfie
    result = CoreSim().simulate_elfie(artifact.image, roi_budget=10_000)
    assert result.instructions_total == (result.instructions_ring3
                                         + result.instructions_ring0)
    assert result.ipc == pytest.approx(1.0 / result.cpi)


# -- gem5 ---------------------------------------------------------------------


def test_gem5_haswell_beats_nehalem_on_memory_bound_code():
    builder = ProgramBuilder(
        name="memory", threads=1,
        phases=[PhaseSpec("pointer_chase", 20000, buffer_kb=512)],
    )
    image = builder.build()
    pinball = log_region(image, RegionSpec(start=30000, length=60000,
                                           name="mem.r0"))
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, marker=MarkerSpec("sniper", 5))).convert()
    nehalem = Gem5Sim(NEHALEM_LIKE).simulate_elfie(artifact.image,
                                                   roi_budget=40_000)
    haswell = Gem5Sim(HASWELL_LIKE).simulate_elfie(artifact.image,
                                                   roi_budget=40_000)
    assert nehalem.instructions == haswell.instructions == 40_000
    # bigger ROB/LSQ hide more miss latency
    assert haswell.ipc > nehalem.ipc


def test_gem5_ipc_bounded_by_width(st_pinball_and_elfie):
    _, artifact = st_pinball_and_elfie
    result = Gem5Sim(NEHALEM_LIKE).simulate_elfie(artifact.image,
                                                  roi_budget=20_000)
    assert 0 < result.ipc <= NEHALEM_LIKE.width


def test_gem5_config_window_properties():
    assert HASWELL_LIKE.effective_window > NEHALEM_LIKE.effective_window
    assert HASWELL_LIKE.mlp > NEHALEM_LIKE.mlp
    assert HASWELL_LIKE.hidden_latency > NEHALEM_LIKE.hidden_latency
