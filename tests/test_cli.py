"""Tests for the pinball2elf command-line front-end."""

import json

import pytest

from repro.core.cli import main
from repro.pinplay import Pinball
from repro.workloads import build_executable

PROGRAM = """
_start:
    mov rcx, 30000
loop:
    ld rax, [slot]
    add rax, rcx
    st [slot], rax
    sub rcx, 1
    cmp rcx, 0
    jnz loop
    mov rax, 231
    mov rdi, 0
    syscall
"""


@pytest.fixture(scope="module")
def binary(tmp_path_factory):
    path = tmp_path_factory.mktemp("bin") / "prog.elf"
    path.write_bytes(build_executable(PROGRAM,
                                      data_source="slot:\n.quad 0\n"))
    return str(path)


@pytest.fixture(scope="module")
def pinball_prefix(binary, tmp_path_factory):
    out = tmp_path_factory.mktemp("pb")
    code = main(["logger", "--binary", binary, "--start", "20000",
                 "--length", "40000", "--name", "cli", "--out", str(out)])
    assert code == 0
    return str(out / "cli")


def test_logger_writes_pinball_files(pinball_prefix, capsys):
    pinball = Pinball.load(*pinball_prefix.rsplit("/", 1))
    assert pinball.region_icount == 40000
    assert pinball.fat


def test_pinball2elf_executable(pinball_prefix, tmp_path, capsys):
    out = str(tmp_path / "x.elfie")
    code = main(["pinball2elf", "--pinball", pinball_prefix,
                 "--out", out, "--roi-start", "sniper:0x7",
                 "--perf-exit"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "wrote" in captured
    from repro.elf import ElfFile, ET_EXEC

    elf = ElfFile.from_path(out)
    assert elf.header.e_type == ET_EXEC


def test_pinball2elf_object_mode(pinball_prefix, tmp_path, capsys):
    out = str(tmp_path / "x.o")
    code = main(["pinball2elf", "--pinball", pinball_prefix,
                 "--out", out, "--object", "--dump-contexts"])
    assert code == 0
    from repro.elf import ElfFile, ET_REL

    assert ElfFile.from_path(out).header.e_type == ET_REL
    assert (tmp_path / "x.o.lds").exists()
    assert (tmp_path / "x.o.ctx.s").exists()


def test_replay_command(pinball_prefix, capsys):
    code = main(["replay", "--pinball", pinball_prefix])
    assert code == 0
    out = capsys.readouterr().out
    assert "matches recording: True" in out


def test_replay_injectionless(pinball_prefix, capsys):
    code = main(["replay", "--pinball", pinball_prefix, "--injection", "0"])
    assert code == 0


def test_sysstate_report(pinball_prefix, capsys):
    code = main(["sysstate", "--pinball", pinball_prefix])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["pinball"] == "cli"
    assert "first_brk" in report


def test_run_command(pinball_prefix, tmp_path, capsys):
    elfie = str(tmp_path / "r.elfie")
    main(["pinball2elf", "--pinball", pinball_prefix, "--out", elfie,
          "--perf-exit"])
    capsys.readouterr()
    code = main(["run", elfie, "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "status: exit" in out


def test_verify_aslr_invariance_gate(capsys):
    code = main(["verify", "aslr", "--cases", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "aslr invariance: 2 cases, 0 failing" in out
