"""Tests for the paged address space."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.memory import (
    PAGE_SIZE,
    PROT_READ,
    PROT_RW,
    PROT_RX,
    AddressSpace,
    MapError,
    PageFault,
    page_align_down,
    page_align_up,
)


def test_page_alignment_helpers():
    assert page_align_down(0x1234) == 0x1000
    assert page_align_up(0x1234) == 0x2000
    assert page_align_up(0x1000) == 0x1000
    assert page_align_down(0) == 0


def test_map_read_write_round_trip():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, PROT_RW)
    mem.write(0x1100, b"hello")
    assert mem.read(0x1100, 5) == b"hello"


def test_unmapped_read_faults():
    mem = AddressSpace()
    with pytest.raises(PageFault) as info:
        mem.read(0x5000, 8)
    assert info.value.address == 0x5000
    assert not info.value.mapped


def test_write_to_readonly_faults():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, PROT_READ)
    with pytest.raises(PageFault) as info:
        mem.write(0x1000, b"x")
    assert info.value.mapped


def test_exec_requires_exec_permission():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, PROT_RW)
    with pytest.raises(PageFault):
        mem.fetch(0x1000)
    mem.protect(0x1000, PAGE_SIZE, PROT_RX)
    assert len(mem.fetch(0x1000)) == 16


def test_page_crossing_read_write():
    mem = AddressSpace()
    mem.map(0x1000, 2 * PAGE_SIZE, PROT_RW)
    data = bytes(range(64))
    mem.write(0x2000 - 32, data)
    assert mem.read(0x2000 - 32, 64) == data


def test_page_crossing_into_unmapped_faults():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, PROT_RW)
    with pytest.raises(PageFault):
        mem.write(0x2000 - 4, b"12345678")


def test_unmap_then_access_faults():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, PROT_RW)
    mem.unmap(0x1000, PAGE_SIZE)
    with pytest.raises(PageFault):
        mem.read(0x1000, 1)


def test_map_with_initial_data():
    mem = AddressSpace()
    mem.map(0x3000, PAGE_SIZE, PROT_READ, data=b"abc")
    assert mem.read(0x3000, 3) == b"abc"
    assert mem.read(0x3003, 1) == b"\x00"


def test_protect_unmapped_raises():
    mem = AddressSpace()
    with pytest.raises(MapError):
        mem.protect(0x1000, PAGE_SIZE, PROT_READ)


def test_u64_u32_u8_accessors():
    mem = AddressSpace()
    mem.map(0, PAGE_SIZE, PROT_RW)
    mem.write_u64(0x10, 0x1122334455667788)
    assert mem.read_u64(0x10) == 0x1122334455667788
    mem.write_u32(0x20, 0xDEADBEEF)
    assert mem.read_u32(0x20) == 0xDEADBEEF
    mem.write_u8(0x30, 0xAB)
    assert mem.read_u8(0x30) == 0xAB


def test_read_cstring():
    mem = AddressSpace()
    mem.map(0, PAGE_SIZE, PROT_RW)
    mem.write(0x40, b"filename\x00garbage")
    assert mem.read_cstring(0x40) == b"filename"


def test_mapped_ranges_coalescing():
    mem = AddressSpace()
    mem.map(0x1000, 2 * PAGE_SIZE, PROT_RW)
    mem.map(0x4000, PAGE_SIZE, PROT_RX)
    ranges = list(mem.mapped_ranges())
    assert ranges == [
        (0x1000, 0x3000, PROT_RW),
        (0x4000, 0x5000, PROT_RX),
    ]


def test_mapped_ranges_split_on_prot_change():
    mem = AddressSpace()
    mem.map(0x1000, 3 * PAGE_SIZE, PROT_RW)
    mem.protect(0x2000, PAGE_SIZE, PROT_READ)
    ranges = list(mem.mapped_ranges())
    assert len(ranges) == 3


def test_snapshot_is_a_copy():
    mem = AddressSpace()
    mem.map(0x1000, PAGE_SIZE, PROT_RW)
    mem.write(0x1000, b"before")
    snap = mem.snapshot()
    mem.write(0x1000, b"after!")
    assert snap[1][:6] == b"before"


def test_touch_hook_reports_pages():
    mem = AddressSpace()
    mem.map(0x1000, 2 * PAGE_SIZE, PROT_RW)
    touched = []
    mem.touch_hook = lambda page, is_write: touched.append((page, is_write))
    mem.read(0x1008, 8)
    mem.write(0x2008, b"x")
    assert (1, False) in touched
    assert (2, True) in touched


def test_find_free_range_avoids_mapped_pages():
    mem = AddressSpace()
    base = mem.find_free_range(2 * PAGE_SIZE)
    mem.map(base, 2 * PAGE_SIZE, PROT_RW)
    second = mem.find_free_range(2 * PAGE_SIZE)
    assert second != base
    assert not mem.any_mapped(second, 2 * PAGE_SIZE)


@given(
    st.integers(min_value=0, max_value=2**16),
    st.binary(min_size=1, max_size=300),
)
def test_write_read_round_trip_property(offset, data):
    mem = AddressSpace()
    base = 0x10000
    mem.map(base, page_align_up(offset + len(data)) + PAGE_SIZE, PROT_RW)
    mem.write(base + offset, data)
    assert mem.read(base + offset, len(data)) == data
