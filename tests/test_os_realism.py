"""Kernel OS-realism semantics: mmap/fd fixes, signals, pipes, sockets, shm.

These pin the tentpole bugfixes (DESIGN §11): the mmap file-backed path
must behave like pread(2) (dup'ed descriptors share one offset and mmap
must not move it), MAP_FIXED atomically replaces the overlapped range,
mprotect/munmap/brk follow Linux error and unmap semantics, and the new
kernel objects — POSIX signals, pipes, loopback sockets, SysV shared
memory — expose the exact blocking/errno behaviour the fuzzer's lockstep
verifier relies on.
"""

import struct

from repro.machine import Machine
from repro.machine.kernel import (
    EADDRINUSE,
    EAGAIN,
    ECONNREFUSED,
    EINTR,
    EINVAL,
    ENOMEM,
    ENOTCONN,
    EPIPE,
    ESRCH,
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_PRIVATE,
    NR,
    RED_ZONE,
    SHM_REMAP,
    SIG_BLOCK,
    SIG_IGN,
    SIG_SETMASK,
    SIG_UNBLOCK,
    SIGFRAME_QWORDS,
    SIGFRAME_SIZE,
    SIGKILL,
)
from repro.machine.memory import PAGE_SIZE, PROT_RW
from repro.machine.vfs import O_NONBLOCK
from repro.workloads import build_executable, run_program

MASK64 = (1 << 64) - 1
MAP_ANON_PRIVATE = MAP_PRIVATE | MAP_ANONYMOUS
SIGUSR1 = 10
SIGUSR2 = 12


def _machine_with_thread():
    machine = Machine(seed=0)
    machine.mem.map(0x1000, 0x10000, PROT_RW)
    thread = machine.create_thread()
    thread.regs.gpr[4] = 0xF000  # usable stack for signal frames
    return machine, thread


def _call(machine, thread, number, rdi=0, rsi=0, rdx=0, r10=0, r8=0, r9=0):
    thread.regs.gpr[0] = number
    thread.regs.gpr[7] = rdi
    thread.regs.gpr[6] = rsi
    thread.regs.gpr[2] = rdx
    thread.regs.gpr[10] = r10
    thread.regs.gpr[8] = r8
    thread.regs.gpr[9] = r9
    return machine.kernel.dispatch(thread)


def _open(machine, thread, path, flags=0):
    machine.mem.write(0x1000, path.encode() + b"\x00")
    return _call(machine, thread, NR.OPEN, rdi=0x1000, rsi=flags)


def _pipe(machine, thread, flags=None):
    if flags is None:
        assert _call(machine, thread, NR.PIPE, rdi=0x2000) == 0
    else:
        assert _call(machine, thread, NR.PIPE2, rdi=0x2000, rsi=flags) == 0
    return struct.unpack("<ii", machine.mem.read(0x2000, 8))


# -- mmap file-backed reads are pread-style -------------------------------------


def test_mmap_file_backed_does_not_move_fd_offset():
    machine, thread = _machine_with_thread()
    machine.kernel.fs.create("/f", b"A" * PAGE_SIZE + b"B" * PAGE_SIZE)
    fd = _open(machine, thread, "/f")
    _call(machine, thread, NR.LSEEK, rdi=fd, rsi=7, rdx=0)
    base = _call(machine, thread, NR.MMAP, rdi=0, rsi=PAGE_SIZE, rdx=3,
                 r10=MAP_PRIVATE, r8=fd, r9=PAGE_SIZE)
    assert base > 0
    # the mapping sees the file at the mmap offset, not the fd offset
    assert machine.mem.read(base, 4) == b"BBBB"
    # and the descriptor's offset is exactly where lseek left it
    assert machine.kernel.fdt.fd_offset(fd) == 7
    _call(machine, thread, NR.READ, rdi=fd, rsi=0x3000, rdx=2)
    assert machine.mem.read(0x3000, 2) == b"AA"


def test_mmap_unaligned_file_offset_einval():
    machine, thread = _machine_with_thread()
    machine.kernel.fs.create("/f", b"x" * 64)
    fd = _open(machine, thread, "/f")
    assert _call(machine, thread, NR.MMAP, rdi=0, rsi=PAGE_SIZE, rdx=3,
                 r10=MAP_PRIVATE, r8=fd, r9=12) == -EINVAL


def test_mmap_then_read_interleaving_shares_one_offset():
    # read a little, mmap, read again: the two reads are contiguous
    machine, thread = _machine_with_thread()
    machine.kernel.fs.create("/f", b"0123456789" + b"z" * PAGE_SIZE)
    fd = _open(machine, thread, "/f")
    _call(machine, thread, NR.READ, rdi=fd, rsi=0x3000, rdx=4)
    _call(machine, thread, NR.MMAP, rdi=0, rsi=PAGE_SIZE, rdx=3,
          r10=MAP_PRIVATE, r8=fd, r9=0)
    _call(machine, thread, NR.READ, rdi=fd, rsi=0x3100, rdx=4)
    assert machine.mem.read(0x3000, 4) == b"0123"
    assert machine.mem.read(0x3100, 4) == b"4567"


# -- MAP_FIXED atomic replace ---------------------------------------------------


def test_map_fixed_requires_aligned_nonzero_address():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.MMAP, rdi=0, rsi=PAGE_SIZE, rdx=3,
                 r10=MAP_ANON_PRIVATE | MAP_FIXED) == -EINVAL
    assert _call(machine, thread, NR.MMAP, rdi=0x40000100, rsi=PAGE_SIZE,
                 rdx=3, r10=MAP_ANON_PRIVATE | MAP_FIXED) == -EINVAL


def test_map_fixed_replaces_existing_mapping_with_zero_pages():
    machine, thread = _machine_with_thread()
    base = 0x40000000
    assert _call(machine, thread, NR.MMAP, rdi=base, rsi=2 * PAGE_SIZE,
                 rdx=3, r10=MAP_ANON_PRIVATE | MAP_FIXED) == base
    machine.mem.write(base, b"\xAA" * 16)
    machine.mem.write(base + PAGE_SIZE, b"\xBB" * 16)
    # replace only the first page: it must come back zeroed, while the
    # second page's contents survive untouched
    assert _call(machine, thread, NR.MMAP, rdi=base, rsi=PAGE_SIZE,
                 rdx=3, r10=MAP_ANON_PRIVATE | MAP_FIXED) == base
    assert machine.mem.read(base, 16) == b"\x00" * 16
    assert machine.mem.read(base + PAGE_SIZE, 16) == b"\xBB" * 16


def test_map_fixed_replace_retires_stale_translations():
    """MAP_FIXED over a live executable mapping — no munmap in between —
    must atomically replace it: cached superblock decodes of the old
    code would otherwise still run after the pages changed."""
    image = build_executable(
        """
        _start:
            mov rax, 9          ; mmap(0x30000000, RWX, ANON|FIXED)
            mov rdi, 0x30000000
            mov rsi, 4096
            mov rdx, 7
            mov r10, 0x32
            mov r8, -1
            mov r9, 0
            syscall
            mov r12, rax
            mov rsi, funca
            mov rdi, r12
            mov rcx, funca_end
            sub rcx, rsi
        copya:
            ld1 rbx, [rsi]
            st1 [rdi], rbx
            add rsi, 1
            add rdi, 1
            sub rcx, 1
            cmp rcx, 0
            jnz copya
            call r12            ; rbx = 1 (old code now cached)
            mov r13, rbx
            mov rax, 9          ; MAP_FIXED straight over the live mapping
            mov rdi, r12
            mov rsi, 4096
            mov rdx, 7
            mov r10, 0x32
            mov r8, -1
            mov r9, 0
            syscall
            mov rsi, funcb
            mov rdi, r12
            mov rcx, funcb_end
            sub rcx, rsi
        copyb:
            ld1 rbx, [rsi]
            st1 [rdi], rbx
            add rsi, 1
            add rdi, 1
            sub rcx, 1
            cmp rcx, 0
            jnz copyb
            call r12            ; stale decode would return 1 again
            add r13, rbx
            mov rax, 231
            mov rdi, r13        ; 1 + 2
            syscall
        funca:
            mov rbx, 1
            ret
        funca_end:
        funcb:
            mov rbx, 2
            ret
        funcb_end:
            nop
        """
    )
    machine, status, _ = run_program(image)
    assert status.kind == "exit"
    assert status.code == 3
    assert machine.cpu.block_invalidations > 0


def test_map_fixed_over_hole_succeeds():
    machine, thread = _machine_with_thread()
    base = 0x50000000
    assert _call(machine, thread, NR.MMAP, rdi=base, rsi=PAGE_SIZE,
                 rdx=3, r10=MAP_ANON_PRIVATE | MAP_FIXED) == base
    assert machine.mem.is_mapped(base)


# -- mprotect / munmap / brk ----------------------------------------------------


def test_mprotect_unaligned_or_empty_einval():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.MPROTECT, rdi=0x1004,
                 rsi=PAGE_SIZE, rdx=0) == -EINVAL
    assert _call(machine, thread, NR.MPROTECT, rdi=0x1000,
                 rsi=0, rdx=0) == -EINVAL


def test_mprotect_unmapped_range_enomem():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.MPROTECT, rdi=0x70000000,
                 rsi=PAGE_SIZE, rdx=3) == -ENOMEM
    # a range straddling a hole is ENOMEM too, even if it starts mapped
    assert _call(machine, thread, NR.MPROTECT, rdi=0x10000,
                 rsi=0x10000, rdx=3) == -ENOMEM


def test_munmap_unaligned_addr_einval():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.MUNMAP, rdi=0x1234,
                 rsi=PAGE_SIZE) == -EINVAL


def test_shrinking_brk_unmaps_released_pages():
    machine, thread = _machine_with_thread()
    machine.kernel.set_brk(0x700000)
    assert _call(machine, thread, NR.BRK, rdi=0x704000) == 0x704000
    machine.mem.write(0x703000, b"heap")
    assert _call(machine, thread, NR.BRK, rdi=0x701000) == 0x701000
    assert machine.mem.is_mapped(0x700000)
    assert not machine.mem.is_mapped(0x701000)
    assert not machine.mem.is_mapped(0x703000)
    # regrowing hands back fresh zero pages, not the old contents
    assert _call(machine, thread, NR.BRK, rdi=0x704000) == 0x704000
    assert machine.mem.read(0x703000, 4) == b"\x00" * 4


# -- fd sharing (dup / dup2) ----------------------------------------------------


def test_dup_shares_open_file_offset():
    machine, thread = _machine_with_thread()
    machine.kernel.fs.create("/f", b"abcdefgh")
    fd = _open(machine, thread, "/f")
    dup_fd = _call(machine, thread, NR.DUP, rdi=fd)
    assert dup_fd != fd
    _call(machine, thread, NR.READ, rdi=fd, rsi=0x3000, rdx=4)
    _call(machine, thread, NR.READ, rdi=dup_fd, rsi=0x3100, rdx=4)
    assert machine.mem.read(0x3000, 4) == b"abcd"
    assert machine.mem.read(0x3100, 4) == b"efgh"


def test_dup2_same_fd_is_validity_check_only():
    machine, thread = _machine_with_thread()
    machine.kernel.fs.create("/f", b"abcd")
    fd = _open(machine, thread, "/f")
    _call(machine, thread, NR.LSEEK, rdi=fd, rsi=2, rdx=0)
    assert _call(machine, thread, NR.DUP2, rdi=fd, rsi=fd) == fd
    assert machine.kernel.fdt.fd_offset(fd) == 2  # untouched
    assert _call(machine, thread, NR.DUP2, rdi=999, rsi=999) == -9  # EBADF


def test_dup2_onto_pipe_end_releases_it():
    machine, thread = _machine_with_thread()
    read_fd, write_fd = _pipe(machine, thread)
    machine.kernel.fs.create("/f", b"x")
    plain = _open(machine, thread, "/f")
    # clobbering the only write end with dup2 must drop its writer ref,
    # so the reader now sees EOF instead of blocking forever
    assert _call(machine, thread, NR.DUP2, rdi=plain, rsi=write_fd) == write_fd
    assert _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3000,
                 rdx=4) == 0


# -- signals --------------------------------------------------------------------


def _install_handler(machine, thread, signum, handler=0x400800, mask=0):
    machine.mem.write(0x5000, struct.pack("<QQ", handler, mask))
    assert _call(machine, thread, NR.RT_SIGACTION, rdi=signum,
                 rsi=0x5000) == 0


def test_sigaction_validates_signum_and_reads_back_old():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.RT_SIGACTION, rdi=0) == -EINVAL
    assert _call(machine, thread, NR.RT_SIGACTION, rdi=65) == -EINVAL
    assert _call(machine, thread, NR.RT_SIGACTION, rdi=SIGKILL) == -EINVAL
    _install_handler(machine, thread, SIGUSR1, handler=0x1234, mask=0x55)
    assert _call(machine, thread, NR.RT_SIGACTION, rdi=SIGUSR1,
                 rsi=0, rdx=0x5100) == 0
    assert struct.unpack("<QQ", machine.mem.read(0x5100, 16)) == (0x1234, 0x55)


def test_sigprocmask_block_unblock_setmask():
    machine, thread = _machine_with_thread()
    machine.mem.write(0x5000, struct.pack("<Q", 1 << (SIGUSR1 - 1)))
    assert _call(machine, thread, NR.RT_SIGPROCMASK, rdi=SIG_BLOCK,
                 rsi=0x5000, rdx=0x5100) == 0
    assert struct.unpack("<Q", machine.mem.read(0x5100, 8))[0] == 0
    assert thread.sigmask == 1 << (SIGUSR1 - 1)
    assert _call(machine, thread, NR.RT_SIGPROCMASK, rdi=SIG_UNBLOCK,
                 rsi=0x5000) == 0
    assert thread.sigmask == 0
    # SIGKILL can never be masked
    machine.mem.write(0x5000, struct.pack("<Q", MASK64))
    assert _call(machine, thread, NR.RT_SIGPROCMASK, rdi=SIG_SETMASK,
                 rsi=0x5000) == 0
    assert not thread.sigmask & (1 << (SIGKILL - 1))
    assert _call(machine, thread, NR.RT_SIGPROCMASK, rdi=7,
                 rsi=0x5000) == -EINVAL


def test_kill_wrong_pid_esrch_and_sig0_probe():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.KILL, rdi=4242, rsi=SIGUSR1) == -ESRCH
    assert _call(machine, thread, NR.KILL, rdi=machine.kernel.pid,
                 rsi=0) == 0
    assert machine.kernel.process_pending == 0
    assert _call(machine, thread, NR.TKILL, rdi=99, rsi=SIGUSR1) == -ESRCH
    assert _call(machine, thread, NR.TGKILL, rdi=1, rsi=thread.tid,
                 rdx=SIGUSR1) == -ESRCH


def test_signal_delivery_pushes_frame_and_sigreturn_restores():
    machine, thread = _machine_with_thread()
    _install_handler(machine, thread, SIGUSR1, handler=0x400800, mask=0x800)
    thread.regs.rip = 0x400100
    thread.regs.gpr[11] = 0xDEAD  # canary in a register kill() ignores
    assert _call(machine, thread, NR.KILL, rdi=machine.kernel.pid,
                 rsi=SIGUSR1) == 0
    assert machine.cpu.yield_flag  # raise ends the quantum promptly
    saved_rsp = thread.regs.gpr[4]
    machine.kernel.deliver_pending_signals()
    # redirected into the handler with rdi = signum
    assert thread.regs.rip == 0x400800
    assert thread.regs.gpr[7] == SIGUSR1
    frame_addr = thread.regs.gpr[4]
    assert frame_addr <= saved_rsp - RED_ZONE - SIGFRAME_SIZE
    assert frame_addr % 16 == 0
    # handler runs with the signal + act-mask blocked
    assert thread.sigmask & (1 << (SIGUSR1 - 1))
    assert thread.sigmask & 0x800
    # the frame holds the interrupted context
    values = struct.unpack("<%dQ" % SIGFRAME_QWORDS,
                           machine.mem.read(frame_addr, SIGFRAME_SIZE))
    assert values[11] == 0xDEAD         # pre-signal canary register
    assert values[16] == 0x400100       # pre-signal rip
    assert values[18] == 0              # pre-signal sigmask
    # sigreturn with rsp at the frame restores everything
    thread.regs.gpr[11] = 0
    result = _call(machine, thread, NR.RT_SIGRETURN)
    thread.regs.gpr[0] = result & MASK64
    assert thread.regs.rip == 0x400100
    assert thread.regs.gpr[11] == 0xDEAD
    assert thread.regs.gpr[4] == saved_rsp
    assert thread.sigmask == 0


def test_masked_signal_stays_pending_until_unblocked():
    machine, thread = _machine_with_thread()
    _install_handler(machine, thread, SIGUSR1)
    machine.mem.write(0x5000, struct.pack("<Q", 1 << (SIGUSR1 - 1)))
    _call(machine, thread, NR.RT_SIGPROCMASK, rdi=SIG_BLOCK, rsi=0x5000)
    _call(machine, thread, NR.KILL, rdi=machine.kernel.pid, rsi=SIGUSR1)
    rip_before = thread.regs.rip
    machine.kernel.deliver_pending_signals()
    assert thread.regs.rip == rip_before  # still parked: masked
    assert machine.kernel.process_pending & (1 << (SIGUSR1 - 1))
    machine.cpu.yield_flag = False
    _call(machine, thread, NR.RT_SIGPROCMASK, rdi=SIG_UNBLOCK, rsi=0x5000)
    assert machine.cpu.yield_flag  # unblocking demands prompt delivery
    machine.kernel.deliver_pending_signals()
    assert thread.regs.rip == 0x400800


def test_sig_ign_discards_and_sig_dfl_kills():
    machine, thread = _machine_with_thread()
    _install_handler(machine, thread, SIGUSR1, handler=SIG_IGN)
    _call(machine, thread, NR.KILL, rdi=machine.kernel.pid, rsi=SIGUSR1)
    machine.kernel.deliver_pending_signals()
    assert machine.exit_status is None
    assert machine.kernel.process_pending == 0
    _call(machine, thread, NR.KILL, rdi=machine.kernel.pid, rsi=SIGUSR2)
    machine.kernel.deliver_pending_signals()  # no handler: default kills
    assert machine.exit_status is not None
    assert machine.exit_status.kind == "signal"
    assert machine.exit_status.signal == SIGUSR2


def test_thread_directed_signal_prefers_unblocked_thread():
    machine, thread = _machine_with_thread()
    other = machine.create_thread()
    other.regs.gpr[4] = 0xE000
    _install_handler(machine, thread, SIGUSR1)
    # block SIGUSR1 in the first thread only; a process-directed signal
    # must land on the second
    thread.sigmask = 1 << (SIGUSR1 - 1)
    _call(machine, thread, NR.KILL, rdi=machine.kernel.pid, rsi=SIGUSR1)
    machine.kernel.deliver_pending_signals()
    assert other.regs.rip == 0x400800
    assert thread.regs.rip != 0x400800


def test_signal_interrupts_futex_wait_with_eintr():
    machine, thread = _machine_with_thread()
    _install_handler(machine, thread, SIGUSR1)
    machine.mem.write_u64(0x6000, 1)
    # FUTEX_WAIT on a matching value parks the thread
    assert _call(machine, thread, NR.FUTEX, rdi=0x6000, rsi=0, rdx=1) == 0
    assert thread.blocked and thread.futex_addr == 0x6000
    _call(machine, thread, NR.TKILL, rdi=thread.tid, rsi=SIGUSR1)
    machine.kernel.deliver_pending_signals()
    assert not thread.blocked and thread.futex_addr is None
    assert thread.regs.rip == 0x400800
    frame = machine.mem.read(thread.regs.gpr[4], SIGFRAME_SIZE)
    values = struct.unpack("<%dQ" % SIGFRAME_QWORDS, frame)
    assert values[0] == (-EINTR) & MASK64  # rax the handler returns into


def test_signal_interrupts_channel_wait_with_restart():
    machine, thread = _machine_with_thread()
    _install_handler(machine, thread, SIGUSR1)
    read_fd, _ = _pipe(machine, thread)
    thread.regs.rip = 0x400200  # as if just past the SYSCALL instruction
    result = _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3000,
                   rdx=4)
    assert thread.blocked and thread.wait_channel is not None
    assert result == NR.READ  # rewound: rax still holds the nr
    assert thread.regs.rip == 0x4001FF
    _call(machine, thread, NR.TKILL, rdi=thread.tid, rsi=SIGUSR1)
    machine.kernel.deliver_pending_signals()
    assert not thread.blocked and thread.wait_channel is None
    # the frame's saved rip is the rewound one: returning from the
    # handler transparently restarts the read (SA_RESTART)
    frame = machine.mem.read(thread.regs.gpr[4], SIGFRAME_SIZE)
    values = struct.unpack("<%dQ" % SIGFRAME_QWORDS, frame)
    assert values[16] == 0x4001FF


# -- pipes ----------------------------------------------------------------------


def test_pipe_write_read_roundtrip():
    machine, thread = _machine_with_thread()
    read_fd, write_fd = _pipe(machine, thread)
    machine.mem.write(0x3000, b"ping")
    assert _call(machine, thread, NR.WRITE, rdi=write_fd, rsi=0x3000,
                 rdx=4) == 4
    assert _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3100,
                 rdx=16) == 4
    assert machine.mem.read(0x3100, 4) == b"ping"


def test_pipe2_rejects_unknown_flags():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.PIPE2, rdi=0x2000,
                 rsi=0x7777777) == -EINVAL


def test_pipe_eof_after_all_write_ends_close():
    machine, thread = _machine_with_thread()
    read_fd, write_fd = _pipe(machine, thread)
    dup_write = _call(machine, thread, NR.DUP, rdi=write_fd)
    machine.mem.write(0x3000, b"x")
    _call(machine, thread, NR.WRITE, rdi=write_fd, rsi=0x3000, rdx=1)
    _call(machine, thread, NR.CLOSE, rdi=write_fd)
    # a dup'ed write end still holds the channel open
    assert _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3100,
                 rdx=4) == 1
    _call(machine, thread, NR.CLOSE, rdi=dup_write)
    assert _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3100,
                 rdx=4) == 0  # EOF, not a block


def test_pipe_epipe_after_read_end_closes():
    machine, thread = _machine_with_thread()
    read_fd, write_fd = _pipe(machine, thread)
    _call(machine, thread, NR.CLOSE, rdi=read_fd)
    machine.mem.write(0x3000, b"x")
    assert _call(machine, thread, NR.WRITE, rdi=write_fd, rsi=0x3000,
                 rdx=1) == -EPIPE


def test_pipe_nonblock_empty_read_eagain():
    machine, thread = _machine_with_thread()
    read_fd, _ = _pipe(machine, thread, flags=O_NONBLOCK)
    assert _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3000,
                 rdx=4) == -EAGAIN


def test_blocking_pipe_read_parks_and_wakes_on_write():
    machine, thread = _machine_with_thread()
    writer = machine.create_thread()
    read_fd, write_fd = _pipe(machine, thread)
    _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3000, rdx=4)
    assert thread.blocked
    machine.mem.write(0x3000, b"data")
    assert _call(machine, writer, NR.WRITE, rdi=write_fd, rsi=0x3000,
                 rdx=4) == 4
    assert not thread.blocked  # woken; will re-execute the rewound read


def test_pipe_write_blocks_when_full_and_respects_capacity():
    machine, thread = _machine_with_thread()
    read_fd, write_fd = _pipe(machine, thread)
    capacity = machine.kernel.channels[1].capacity
    machine.mem.map(0x20000000, capacity + PAGE_SIZE, PROT_RW)
    # a write larger than the buffer is short, filling it exactly
    assert _call(machine, thread, NR.WRITE, rdi=write_fd, rsi=0x20000000,
                 rdx=capacity + 100) == capacity
    _call(machine, thread, NR.WRITE, rdi=write_fd, rsi=0x20000000, rdx=1)
    assert thread.blocked  # full pipe parks the writer
    # draining wakes it
    reader = machine.create_thread()
    _call(machine, reader, NR.READ, rdi=read_fd, rsi=0x20000000,
          rdx=PAGE_SIZE)
    assert not thread.blocked


# -- sockets --------------------------------------------------------------------


def test_socketpair_duplex_roundtrip():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.SOCKETPAIR, rdi=1, rsi=1,
                 r10=0x2000) == 0
    fd0, fd1 = struct.unpack("<ii", machine.mem.read(0x2000, 8))
    machine.mem.write(0x3000, b"ab")
    assert _call(machine, thread, NR.WRITE, rdi=fd0, rsi=0x3000, rdx=2) == 2
    assert _call(machine, thread, NR.READ, rdi=fd1, rsi=0x3100, rdx=8) == 2
    assert machine.mem.read(0x3100, 2) == b"ab"
    machine.mem.write(0x3000, b"cd")
    assert _call(machine, thread, NR.WRITE, rdi=fd1, rsi=0x3000, rdx=2) == 2
    assert _call(machine, thread, NR.READ, rdi=fd0, rsi=0x3100, rdx=8) == 2
    assert machine.mem.read(0x3100, 2) == b"cd"


def _sockaddr_in(machine, addr, port):
    machine.mem.write(addr, struct.pack(">HH", 0x0002, port) + b"\x00" * 12)


def test_inet_listen_connect_accept_exchange():
    machine, thread = _machine_with_thread()
    server = _call(machine, thread, NR.SOCKET, rdi=2, rsi=1)
    _sockaddr_in(machine, 0x2000, 8080)
    assert _call(machine, thread, NR.BIND, rdi=server, rsi=0x2000) == 0
    assert _call(machine, thread, NR.LISTEN, rdi=server, rsi=4) == 0
    client = _call(machine, thread, NR.SOCKET, rdi=2, rsi=1)
    # reading an unconnected socket is ENOTCONN, not a hang
    assert _call(machine, thread, NR.READ, rdi=client, rsi=0x3000,
                 rdx=4) == -ENOTCONN
    assert _call(machine, thread, NR.CONNECT, rdi=client, rsi=0x2000) == 0
    conn = _call(machine, thread, NR.ACCEPT, rdi=server, rsi=0, rdx=0)
    assert conn >= 3
    machine.mem.write(0x3000, b"req")
    assert _call(machine, thread, NR.WRITE, rdi=client, rsi=0x3000,
                 rdx=3) == 3
    assert _call(machine, thread, NR.READ, rdi=conn, rsi=0x3100, rdx=8) == 3
    assert machine.mem.read(0x3100, 3) == b"req"
    machine.mem.write(0x3000, b"resp")
    assert _call(machine, thread, NR.WRITE, rdi=conn, rsi=0x3000, rdx=4) == 4
    assert _call(machine, thread, NR.READ, rdi=client, rsi=0x3100,
                 rdx=8) == 4


def test_connect_without_listener_refused_and_bind_conflicts():
    machine, thread = _machine_with_thread()
    client = _call(machine, thread, NR.SOCKET, rdi=2, rsi=1)
    _sockaddr_in(machine, 0x2000, 9999)
    assert _call(machine, thread, NR.CONNECT, rdi=client,
                 rsi=0x2000) == -ECONNREFUSED
    first = _call(machine, thread, NR.SOCKET, rdi=2, rsi=1)
    assert _call(machine, thread, NR.BIND, rdi=first, rsi=0x2000) == 0
    assert _call(machine, thread, NR.LISTEN, rdi=first, rsi=1) == 0
    second = _call(machine, thread, NR.SOCKET, rdi=2, rsi=1)
    assert _call(machine, thread, NR.BIND, rdi=second,
                 rsi=0x2000) == -EADDRINUSE


def test_accept_blocks_until_connect():
    machine, thread = _machine_with_thread()
    client_thread = machine.create_thread()
    server = _call(machine, thread, NR.SOCKET, rdi=2, rsi=1)
    _sockaddr_in(machine, 0x2000, 7000)
    _call(machine, thread, NR.BIND, rdi=server, rsi=0x2000)
    _call(machine, thread, NR.LISTEN, rdi=server, rsi=1)
    _call(machine, thread, NR.ACCEPT, rdi=server, rsi=0, rdx=0)
    assert thread.blocked  # nothing queued yet
    client = _call(machine, client_thread, NR.SOCKET, rdi=2, rsi=1)
    assert _call(machine, client_thread, NR.CONNECT, rdi=client,
                 rsi=0x2000) == 0
    assert not thread.blocked  # connect wakes the acceptor


# -- SysV shared memory ---------------------------------------------------------


def test_shm_attach_write_detach_reattach_persists():
    machine, thread = _machine_with_thread()
    shmid = _call(machine, thread, NR.SHMGET, rdi=0, rsi=64, rdx=0o1600)
    assert shmid >= 1
    base = _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=0, rdx=0)
    assert base > 0 and machine.mem.is_mapped(base)
    machine.mem.write(base, b"shared!!")
    assert _call(machine, thread, NR.SHMDT, rdi=base) == 0
    assert not machine.mem.is_mapped(base)
    again = _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=0, rdx=0)
    assert machine.mem.read(again, 8) == b"shared!!"


def test_shmget_key_lookup_and_size_checks():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.SHMGET, rdi=5, rsi=0,
                 rdx=0o1600) == -EINVAL  # zero size
    assert _call(machine, thread, NR.SHMGET, rdi=5, rsi=64,
                 rdx=0) == -2  # ENOENT without IPC_CREAT
    shmid = _call(machine, thread, NR.SHMGET, rdi=5, rsi=64, rdx=0o1600)
    assert _call(machine, thread, NR.SHMGET, rdi=5, rsi=32, rdx=0) == shmid
    assert _call(machine, thread, NR.SHMGET, rdi=5, rsi=4096,
                 rdx=0) == -EINVAL  # bigger than the segment


def test_shmat_occupied_range_needs_shm_remap():
    machine, thread = _machine_with_thread()
    shmid = _call(machine, thread, NR.SHMGET, rdi=0, rsi=32, rdx=0o1600)
    target = 0x60000000
    machine.mem.map(target, PAGE_SIZE, PROT_RW)
    machine.mem.write(target, b"OLDOLD")
    assert _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=target,
                 rdx=0) == -EINVAL
    assert _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=target,
                 rdx=SHM_REMAP) == target
    assert machine.mem.read(target, 6) == b"\x00" * 6  # replaced
    assert _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=0,
                 rdx=0) == -EINVAL  # single-attach model
    assert _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=0x123,
                 rdx=0) == -EINVAL  # unaligned explicit address


def test_shmctl_rmid_removes_segment():
    machine, thread = _machine_with_thread()
    shmid = _call(machine, thread, NR.SHMGET, rdi=0, rsi=32, rdx=0o1600)
    assert _call(machine, thread, NR.SHMCTL, rdi=shmid, rsi=0) == 0
    assert shmid not in machine.kernel.shm_segments
    assert _call(machine, thread, NR.SHMAT, rdi=shmid, rsi=0,
                 rdx=0) == -EINVAL
    # ids are never reused: the next segment gets a fresh one
    assert _call(machine, thread, NR.SHMGET, rdi=0, rsi=32,
                 rdx=0o1600) == shmid + 1


# -- record/replay tagging ------------------------------------------------------


def test_kernel_state_syscalls_flagged_native():
    machine, thread = _machine_with_thread()
    _call(machine, thread, NR.PIPE, rdi=0x2000)
    assert machine.kernel.last_native
    read_fd, _ = struct.unpack("<ii", machine.mem.read(0x2000, 8))
    _call(machine, thread, NR.GETPID)
    assert not machine.kernel.last_native
    # channel-endpoint I/O must re-execute natively under replay
    _call(machine, thread, NR.READ, rdi=read_fd, rsi=0x3000, rdx=0)
    assert machine.kernel.last_native
    machine.kernel.fs.create("/f", b"x")
    fd = _open(machine, thread, "/f")
    _call(machine, thread, NR.READ, rdi=fd, rsi=0x3000, rdx=1)
    assert not machine.kernel.last_native  # plain file reads replay from log
