"""Superblock translation cache: equivalence, invalidation, SMC, PMU.

The fast dispatch path must be architecturally bit-identical to the
per-instruction slow path (which is the reference interpreter), and the
page-granular invalidation protocol must keep cached decodes coherent
with guest-visible memory across self-modifying stores and address-range
reuse through mmap/munmap/mprotect.
"""

from repro.isa.instructions import Op, instruction_size
from repro.machine import Machine, load_elf
from repro.machine.cpu import DISPATCH_TIERS, set_default_dispatch
from repro.machine.memory import PROT_READ
from repro.machine.tool import Tool
from repro.observe import hooks
from repro.simpoint.bbv import _BlockCounter
from repro.snapshot import capture, restore, snapshot_digest
from repro.workloads import build_executable, run_program


RACY_SOURCE = """
    _start:
        mov rax, 56
        mov rdi, 0x100
        mov rsi, stack_top
        mov rdx, child
        syscall
        mov rcx, 300
    bump:
        ld rbx, [counter]
        add rbx, 1
        st [counter], rbx
        sub rcx, 1
        cmp rcx, 0
        jnz bump
    wait:
        ld rbx, [done_flag]
        cmp rbx, 1
        jnz wait
        ld rdi, [counter]
        and rdi, 0xff
        mov rax, 231
        syscall
    child:
        mov rcx, 300
    bump2:
        ld rbx, [counter]
        add rbx, 1
        st [counter], rbx
        sub rcx, 1
        cmp rcx, 0
        jnz bump2
        mov rbx, 1
        st [done_flag], rbx
        mov rax, 60
        mov rdi, 0
        syscall
"""

RACY_DATA = """
    counter:
        .quad 0
    done_flag:
        .quad 0
    stack:
        .zero 2048
    stack_top:
        .quad 0
"""


def _run(image, seed=0, fast=True, max_instructions=None, tier=None):
    machine = Machine(seed=seed)
    load_elf(machine, image)
    if tier is not None:
        machine.cpu.set_dispatch(tier)
    else:
        machine.cpu.fast_dispatch = fast
    status = machine.run(max_instructions=max_instructions)
    return machine, status


def _arch_state(machine, status):
    return (
        status.kind, status.code, status.signal,
        machine.stdout(),
        tuple(sorted(
            (t.tid, t.icount, t.cycles, t.branches, t.llc_misses)
            for t in machine.threads.values())),
    )


# -- fast path == slow path ---------------------------------------------------


def test_fast_and_slow_paths_are_bit_identical_multithreaded():
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    for seed in range(6):
        fast = _arch_state(*_run(image, seed=seed, fast=True))
        slow = _arch_state(*_run(image, seed=seed, fast=False))
        assert fast == slow


def test_fast_and_slow_paths_agree_on_stdout_and_files():
    image = build_executable(
        """
        _start:
            mov rcx, 5
        again:
            mov rax, 1
            mov rdi, 1
            mov rsi, msg
            mov rdx, 6
            syscall
            sub rcx, 1
            cmp rcx, 0
            jnz again
            mov rax, 231
            mov rdi, 0
            syscall
        msg:
            .ascii "hello\\n"
        """
    )
    fast = _arch_state(*_run(image, fast=True))
    slow = _arch_state(*_run(image, fast=False))
    assert fast == slow
    assert fast[3] == b"hello\n" * 5


def test_bbv_vectors_identical_on_both_paths():
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)

    def profile(force_slow):
        machine = Machine(seed=3)
        load_elf(machine, image)
        counter = _BlockCounter()
        machine.attach(counter)
        if force_slow:
            machine.cpu.fast_dispatch = False
        vectors = []
        index = 0
        while True:
            status = machine.run(max_instructions=(index + 1) * 500)
            vectors.append(counter.take(machine))
            index += 1
            if status.kind != "stopped":
                break
        return vectors

    assert profile(False) == profile(True)


def test_block_counter_matches_per_instruction_reference():
    """The block-only delta counter must reproduce the vectors of the
    classic per-instruction counter (instructions attributed to the most
    recently entered block of the same thread)."""

    class _Reference(Tool):
        wants_instructions = True
        wants_blocks = True

        def __init__(self):
            self.current = {}
            self._open = {}

        def on_basic_block(self, machine, thread, pc):
            self._open[thread.tid] = pc

        def on_instruction(self, machine, thread, pc, insn):
            block = self._open.get(thread.tid)
            if block is not None:
                self.current[block] = self.current.get(block, 0) + 1

        def take(self):
            vector = self.current
            self.current = {}
            return vector

    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)

    def drive(counter, take):
        machine = Machine(seed=1)
        load_elf(machine, image)
        machine.attach(counter)
        vectors = []
        index = 0
        while True:
            status = machine.run(max_instructions=(index + 1) * 400)
            vectors.append(take(machine))
            index += 1
            if status.kind != "stopped":
                break
        return vectors

    reference = _Reference()
    expected = drive(reference, lambda machine: reference.take())
    counter = _BlockCounter()
    got = drive(counter, counter.take)
    assert got == expected


# -- PMU exactness ------------------------------------------------------------


def test_pmu_trap_mid_block_fires_at_exact_icount():
    """A trap armed to land mid-way through a long straight-line block
    must redirect at the exact icount (paper: region boundaries are
    icount-addressed; an off-by-one shifts every Fig 9 region)."""
    threshold = 37
    image = build_executable(
        """
        _start:
            mov rax, 298
            mov rdi, 0
            mov rsi, %d
            mov rdx, handler
            syscall
        spin:
            %s
            jmp spin
        handler:
            mov rax, 334        ; perf_read(INSTRUCTIONS)
            mov rdi, 0
            syscall
            mov rdi, rax
            and rdi, 0xff
            mov rax, 231
            syscall
        """ % (threshold, "\n            ".join(["add rbx, 1"] * 16))
    )
    # perf_event_open handles with icount=4, arming trap_at = 5 + threshold;
    # the handler's perf_read executes 2 instructions after redirect.
    expected_read = 5 + threshold + 2
    for tier in DISPATCH_TIERS:
        machine, status = _run(image, tier=tier)
        assert status.kind == "exit", tier
        assert status.code == expected_read & 0xFF, tier
        assert machine.threads[0].icount == expected_read + 5, tier


def test_pmu_counting_trap_identical_on_both_paths():
    image = build_executable(
        """
        _start:
            mov rax, 298        ; perf_event_open(INSTR, 50, no handler)
            mov rdi, 0
            mov rsi, 50
            mov rdx, 0
            syscall
        forever:
            jmp forever
        """
    )
    fast = _arch_state(*_run(image, fast=True))
    slow = _arch_state(*_run(image, fast=False))
    assert fast == slow


# -- self-modifying code ------------------------------------------------------


def test_host_write_to_code_page_invalidates_cached_decode():
    """Patching an instruction in place through AddressSpace.write must
    be visible to the next fetch (the latent SMC staleness bug)."""
    image = build_executable(
        """
        _start:
        patch_me:
            mov rbx, 5
            cmp rbx, 9
            jnz patch_me
            mov rax, 231
            mov rdi, rbx
            syscall
        """
    )
    machine = Machine(seed=0)
    loaded = load_elf(machine, image)
    status = machine.run(max_instructions=1000)
    assert status.kind == "stopped"  # spinning on the unpatched immediate
    invalidations_before = machine.cpu.block_invalidations
    # Patch the MOV_RI immediate (low byte at opcode+reg offset) in the
    # read-only executable .text, as a debugger would.
    machine.mem.write(loaded.symbols["patch_me"] + 2, b"\x09",
                      access=PROT_READ)
    assert machine.cpu.block_invalidations > invalidations_before
    status = machine.run(max_instructions=200_000)
    assert status.kind == "exit"
    assert status.code == 9


def test_guest_store_patches_code_in_its_own_block():
    """A store that rewrites an instruction *ahead of itself* in the same
    straight-line run must take effect before that instruction executes,
    on both dispatch paths, and on repeated executions."""
    patch_offset = instruction_size(Op.ST1) + 2  # imm low byte of the MOV
    image = build_executable(
        """
        _start:
            mov rax, 9          ; mmap(0, 4096, RWX, ANON, -1, 0)
            mov rdi, 0
            mov rsi, 4096
            mov rdx, 7
            mov r10, 0x22
            mov r8, -1
            mov r9, 0
            syscall
            mov r12, rax
            mov rsi, func
            mov rdi, r12
            mov rcx, func_end
            sub rcx, rsi
        copy:
            ld1 rbx, [rsi]
            st1 [rdi], rbx
            add rsi, 1
            add rdi, 1
            sub rcx, 1
            cmp rcx, 0
            jnz copy
            mov r14, r12
            add r14, %d
            mov r15, 33
            call r12            ; patches itself, returns rbx = 33
            mov r13, rbx
            mov r15, 44
            call r12            ; stale decode would return 33 again
            cmp rbx, r13
            jz stale
            mov rdi, rbx
            mov rax, 231
            syscall
        stale:
            mov rax, 231
            mov rdi, 255
            syscall
        func:
            st1 [r14], r15
            mov rbx, 11
            ret
        func_end:
            nop
        """ % patch_offset
    )
    for tier in DISPATCH_TIERS:
        _, status = _run(image, tier=tier)
        assert status.kind == "exit", tier
        assert status.code == 44, tier


def test_block_cache_invalidation_across_mmap_reuse():
    """mmap -> execute -> munmap -> mmap the same range -> execute new
    code; then mprotect + patch + mprotect back.  Stale blocks at the
    reused entry PC would replay the old code."""
    image = build_executable(
        """
        _start:
            mov rax, 9          ; mmap(0x30000000, RWX, ANON|FIXED)
            mov rdi, 0x30000000
            mov rsi, 4096
            mov rdx, 7
            mov r10, 0x32
            mov r8, -1
            mov r9, 0
            syscall
            mov r12, rax
            mov rsi, funca
            mov rdi, r12
            mov rcx, funca_end
            sub rcx, rsi
        copya:
            ld1 rbx, [rsi]
            st1 [rdi], rbx
            add rsi, 1
            add rdi, 1
            sub rcx, 1
            cmp rcx, 0
            jnz copya
            call r12            ; rbx = 1
            mov r13, rbx
            mov rax, 11         ; munmap(r12, 4096)
            mov rdi, r12
            mov rsi, 4096
            syscall
            mov rax, 9          ; mmap the same range again
            mov rdi, 0x30000000
            mov rsi, 4096
            mov rdx, 7
            mov r10, 0x32
            mov r8, -1
            mov r9, 0
            syscall
            mov rsi, funcb
            mov rdi, r12
            mov rcx, funcb_end
            sub rcx, rsi
        copyb:
            ld1 rbx, [rsi]
            st1 [rdi], rbx
            add rsi, 1
            add rdi, 1
            sub rcx, 1
            cmp rcx, 0
            jnz copyb
            call r12            ; rbx = 2
            add r13, rbx
            mov rax, 10         ; mprotect(r12, 4096, RW)
            mov rdi, r12
            mov rsi, 4096
            mov rdx, 3
            syscall
            mov rbx, 4          ; patch funcb's immediate to 4
            mov r14, r12
            add r14, 2
            st1 [r14], rbx
            mov rax, 10         ; mprotect(r12, 4096, RWX)
            mov rdi, r12
            mov rsi, 4096
            mov rdx, 7
            syscall
            call r12            ; rbx = 4
            add r13, rbx
            mov rax, 231
            mov rdi, r13        ; 1 + 2 + 4
            syscall
        funca:
            mov rbx, 1
            ret
        funca_end:
        funcb:
            mov rbx, 2
            ret
        funcb_end:
            nop
        """
    )
    for tier in DISPATCH_TIERS:
        machine, status = _run(image, tier=tier)
        assert status.kind == "exit", tier
        assert status.code == 7, tier
        if tier != "slow":
            assert machine.cpu.block_invalidations > 0, tier


# -- dispatch-path flipping ---------------------------------------------------


def test_attach_detach_flips_dispatch_path_mid_run():
    class _Counter(Tool):
        wants_instructions = True

        def __init__(self):
            self.count = 0

        def on_instruction(self, machine, thread, pc, insn):
            self.count += 1

    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    machine = Machine(seed=2)
    load_elf(machine, image)
    assert machine.cpu.fast_dispatch is True
    machine.run(max_instructions=500)
    assert machine.executed_total == 500

    tool = _Counter()
    machine.attach(tool)
    assert machine.cpu.fast_dispatch is False
    machine.run(max_instructions=1100)
    assert tool.count == 600  # every instruction of the slow window

    machine.detach(tool)
    assert machine.cpu.fast_dispatch is True
    status = machine.run()
    assert tool.count == 600  # fast path never calls on_instruction

    # Budget stops clamp quanta, so the interleaving depends on the stop
    # pattern; replaying the same stops on a single dispatch path must
    # produce the same architectural state as the flipping run.
    def replay(fast):
        reference = Machine(seed=2)
        load_elf(reference, image)
        reference.cpu.fast_dispatch = fast
        reference.run(max_instructions=500)
        reference.run(max_instructions=1100)
        return _arch_state(reference, reference.run())

    assert _arch_state(machine, status) == replay(True) == replay(False)


def test_schedule_trace_accounts_partial_quanta():
    """Recorded slices must sum to the executed icount even when threads
    exit or redirect mid-quantum (replay alignment depends on it)."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    for fast in (True, False):
        machine = Machine(seed=4)
        load_elf(machine, image)
        machine.cpu.fast_dispatch = fast
        machine.scheduler.record = True
        status = machine.run()
        assert status.kind == "exit"
        assert sum(s.quantum for s in machine.scheduler.trace) \
            == machine.executed_total
        assert machine.executed_total == machine.total_icount()


# -- telemetry ----------------------------------------------------------------


def test_block_cache_metrics_are_emitted():
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    with hooks.observed() as obs:
        machine, status = _run(image)
    assert status.kind == "exit"
    counters = obs.metrics.snapshot()["counters"]
    assert counters["cpu.block_cache.hits"] == machine.cpu.block_hits
    assert counters["cpu.block_cache.misses"] == machine.cpu.block_misses
    assert machine.cpu.block_hits > machine.cpu.block_misses
    histograms = obs.metrics.snapshot()["histograms"]
    assert histograms["cpu.block_cache.block_length"]["count"] \
        == machine.cpu.block_misses


def test_fast_forward_runs_without_instruction_tools():
    """Plain execution (the logger's fast-forward substrate) populates
    and reuses the block cache."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    machine, _, _ = run_program(image)
    assert machine.cpu.block_hits > 0
    assert machine.cpu.fast_dispatch is True


# -- dispatch tiers: chaining + threaded-code compilation ---------------------


def _chain_edges_target_live_blocks(cpu):
    """No surviving chain edge may point outside ``block_cache``:
    chained execution follows edges without consulting the cache, so a
    stale edge would execute dead code."""
    live = {id(block) for block in cpu.block_cache.values()}
    for block in cpu.block_cache.values():
        for edge in (block.chain_next, block.chain_taken,
                     block.chain_not_taken):
            if edge is not None and id(edge) not in live:
                return False
    return True


def test_all_dispatch_tiers_bit_identical_racy_mt():
    """Every tier — superblocks, chained superblocks, threaded-code
    compilation — must retire the identical architectural state on a
    racy multi-threaded workload, across scheduler seeds."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    for seed in range(4):
        reference = None
        for tier in DISPATCH_TIERS:
            machine, status = _run(image, seed=seed, tier=tier)
            state = _arch_state(machine, status)
            if reference is None:
                reference = state
            else:
                assert state == reference, (tier, seed)
            if seed == 0 and tier == "compiled":
                # The fast tiers must actually engage, not silently
                # fall back to per-block dispatch.
                assert machine.cpu.compiled_calls > 0
                assert machine.cpu.chain_hits > 0
                assert machine.cpu.compiled_blocks > 0


def test_stepped_run_matches_straight_run_per_tier():
    """Budget stops land mid-chain and mid-compiled-block (quantum
    spills); a stepped run must be indistinguishable from a straight
    one on every tier."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    for tier in DISPATCH_TIERS:
        straight, done = _run(image, seed=5, tier=tier)
        stepped = Machine(seed=5)
        load_elf(stepped, image)
        stepped.cpu.set_dispatch(tier)
        budget = 700
        while True:
            status = stepped.run(max_instructions=budget)
            if status.kind != "stopped":
                break
            budget += 700
        assert _arch_state(stepped, status) \
            == _arch_state(straight, done), tier


def test_page_invalidation_severs_chain_edges():
    """Dropping one code page mid-run must leave the chain graph
    consistent (no edge into a dead block) and not perturb execution."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    machine = Machine(seed=0)
    load_elf(machine, image)
    machine.cpu.set_dispatch("chain")
    assert machine.run(max_instructions=2000).kind == "stopped"
    cpu = machine.cpu
    assert cpu.chain_hits > 0
    page = next(iter(cpu._block_index))
    dropped = cpu.block_invalidations
    cpu._invalidate_code_page(page)
    assert cpu.block_invalidations > dropped
    assert page not in cpu._block_index
    assert _chain_edges_target_live_blocks(cpu)
    status = machine.run()

    slow = Machine(seed=0)
    load_elf(slow, image)
    slow.cpu.set_dispatch("slow")
    assert slow.run(max_instructions=2000).kind == "stopped"
    assert _arch_state(machine, status) == _arch_state(slow, slow.run())


def test_block_cache_lru_eviction_under_tiny_cap():
    """Past the cap the coldest blocks are evicted; eviction severs
    their inbound chain edges and never changes architectural results."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    machine = Machine(seed=1)
    load_elf(machine, image)
    machine.cpu.set_dispatch("compiled")
    machine.cpu.block_cache_limit = 4
    status = machine.run()
    cpu = machine.cpu
    assert cpu.block_evictions > 0
    assert len(cpu.block_cache) <= 4
    assert _chain_edges_target_live_blocks(cpu)
    assert _arch_state(machine, status) \
        == _arch_state(*_run(image, seed=1, tier="slow"))


def test_self_loop_blocks_compile_to_spinning_functions():
    """A block whose taken edge targets its own entry compiles to a
    generated function that spins internally; quantum spills run the
    compiled partial variant.  Both must stay bit-identical to the
    per-instruction loop."""
    image = build_executable(
        """
        _start:
            mov rcx, 500
        again:
            add rbx, 3
            sub rcx, 1
            cmp rcx, 0
            jnz again
            mov rdi, rbx
            and rdi, 0xff
            mov rax, 231
            syscall
        """
    )
    machine, status = _run(image, tier="compiled")
    assert status.kind == "exit"
    cpu = machine.cpu
    assert cpu.compiled_calls > 0
    functions = [fn for fn in cpu._compiler.cache.values()
                 if fn is not None]
    assert any(getattr(fn, "__px_loop__", False) for fn in functions)
    assert any(getattr(fn, "__px_part__", None) is not None
               for fn in functions)
    assert _arch_state(machine, status) == _arch_state(*_run(image,
                                                             tier="slow"))


def test_snapshot_mid_chained_execution_round_trips():
    """Capturing mid-chained-execution drops derived state (block and
    compiled caches), round-trips digest-identically, and the resumed
    run finishes bit-identically to a straight run."""
    image = build_executable(RACY_SOURCE, data_source=RACY_DATA)
    previous = set_default_dispatch("compiled")
    try:
        straight = Machine(seed=3)
        load_elf(straight, image)
        done = straight.run()
        assert done.kind == "exit"

        interrupted = Machine(seed=3)
        load_elf(interrupted, image)
        assert interrupted.run(max_instructions=1500).kind == "stopped"
        assert interrupted.cpu.chain_hits > 0
        first = capture(interrupted)
        resumed = restore(first)
        # Derived state never travels: the resumed machine re-decodes
        # and re-compiles from guest memory.
        assert not resumed.cpu.block_cache
        assert snapshot_digest(capture(resumed)) == snapshot_digest(first)
        status = resumed.run()
        assert status.kind == "exit"
        assert status.code == done.code
        assert resumed.mem.snapshot() == straight.mem.snapshot()
        assert _arch_state(resumed, status)[4] \
            == _arch_state(straight, done)[4]
    finally:
        set_default_dispatch(previous)
