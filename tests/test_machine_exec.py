"""End-to-end tests of the machine: load, run, syscalls, threads, faults."""

from repro.machine import Machine, load_elf
from repro.machine.vfs import FileSystem
from repro.workloads import build_executable, run_program


def test_exit_code_propagates():
    image = build_executable(
        """
        _start:
            mov rax, 231
            mov rdi, 42
            syscall
        """
    )
    _, status, _ = run_program(image)
    assert status.kind == "exit"
    assert status.code == 42
    assert status.graceful


def test_arithmetic_loop_result():
    image = build_executable(
        """
        _start:
            mov rbx, 0
            mov rcx, 100
        loop:
            add rbx, rcx
            sub rcx, 1
            cmp rcx, 0
            jnz loop
            mov rax, 231
            mov rdi, rbx        ; 5050 & 0xff = 186
            syscall
        """
    )
    _, status, _ = run_program(image)
    assert status.code == 5050 & 0xFF


def test_write_to_stdout():
    image = build_executable(
        """
        _start:
            mov rax, 1
            mov rdi, 1
            mov rsi, msg
            mov rdx, 6
            syscall
            mov rax, 231
            mov rdi, 0
            syscall
        msg:
            .ascii "hello\\n"
        """
    )
    machine, status, _ = run_program(image)
    assert machine.stdout() == b"hello\n"
    assert status.code == 0


def test_open_read_file():
    fs = FileSystem()
    fs.create("/input.dat", b"ABCDEFGH")
    image = build_executable(
        """
        _start:
            mov rax, 2          ; open("/input.dat", O_RDONLY)
            mov rdi, path
            mov rsi, 0
            syscall
            mov rdi, rax        ; fd
            mov rax, 0          ; read(fd, buf, 8)
            mov rsi, buf
            mov rdx, 8
            syscall
            mov rax, 1          ; write(1, buf, 8)
            mov rdi, 1
            mov rsi, buf
            mov rdx, 8
            syscall
            mov rax, 231
            mov rdi, 0
            syscall
        path:
            .asciz "/input.dat"
        """,
        data_source="buf:\n.zero 16\n",
    )
    machine, status, _ = run_program(image, fs=fs)
    assert machine.stdout() == b"ABCDEFGH"


def test_read_from_missing_fd_returns_error():
    image = build_executable(
        """
        _start:
            mov rax, 0          ; read(9, buf, 8) -> -EBADF
            mov rdi, 9
            mov rsi, buf
            mov rdx, 8
            syscall
            mov rdi, 0
            cmp rax, 0
            jge done
            mov rdi, 1          ; exit 1 when read failed
        done:
            mov rax, 231
            syscall
        buf:
            .zero 8
        """
    )
    _, status, _ = run_program(image)
    assert status.code == 1


def test_unmapped_execute_is_sigsegv():
    image = build_executable(
        """
        _start:
            mov rax, 0x12345000
            jmp rax
        """
    )
    _, status, _ = run_program(image)
    assert status.kind == "signal"
    assert status.signal == 11


def test_unmapped_data_access_is_sigsegv():
    image = build_executable(
        """
        _start:
            mov rax, 0x77777000
            ld rbx, [rax]
        """
    )
    _, status, _ = run_program(image)
    assert status.kind == "signal"
    assert status.signal == 11
    assert status.fault_address == 0x77777000


def test_divide_by_zero_is_sigfpe():
    image = build_executable(
        """
        _start:
            mov rax, 10
            mov rbx, 0
            div rax, rbx
        """
    )
    _, status, _ = run_program(image)
    assert status.kind == "signal"
    assert status.signal == 8


def test_executing_data_is_a_fault():
    image = build_executable(
        """
        _start:
            mov rax, garbage
            jmp rax
        garbage:
            .byte 0xff, 0xff, 0xff
        """
    )
    _, status, _ = run_program(image)
    assert status.kind == "signal"
    assert status.signal in (4, 11)


def test_brk_grows_heap():
    image = build_executable(
        """
        _start:
            mov rax, 12         ; brk(0) -> current
            mov rdi, 0
            syscall
            mov rbx, rax
            add rbx, 8192
            mov rax, 12         ; brk(current + 8192)
            mov rdi, rbx
            syscall
            sub rbx, 16
            st [rbx], rax       ; touch new heap memory
            mov rax, 231
            mov rdi, 0
            syscall
        """
    )
    _, status, _ = run_program(image)
    assert status.code == 0


def test_mmap_munmap_cycle():
    image = build_executable(
        """
        _start:
            mov rax, 9          ; mmap(0, 8192, RW, ANON, -1, 0)
            mov rdi, 0
            mov rsi, 8192
            mov rdx, 3
            mov r10, 0x22
            mov r8, -1
            mov r9, 0
            syscall
            mov rbx, rax
            mov rcx, 0xdead
            st [rbx+64], rcx
            ld rdx, [rbx+64]
            mov rax, 11         ; munmap
            mov rdi, rbx
            mov rsi, 8192
            syscall
            mov rax, 231
            mov rdi, 0
            cmp rdx, 0xdead
            jz ok
            mov rdi, 1
        ok:
            syscall
        """
    )
    _, status, _ = run_program(image)
    assert status.code == 0


def test_clone_creates_running_thread():
    image = build_executable(
        """
        _start:
            mov rax, 56             ; clone(flags, stack, fn)
            mov rdi, 0x100          ; CLONE_VM
            mov rsi, child_stack_top
            mov rdx, child_fn
            syscall
        wait:
            ld rbx, [flag]
            cmp rbx, 1
            jnz wait
            mov rax, 231
            mov rdi, 0
            syscall
        child_fn:
            mov rcx, 1
            st [flag], rcx
            mov rax, 60             ; exit(0) — thread exit
            mov rdi, 0
            syscall
        """,
        data_source="""
        flag:
            .quad 0
        child_stack:
            .zero 4096
        child_stack_top:
            .quad 0
        """,
    )
    machine, status, _ = run_program(image)
    assert status.code == 0
    assert len(machine.threads) == 2


def test_gettimeofday_writes_timeval():
    image = build_executable(
        """
        _start:
            mov rax, 96
            mov rdi, tv
            mov rsi, 0
            syscall
            ld rbx, [tv]        ; seconds
            mov rax, 231
            mov rdi, 0
            cmp rbx, 0
            jg done
            mov rdi, 1
        done:
            syscall
        """,
        data_source="tv:\n.zero 16\n",
    )
    _, status, _ = run_program(image)
    assert status.code == 0


def test_futex_wait_wake():
    image = build_executable(
        """
        _start:
            mov rax, 56
            mov rdi, 0x100
            mov rsi, stack_top
            mov rdx, waker
            syscall
            mov rax, 202            ; futex(futex_word, WAIT, 0)
            mov rdi, futex_word
            mov rsi, 0
            mov rdx, 0
            syscall
            mov rax, 231            ; reached after wake
            mov rdi, 7
            syscall
        waker:
            mov rcx, 500
        spin:
            sub rcx, 1
            cmp rcx, 0
            jnz spin
            mov rcx, 1
            st4 [futex_word], rcx
            mov rax, 202            ; futex(futex_word, WAKE, 1)
            mov rdi, futex_word
            mov rsi, 1
            mov rdx, 1
            syscall
            mov rax, 60
            mov rdi, 0
            syscall
        """,
        data_source="""
        futex_word:
            .quad 0
        stack:
            .zero 2048
        stack_top:
            .quad 0
        """,
    )
    _, status, _ = run_program(image)
    assert status.kind == "exit"
    assert status.code == 7


def test_scheduler_seed_changes_interleaving():
    """Two seeds produce different instruction interleavings for a racy
    increment loop — the substrate of ELFie non-determinism."""
    source = """
        _start:
            mov rax, 56
            mov rdi, 0x100
            mov rsi, stack_top
            mov rdx, child
            syscall
            mov rcx, 400
        bump:
            ld rbx, [counter]
            add rbx, 1
            st [counter], rbx
            sub rcx, 1
            cmp rcx, 0
            jnz bump
        wait:
            ld rbx, [done_flag]
            cmp rbx, 1
            jnz wait
            ld rdi, [counter]
            and rdi, 0xff
            mov rax, 231
            syscall
        child:
            mov rcx, 400
        bump2:
            ld rbx, [counter]
            add rbx, 1
            st [counter], rbx
            sub rcx, 1
            cmp rcx, 0
            jnz bump2
            mov rbx, 1
            st [done_flag], rbx
            mov rax, 60
            mov rdi, 0
            syscall
    """
    data = """
        counter:
            .quad 0
        done_flag:
            .quad 0
        stack:
            .zero 2048
        stack_top:
            .quad 0
    """
    image = build_executable(source, data_source=data)
    results = set()
    for seed in range(6):
        _, status, _ = run_program(image, seed=seed)
        results.add(status.code)
    # lost updates vary with the interleaving
    assert len(results) > 1


def test_max_instructions_stops_run():
    image = build_executable(
        """
        _start:
            jmp _start
        """
    )
    machine, status, _ = run_program(image, max_instructions=1000)
    assert status.kind == "stopped"
    assert machine.total_icount() <= 1100


def test_pmu_armed_trap_without_handler_exits_thread():
    image = build_executable(
        """
        _start:
            mov rax, 298        ; perf_event_open(INSTR, 50, no handler)
            mov rdi, 0
            mov rsi, 50
            mov rdx, 0
            syscall
        forever:
            jmp forever
        """
    )
    machine, status, _ = run_program(image)
    assert status.kind == "exit"
    main = machine.threads[0]
    assert 50 <= main.icount <= 60


def test_pmu_handler_redirect_runs_callback():
    image = build_executable(
        """
        _start:
            mov rax, 298
            mov rdi, 0
            mov rsi, 40
            mov rdx, handler
            syscall
        forever:
            jmp forever
        handler:
            mov rax, 1          ; write(1, "done", 4)
            mov rdi, 1
            mov rsi, msg
            mov rdx, 4
            syscall
            mov rax, 231
            mov rdi, 5
            syscall
        msg:
            .ascii "done"
        """
    )
    machine, status, _ = run_program(image)
    assert status.code == 5
    assert machine.stdout() == b"done"


def test_perf_read_counts_instructions():
    image = build_executable(
        """
        _start:
            mov rcx, 100
        loop:
            sub rcx, 1
            cmp rcx, 0
            jnz loop
            mov rax, 334        ; perf_read(INSTRUCTIONS)
            mov rdi, 0
            syscall
            mov rdi, rax
            and rdi, 0xff
            mov rax, 231
            syscall
        """
    )
    machine, status, _ = run_program(image)
    main = machine.threads[0]
    # exit code is the (truncated) icount read just before exit
    assert status.code == (main.icount - 5) & 0xFF


def test_stack_has_argv_and_envp():
    image = build_executable(
        """
        _start:
            ld rbx, [rsp]       ; argc
            mov rax, 231
            mov rdi, rbx
            syscall
        """
    )
    _, status, _ = run_program(image, argv=["prog", "arg1", "arg2"])
    assert status.code == 3


def test_symbols_in_loaded_image():
    image = build_executable(
        """
        _start:
            mov rax, 231
            mov rdi, 0
            syscall
        helper:
            nop
        """
    )
    machine = Machine(seed=0)
    loaded = load_elf(machine, image)
    assert "helper" in loaded.symbols
    assert loaded.symbols["_start"] == loaded.entry
