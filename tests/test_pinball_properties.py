"""Property-based tests on pinball serialization and core invariants."""


import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.isa.registers import Flags, RegisterFile
from repro.machine.memory import PAGE_SIZE
from repro.machine.scheduler import ScheduleSlice
from repro.pinplay.pinball import Pinball, SyscallRecord, ThreadRecord
from repro.pinplay.regions import RegionSpec


@st.composite
def register_files(draw):
    regs = RegisterFile(
        gpr=[draw(st.integers(min_value=0, max_value=2**64 - 1))
             for _ in range(16)],
        rip=draw(st.integers(min_value=0, max_value=2**48)),
        flags=Flags(zf=draw(st.booleans()), sf=draw(st.booleans()),
                    cf=draw(st.booleans()), of=draw(st.booleans())),
        fs_base=draw(st.integers(min_value=0, max_value=2**48)),
        gs_base=draw(st.integers(min_value=0, max_value=2**48)),
        xmm=[draw(st.floats(allow_nan=False, allow_infinity=False))
             for _ in range(16)],
    )
    return regs


@st.composite
def syscall_records(draw):
    return SyscallRecord(
        tid=draw(st.integers(min_value=0, max_value=7)),
        number=draw(st.integers(min_value=0, max_value=334)),
        args=tuple(draw(st.integers(min_value=0, max_value=2**64 - 1))
                   for _ in range(6)),
        result=draw(st.integers(min_value=0, max_value=2**64 - 1)),
        writes=[(draw(st.integers(min_value=0, max_value=2**40)),
                 draw(st.binary(min_size=1, max_size=32)))
                for _ in range(draw(st.integers(min_value=0, max_value=3)))],
        path=draw(st.one_of(st.none(), st.text(
            alphabet=st.characters(codec="ascii",
                                   categories=("L", "N")), max_size=16))),
    )


@settings(max_examples=25, deadline=None)
@given(register_files())
def test_thread_record_json_round_trip(regs):
    record = ThreadRecord(tid=3, regs=regs, region_icount=123,
                          blocked=True, futex_addr=0x7000)
    assert ThreadRecord.from_json(record.to_json()) == record


@settings(max_examples=25, deadline=None)
@given(syscall_records())
def test_syscall_record_json_round_trip(record):
    restored = SyscallRecord.from_json(record.to_json())
    assert restored.to_json() == record.to_json()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.large_base_example])
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=2**20).map(lambda p: p * PAGE_SIZE),
        st.tuples(
            st.sampled_from([1, 3, 5, 7]),
            # derive full pages from a short seed pattern: generating
            # 4 KiB of raw entropy per page trips health checks
            st.binary(min_size=4, max_size=32).map(
                lambda pat: (pat * (PAGE_SIZE // len(pat) + 1))[:PAGE_SIZE]),
        ),
        min_size=1, max_size=4,
    ),
    register_files(),
    st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                       st.integers(min_value=1, max_value=200)),
             max_size=8),
)
def test_pinball_save_load_round_trip(tmp_path_factory, pages, regs, schedule):
    tmp_path = tmp_path_factory.mktemp("pbprop")
    pinball = Pinball(
        name="prop",
        region=RegionSpec(start=100, length=500, warmup=50, name="p",
                          weight=0.5),
        pages=pages,
        threads=[ThreadRecord(tid=0, regs=regs, region_icount=500)],
        syscalls=[],
        schedule=[ScheduleSlice(tid=t, quantum=q) for t, q in schedule],
        brk_start=0x600000,
        brk_end=0x640000,
        program_icount=99_999,
        next_tid=4,
    )
    pinball.save(str(tmp_path))
    loaded = Pinball.load(str(tmp_path), "prop")
    assert loaded.pages == pinball.pages
    assert loaded.threads[0].regs == regs
    assert loaded.schedule == pinball.schedule
    assert loaded.region == pinball.region
    assert loaded.program_icount == 99_999
    assert loaded.next_tid == 4


def test_pinball_rejects_partial_pages(tmp_path):
    pinball = Pinball(
        name="bad",
        region=RegionSpec(start=0, length=1),
        pages={0x1000: (3, b"\x00" * 100)},   # not a full page
        threads=[ThreadRecord(tid=0, regs=RegisterFile())],
        syscalls=[],
        schedule=[],
    )
    with pytest.raises(ValueError):
        pinball.save(str(tmp_path))


def test_region_spec_validation():
    with pytest.raises(ValueError):
        RegionSpec(start=-1, length=10)
    with pytest.raises(ValueError):
        RegionSpec(start=0, length=0)
    with pytest.raises(ValueError):
        RegionSpec(start=0, length=1, warmup=-1)
    with pytest.raises(ValueError):
        RegionSpec(start=0, length=1, weight=1.5)
    region = RegionSpec(start=100, length=50, warmup=200)
    assert region.end == 150
    assert region.warmup_start == 0
    assert region.with_warmup(10).warmup == 10
