"""Property-based tests for the farm store codecs.

The invariants the checkpoint farm depends on:

- ``Pinball.save_bytes`` / ``load_bytes`` is an exact round trip (the
  codec ships the non-page remainder of a pinball through it);
- storing any pinball and reading it back is bit-identical, no matter
  how pages alias each other (dedup must never conflate distinct
  content, and shared content must never multiply);
- ``stable_digest`` is insensitive to dict construction order but
  sensitive to values.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.farm import ArtifactStore, stable_digest
from repro.isa.registers import Flags, RegisterFile
from repro.machine.memory import PAGE_SIZE
from repro.machine.scheduler import ScheduleSlice
from repro.pinplay.pinball import Pinball, ThreadRecord
from repro.pinplay.regions import RegionSpec


@st.composite
def register_files(draw):
    return RegisterFile(
        gpr=[draw(st.integers(min_value=0, max_value=2**64 - 1))
             for _ in range(16)],
        rip=draw(st.integers(min_value=0, max_value=2**48)),
        flags=Flags(zf=draw(st.booleans()), sf=draw(st.booleans()),
                    cf=draw(st.booleans()), of=draw(st.booleans())),
        fs_base=draw(st.integers(min_value=0, max_value=2**48)),
        gs_base=draw(st.integers(min_value=0, max_value=2**48)),
        xmm=[draw(st.floats(allow_nan=False, allow_infinity=False))
             for _ in range(16)],
    )


# full pages derived from short seed patterns: 4 KiB of raw entropy per
# page trips hypothesis health checks (same trick as the pinball tests)
pages_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=2**20).map(lambda p: p * PAGE_SIZE),
    st.tuples(
        st.sampled_from([1, 3, 5, 7]),
        st.binary(min_size=1, max_size=16).map(
            lambda pat: (pat * (PAGE_SIZE // len(pat) + 1))[:PAGE_SIZE]),
    ),
    min_size=0, max_size=4,
)


@st.composite
def pinballs(draw):
    return Pinball(
        name=draw(st.text(alphabet="abcdefgh0123", min_size=1, max_size=8)),
        region=RegionSpec(
            start=draw(st.integers(min_value=0, max_value=10**6)),
            length=draw(st.integers(min_value=1, max_value=10**6)),
            warmup=draw(st.integers(min_value=0, max_value=10**5)),
            name="r", weight=draw(st.floats(min_value=0.0, max_value=1.0)),
        ),
        pages=draw(pages_dicts),
        threads=[ThreadRecord(tid=0, regs=draw(register_files()),
                              region_icount=draw(
                                  st.integers(min_value=0, max_value=10**6)))],
        syscalls=[],
        schedule=[ScheduleSlice(tid=t, quantum=q) for t, q in draw(
            st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                               st.integers(min_value=1, max_value=200)),
                     max_size=6))],
        brk_start=draw(st.integers(min_value=0, max_value=2**40)),
        brk_end=draw(st.integers(min_value=0, max_value=2**40)),
        program_icount=draw(st.integers(min_value=0, max_value=10**9)),
        next_tid=draw(st.integers(min_value=0, max_value=64)),
    )


def assert_pinballs_equal(left, right):
    assert left.pages == right.pages
    assert left.region == right.region
    assert left.threads == right.threads
    assert left.schedule == right.schedule
    assert left.name == right.name
    assert left.brk_start == right.brk_start
    assert left.brk_end == right.brk_end
    assert left.program_icount == right.program_icount
    assert left.next_tid == right.next_tid


@settings(max_examples=20, deadline=None)
@given(pinballs())
def test_save_bytes_load_bytes_round_trip(pinball):
    assert_pinballs_equal(Pinball.load_bytes(pinball.save_bytes()), pinball)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.large_base_example])
@given(pinballs())
def test_store_round_trip_is_bit_identical(tmp_path_factory, pinball):
    store = ArtifactStore(str(tmp_path_factory.mktemp("farmprop")))
    store.put("k", pinball)
    assert_pinballs_equal(store.get("k"), pinball)
    assert store.verify() == []


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.large_base_example])
@given(pinballs())
def test_store_dedup_never_grows_block_pool_on_reput(tmp_path_factory,
                                                     pinball):
    store = ArtifactStore(str(tmp_path_factory.mktemp("farmdedup")))
    store.put("first", pinball)
    blocks = store.stats().blocks
    # identical content under a second key adds zero blocks
    store.put("second", pinball)
    stats = store.stats()
    assert stats.blocks == blocks
    assert stats.objects == 2
    assert_pinballs_equal(store.get("second"), store.get("first"))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.text(max_size=6),
                          st.integers(min_value=-10**9, max_value=10**9)),
                max_size=6, unique_by=lambda kv: kv[0]))
def test_stable_digest_ignores_dict_insertion_order(items):
    forward = dict(items)
    backward = dict(reversed(items))
    assert stable_digest(forward) == stable_digest(backward)


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(st.text(max_size=6),
                       st.integers(min_value=0, max_value=10**9),
                       min_size=1, max_size=6),
       st.integers(min_value=1, max_value=10**9))
def test_stable_digest_is_value_sensitive(spec, bump):
    key = sorted(spec)[0]
    modified = dict(spec)
    modified[key] = spec[key] + bump
    assert stable_digest(modified) != stable_digest(spec)
