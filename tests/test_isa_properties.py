"""Property-based tests: assembler <-> disassembler round trips.

Closes the DESIGN §6 gap: every encodable PX instruction must (a)
survive the binary encode/decode round trip bit-exactly and (b) render
to assembly text that the assembler turns back into the same bytes.
The generator draws from ``OPCODE_TABLE`` itself, so a new opcode is
covered the moment it is added to the table.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction, Op, OPCODE_TABLE, Operand

registers = st.integers(min_value=0, max_value=15)

_OPERAND_STRATEGIES = {
    Operand.R: registers,
    Operand.X: registers,
    Operand.I64: st.integers(min_value=0, max_value=2**64 - 1),
    Operand.I32: st.integers(min_value=-(2**31), max_value=2**31 - 1),
    Operand.REL32: st.integers(min_value=-(2**31), max_value=2**31 - 1),
    Operand.M: st.tuples(registers,
                         st.integers(min_value=-(2**31), max_value=2**31 - 1)),
    Operand.F64: st.floats(allow_nan=False, allow_infinity=False, width=64),
}


def _instruction_for(op: Op) -> st.SearchStrategy:
    operand_kinds = OPCODE_TABLE[op]
    if not operand_kinds:
        return st.just(Instruction(op, ()))
    return st.tuples(*[_OPERAND_STRATEGIES[kind] for kind in operand_kinds]
                     ).map(lambda operands: Instruction(op, operands))


instructions = st.sampled_from(sorted(OPCODE_TABLE)).flatmap(_instruction_for)


@settings(max_examples=300, deadline=None)
@given(instructions)
def test_encode_decode_round_trip(insn):
    data = encode(insn)
    decoded, size = decode(data)
    assert decoded == insn
    assert size == len(data) == insn.size


@settings(max_examples=300, deadline=None)
@given(instructions)
def test_format_assemble_round_trip(insn):
    # pc=None keeps branch targets relative ("+N"), which is the form
    # the assembler encodes verbatim into REL32.
    text = format_instruction(insn)
    program = assemble(text)
    assert program.code == encode(insn)


@settings(max_examples=60, deadline=None)
@given(st.lists(instructions, min_size=1, max_size=12))
def test_instruction_streams_round_trip(insns):
    code = b"".join(encode(insn) for insn in insns)

    # the streaming disassembler walks the exact instruction boundaries
    listing = list(disassemble(code))
    assert len(listing) == len(insns)
    addresses = [address for address, _text in listing]
    sizes = [insn.size for insn in insns]
    assert addresses == [sum(sizes[:i]) for i in range(len(insns))]

    # and the whole pc-less listing reassembles to the same bytes
    text = "\n".join(format_instruction(insn) for insn in insns)
    assert assemble(text).code == code
