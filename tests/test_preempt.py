"""Preemptible jobs: checkpoint on SIGTERM, migrate, resume, collect.

Covers the cooperative-preemption path end to end: the scheduler's
preempted-completion semantics, the BBV profiler's checkpoint/resume
bit-identity, the farm runner's inline preempt/resume cycle, snapshot
garbage collection with live-job roots, fuzz-campaign progress
persistence, a real SIGTERM delivered to a worker *process* mid-job
(with the job migrating to a second worker), and the ``farm run
--preemptible`` CLI producing byte-identical ELFies after an
interrupted + resumed campaign.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.core.cli import main
from repro.farm import ArtifactStore, FarmRunner, Job, JobGraph
from repro.service.client import ServiceClient
from repro.service.scheduler import FairShareScheduler
from repro.service.server import ServerThread
from repro.service.worker import ServiceWorker, worker_main
from repro.simpoint.bbv import collect_bbv
from repro.simpoint.pinpoints import _job_profile
from repro.snapshot import preempt
from repro.snapshot.preempt import Preempted
from repro.workloads import get_app


@pytest.fixture(scope="module")
def mcf_image():
    return get_app("505.mcf_r").build("test")


@pytest.fixture(autouse=True)
def clean_preempt_context():
    preempt.reset()
    yield
    preempt.GLOBAL._event = threading.Event()
    preempt.reset()


class _Countdown:
    """Event stand-in whose flag raises itself after N polls — a
    deterministic SIGTERM landing mid-profile."""

    def __init__(self, after):
        self.after = after
        self.calls = 0

    def is_set(self):
        self.calls += 1
        return self.calls > self.after

    def set(self):
        self.after = 0

    def clear(self):
        pass  # keep counting across preempt.reset()


def test_scheduler_preempted_completion_requeues_with_snapshot():
    scheduler = FairShareScheduler(lease_timeout=60.0)
    _, job = scheduler.submit("c", "profile", payload="p")
    leased = scheduler.lease("w1")
    assert leased.job_id == job.job_id and job.attempts == 1

    scheduler.complete(leased.lease_id, "r1", preempted=True,
                       snapshot_key="snap/abc")
    assert job.state == "queued"
    assert job.attempts == 0          # the lease's attempt is handed back
    assert job.preemptions == 1
    assert job.snapshot_key == "snap/abc"
    assert scheduler.snapshot_roots() == ["snap/abc"]
    assert scheduler.stats()["preemptions"] == 1

    # the next lease carries the snapshot key to the resuming worker
    released = scheduler.lease("w2")
    assert released.job_id == job.job_id
    assert released.describe()["snapshot_key"] == "snap/abc"
    scheduler.complete(released.lease_id, "r2", ok=True, worker="w2")
    assert job.state == "ok"
    assert scheduler.snapshot_roots() == []  # settled jobs pin nothing


def test_scheduler_preemption_preserves_retry_budget():
    scheduler = FairShareScheduler(lease_timeout=60.0, retries=1)
    _, job = scheduler.submit("c", "flaky", payload="p")
    for round_trip in range(3):  # drained more times than it has retries
        leased = scheduler.lease("w")
        scheduler.complete(leased.lease_id, "p%d" % round_trip,
                           preempted=True, snapshot_key="snap/k")
    assert job.state == "queued" and job.attempts == 0
    # real failures still consume the full budget afterwards
    leased = scheduler.lease("w")
    scheduler.complete(leased.lease_id, "f1", ok=False, error="boom")
    assert job.state == "queued"
    leased = scheduler.lease("w")
    scheduler.complete(leased.lease_id, "f2", ok=False, error="boom")
    assert job.state == "failed"


def test_bbv_preempt_resume_bit_identical(mcf_image):
    straight = collect_bbv(mcf_image, slice_size=5000, seed=3)

    preempt.GLOBAL._event = _Countdown(4)
    with pytest.raises(Preempted) as caught:
        collect_bbv(mcf_image, slice_size=5000, seed=3, preemptible=True)
    snapshot = caught.value.snapshot
    assert snapshot.extra["kind"] == "bbv"
    assert snapshot.extra["index"] >= 1

    preempt.GLOBAL._event = threading.Event()
    preempt.set_resume(snapshot)
    resumed = collect_bbv(mcf_image, slice_size=5000, seed=3,
                          preemptible=True)
    assert resumed.vectors == straight.vectors
    assert resumed.slice_icounts == straight.slice_icounts
    assert resumed.slice_cycles == straight.slice_cycles
    assert resumed.total_icount == straight.total_icount


def test_stale_resume_snapshot_is_ignored_by_kind(mcf_image):
    preempt.GLOBAL._event = _Countdown(2)
    with pytest.raises(Preempted) as caught:
        collect_bbv(mcf_image, slice_size=5000, seed=0, preemptible=True)
    snapshot = caught.value.snapshot
    snapshot.extra["kind"] = "unrelated"
    preempt.GLOBAL._event = threading.Event()
    preempt.set_resume(snapshot)
    # a mismatched kind must not derail the job body: it starts cold
    profile = collect_bbv(mcf_image, slice_size=5000, seed=0,
                          preemptible=True)
    assert profile.total_icount == 209_632
    assert preempt.GLOBAL.take_resume() is snapshot  # left parked


def test_farm_runner_inline_preempt_then_resume(tmp_path, mcf_image):
    store = ArtifactStore(str(tmp_path))
    straight = collect_bbv(mcf_image, slice_size=5000, seed=1)

    def graph():
        g = JobGraph()
        g.add(Job(name="profile", fn=_job_profile,
                  args=(mcf_image, 5000, 1), key="pk", kind="object"))
        return g

    preempt.GLOBAL._event = _Countdown(6)
    runner = FarmRunner(store, jobs=1, preemptible=True)
    runner.run(graph(), strict=False)
    assert runner.report.states["profile"] == "preempted"
    snap_key = FarmRunner.snapshot_key("pk")
    assert store.contains(snap_key)
    assert store.kind_of(snap_key) == "snapshot"
    assert not store.contains("pk")

    preempt.GLOBAL._event = threading.Event()
    preempt.reset()
    rerun = FarmRunner(store, jobs=1, preemptible=True)
    results = rerun.run(graph(), strict=True)
    assert rerun.report.states["profile"] == "ok"
    assert results["profile"].vectors == straight.vectors
    assert results["profile"].total_icount == straight.total_icount
    assert not store.contains(snap_key)  # settled: checkpoint released


def test_gc_prunes_unrooted_snapshots(tmp_path, mcf_image):
    from repro.machine.loader import load_elf
    from repro.machine.machine import Machine
    from repro.snapshot import capture

    machine = Machine(seed=0)
    load_elf(machine, mcf_image)
    machine.run(max_instructions=20_000)
    store = ArtifactStore(str(tmp_path))
    store.put("snap/live", capture(machine), kind="snapshot")
    store.put("snap/stale", capture(machine), kind="snapshot")
    store.put("other", {"plain": "artifact"}, kind="object")

    dry = store.gc(dry_run=True, prune_snapshots=True,
                   snapshot_roots=["snap/live"])
    assert dry.removed_snapshots == 1
    assert store.contains("snap/stale")

    swept = store.gc(prune_snapshots=True, snapshot_roots=["snap/live"])
    assert swept.removed_snapshots == 1
    assert not store.contains("snap/stale")
    assert store.contains("snap/live") and store.contains("other")
    # the kept snapshot still decodes after the sweep
    assert store.get("snap/live").pages

    # without the flag, snapshots are ordinary live artifacts
    untouched = store.gc()
    assert untouched.removed_snapshots == 0
    assert store.contains("snap/live")


def test_fuzz_checkpoint_persists_and_resumes(tmp_path):
    from repro.verify import fuzz

    path = str(tmp_path / "fuzz.json")
    first = fuzz(time_budget=600.0, max_cases=3, checkpoint_path=path)
    assert first.cases_run == 3
    assert os.path.exists(path)

    # max_cases is cumulative across restarts: the resumed campaign
    # picks up at seed 3 and runs exactly two more cases
    second = fuzz(time_budget=600.0, max_cases=5, checkpoint_path=path)
    assert second.cases_run == 5

    import json
    with open(path) as handle:
        state = json.load(handle)
    assert state["cases_run"] == second.cases_run
    assert state["next_seed"] >= 5

    # a drain request ends the campaign at a case boundary immediately
    preempt.request()
    drained = fuzz(time_budget=600.0, max_cases=50, checkpoint_path=path)
    assert drained.cases_run == second.cases_run


def test_service_worker_sigterm_drains_and_job_migrates(tmp_path, mcf_image):
    """Satellite e2e (in-process half): a worker's SIGTERM handler
    checkpoints the in-flight profile, the scheduler re-queues it with
    the snapshot attached, and a second worker resumes it to a result
    bit-identical to an uninterrupted run."""
    straight = collect_bbv(mcf_image, slice_size=5000, seed=3)
    with ServerThread(str(tmp_path), lease_timeout=30.0) as server:
        host, port = server.server.host, server.server.port
        client = ServiceClient(host, port, client_id="t")
        client.submit("profile", _job_profile, (mcf_image, 5000, 3),
                      key="profile-key", kind="object")

        first = ServiceWorker(host, port, name="w1", poll_s=0.05,
                              idle_exit_s=0.5, drain_timeout_s=30.0)
        thread = threading.Thread(target=first.run)
        thread.start()
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if server.scheduler.stats()["leased"]:
                break
            time.sleep(0.005)
        first.handle_sigterm()  # what signal.SIGTERM invokes
        thread.join(60.0)
        assert first.jobs_preempted == 1

        job = next(iter(server.scheduler.jobs.values()))
        assert job.state == "queued"
        assert job.preemptions == 1 and job.attempts == 0
        assert job.snapshot_key.startswith("snap/")
        assert server.scheduler.snapshot_roots() == [job.snapshot_key]
        assert server.store.contains(job.snapshot_key)

        second = ServiceWorker(host, port, name="w2", poll_s=0.05,
                               idle_exit_s=0.5)
        thread = threading.Thread(target=second.run)
        thread.start()
        thread.join(120.0)
        assert job.state == "ok" and job.worker == "w2"
        assert server.scheduler.snapshot_roots() == []

        resumed = server.store.get("profile-key")
        assert resumed.vectors == straight.vectors
        assert resumed.slice_cycles == straight.slice_cycles
        assert resumed.total_icount == straight.total_icount
        client.close()


def test_real_sigterm_to_worker_process_migrates_job(tmp_path):
    """Satellite e2e (process half): deliver an actual SIGTERM to a
    worker subprocess mid-job and let a second process finish it."""
    image = get_app("505.mcf_r").build("train")  # long enough to land in
    straight = collect_bbv(image, slice_size=5000, seed=0)
    context = multiprocessing.get_context("fork")
    with ServerThread(str(tmp_path), lease_timeout=60.0) as server:
        host, port = server.server.host, server.server.port
        client = ServiceClient(host, port, client_id="t")
        client.submit("profile", _job_profile, (image, 5000, 0),
                      key="profile-key", kind="object")

        victim = context.Process(
            target=worker_main, args=(host, port),
            kwargs=dict(name="w1", poll_s=0.05, idle_exit_s=10.0,
                        drain_timeout_s=60.0))
        victim.start()
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if server.scheduler.stats()["leased"]:
                break
            time.sleep(0.005)
        else:
            pytest.fail("job never leased")
        os.kill(victim.pid, signal.SIGTERM)
        victim.join(60.0)
        assert victim.exitcode == 0  # clean drain, not the watchdog

        job = next(iter(server.scheduler.jobs.values()))
        assert job.preemptions == 1 and job.state == "queued"
        assert job.snapshot_key and server.store.contains(job.snapshot_key)

        finisher = context.Process(
            target=worker_main, args=(host, port),
            kwargs=dict(name="w2", poll_s=0.05, idle_exit_s=1.0))
        finisher.start()
        finisher.join(120.0)
        assert finisher.exitcode == 0
        assert job.state == "ok" and job.worker == "w2"

        resumed = server.store.get("profile-key")
        assert resumed.vectors == straight.vectors
        assert resumed.total_icount == straight.total_icount
        client.close()


PIPELINE_ARGS = ["--input", "test", "--jobs", "1",
                 "--slice-size", "10000", "--warmup", "20000",
                 "--max-k", "4", "--alternates", "1", "--trials", "1"]


def test_farm_run_preemptible_resumes_to_identical_elfies(tmp_path, capsys):
    """Satellite e2e (CLI): an interrupted ``farm run --preemptible``
    exits 75 with the checkpoint stored; re-running the same command
    completes and every ELFie is byte-identical to an uninterrupted
    campaign's."""
    reference = str(tmp_path / "ref")
    assert main(["farm", "run", "--store", reference,
                 "--app", "505.mcf_r"] + PIPELINE_ARGS) == 0
    capsys.readouterr()

    interrupted = str(tmp_path / "pre")
    preempt.GLOBAL._event = _Countdown(6)  # "SIGTERM" mid-profile
    code = main(["farm", "run", "--store", interrupted,
                 "--app", "505.mcf_r", "--preemptible"] + PIPELINE_ARGS)
    err = capsys.readouterr().err
    assert code == 75  # EX_TEMPFAIL: partial, resumable
    assert "campaign preempted" in err
    pre_store = ArtifactStore(interrupted)
    snaps = [key for key in pre_store.keys()
             if pre_store.kind_of(key) == "snapshot"]
    assert snaps  # the in-flight profile parked its checkpoint

    preempt.GLOBAL._event = threading.Event()
    preempt.reset()
    assert main(["farm", "run", "--store", interrupted,
                 "--app", "505.mcf_r", "--preemptible"] + PIPELINE_ARGS) == 0
    capsys.readouterr()

    ref_store = ArtifactStore(reference)
    elfies = [key for key in ref_store.keys()
              if ref_store.kind_of(key) == "elfie"]
    assert elfies
    for key in elfies:
        assert pre_store.contains(key), key
        assert pre_store.get(key).image == ref_store.get(key).image
    # settled jobs release their checkpoints
    assert [key for key in pre_store.keys()
            if pre_store.kind_of(key) == "snapshot"] == []
