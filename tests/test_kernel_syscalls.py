"""Focused tests of kernel syscall semantics (beyond the e2e tests)."""

from repro.machine import Machine
from repro.machine.kernel import (
    ARCH_GET_FS,
    ARCH_SET_FS,
    ARCH_SET_GS,
    NR,
    PR_SET_MM,
    PR_SET_MM_BRK,
    PR_SET_MM_START_BRK,
)
from repro.machine.memory import PROT_RW


def _machine_with_thread():
    machine = Machine(seed=0)
    machine.mem.map(0x1000, 0x10000, PROT_RW)
    thread = machine.create_thread()
    return machine, thread


def _call(machine, thread, number, rdi=0, rsi=0, rdx=0, r10=0, r8=0, r9=0):
    thread.regs.gpr[0] = number
    thread.regs.gpr[7] = rdi
    thread.regs.gpr[6] = rsi
    thread.regs.gpr[2] = rdx
    thread.regs.gpr[10] = r10
    thread.regs.gpr[8] = r8
    thread.regs.gpr[9] = r9
    return machine.kernel.dispatch(thread)


def test_unknown_syscall_returns_enosys():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, 9999) == -38


def test_write_records_no_effects_reads_do():
    machine, thread = _machine_with_thread()
    fs = machine.kernel.fs
    fs.create("/f", b"xyz")
    machine.mem.write(0x1000, b"/f\x00")
    fd = _call(machine, thread, NR.OPEN, rdi=0x1000, rsi=0)
    assert fd >= 3
    _call(machine, thread, NR.READ, rdi=fd, rsi=0x2000, rdx=3)
    # the read's buffer write was recorded as a side effect
    assert machine.kernel.last_effects
    addr, data = machine.kernel.last_effects[0]
    assert addr == 0x2000 and data == b"xyz"
    _call(machine, thread, NR.WRITE, rdi=1, rsi=0x2000, rdx=3)
    assert machine.kernel.last_effects == []


def test_lseek_negative_offset_sign_extension():
    machine, thread = _machine_with_thread()
    machine.kernel.fs.create("/f", b"0123456789")
    machine.mem.write(0x1000, b"/f\x00")
    fd = _call(machine, thread, NR.OPEN, rdi=0x1000)
    _call(machine, thread, NR.LSEEK, rdi=fd, rsi=8, rdx=0)
    # SEEK_CUR with -3 passed as a 64-bit two's-complement value
    result = _call(machine, thread, NR.LSEEK, rdi=fd,
                   rsi=(1 << 64) - 3, rdx=1)
    assert result == 5


def test_arch_prctl_set_get_fs():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.ARCH_PRCTL, rdi=ARCH_SET_FS,
                 rsi=0x12340000) == 0
    assert thread.regs.fs_base == 0x12340000
    _call(machine, thread, NR.ARCH_PRCTL, rdi=ARCH_GET_FS, rsi=0x3000)
    assert machine.mem.read_u64(0x3000) == 0x12340000
    _call(machine, thread, NR.ARCH_PRCTL, rdi=ARCH_SET_GS, rsi=0x555)
    assert thread.regs.gs_base == 0x555


def test_prctl_set_mm_brk_restores_heap_layout():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.PRCTL, rdi=PR_SET_MM,
                 rsi=PR_SET_MM_START_BRK, rdx=0x600000) == 0
    assert _call(machine, thread, NR.PRCTL, rdi=PR_SET_MM,
                 rsi=PR_SET_MM_BRK, rdx=0x640000) == 0
    assert machine.kernel.brk_start == 0x600000
    assert machine.kernel.brk_end == 0x640000
    # subsequent brk(0) sees the restored layout
    assert _call(machine, thread, NR.BRK, rdi=0) == 0x640000


def test_brk_query_and_grow():
    machine, thread = _machine_with_thread()
    machine.kernel.set_brk(0x700000)
    assert _call(machine, thread, NR.BRK, rdi=0) == 0x700000
    new_end = _call(machine, thread, NR.BRK, rdi=0x702000)
    assert new_end == 0x702000
    machine.mem.write(0x701000, b"heap")  # newly mapped page is usable


def test_mmap_hint_honored_when_free():
    machine, thread = _machine_with_thread()
    base = _call(machine, thread, NR.MMAP, rdi=0x40000000, rsi=8192,
                 rdx=3, r10=0x22, r8=(1 << 64) - 1)
    assert base == 0x40000000
    assert machine.mem.is_mapped(0x40000000)


def test_mmap_zero_length_einval():
    machine, thread = _machine_with_thread()
    assert _call(machine, thread, NR.MMAP, rdi=0, rsi=0, rdx=3,
                 r10=0x22) == -22


def test_gettimeofday_advances_with_cycles():
    machine, thread = _machine_with_thread()
    _call(machine, thread, NR.GETTIMEOFDAY, rdi=0x5000)
    first = machine.mem.read_u64(0x5000)
    thread.cycles += machine.kernel.CYCLES_PER_SEC * 3
    _call(machine, thread, NR.GETTIMEOFDAY, rdi=0x5000)
    second = machine.mem.read_u64(0x5000)
    assert second == first + 3


def test_exit_group_kills_all_threads():
    machine, thread = _machine_with_thread()
    other = machine.create_thread()
    _call(machine, thread, NR.EXIT_GROUP, rdi=3)
    assert not thread.alive and not other.alive
    assert machine.exit_status.code == 3


def test_clone_child_inherits_registers_with_rax_zero():
    machine, thread = _machine_with_thread()
    thread.regs.set("rbx", 0x77)
    child_tid = _call(machine, thread, NR.CLONE, rdi=0x100,
                      rsi=0x8000, rdx=0x400500)
    child = machine.threads[child_tid]
    assert child.regs.get("rbx") == 0x77
    assert child.regs.rsp == 0x8000
    assert child.regs.rip == 0x400500
    assert child.regs.rax == 0


def test_syscall_trace_names():
    machine, thread = _machine_with_thread()
    _call(machine, thread, NR.GETPID)
    _call(machine, thread, NR.BRK, rdi=0)
    assert machine.kernel.trace[-2:] == ["getpid", "brk"]
