"""Single-pass multi-region capture must match per-region captures."""

import pytest

from repro.pinplay import RegionSpec, log_region, log_regions, replay
from repro.workloads import PhaseSpec, ProgramBuilder


@pytest.fixture(scope="module")
def image():
    return ProgramBuilder(
        name="mr",
        phases=[PhaseSpec("compute", 6000, buffer_kb=16),
                PhaseSpec("stream", 6000, buffer_kb=16)],
    ).build()


REGIONS = [
    RegionSpec(start=10_000, length=8_000, name="a"),
    RegionSpec(start=40_000, length=8_000, name="b"),
    RegionSpec(start=80_000, length=8_000, name="c"),
]


def test_single_pass_matches_individual_captures(image):
    batch = log_regions(image, REGIONS, seed=7)
    assert set(batch) == {"a", "b", "c"}
    for region in REGIONS:
        single = log_region(image, region, seed=7)
        combined = batch[region.name]
        assert combined.threads[0].regs == single.threads[0].regs
        assert combined.pages == single.pages
        # the schedule traces may differ in slice boundaries (the RNG
        # draw sequence depends on how often the run was interrupted),
        # but their totals must cover the same window
        assert (sum(s.quantum for s in combined.schedule)
                == sum(s.quantum for s in single.schedule))
        assert (combined.threads[0].region_icount
                == single.threads[0].region_icount)


def test_single_pass_pinballs_replay_correctly(image):
    batch = log_regions(image, REGIONS, seed=7)
    for pinball in batch.values():
        result = replay(pinball)
        assert result.matches_recording, pinball.name


def test_overlapping_windows_rejected(image):
    overlapping = [
        RegionSpec(start=10_000, length=8_000, name="x"),
        RegionSpec(start=12_000, length=8_000, name="y"),
    ]
    with pytest.raises(ValueError):
        log_regions(image, overlapping)


def test_warmup_windows_counted_in_overlap(image):
    # windows = [start - warmup, end): these overlap through warmup
    regions = [
        RegionSpec(start=10_000, length=5_000, name="x"),
        RegionSpec(start=20_000, length=5_000, warmup=8_000, name="y"),
    ]
    with pytest.raises(ValueError):
        log_regions(image, regions)


def test_regions_past_program_end_skipped(image):
    regions = [
        RegionSpec(start=10_000, length=5_000, name="ok"),
        RegionSpec(start=10_000_000, length=5_000, name="beyond"),
    ]
    batch = log_regions(image, regions)
    assert "ok" in batch
    assert "beyond" not in batch


def test_lazy_mode_rejected(image):
    with pytest.raises(ValueError):
        log_regions(image, REGIONS, fat=False)
