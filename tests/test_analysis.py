"""Tests for the analysis helpers: perf-stat and report rendering."""

import pytest

from repro.analysis import PerfStats, Table, bar_chart, format_table
from repro.analysis.perfstat import perf_stat_elfie, perf_stat_program
from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions
from repro.pinplay import RegionSpec, log_region
from repro.workloads import build_executable

PROGRAM = """
_start:
    mov rcx, 30000
loop:
    ld rax, [slot]
    add rax, rcx
    st [slot], rax
    sub rcx, 1
    cmp rcx, 0
    jnz loop
    mov rax, 231
    mov rdi, 0
    syscall
"""


@pytest.fixture(scope="module")
def image():
    return build_executable(PROGRAM, data_source="slot:\n.quad 0\n")


def test_perf_stat_program_counts(image):
    stats = perf_stat_program(image)
    assert stats.exit_kind == "exit"
    assert stats.instructions > 150_000
    assert stats.cycles > stats.instructions
    assert 1.0 < stats.cpi < 5.0
    assert stats.ipc == pytest.approx(1.0 / stats.cpi)
    assert stats.branches > 0


def test_perf_stat_program_deterministic(image):
    first = perf_stat_program(image, seed=4)
    second = perf_stat_program(image, seed=4)
    assert first.cycles == second.cycles
    assert first.instructions == second.instructions


def test_perf_stat_elfie_region(image):
    pinball = log_region(image, RegionSpec(start=40_000, length=30_000,
                                           warmup=10_000, name="ps.r0"))
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, marker=MarkerSpec("sniper", 2))).convert()
    stats = perf_stat_elfie(artifact.image, region_length=30_000,
                            warmup=10_000)
    assert stats is not None
    assert stats.instructions == 30_000
    assert stats.cpi > 1.0


def test_perf_stats_mpki():
    stats = PerfStats(instructions=1000, cycles=2000, llc_misses=5,
                      branches=100, exit_kind="exit")
    assert stats.mpki == 5.0
    empty = PerfStats(instructions=0, cycles=0, llc_misses=0, branches=0,
                      exit_kind="exit")
    assert empty.cpi == 0.0
    assert empty.mpki == 0.0


def test_table_rendering_alignment():
    table = Table(title="T", headers=["name", "value"])
    table.add_row("a", 1)
    table.add_row("longer-name", 123.5)
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2] and "value" in lines[2]
    assert "longer-name" in text
    assert "123.500" in text


def test_table_rejects_wrong_arity():
    table = Table(title="T", headers=["a", "b"])
    with pytest.raises(ValueError):
        table.add_row("only-one")


def test_format_table_one_call():
    text = format_table("title", ["x"], [["1"], ["2"]])
    assert "title" in text
    assert "1" in text and "2" in text


def test_bar_chart_scales_bars():
    text = bar_chart("chart", [("small", 1.0), ("big", 10.0)], width=20)
    lines = text.splitlines()
    small_bar = lines[1].count("#")
    big_bar = lines[2].count("#")
    assert big_bar == 20
    assert 1 <= small_bar <= 3


def test_bar_chart_negative_values():
    text = bar_chart("c", [("down", -2.0), ("up", 2.0)])
    assert "-" in text.splitlines()[1]


def test_bar_chart_empty():
    assert "(no data)" in bar_chart("c", [])
