"""Tests for the workload builder, phase kernels and SPEC-like suites."""

import pytest

from repro.workloads import (
    PHASE_KERNELS,
    PhaseSpec,
    ProgramBuilder,
    SPEC2006_SUBSET,
    SPEC2017_FP_RATE,
    SPEC2017_INT_RATE,
    SPEC2017_OMP_SPEED,
    get_app,
    phase_source,
    run_program,
)


@pytest.mark.parametrize("kernel", sorted(PHASE_KERNELS))
def test_each_kernel_runs_to_completion(kernel):
    builder = ProgramBuilder(
        name="k", phases=[PhaseSpec(kernel, 2000, buffer_kb=16)])
    machine, status, _ = run_program(builder.build())
    assert status.kind == "exit"
    assert status.code == 0
    assert machine.total_icount() > 2000


def test_kernel_estimates_are_accurate():
    """The per-iteration instruction estimates drive workload sizing;
    they must be within 30% of the measured counts."""
    for kernel in sorted(PHASE_KERNELS):
        spec = PhaseSpec(kernel, 3000, buffer_kb=16)
        builder = ProgramBuilder(name="e", phases=[spec])
        machine, _, _ = run_program(builder.build())
        measured = machine.total_icount()
        estimated = spec.estimated_instructions
        assert 0.7 < measured / estimated < 1.4, (kernel, measured, estimated)


def test_kernels_differ_in_cpi():
    cpis = {}
    for kernel in ("compute", "pointer_chase", "divide"):
        builder = ProgramBuilder(
            name="c", phases=[PhaseSpec(kernel, 5000, buffer_kb=256)])
        machine, _, _ = run_program(builder.build())
        cpis[kernel] = machine.total_cycles() / machine.total_icount()
    assert cpis["divide"] > cpis["compute"]
    assert cpis["pointer_chase"] > cpis["compute"]


def test_unknown_kernel_rejected():
    with pytest.raises(KeyError):
        phase_source("warp_drive", "p0", 100, "buf", 1024)
    with pytest.raises(ValueError):
        phase_source("compute", "p0", 0, "buf", 1024)


def test_multithreaded_program_all_threads_finish():
    builder = ProgramBuilder(
        name="mt", threads=4,
        phases=[PhaseSpec("compute", 2000, buffer_kb=16),
                PhaseSpec("fpkernel", 2000, buffer_kb=16)],
    )
    machine, status, _ = run_program(builder.build(), seed=3)
    assert status.kind == "exit"
    assert len(machine.threads) == 4
    assert all(not t.alive for t in machine.threads.values())


def test_thread_skew_increases_higher_tids_work():
    builder = ProgramBuilder(
        name="skew", threads=4,
        phases=[PhaseSpec("compute", 4000, buffer_kb=16, skew_iters=400)],
    )
    machine, status, _ = run_program(builder.build(), seed=0)
    assert status.kind == "exit"
    icounts = [machine.threads[tid].icount for tid in range(4)]
    # thread 3 does measurably more work than thread 0 (spin excluded,
    # so compare only roughly)
    assert icounts[3] > icounts[0]


def test_mt_program_spins_at_barriers():
    builder = ProgramBuilder(
        name="spin", threads=4,
        phases=[PhaseSpec("compute", 3000, buffer_kb=16, skew_iters=500)],
    )
    machine, status, _ = run_program(builder.build(), seed=1)
    assert status.kind == "exit"
    total_pauses = sum(t.spin_pauses for t in machine.threads.values())
    assert total_pauses > 0


def test_builder_validation():
    with pytest.raises(ValueError):
        ProgramBuilder(name="x", phases=[])
    with pytest.raises(ValueError):
        ProgramBuilder(name="x", phases=[PhaseSpec("compute", 1)], threads=0)


def test_suite_membership_counts():
    assert len(SPEC2017_INT_RATE) == 10
    assert len(SPEC2017_FP_RATE) == 6
    assert len(SPEC2017_OMP_SPEED) == 8
    assert len(SPEC2006_SUBSET) == 19


def test_get_app_lookup():
    assert get_app("502.gcc_r").suite == "2017int"
    assert get_app("470.lbm").suite == "2006"
    with pytest.raises(KeyError):
        get_app("999.nonesuch")


def test_omp_apps_have_eight_threads_except_xz():
    for name, app in SPEC2017_OMP_SPEED.items():
        if name == "657.xz_s":
            assert app.threads == 1
        else:
            assert app.threads == 8


def test_gcc_has_most_diverse_schedule():
    gcc = SPEC2017_INT_RATE["502.gcc_r"]
    others = [app for name, app in SPEC2017_INT_RATE.items()
              if name != "502.gcc_r"]
    assert len(gcc.segments) > max(len(app.segments) for app in others)


def test_input_scaling():
    app = SPEC2017_INT_RATE["505.mcf_r"]
    train = app.estimated_instructions("train")
    ref = app.estimated_instructions("ref")
    test = app.estimated_instructions("test")
    assert test < train < ref
    assert ref >= 6 * train


def test_schedules_are_deterministic():
    from repro.workloads.spec import _make_schedule

    first = _make_schedule("some.app", ["compute", "stream"], 3, 10, 1000)
    second = _make_schedule("some.app", ["compute", "stream"], 3, 10, 1000)
    assert first == second
    different = _make_schedule("other.app", ["compute", "stream"], 3, 10, 1000)
    assert first != different


def test_apps_run_to_completion_at_test_scale():
    for name in ("557.xz_r", "544.nab_r"):
        app = get_app(name)
        machine, status, _ = run_program(app.build("test"))
        assert status.kind == "exit", name
        assert status.code == 0, name
