"""Tests for the PX assembler and disassembler."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa import assemble, AssemblyError, decode, Op
from repro.isa.assembler import Assembler
from repro.isa.disassembler import disassemble, format_instruction
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction


def test_simple_program_assembles():
    prog = assemble(
        """
        mov rax, 60
        mov rdi, 0
        syscall
        """
    )
    insn, offset = decode(prog.code)
    assert insn.op == Op.MOV_RI
    assert insn.operands == (0, 60)
    insn, offset = decode(prog.code, offset)
    assert insn.op == Op.MOV_RI
    insn, _ = decode(prog.code, offset)
    assert insn.op == Op.SYSCALL


def test_labels_resolve_to_base_relative_addresses():
    prog = assemble(
        """
        start:
            nop
        loop:
            jmp loop
        """,
        base=0x400000,
    )
    assert prog.address_of("start") == 0x400000
    assert prog.address_of("loop") == 0x400001
    # jmp loop is a self-branch: rel32 == -size of jmp (5 bytes)
    insn, _ = decode(prog.code, 1)
    assert insn.op == Op.JMP
    assert insn.operands == (-5,)


def test_backward_and_forward_branches():
    prog = assemble(
        """
        mov rcx, 10
        top:
            sub rcx, 1
            cmp rcx, 0
            jnz top
            jmp done
            nop
        done:
            hlt
        """
    )
    assert prog.address_of("done") == prog.size - 1


def test_label_as_mov_immediate():
    prog = assemble(
        """
        mov rax, target
        hlt
        target:
            nop
        """,
        base=0x1000,
    )
    insn, _ = decode(prog.code)
    assert insn.op == Op.MOV_RI
    assert insn.operands[1] == prog.address_of("target")


def test_quad_directive_with_label():
    prog = assemble(
        """
        entry:
            nop
        table:
            .quad entry
            .quad 0xdeadbeef
        """,
        base=0x2000,
    )
    table = prog.address_of("table") - prog.base
    (first,) = struct.unpack_from("<Q", prog.code, table)
    (second,) = struct.unpack_from("<Q", prog.code, table + 8)
    assert first == 0x2000
    assert second == 0xDEADBEEF


def test_memory_operand_forms():
    prog = assemble(
        """
        ld rax, [rbx]
        ld rax, [rbx+16]
        st [rbp-8], rcx
        lea rsi, [rsp+32]
        """
    )
    insn, offset = decode(prog.code)
    assert insn.operands == (0, (3, 0))
    insn, offset = decode(prog.code, offset)
    assert insn.operands == (0, (3, 16))
    insn, offset = decode(prog.code, offset)
    assert insn.op == Op.ST
    assert insn.operands == ((5, -8), 1)
    insn, _ = decode(prog.code, offset)
    assert insn.op == Op.LEA


def test_alu_immediate_vs_register_selection():
    prog = assemble("add rax, rbx\nadd rax, 5")
    insn, offset = decode(prog.code)
    assert insn.op == Op.ADD_RR
    insn, _ = decode(prog.code, offset)
    assert insn.op == Op.ADD_RI


def test_directives():
    prog = assemble(
        """
        .byte 1, 2, 3
        .align 8
        value:
        .long 0x11223344
        .ascii "hi"
        .asciz "z"
        .zero 4
        .double 1.5
        """
    )
    assert prog.code[:3] == b"\x01\x02\x03"
    assert prog.address_of("value") == 8
    assert prog.code[8:12] == b"\x44\x33\x22\x11"
    assert prog.code[12:14] == b"hi"
    assert prog.code[14:16] == b"z\x00"
    assert prog.code[16:20] == b"\x00" * 4
    assert struct.unpack_from("<d", prog.code, 20)[0] == 1.5


def test_comments_and_blank_lines_ignored():
    prog = assemble("; full comment\n\n  nop ; trailing\n# hash comment\n")
    assert prog.code == b"\x00"


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a:\nnop\na:\nnop")


def test_undefined_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("jmp nowhere")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate rax")


def test_bad_operand_shape_rejected():
    with pytest.raises(AssemblyError):
        assemble("push 5")
    with pytest.raises(AssemblyError):
        assemble("mov 5, rax")


def test_float_instructions():
    prog = assemble(
        """
        fmov xmm0, 2.5
        fmov xmm1, xmm0
        fadd xmm1, xmm0
        cvtsd2si rax, xmm1
        """
    )
    insn, offset = decode(prog.code)
    assert insn.op == Op.FMOV_XI
    assert insn.operands == (0, 2.5)
    insn, offset = decode(prog.code, offset)
    assert insn.op == Op.FMOV_XX


def test_programmatic_emit_api():
    asm = Assembler(base=0x100)
    asm.define_label("blob")
    asm.emit_bytes(b"\xaa\xbb")
    asm.emit_quad_label("blob")
    prog = asm.assemble()
    assert prog.code[:2] == b"\xaa\xbb"
    (addr,) = struct.unpack_from("<Q", prog.code, 2)
    assert addr == 0x100


def test_disassemble_round_trip_text():
    source = """
        mov rax, 42
        add rax, 1
        cmp rax, 43
        jnz 0
        syscall
    """
    prog = assemble(source)
    lines = [text for _, text in disassemble(prog.code)]
    assert lines[0] == "mov rax, 0x2a"
    assert lines[1] == "add rax, 1"
    assert lines[-1] == "syscall"


def test_disassemble_skips_or_stops_on_data():
    data = b"\xff\xfe" + encode(Instruction(Op.NOP))
    assert list(disassemble(data)) == []
    entries = list(disassemble(data, stop_on_error=False))
    assert entries[0][1] == ".byte 0xff"
    assert entries[-1][1] == "nop"


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=2**64 - 1))
def test_mov_text_round_trip(reg, imm):
    from repro.isa.registers import GPR_NAMES

    text = "mov %s, %d" % (GPR_NAMES[reg], imm)
    prog = assemble(text)
    insn, _ = decode(prog.code)
    assert insn.operands == (reg, imm)
    rendered = format_instruction(insn)
    reprog = assemble(rendered.replace("0x", "0x"))
    assert reprog.code == prog.code
