"""Tests for the checkpoint farm: store, job graph, runner, campaigns."""

import json
import os
import time
import zlib

import pytest

from repro.core.cli import main
from repro.core.pinball2elf import ElfieArtifact
from repro.core.startup import StartupPlan
from repro.farm import (
    ArtifactStore,
    CampaignError,
    FarmRunner,
    Job,
    JobGraph,
    Ref,
    StoreCorruption,
    executed_jobs,
    read_manifest,
    stable_digest,
    summarize_manifest,
)
from repro.isa.registers import RegisterFile
from repro.machine.memory import PAGE_SIZE
from repro.machine.scheduler import ScheduleSlice
from repro.pinplay.pinball import Pinball, ThreadRecord
from repro.pinplay.regions import RegionSpec
from repro.simpoint import (
    elfie_validation,
    run_pinpoints,
    run_pinpoints_farm,
    validate_with_elfies,
)
from repro.workloads import get_app


def make_pinball(name="pb", pages=None, icount=500):
    if pages is None:
        pages = {0x1000: (5, b"\xab" * PAGE_SIZE),
                 0x3000: (3, b"\xcd" * PAGE_SIZE)}
    return Pinball(
        name=name,
        region=RegionSpec(start=100, length=icount, warmup=50, name=name,
                          weight=0.25),
        pages=pages,
        threads=[ThreadRecord(tid=0, regs=RegisterFile(),
                              region_icount=icount)],
        syscalls=[],
        schedule=[ScheduleSlice(tid=0, quantum=100)],
        brk_start=0x600000,
        brk_end=0x640000,
        program_icount=10_000,
        next_tid=1,
    )


# -- artifact store ---------------------------------------------------------


def test_store_round_trips_pinball(tmp_path):
    store = ArtifactStore(str(tmp_path))
    pinball = make_pinball()
    store.put("k1", pinball)
    assert store.contains("k1")
    assert store.kind_of("k1") == "pinball"
    loaded = store.get("k1")
    assert loaded.pages == pinball.pages
    assert loaded.region == pinball.region
    assert loaded.threads == pinball.threads
    assert loaded.schedule == pinball.schedule
    assert loaded.program_icount == pinball.program_icount
    assert loaded.next_tid == pinball.next_tid


def test_store_round_trips_pinball_group(tmp_path):
    store = ArtifactStore(str(tmp_path))
    group = {"a": make_pinball("a"), "b": make_pinball("b", icount=700)}
    store.put("g", group)
    assert store.kind_of("g") == "pinballs"
    loaded = store.get("g")
    assert sorted(loaded) == ["a", "b"]
    assert loaded["a"].pages == group["a"].pages
    assert loaded["b"].region_icount == 700


def test_store_round_trips_elfie(tmp_path):
    store = ArtifactStore(str(tmp_path))
    artifact = ElfieArtifact(
        image=bytes(range(256)) * 40,
        e_type=2,
        entry=0x40_0000,
        startup_base=0x30_0000,
        plan=StartupPlan(tail_instructions={0: 7, 1: 9},
                         symbol_labels=["elfie_entry"],
                         context_symbols=[("t0.rip", "ctx0", 16)]),
        linker_script="SECTIONS {}",
        symbols=[("elfie_entry", 0x40_0000)],
    )
    store.put("e", artifact, kind="elfie")
    loaded = store.get("e")
    assert loaded.image == artifact.image
    assert loaded.entry == artifact.entry
    assert loaded.plan.tail_instructions == {0: 7, 1: 9}
    assert loaded.plan.context_symbols == [("t0.rip", "ctx0", 16)]
    assert loaded.linker_script == "SECTIONS {}"
    assert loaded.symbols == [("elfie_entry", 0x40_0000)]


def test_store_deduplicates_shared_pages(tmp_path):
    store = ArtifactStore(str(tmp_path))
    pages = {0x1000: (5, b"\x11" * PAGE_SIZE), 0x2000: (5, b"\x22" * PAGE_SIZE)}
    store.put("first", make_pinball("first", pages=dict(pages)))
    blocks_after_first = store.stats().blocks
    store.put("second", make_pinball("second", pages=dict(pages)))
    stats = store.stats()
    # the two artifacts share every page block; only the "rest" blob
    # (metadata differs by name) adds a block
    assert stats.blocks == blocks_after_first + 1
    assert stats.objects == 2
    assert stats.logical_bytes > stats.unique_bytes
    assert stats.dedup_ratio > 1.0
    assert stats.compression_ratio > 1.0


def test_store_gc_sweeps_unreferenced_blocks(tmp_path):
    store = ArtifactStore(str(tmp_path))
    shared = b"\x33" * PAGE_SIZE
    store.put("keep", make_pinball("keep", pages={0x1000: (5, shared)}))
    store.put("drop", make_pinball("drop", pages={0x1000: (5, shared),
                                                  0x2000: (5, b"\x44" * PAGE_SIZE)}))
    assert store.delete("drop")
    assert not store.delete("drop")
    result = store.gc()
    assert result.removed_blocks > 0
    assert result.live_blocks > 0
    # the survivor must be fully readable after the sweep
    assert store.get("keep").pages[0x1000] == (5, shared)
    assert store.verify() == []


def test_store_detects_corruption(tmp_path):
    store = ArtifactStore(str(tmp_path))
    pinball = make_pinball()
    store.put("k", pinball)
    # tamper with one page block: valid zlib, wrong content
    digest = codec_digest_of_first_page(store, "k")
    with open(store._block_path(digest), "wb") as handle:
        handle.write(zlib.compress(b"\x00" * PAGE_SIZE))
    with pytest.raises(StoreCorruption):
        store.get("k")
    assert store.verify() == ["k"]


def codec_digest_of_first_page(store, key):
    record = store._load_record(key)
    return record["meta"]["pages"][0][2]


def test_store_missing_key_raises_keyerror(tmp_path):
    store = ArtifactStore(str(tmp_path))
    with pytest.raises(KeyError):
        store.get("nope")
    assert not store.contains("nope")


# -- stable digests ---------------------------------------------------------


def test_stable_digest_is_order_independent():
    a = stable_digest({"x": 1, "y": [1, 2], "z": {"n": None}})
    b = stable_digest({"z": {"n": None}, "y": [1, 2], "x": 1})
    assert a == b
    assert stable_digest({"x": 1}) != stable_digest({"x": 2})


def test_stable_digest_handles_bytes_and_dataclasses():
    region = RegionSpec(start=10, length=20, warmup=5, name="r")
    assert stable_digest(region) == stable_digest(region)
    assert stable_digest([b"abc"]) == stable_digest([b"abc"])
    assert stable_digest([b"abc"]) != stable_digest([b"abd"])
    assert stable_digest((1, 2)) == stable_digest([1, 2])


def test_stable_digest_rejects_unknown_types():
    with pytest.raises(TypeError):
        stable_digest(object())


# -- job graph --------------------------------------------------------------


def _identity(x):
    return x


def test_job_graph_rejects_duplicates_and_unknown_deps():
    graph = JobGraph()
    graph.add(Job(name="a", fn=_identity, args=(1,)))
    with pytest.raises(ValueError):
        graph.add(Job(name="a", fn=_identity, args=(2,)))
    with pytest.raises(ValueError):
        graph.add(Job(name="b", fn=_identity, args=(1,), deps=("missing",)))


def test_job_refs_imply_dependencies():
    graph = JobGraph()
    graph.add(Job(name="a", fn=_identity, args=(1,)))
    job = graph.add(Job(name="b", fn=_identity, args=(Ref("a"),)))
    assert job.deps == ("a",)
    assert graph.order() == ["a", "b"]
    assert graph.dependents("a") == ["b"]


# -- runner (module-level fns so the worker pool can pickle them) -----------


def _counted_double(counter_path, x):
    with open(counter_path, "a") as handle:
        handle.write("%d\n" % os.getpid())
    return 2 * x


def _add(a, b):
    return a + b


def _flaky(counter_path, fail_times, value):
    with open(counter_path, "a") as handle:
        handle.write("x")
    with open(counter_path) as handle:
        calls = len(handle.read())
    if calls <= fail_times:
        raise RuntimeError("injected failure #%d" % calls)
    return value


def _always_fail():
    raise RuntimeError("boom")


def _sleepy_pid(seconds):
    time.sleep(seconds)
    return os.getpid()


def _expand_with_square(result, graph, results):
    graph.add(Job(name="square", fn=_identity, args=(result * result,)))


def test_runner_memoizes_results(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    counter = str(tmp_path / "calls")

    def build():
        graph = JobGraph()
        graph.add(Job(name="double", fn=_counted_double, args=(counter, 21),
                      key=stable_digest(["double", 21]), stage="work"))
        graph.add(Job(name="sum", fn=_add, args=(Ref("double"), 8)))
        return graph

    manifest = str(tmp_path / "cold.jsonl")
    runner = FarmRunner(store, jobs=1, manifest_path=manifest)
    results = runner.run(build())
    assert results == {"double": 42, "sum": 50}
    assert runner.report.cache_hits == 0

    warm_manifest = str(tmp_path / "warm.jsonl")
    runner = FarmRunner(store, jobs=1, manifest_path=warm_manifest)
    results = runner.run(build())
    assert results == {"double": 42, "sum": 50}
    assert runner.report.cache["double"] == "hit"
    with open(counter) as handle:
        assert len(handle.read().splitlines()) == 1  # executed exactly once
    records = read_manifest(warm_manifest)
    by_job = {record["job"]: record for record in records}
    assert by_job["double"]["cache"] == "hit"
    assert by_job["sum"]["cache"] == "none"  # keyless jobs always run
    assert not executed_jobs(records, "work")


def test_runner_parallel_matches_serial(tmp_path):
    def build():
        graph = JobGraph()
        graph.add(Job(name="a", fn=_identity, args=(3,)))
        graph.add(Job(name="b", fn=_identity, args=(4,)))
        graph.add(Job(name="sum", fn=_add, args=(Ref("a"), Ref("b"))))
        return graph

    serial = FarmRunner(ArtifactStore(str(tmp_path / "s1")), jobs=1).run(build())
    fanned = FarmRunner(ArtifactStore(str(tmp_path / "s2")), jobs=2).run(build())
    assert serial == fanned == {"a": 3, "b": 4, "sum": 7}


def test_runner_fans_out_across_workers(tmp_path):
    graph = JobGraph()
    graph.add(Job(name="w0", fn=_sleepy_pid, args=(0.3,)))
    graph.add(Job(name="w1", fn=_sleepy_pid, args=(0.3,)))
    manifest = str(tmp_path / "run.jsonl")
    runner = FarmRunner(None, jobs=2, manifest_path=manifest)
    results = runner.run(graph)
    # two independent jobs land on two distinct pool workers, and none
    # of them on the parent
    assert len(set(results.values())) == 2
    assert os.getpid() not in results.values()
    summary = summarize_manifest(read_manifest(manifest))
    assert summary["jobs"] == 2 and summary["ok"] == 2
    assert len(summary["workers"]) == 2


def test_runner_local_jobs_stay_in_parent(tmp_path):
    graph = JobGraph()
    graph.add(Job(name="here", fn=_sleepy_pid, args=(0.0,), local=True))
    results = FarmRunner(None, jobs=2).run(graph)
    assert results["here"] == os.getpid()


def test_runner_retries_then_succeeds_inline(tmp_path):
    counter = str(tmp_path / "calls")
    graph = JobGraph()
    graph.add(Job(name="flaky", fn=_flaky, args=(counter, 2, "ok"),
                  retries=3))
    manifest = str(tmp_path / "run.jsonl")
    runner = FarmRunner(None, jobs=1, backoff=0.001, manifest_path=manifest)
    results = runner.run(graph)
    assert results["flaky"] == "ok"
    record = read_manifest(manifest)[0]
    assert record["state"] == "ok"
    assert record["attempts"] == 3


def test_runner_retries_then_succeeds_in_pool(tmp_path):
    counter = str(tmp_path / "calls")
    graph = JobGraph()
    graph.add(Job(name="flaky", fn=_flaky, args=(counter, 1, "ok")))
    manifest = str(tmp_path / "run.jsonl")
    runner = FarmRunner(None, jobs=2, backoff=0.001, manifest_path=manifest)
    results = runner.run(graph)
    assert results["flaky"] == "ok"
    record = read_manifest(manifest)[0]
    assert record["attempts"] == 2
    assert summarize_manifest([record])["retries"] == 1


@pytest.mark.parametrize("jobs", [1, 2])
def test_runner_surfaces_permanent_failure(tmp_path, jobs):
    graph = JobGraph()
    graph.add(Job(name="doomed", fn=_always_fail, retries=1))
    graph.add(Job(name="downstream", fn=_identity, args=(Ref("doomed"),)))
    manifest = str(tmp_path / "run.jsonl")
    runner = FarmRunner(None, jobs=jobs, backoff=0.001,
                        manifest_path=manifest)
    with pytest.raises(CampaignError) as excinfo:
        runner.run(graph)
    assert "doomed" in excinfo.value.failures
    by_job = {record["job"]: record for record in read_manifest(manifest)}
    assert by_job["doomed"]["state"] == "failed"
    assert by_job["doomed"]["attempts"] == 2
    assert "boom" in by_job["doomed"]["error"]
    assert by_job["downstream"]["state"] == "blocked"
    assert "doomed" in by_job["downstream"]["error"]


def test_runner_non_strict_returns_partial_results(tmp_path):
    graph = JobGraph()
    graph.add(Job(name="fine", fn=_identity, args=(1,)))
    graph.add(Job(name="doomed", fn=_always_fail, retries=0))
    graph.add(Job(name="blocked", fn=_identity, args=(Ref("doomed"),)))
    runner = FarmRunner(None, jobs=1, backoff=0.001)
    results = runner.run(graph, strict=False)
    assert results == {"fine": 1}
    assert runner.report.states == {"fine": "ok", "doomed": "failed",
                                    "blocked": "blocked"}


def test_runner_expand_adds_downstream_jobs(tmp_path):
    graph = JobGraph()
    graph.add(Job(name="seed", fn=_identity, args=(6,),
                  expand=_expand_with_square))
    results = FarmRunner(None, jobs=1).run(graph)
    assert results == {"seed": 6, "square": 36}


def test_runner_recovers_from_corrupt_cache_entry(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    counter = str(tmp_path / "calls")
    key = stable_digest(["double", 5])

    def build():
        graph = JobGraph()
        graph.add(Job(name="double", fn=_counted_double,
                      args=(counter, 5), key=key))
        return graph

    FarmRunner(store, jobs=1).run(build())
    # smash the cached entry's blob on disk
    record = store._load_record(key)
    with open(store._block_path(record["meta"]["blob"]), "wb") as handle:
        handle.write(zlib.compress(b"garbage"))
    runner = FarmRunner(store, jobs=1)
    results = runner.run(build())
    assert results["double"] == 10
    assert runner.report.cache["double"] == "miss"  # recomputed, not served
    with open(counter) as handle:
        assert len(handle.read().splitlines()) == 2
    assert store.get(key) == 10  # the bad entry was replaced


# -- end-to-end: farm campaign == direct pipeline ---------------------------


PIPELINE = dict(slice_size=10_000, warmup=20_000, max_k=4, max_alternates=1)


@pytest.fixture(scope="module")
def mcf_image():
    return get_app("505.mcf_r").build("test")


def test_farm_campaign_matches_direct_path(tmp_path, mcf_image):
    store = ArtifactStore(str(tmp_path / "store"))
    cold_manifest = str(tmp_path / "cold.jsonl")
    outcome = run_pinpoints_farm(
        mcf_image, "505.mcf_r", store, jobs=1,
        manifest_path=cold_manifest,
        validations=[elfie_validation("v", trials=1)],
        **PIPELINE)
    direct = run_pinpoints(mcf_image, "505.mcf_r", **PIPELINE)
    reference = validate_with_elfies(direct, trials=1)

    assert [r.name for r in outcome.result.regions] == \
        [r.name for r in direct.regions]
    assert outcome.result.pinballs.keys() == direct.pinballs.keys()
    assert outcome.result.elfies.keys() == direct.elfies.keys()
    farm_validation = outcome.validations["v"]
    assert farm_validation.abs_error_percent == reference.abs_error_percent
    assert farm_validation.covered_weight == reference.covered_weight

    # warm re-run: everything cached, no capture or conversion executes
    warm_manifest = str(tmp_path / "warm.jsonl")
    warm = run_pinpoints_farm(
        mcf_image, "505.mcf_r", store, jobs=1,
        manifest_path=warm_manifest,
        validations=[elfie_validation("v", trials=1)],
        **PIPELINE)
    records = read_manifest(warm_manifest)
    assert not executed_jobs(records, "log")
    assert not executed_jobs(records, "convert")
    assert not executed_jobs(records, "validate")
    assert (warm.validations["v"].abs_error_percent
            == farm_validation.abs_error_percent)


# -- CLI --------------------------------------------------------------------


def test_cli_farm_run_stats_gc(tmp_path, capsys):
    store_dir = str(tmp_path / "farm")
    manifest = str(tmp_path / "run.jsonl")
    argv = ["farm", "run", "--store", store_dir, "--app", "505.mcf_r",
            "--input", "test", "--jobs", "1", "--slice-size", "10000",
            "--warmup", "20000", "--max-k", "4", "--alternates", "1",
            "--trials", "1", "--manifest", manifest]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "505.mcf_r:" in cold and "coverage" in cold
    assert "cache hits: 0" in cold
    # interpreting stages (profile/log/validate) report aggregate MIPS
    assert "interpreter MIPS:" in cold

    assert main(argv) == 0  # warm: same campaign, all hits
    warm = capsys.readouterr().out
    assert "misses: 0" in warm
    assert "interpreter MIPS:" not in warm  # nothing executed

    assert main(["farm", "stats", "--store", store_dir]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["objects"] > 0
    assert stats["dedup_ratio"] >= 1.0

    assert main(["farm", "gc", "--store", store_dir]) == 0
    assert "live" in capsys.readouterr().out


# -- interpreter MIPS accounting --------------------------------------------


def test_job_icount_recognizes_artifact_shapes():
    from repro.farm.runner import _job_icount

    class _Profile:
        total_icount = 120_000

    class _Region:
        end = 45_000

    class _Pinball:
        region = _Region()

    assert _job_icount(_Profile()) == 120_000
    assert _job_icount(_Pinball()) == 45_000
    # a single-pass log group ran the interpreter to the latest window end
    assert _job_icount({"r0": _Pinball(), "r1": _Profile()}) == 120_000
    assert _job_icount(None) is None
    assert _job_icount(object()) is None
    assert _job_icount({"k": object()}) is None


def test_summarize_manifest_pools_interpreter_mips():
    records = [
        # two interpreting jobs: 2 M instrs over 1 s -> 2.0 MIPS
        {"state": "ok", "cache": "miss", "stage": "profile",
         "wall_s": 0.75, "icount": 1_500_000, "worker": 1, "attempts": 1},
        {"state": "ok", "cache": "miss", "stage": "log",
         "wall_s": 0.25, "icount": 500_000, "worker": 1, "attempts": 1},
        # non-interpreting job: wall time must not dilute the MIPS pool
        {"state": "ok", "cache": "miss", "stage": "cluster",
         "wall_s": 5.0, "worker": 1, "attempts": 1},
        # cache hit: contributes nothing to either pool
        {"state": "ok", "cache": "hit", "stage": "profile",
         "wall_s": 0.0, "icount": None, "worker": None, "attempts": 0},
    ]
    summary = summarize_manifest(records)
    assert summary["executed_icount"] == 2_000_000
    assert summary["interp_wall_s"] == 1.0
    assert summary["mips"] == 2.0
    assert summary["executed_wall_s"] == 6.0
    assert summary["stages"]["profile"]["mips"] == 2.0
    assert summary["stages"]["log"]["mips"] == 2.0
    assert summary["stages"]["cluster"]["mips"] == 0.0
