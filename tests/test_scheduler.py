"""Tests for the seeded scheduler and its record/replay modes."""

import pytest

from repro.machine.scheduler import ScheduleSlice, Scheduler


def test_round_robin_rotation():
    scheduler = Scheduler(seed=0, jitter=0.0)
    picks = [scheduler.pick([0, 1, 2]).tid for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_quantum_jitter_is_seeded():
    first = Scheduler(seed=5)
    second = Scheduler(seed=5)
    other = Scheduler(seed=6)
    quanta_a = [first.pick([0]).quantum for _ in range(20)]
    quanta_b = [second.pick([0]).quantum for _ in range(20)]
    quanta_c = [other.pick([0]).quantum for _ in range(20)]
    assert quanta_a == quanta_b
    assert quanta_a != quanta_c


def test_jitter_within_bounds():
    scheduler = Scheduler(seed=1, base_quantum=100, jitter=0.5)
    for _ in range(100):
        quantum = scheduler.pick([0]).quantum
        assert 50 <= quantum <= 150


def test_no_runnable_threads_raises():
    scheduler = Scheduler()
    with pytest.raises(RuntimeError):
        scheduler.pick([])


def test_record_and_replay_round_trip():
    recorder = Scheduler(seed=3)
    recorder.record = True
    trace = [recorder.pick([0, 1]) for _ in range(10)]
    assert recorder.trace == trace

    player = Scheduler(seed=99)   # different seed must not matter
    player.replay(trace)
    replayed = [player.pick([0, 1]) for _ in range(10)]
    assert replayed == trace
    assert player.replay_exhausted


def test_replay_rejects_nonrunnable_thread():
    player = Scheduler()
    player.replay([ScheduleSlice(tid=7, quantum=10)])
    with pytest.raises(RuntimeError):
        player.pick([0, 1])


def test_replay_falls_back_to_free_run_when_exhausted():
    player = Scheduler(seed=0)
    player.replay([ScheduleSlice(tid=1, quantum=5)])
    assert player.pick([1]).tid == 1
    # log exhausted: free-run continues (injection-less replay past the
    # recorded region)
    slice_ = player.pick([0, 1])
    assert slice_.tid in (0, 1)


def test_note_partial_trims_recorded_slice():
    scheduler = Scheduler(seed=0, jitter=0.0, base_quantum=64)
    scheduler.record = True
    slice_ = scheduler.pick([0])
    scheduler.note_partial(slice_, 10)
    assert scheduler.trace[-1].quantum == 10


def test_validation_of_parameters():
    with pytest.raises(ValueError):
        Scheduler(base_quantum=0)
    with pytest.raises(ValueError):
        Scheduler(jitter=1.5)
