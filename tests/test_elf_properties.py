"""Property-based tests: ElfBuilder output parses back exactly.

Whatever sections, addresses, flags and symbols go into the writer must
come back out of the reader — this is the invariant the ELFie pipeline
(and the farm's elfie codec, which re-serializes images) leans on.
Also pins the loader-visibility rule: allocatable sections get exactly
one PT_LOAD each; non-allocatable sections get none.
"""

from hypothesis import given, settings, strategies as st

from repro.elf import (
    ET_EXEC,
    PT_LOAD,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
    ElfBuilder,
    ElfFile,
)

FLAG_CHOICES = [0, SHF_ALLOC, SHF_ALLOC | SHF_WRITE,
                SHF_ALLOC | SHF_EXECINSTR]

section_names = st.text(alphabet="abcdefghijklmnop_", min_size=1, max_size=8)

#: name -> (data, flags); addresses are assigned per-index so sections
#: never alias, which keeps the PT_LOAD accounting unambiguous.
section_specs = st.dictionaries(
    section_names,
    st.tuples(st.binary(min_size=1, max_size=128),
              st.sampled_from(FLAG_CHOICES)),
    min_size=1, max_size=6,
)

symbol_specs = st.dictionaries(
    st.text(alphabet="qrstuvwxyz", min_size=1, max_size=8),
    st.integers(min_value=0, max_value=2**48),
    max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(section_specs, symbol_specs,
       st.integers(min_value=0, max_value=2**32))
def test_writer_reader_round_trip(sections, symbols, entry):
    builder = ElfBuilder(e_type=ET_EXEC, entry=entry)
    addresses = {}
    for index, (name, (data, flags)) in enumerate(sorted(sections.items())):
        addresses[name] = 0x10000 * (index + 1)
        builder.add_section(name, data, addr=addresses[name], flags=flags)
    for name, value in symbols.items():
        builder.add_symbol(name, value)
    parsed = ElfFile(builder.build())

    assert parsed.entry == entry
    for name, (data, flags) in sections.items():
        section = parsed.section(name)
        assert section.data == data
        assert section.addr == addresses[name]
        assert section.flags == flags
    symbol_map = parsed.symbol_map()
    for name, value in symbols.items():
        assert symbol_map[name] == value

    # loader visibility: one PT_LOAD per allocatable section, none for
    # the rest
    loads = [seg for seg in parsed.segments if seg.p_type == PT_LOAD]
    allocatable = {addresses[name]: data
                   for name, (data, flags) in sections.items()
                   if flags & SHF_ALLOC}
    assert len(loads) == len(allocatable)
    for segment in loads:
        assert segment.p_vaddr in allocatable
        assert parsed.segment_data(segment) == allocatable[segment.p_vaddr]


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=1, max_size=64),
       st.integers(min_value=0, max_value=2**32))
def test_non_allocatable_sections_are_never_mapped(data, addr):
    builder = ElfBuilder(e_type=ET_EXEC)
    builder.add_section("note", data, addr=addr, flags=0)
    builder.add_section("text", b"\x90" * 16, addr=0x1000, flags=SHF_ALLOC)
    parsed = ElfFile(builder.build())
    loads = [seg for seg in parsed.segments if seg.p_type == PT_LOAD]
    assert len(loads) == 1
    assert loads[0].p_vaddr == 0x1000
