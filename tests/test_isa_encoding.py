"""Unit and property tests for PX instruction encoding/decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import encode, decode, Instruction, Op, InstructionDecodeError
from repro.isa.instructions import (
    OPCODE_TABLE,
    Operand,
    instruction_size,
    BRANCH_OPS,
)


def test_nop_encodes_to_single_byte():
    assert encode(Instruction(Op.NOP)) == b"\x00"


def test_mov_ri_encoding_layout():
    insn = Instruction(Op.MOV_RI, (0, 0x1122334455667788))
    data = encode(insn)
    assert data[0] == int(Op.MOV_RI)
    assert data[1] == 0
    assert data[2:] == (0x1122334455667788).to_bytes(8, "little")
    assert len(data) == instruction_size(Op.MOV_RI)


def test_memory_operand_round_trip():
    insn = Instruction(Op.LD, (3, (4, -128)))
    decoded, size = decode(encode(insn))
    assert decoded == insn
    assert size == insn.size


def test_negative_rel32_round_trip():
    insn = Instruction(Op.JMP, (-20,))
    decoded, _ = decode(encode(insn))
    assert decoded.operands == (-20,)


def test_decode_invalid_opcode_raises():
    with pytest.raises(InstructionDecodeError):
        decode(b"\xff")


def test_decode_truncated_raises():
    data = encode(Instruction(Op.MOV_RI, (0, 1)))
    with pytest.raises(InstructionDecodeError):
        decode(data[:-1])


def test_decode_empty_raises():
    with pytest.raises(InstructionDecodeError):
        decode(b"")


def test_operand_count_validation():
    with pytest.raises(ValueError):
        Instruction(Op.MOV_RI, (0,))


def test_register_out_of_range_rejected_on_encode():
    with pytest.raises(ValueError):
        encode(Instruction(Op.PUSH, (16,)))


def test_branch_classification():
    assert Instruction(Op.JZ, (4,)).is_cond_branch
    assert Instruction(Op.JMP, (4,)).is_branch
    assert not Instruction(Op.JMP, (4,)).is_cond_branch
    assert Instruction(Op.RET).is_branch
    assert not Instruction(Op.ADD_RR, (0, 1)).is_branch


def test_memory_access_classification():
    assert Instruction(Op.LD, (0, (1, 0))).reads_memory
    assert Instruction(Op.ST, ((1, 0), 0)).writes_memory
    assert Instruction(Op.XADD, ((1, 0), 0)).reads_memory
    assert Instruction(Op.XADD, ((1, 0), 0)).writes_memory
    assert Instruction(Op.PUSH, (0,)).writes_memory
    assert Instruction(Op.POP, (0,)).reads_memory


def _operand_strategy(kind):
    if kind in (Operand.R, Operand.X):
        return st.integers(min_value=0, max_value=15)
    if kind == Operand.I64:
        return st.integers(min_value=0, max_value=(1 << 64) - 1)
    if kind in (Operand.I32, Operand.REL32):
        return st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
    if kind == Operand.M:
        return st.tuples(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
        )
    if kind == Operand.F64:
        return st.floats(allow_nan=False, allow_infinity=False)
    raise AssertionError(kind)


@st.composite
def _instructions(draw):
    op = draw(st.sampled_from(sorted(OPCODE_TABLE, key=int)))
    operands = tuple(draw(_operand_strategy(kind)) for kind in OPCODE_TABLE[op])
    return Instruction(op, operands)


@given(_instructions())
def test_encode_decode_round_trip(insn):
    data = encode(insn)
    assert len(data) == insn.size
    decoded, size = decode(data)
    assert size == len(data)
    assert decoded.op == insn.op
    assert decoded.operands == insn.operands


@given(_instructions(), _instructions())
def test_decode_sequences(a, b):
    data = encode(a) + encode(b)
    first, offset = decode(data)
    second, end = decode(data, offset)
    assert first == a
    assert second == b
    assert end == len(data)


def test_all_branch_ops_have_rel32():
    for op in BRANCH_OPS:
        assert OPCODE_TABLE[op] == (Operand.REL32,)
