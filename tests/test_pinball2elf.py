"""Tests for pinball2elf: the paper's core contribution."""

import pytest

from repro.core import (
    MarkerSpec,
    Pinball2Elf,
    Pinball2ElfOptions,
    run_elfie,
)
from repro.core.markers import decode_marker, marker_tag
from repro.elf import ElfFile, ET_EXEC, ET_REL, PT_LOAD, SHF_ALLOC
from repro.isa.instructions import Op
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.pinplay import LogOptions, RegionSpec, extract_sysstate, log_region
from repro.workloads import ProgramBuilder, PhaseSpec, build_executable

LOOP_SOURCE = """
_start:
    mov rbx, 7
    mov rcx, 20000
    fmov xmm3, 2.75
loop:
    imul rbx, 13
    add rbx, rcx
    ld rax, [scratch]
    add rax, rbx
    st [scratch], rax
    sub rcx, 1
    cmp rcx, 0
    jnz loop
    mov rax, 231
    mov rdi, 0
    syscall
"""


@pytest.fixture(scope="module")
def loop_pinball():
    image = build_executable(LOOP_SOURCE, data_source="scratch:\n.quad 0\n")
    region = RegionSpec(start=50000, length=30000, name="loop.r0")
    return log_region(image, region)


@pytest.fixture(scope="module")
def basic_elfie(loop_pinball):
    options = Pinball2ElfOptions(perf_exit=True,
                                 marker=MarkerSpec("sniper", 0x42))
    return Pinball2Elf(loop_pinball, options).convert()


def test_elfie_is_valid_elf_executable(basic_elfie):
    elf = ElfFile(basic_elfie.image)
    assert elf.header.e_type == ET_EXEC
    assert elf.entry == basic_elfie.entry
    assert any(s.p_type == PT_LOAD for s in elf.segments)


def test_elfie_sections_mirror_pinball_layout(loop_pinball, basic_elfie):
    elf = ElfFile(basic_elfie.image)
    names = elf.section_names()
    assert any(name.startswith(".text.") for name in names)
    assert any(name.startswith(".data.") for name in names)
    assert ".text.elfie" in names
    # every captured page address is covered by some section
    covered = []
    for section in elf.sections:
        if section.name.startswith((".text.", ".data.", ".stack.")):
            covered.append((section.addr, section.addr + len(section.data)))
    for addr in loop_pinball.pages:
        assert any(start <= addr < end for start, end in covered), hex(addr)


def test_stack_sections_are_non_allocatable(loop_pinball, basic_elfie):
    elf = ElfFile(basic_elfie.image)
    stack_sections = [s for s in elf.sections if s.name.startswith(".stack.")]
    assert stack_sections
    for section in stack_sections:
        assert not section.flags & SHF_ALLOC
    # and no PT_LOAD segment covers the stack range
    stack_start, stack_end = loop_pinball.stack_range()
    for segment in elf.segments:
        assert not (segment.p_vaddr < stack_end
                    and stack_start < segment.p_vaddr + segment.p_memsz)


def test_elfie_graceful_exit_at_recorded_icount(loop_pinball, basic_elfie):
    run = run_elfie(basic_elfie.image, seed=3)
    assert run.graceful
    recorded = loop_pinball.threads[0].region_icount
    app = run.app_icounts[0]
    # app icount = region length + exit-handler instructions (~150)
    assert recorded <= app <= recorded + 400


class _StopAtRip(Tool):
    """Stops the machine the first time a thread reaches an address."""

    wants_instructions = True

    def __init__(self, rip):
        self.rip = rip
        self.hit_thread = None
        self.snapshot = None

    def on_instruction(self, machine, thread, pc, insn):
        if pc == self.rip and self.hit_thread is None:
            self.hit_thread = thread.tid
            # snapshot BEFORE the instruction at rip executes
            self.snapshot = thread.regs.copy()
            machine.request_stop("roi reached")


def test_elfie_starts_with_exact_captured_state(loop_pinball, basic_elfie):
    """The heart of the paper: at the first application instruction, the
    ELFie's registers and touched memory equal the pinball's capture."""
    from repro.core.elfie import prepare_elfie_machine

    record = loop_pinball.threads[0]
    machine, _ = prepare_elfie_machine(basic_elfie.image, seed=9)
    stopper = _StopAtRip(record.regs.rip)
    machine.attach(stopper)
    status = machine.run(max_instructions=2_000_000)
    assert status.detail == "roi reached"
    captured = record.regs
    live = stopper.snapshot
    assert live.gpr == captured.gpr          # includes rsp
    assert live.rip == captured.rip
    assert live.fs_base == captured.fs_base
    assert live.gs_base == captured.gs_base
    assert live.xmm == captured.xmm
    assert live.flags.to_word() == captured.flags.to_word()
    # captured memory matches, page by page (stack included post-remap)
    for addr, (prot, data) in loop_pinball.pages.items():
        assert machine.mem.read(addr, 64, access=0x1) == data[:64], hex(addr)


def test_elfie_memory_layout_matches_pinball(loop_pinball, basic_elfie):
    """All pinball pages are mapped at their original addresses."""
    from repro.core.elfie import prepare_elfie_machine

    machine, _ = prepare_elfie_machine(basic_elfie.image, seed=1)
    stack_start, stack_end = loop_pinball.stack_range()
    for addr in loop_pinball.pages:
        if stack_start <= addr < stack_end:
            continue  # stack pages appear only after startup remap
        assert machine.mem.is_mapped(addr), hex(addr)


def test_elfie_without_perf_exit_runs_past_region(loop_pinball):
    """Without the graceful-exit counter the ELFie keeps running — here
    to the program's own exit (the captured program is self-contained)."""
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        perf_exit=False, marker=MarkerSpec("sniper", 1))).convert()
    run = run_elfie(artifact.image, seed=2)
    assert run.graceful
    assert run.app_icounts[0] > loop_pinball.threads[0].region_icount


def test_marker_encoding_round_trip():
    for marker_type, tag in (("sniper", 0x42), ("ssc", 0x1234),
                             ("simics", 0x7)):
        encoded = marker_tag(marker_type, tag)
        assert decode_marker(encoded) == (marker_type, tag)


def test_marker_spec_parse():
    spec = MarkerSpec.parse("ssc:0x10")
    assert spec.marker_type == "ssc"
    assert spec.tag == 0x10
    assert MarkerSpec.parse("99").marker_type == "sniper"
    with pytest.raises(ValueError):
        MarkerSpec("bogus", 1)


def test_marker_instruction_present_before_roi(loop_pinball):
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        marker=MarkerSpec("ssc", 0x77))).convert()
    from repro.core.elfie import prepare_elfie_machine

    machine, _ = prepare_elfie_machine(artifact.image, seed=0)
    seen = []

    class MarkerWatch(Tool):
        wants_instructions = True

        def on_instruction(self, machine, thread, pc, insn):
            if insn.op == Op.MARKER:
                seen.append(insn.operands[0])
                machine.request_stop("marker")

    machine.attach(MarkerWatch())
    machine.run(max_instructions=2_000_000)
    assert seen
    assert decode_marker(seen[0]) == ("ssc", 0x77)


def test_object_output_with_linker_script(loop_pinball):
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        output="object")).convert()
    elf = ElfFile(artifact.image)
    assert elf.header.e_type == ET_REL
    assert elf.segments == []
    assert artifact.linker_script is not None
    from repro.elf import LinkerScript

    script = LinkerScript.parse(artifact.linker_script)
    assert script.entry_symbol == "_elfie_start"
    assert script.regions


def test_context_dump_listing(loop_pinball):
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        dump_contexts=True)).convert()
    listing = artifact.context_listing
    assert listing is not None
    assert ".t0.rax:" in listing
    assert ".t0.rip:" in listing
    assert ".t0.xmm3:" in listing


def test_debug_symbols_present(basic_elfie):
    elf = ElfFile(basic_elfie.image)
    symbols = elf.symbol_map()
    assert "_elfie_start" in symbols
    assert ".t0.rax" in symbols
    assert ".t0.start" in symbols
    assert "elfie_on_start" in symbols
    # .t0.start is the captured rip
    assert symbols[".t0.start"] == symbols[".t0.start"]


def test_symbol_values_point_into_context(loop_pinball, basic_elfie):
    """.t0.rax must address the captured rax value inside the ELFie."""
    from repro.core.elfie import prepare_elfie_machine

    elf = ElfFile(basic_elfie.image)
    symbols = elf.symbol_map()
    machine, _ = prepare_elfie_machine(basic_elfie.image, seed=0)
    rax_addr = symbols[".t0.rax"]
    assert machine.mem.read_u64(rax_addr) == loop_pinball.threads[0].regs.get("rax")
    flags_addr = symbols[".t0.rflags"]
    assert (machine.mem.read_u64(flags_addr)
            == loop_pinball.threads[0].regs.flags.to_word())


def test_elfie_save_writes_artifacts(tmp_path, loop_pinball):
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        output="object", dump_contexts=True)).convert()
    path = str(tmp_path / "loop.elfie")
    artifact.save(path)
    assert (tmp_path / "loop.elfie").exists()
    assert (tmp_path / "loop.elfie.lds").exists()
    assert (tmp_path / "loop.elfie.ctx.s").exists()


def test_user_callback_code_is_linked(loop_pinball):
    user = """
elfie_on_start:
    mov rax, 1
    mov rdi, 2
    mov rsi, __user_msg
    mov rdx, 5
    syscall
    ret
__user_msg:
    .ascii "hello"
"""
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        perf_exit=True, user_code=user,
        user_defines=("elfie_on_start",))).convert()
    run = run_elfie(artifact.image, seed=0)
    assert run.stderr.startswith(b"hello")


def test_monitor_thread_calls_elfie_on_exit(loop_pinball):
    user = """
elfie_on_exit:
    mov rax, 1
    mov rdi, 2
    mov rsi, __exit_msg
    mov rdx, 4
    syscall
    ret
__exit_msg:
    .ascii "DONE"
"""
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        perf_exit=True, monitor=True, user_code=user,
        user_defines=("elfie_on_exit",))).convert()
    run = run_elfie(artifact.image, seed=0)
    assert run.graceful
    assert b"DONE" in run.stderr


def test_sysstate_fd_preopen_end_to_end():
    """A file opened before the region is read inside it: a bare ELFie
    fails the read, a sysstate ELFie reproduces the data (§II-C2)."""
    source = """
    _start:
        mov rax, 2
        mov rdi, path
        mov rsi, 0
        syscall
        mov r14, rax
        mov rcx, 5000
    delay:
        sub rcx, 1
        cmp rcx, 0
        jnz delay
        mov rax, 0          ; read(fd, buf, 8) inside the region
        mov rdi, r14
        mov rsi, buf
        mov rdx, 8
        syscall
        mov r13, rax        ; bytes read
        mov rcx, 2000
    tail:
        sub rcx, 1
        cmp rcx, 0
        jnz tail
        mov rax, 231
        mov rdi, r13
        syscall
    path:
        .asciz "/inputs/data.bin"
    """
    image = build_executable(source, data_source="buf:\n.zero 16\n")
    fs = FileSystem()
    fs.create("/inputs/data.bin", b"PAYLOAD!")
    region = RegionSpec(start=3000, length=20000, name="fd.r0")
    pinball = log_region(image, region, fs=fs)
    state = extract_sysstate(pinball)
    assert state.fd_files

    # Bare ELFie: the read fails (no such descriptor) — control flow
    # continues with r13 = error.
    bare = Pinball2Elf(pinball, Pinball2ElfOptions(perf_exit=False)).convert()
    bare_run = run_elfie(bare.image, seed=1)
    assert bare_run.status.kind == "exit"
    assert bare_run.status.code != 8

    # Sysstate ELFie run in the sysstate workdir: read succeeds.
    sysstate_fs = FileSystem()
    workdir = state.write_to(sysstate_fs, "/sysstate")
    fixed = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=False, sysstate=state)).convert()
    fixed_run = run_elfie(fixed.image, seed=1, fs=sysstate_fs,
                          workdir=workdir)
    assert fixed_run.status.kind == "exit"
    assert fixed_run.status.code == 8
    # and the data read matches the original
    assert fixed_run.machine.mem.read(0x600000, 8) == b"PAYLOAD!"


def test_sysstate_brk_restore(loop_pinball):
    state = extract_sysstate(loop_pinball)
    artifact = Pinball2Elf(loop_pinball, Pinball2ElfOptions(
        sysstate=state)).convert()
    run = run_elfie(artifact.image, seed=0)
    assert run.graceful
    assert run.machine.kernel.brk_end == state.first_brk


def test_multithreaded_elfie_restores_all_threads():
    builder = ProgramBuilder(
        name="mt", threads=4,
        phases=[PhaseSpec("compute", 4000, buffer_kb=16),
                PhaseSpec("stream", 4000, buffer_kb=16)],
    )
    image = builder.build()
    region = RegionSpec(start=20000, length=40000, name="mt.r0")
    pinball = log_region(image, region, seed=3)
    assert pinball.num_threads == 4
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, marker=MarkerSpec("sniper", 9))).convert()
    run = run_elfie(artifact.image, seed=4)
    # all four threads entered application code
    assert len(run.startup_icounts) == 4
    assert run.graceful or run.status.kind == "exit"


def test_multithreaded_elfie_icount_varies_with_seed():
    """ELFie non-determinism: with no per-thread exit counters, spin
    loops make per-thread instruction counts differ across scheduler
    seeds (the Fig. 11 effect)."""
    builder = ProgramBuilder(
        name="mtnd", threads=4,
        phases=[PhaseSpec("compute", 3000, buffer_kb=16),
                PhaseSpec("pointer_chase", 3000, buffer_kb=16)],
    )
    image = builder.build()
    region = RegionSpec(start=15000, length=30000, name="mtnd.r0")
    pinball = log_region(image, region, seed=3)
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=False)).convert()
    distributions = set()
    for seed in range(4):
        run = run_elfie(artifact.image, seed=seed,
                        max_instructions=600_000)
        per_thread = tuple(sorted(
            t.icount for t in run.machine.threads.values()))
        distributions.add(per_thread)
    assert len(distributions) > 1


#: A program whose tail lives on a .text page far from its hot loop:
#: a region captured inside the loop never touches the tail page.
ESCAPE_SOURCE = """
_start:
    mov rcx, 30000
region_loop:
    ld rax, [here]
    add rax, 1
    st [here], rax
    sub rcx, 1
    cmp rcx, 0
    jnz region_loop
    mov rdx, far_away
    jmp rdx
.align 4096
.zero 8192
far_away:
    mov rax, 231
    mov rdi, 77
    syscall
"""

ESCAPE_DATA = """
here:
    .quad 0
"""


def test_lazy_pinball_elfie_dies_on_missing_page():
    """The graceful-exit challenge: an ELFie from a lazy (non-fat)
    pinball is missing pages; running past the captured region reaches
    one and dies (paper §I-B)."""
    image = build_executable(ESCAPE_SOURCE, data_source=ESCAPE_DATA)
    region = RegionSpec(start=10000, length=5000)
    pinball = log_region(image, region, LogOptions(fat=False))
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions()).convert()
    run = run_elfie(artifact.image, seed=0, max_instructions=2_000_000)
    assert run.status.kind == "signal"
    assert run.status.signal in (4, 11)


def test_fat_pinball_elfie_survives_where_lazy_dies():
    image = build_executable(ESCAPE_SOURCE, data_source=ESCAPE_DATA)
    region = RegionSpec(start=10000, length=5000)
    fat = log_region(image, region, LogOptions(fat=True))
    artifact = Pinball2Elf(fat, Pinball2ElfOptions()).convert()
    run = run_elfie(artifact.image, seed=0, max_instructions=2_000_000)
    assert run.status.kind == "exit"
    assert run.status.code == 77
