"""Tests for the in-memory filesystem and descriptor table."""

import pytest

from repro.machine.vfs import (
    EBADF,
    ENOENT,
    FileDescriptorTable,
    FileSystem,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    VfsError,
)


@pytest.fixture
def fdt():
    fs = FileSystem()
    fs.create("/data/input.txt", b"0123456789")
    return FileDescriptorTable(fs)


def test_open_read_close(fdt):
    fd = fdt.open("/data/input.txt", O_RDONLY)
    assert fd >= 3
    assert fdt.read(fd, 4) == b"0123"
    assert fdt.read(fd, 100) == b"456789"
    assert fdt.read(fd, 10) == b""
    fdt.close(fd)
    with pytest.raises(VfsError):
        fdt.read(fd, 1)


def test_open_missing_file_raises(fdt):
    with pytest.raises(VfsError) as info:
        fdt.open("/no/such", O_RDONLY)
    assert info.value.errno == ENOENT


def test_create_and_write(fdt):
    fd = fdt.open("/out.txt", O_WRONLY | O_CREAT)
    assert fdt.write(fd, b"abc") == 3
    assert fdt.fs.contents("/out.txt") == b"abc"


def test_truncate_on_open(fdt):
    fd = fdt.open("/data/input.txt", O_RDWR | O_TRUNC)
    assert fdt.fs.contents("/data/input.txt") == b""
    fdt.write(fd, b"new")
    assert fdt.fs.contents("/data/input.txt") == b"new"


def test_append_mode(fdt):
    fd = fdt.open("/data/input.txt", O_WRONLY | O_APPEND)
    fdt.write(fd, b"X")
    assert fdt.fs.contents("/data/input.txt") == b"0123456789X"


def test_lseek_whences(fdt):
    fd = fdt.open("/data/input.txt", O_RDONLY)
    assert fdt.lseek(fd, 5, SEEK_SET) == 5
    assert fdt.read(fd, 2) == b"56"
    assert fdt.lseek(fd, -2, SEEK_CUR) == 5
    assert fdt.lseek(fd, -1, SEEK_END) == 9
    assert fdt.read(fd, 5) == b"9"
    with pytest.raises(VfsError):
        fdt.lseek(fd, -100, SEEK_SET)


def test_dup_shares_offset(fdt):
    fd = fdt.open("/data/input.txt", O_RDONLY)
    dup = fdt.dup(fd)
    assert fdt.read(fd, 3) == b"012"
    assert fdt.read(dup, 3) == b"345"


def test_dup2_targets_specific_descriptor(fdt):
    fd = fdt.open("/data/input.txt", O_RDONLY)
    assert fdt.dup2(fd, 7) == 7
    assert fdt.read(7, 2) == b"01"
    assert fdt.fd_path(7) == "/data/input.txt"


def test_console_fds(fdt):
    fdt.write(1, b"out")
    fdt.write(2, b"err")
    assert bytes(fdt.stdout) == b"out"
    assert bytes(fdt.stderr) == b"err"
    fdt.stdin += b"typed"
    assert fdt.read(0, 3) == b"typ"


def test_console_fd_cannot_seek(fdt):
    with pytest.raises(VfsError):
        fdt.lseek(1, 0, SEEK_SET)


def test_bad_fd_errors(fdt):
    with pytest.raises(VfsError) as info:
        fdt.read(42, 1)
    assert info.value.errno == EBADF
    with pytest.raises(VfsError):
        fdt.close(42)


def test_chroot_style_root_rebasing():
    fs = FileSystem()
    fs.create("/work/sysstate/input.txt", b"proxy")
    fdt = FileDescriptorTable(fs, root="/work/sysstate")
    fd = fdt.open("/input.txt", O_RDONLY)
    assert fdt.read(fd, 5) == b"proxy"
    fd2 = fdt.open("input.txt", O_RDONLY)
    assert fdt.read(fd2, 5) == b"proxy"


def test_path_normalization():
    fs = FileSystem()
    fs.create("/a/b.txt", b"x")
    assert fs.exists("/a/../a/b.txt")
    assert fs.contents("a/b.txt") == b"x"


def test_copy_from():
    src = FileSystem()
    src.create("/one", b"1")
    src.create("/two", b"2")
    dst = FileSystem()
    dst.copy_from(src)
    assert dst.contents("/one") == b"1"
    assert dst.paths() == ["/one", "/two"]


def test_write_extends_file_with_gap(fdt):
    fd = fdt.open("/sparse", O_RDWR | O_CREAT)
    fdt.lseek(fd, 10, SEEK_SET)
    fdt.write(fd, b"end")
    data = fdt.fs.contents("/sparse")
    assert data == b"\x00" * 10 + b"end"
