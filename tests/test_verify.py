"""Tests for the differential replay-fidelity verifier (repro.verify)."""

import copy

import pytest

from repro.core.pinball2elf import Pinball2Elf, Pinball2ElfOptions
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.machine.tool import Tool
from repro.pinplay import LogOptions, RegionSpec, extract_sysstate, log_region
from repro.verify import (
    FuzzCase,
    arch_digest,
    epoch_digest,
    generate_case,
    memory_digest,
    minimize_case,
    run_case,
    side_by_side,
    verify_elfie_entry,
    verify_pinball,
)
from repro.verify.fuzz import build_case
from repro.workloads import build_executable

# A deterministic workload with a non-native syscall (getpid) mid-region:
# the replayer injects its recorded result, so corrupting that record is
# an exact, localizable register-restore bug.
GETPID_PROGRAM = """
_start:
    mov rbx, 1
    mov rcx, 20
loop:
    add rbx, rcx
    sub rcx, 1
    cmp rcx, 0
    jnz loop
    mov rax, 39         ; getpid, mid-region
    syscall
    add rbx, rax
    mov rcx, 20
loop2:
    add rbx, 1
    sub rcx, 1
    cmp rcx, 0
    jnz loop2
    mov rax, 231
    mov rdi, 0
    syscall
"""


@pytest.fixture(scope="module")
def getpid_image():
    return build_executable(GETPID_PROGRAM)


@pytest.fixture(scope="module")
def getpid_pinball(getpid_image):
    # region starts inside the first loop and spans the getpid call
    return log_region(getpid_image,
                      RegionSpec(start=10, length=100, warmup=0,
                                 name="getpid"),
                      options=LogOptions(name="getpid"))


class _SyscallIndex(Tool):
    """Records the region-relative icount just after a syscall retires.

    ``thread.icount`` inside the hook is the 0-based index of the
    syscall instruction itself; the first architectural state that can
    differ is one instruction later.
    """

    def __init__(self, number, base):
        self.number = number
        self.base = base
        self.at = None

    def on_syscall_after(self, machine, thread, number, result):
        if number == self.number and self.at is None:
            self.at = thread.icount - self.base + 1


def _relative_syscall_icount(image, pinball, number):
    """Instructions from region start to just after *number* completes."""
    machine = Machine(seed=0)
    load_elf(machine, image)
    start = pinball.region.warmup_start
    machine.run(max_instructions=start)
    tool = _SyscallIndex(number, base=start)
    machine.attach(tool)
    machine.run(max_instructions=start + pinball.region_icount)
    assert tool.at is not None
    return tool.at


def test_clean_pinball_verifies(getpid_image, getpid_pinball):
    report = verify_pinball(getpid_image, getpid_pinball)
    assert report.ok
    assert report.divergence is None
    assert len(report.epochs) >= 2
    # epoch 0 is the reconstruction check at region entry
    assert report.epochs[0].icount == 0


def test_bisect_localizes_register_restore_bug(getpid_image, getpid_pinball):
    # A corrupted initial register is visible the moment the replay
    # machine is reconstructed: epoch 0, instruction 0.
    bad = copy.deepcopy(getpid_pinball)
    bad.threads[0].regs.gpr[3] += 1  # rbx
    report = verify_pinball(getpid_image, bad)
    assert not report.ok
    assert report.first_bad_epoch == 0
    assert report.divergence is not None
    assert report.divergence.epoch == 0
    assert report.divergence.icount == 0
    assert "rbx" in report.divergence.diff


def test_bisect_localizes_syscall_result_bug(getpid_image, getpid_pinball):
    # Corrupt the recorded getpid result: replay injects the bad value,
    # so the first divergent state is exactly the instruction after the
    # syscall retires.
    bad = copy.deepcopy(getpid_pinball)
    records = [r for r in bad.syscalls if r.number == 39]
    assert len(records) == 1
    records[0].result += 7
    expected = _relative_syscall_icount(getpid_image, getpid_pinball, 39)

    report = verify_pinball(getpid_image, bad)
    assert not report.ok
    assert report.divergence is not None
    assert report.divergence.icount == expected
    assert report.divergence.tid == 0
    assert report.divergence.epoch == report.first_bad_epoch
    assert "rax" in report.divergence.diff


def test_no_bisect_still_reports_bad_epoch(getpid_image, getpid_pinball):
    bad = copy.deepcopy(getpid_pinball)
    bad.threads[0].regs.gpr[1] += 1
    report = verify_pinball(getpid_image, bad, bisect=False)
    assert not report.ok
    assert report.first_bad_epoch == 0
    # without bisection the divergence names the epoch but is not
    # localized to a thread/instruction
    assert report.divergence.epoch == 0
    assert report.divergence.tid == -1


# -- XSAVE / FS / GS round-trip (replay and ELFie paths) -------------------

XSTATE_PROGRAM = """
_start:
    mov rax, 158        ; arch_prctl(ARCH_SET_FS, 0x7100)
    mov rdi, 0x1002
    mov rsi, 0x7100
    syscall
    mov rax, 158        ; arch_prctl(ARCH_SET_GS, 0x7200)
    mov rdi, 0x1001
    mov rsi, 0x7200
    syscall
    fld xmm3, [pi]
    fld xmm7, [e]
    mov rcx, 20
delay:
    sub rcx, 1
    cmp rcx, 0
    jnz delay
    fadd xmm3, xmm7     ; in-region FP state mutation
    fst [out], xmm3
    mov rcx, 40
work:
    sub rcx, 1
    cmp rcx, 0
    jnz work
    mov rax, 231
    mov rdi, 0
    syscall
"""

XSTATE_DATA = """
pi:
.quad 0x400921fb54442d18
e:
.quad 0x4005bf0a8b145769
out:
.quad 0
"""


@pytest.fixture(scope="module")
def xstate_setup():
    image = build_executable(XSTATE_PROGRAM, data_source=XSTATE_DATA)
    # region starts inside the delay loop: FS/GS and xmm3/xmm7 are part
    # of the captured entry state, the fadd/fst happen in-region
    pinball = log_region(image,
                         RegionSpec(start=15, length=80, warmup=0,
                                    name="xstate"),
                         options=LogOptions(name="xstate"))
    return image, pinball


def test_xstate_is_captured(xstate_setup):
    _image, pinball = xstate_setup
    record = pinball.threads[0]
    assert record.regs.fs_base == 0x7100
    assert record.regs.gs_base == 0x7200
    assert record.regs.xmm[3] != 0.0
    assert record.regs.xmm[7] != 0.0


def test_xstate_replay_round_trip(xstate_setup):
    image, pinball = xstate_setup
    report = verify_pinball(image, pinball)
    assert report.ok, report.summary()


def test_xstate_replay_detects_corruption(xstate_setup):
    image, pinball = xstate_setup
    bad = copy.deepcopy(pinball)
    bad.threads[0].regs.fs_base = 0x9999
    report = verify_pinball(image, bad)
    assert not report.ok
    assert "fs_base" in report.divergence.diff

    bad = copy.deepcopy(pinball)
    bad.threads[0].regs.xmm[3] += 1.0
    report = verify_pinball(image, bad)
    assert not report.ok
    assert "xmm" in report.divergence.diff


def test_xstate_elfie_entry_round_trip(xstate_setup):
    _image, pinball = xstate_setup
    state = extract_sysstate(pinball)
    from repro.machine.vfs import FileSystem
    fs = FileSystem()
    workdir = state.write_to(fs)
    artifact = Pinball2Elf(pinball,
                           Pinball2ElfOptions(sysstate=state)).convert()
    report = verify_elfie_entry(artifact.image, pinball, fs=fs,
                                workdir=workdir)
    assert report.ok, report.summary()
    assert report.memory_checked
    assert not report.bad_pages


def test_elfie_entry_detects_corruption(xstate_setup):
    _image, pinball = xstate_setup
    bad = copy.deepcopy(pinball)
    bad.threads[0].regs.gpr[3] += 3  # rbx at entry
    state = extract_sysstate(bad)
    from repro.machine.vfs import FileSystem
    fs = FileSystem()
    workdir = state.write_to(fs)
    artifact = Pinball2Elf(bad, Pinball2ElfOptions(sysstate=state)).convert()
    # verify against the TRUE capture: the ELFie restores the corrupted
    # registers, so the entry check must flag rbx
    report = verify_elfie_entry(artifact.image, pinball, fs=fs,
                                workdir=workdir)
    assert not report.ok
    mismatches = report.register_mismatches[pinball.threads[0].tid]
    assert any("rbx" in row for row in mismatches)


# -- PMU trap capture across the region boundary ---------------------------

PMU_PROGRAM = """
_start:
    mov rbx, 0
    mov rax, 298        ; perf_event_open(INSTRUCTIONS, 60, handler)
    mov rdi, 0
    mov rsi, 60
    mov rdx, handler
    syscall
spin:
    add rbx, 1
    add rbx, 1
    add rbx, 1
    jmp spin
handler:
    mov rax, 231
    mov rdi, 0
    syscall
"""


def test_pmu_trap_survives_region_boundary():
    image = build_executable(PMU_PROGRAM)
    # the trap arms at icount ~5 and fires ~60 instructions later; start
    # the region between the two so the armed counter must be carried
    pinball = log_region(image,
                         RegionSpec(start=20, length=120, warmup=0,
                                    name="pmu"),
                         options=LogOptions(name="pmu"))
    record = pinball.threads[0]
    assert record.pmu_remaining is not None
    assert record.pmu_remaining > 0
    assert record.pmu_handler is not None
    report = verify_pinball(image, pinball)
    assert report.ok, report.summary()


def test_pmu_fields_survive_pinball_serialization(tmp_path):
    image = build_executable(PMU_PROGRAM)
    pinball = log_region(image,
                         RegionSpec(start=20, length=120, warmup=0,
                                    name="pmu"),
                         options=LogOptions(name="pmu"))
    from repro.pinplay.pinball import Pinball
    pinball.save(str(tmp_path))
    loaded = Pinball.load(str(tmp_path), "pmu")
    assert loaded.threads[0].pmu_remaining == \
        pinball.threads[0].pmu_remaining
    assert loaded.threads[0].pmu_handler == pinball.threads[0].pmu_handler


# -- clone-in-region tid allocation ----------------------------------------

CLONE_PROGRAM = """
_start:
    mov rbx, 0
    mov rcx, 30
warm:
    sub rcx, 1
    cmp rcx, 0
    jnz warm
    mov rax, 56         ; clone, INSIDE the region
    mov rdi, 0x100
    mov rsi, wstack_top
    mov rdx, worker
    syscall
    mov rcx, 60
main_work:
    add rbx, 1
    sub rcx, 1
    cmp rcx, 0
    jnz main_work
    mov rax, 231
    mov rdi, 0
    syscall
worker:
    mov rcx, 20
wloop:
    sub rcx, 1
    cmp rcx, 0
    jnz wloop
    mov rax, 60
    mov rdi, 0
    syscall
"""

CLONE_DATA = """
wstack:
.zero 2048
wstack_top:
.quad 0
"""


def test_clone_in_region_reallocates_recorded_tids():
    image = build_executable(CLONE_PROGRAM, data_source=CLONE_DATA)
    pinball = log_region(image,
                         RegionSpec(start=10, length=130, warmup=0,
                                    name="clone"),
                         options=LogOptions(name="clone"))
    # the clone happened inside the window: next_tid must be the
    # region-start value, not the post-clone one
    assert pinball.next_tid == 1
    report = verify_pinball(image, pinball)
    assert report.ok, report.summary()


# -- digests and the differ ------------------------------------------------

def test_digests_change_with_state():
    image = build_executable(GETPID_PROGRAM)
    machine = Machine(seed=0)
    load_elf(machine, image)
    d0 = epoch_digest(machine, index=0, icount=0)
    machine.run(max_instructions=5)
    d1 = epoch_digest(machine, index=0, icount=5)
    assert d0.arch != d1.arch
    assert not d0.matches(d1)
    assert arch_digest(machine) == arch_digest(machine)
    assert memory_digest(machine) == memory_digest(machine)


def test_side_by_side_reports_register_and_memory_rows():
    image = build_executable(GETPID_PROGRAM)
    a = Machine(seed=0)
    load_elf(a, image)
    b = Machine(seed=0)
    load_elf(b, image)
    assert "(no differences)" in side_by_side(a, b)
    b.threads[0].regs.gpr[0] = 0x1234
    b.mem.map(0x900000, 4096, 3)  # page mapped on one side only
    text = side_by_side(a, b)
    assert "rax" in text
    assert "0x900000" in text


# -- fuzzing ---------------------------------------------------------------

def test_generated_cases_round_trip():
    # a few deterministic seeds through the whole pipeline
    for seed in (1, 2, 4):
        case = generate_case(seed)
        outcome = run_case(case)
        assert outcome.ok, "seed %d: %s: %s" % (seed, outcome.stage,
                                                outcome.detail)


def test_fuzz_case_json_round_trip():
    case = generate_case(11)
    assert FuzzCase.from_json(case.to_json()) == case


def test_minimize_preserves_failure():
    # minimization needs a failing case; fake one by checking that a
    # passing case minimizes to itself (no reduction keeps a failure)
    case = generate_case(1)
    reduced = minimize_case(case)
    assert reduced == case


def test_build_case_produces_runnable_image():
    case = FuzzCase(seed=5, features=("arith", "files"), iterations=2)
    image, fs = build_case(case)
    machine = Machine(seed=0, fs=fs)
    load_elf(machine, image)
    status = machine.run(max_instructions=2_000_000)
    assert status.kind == "exit"
