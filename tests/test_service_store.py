"""Tests for the sharded store and the store's crash-safety discipline."""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.farm import ArtifactStore, open_store
from repro.farm.manifest import RunManifest, read_manifest
from repro.service import SHARDS_MARKER, ShardedStore
from repro.service.shards import shard_names


def fill(store, count=12, size=3000):
    keys = {}
    for index in range(count):
        key = "obj/%02d" % index
        keys[key] = {"index": index, "payload": b"x" * size + bytes([index])}
        store.put(key, keys[key], "object")
    return keys


# -- sharded basics ---------------------------------------------------------


def test_sharded_store_round_trips(tmp_path):
    store = ShardedStore(str(tmp_path), shards=3)
    keys = fill(store)
    for key, value in keys.items():
        assert store.contains(key)
        assert store.kind_of(key) == "object"
        assert store.get(key) == value
    assert sorted(store.keys()) == sorted(keys)


def test_sharded_store_spreads_blocks(tmp_path):
    store = ShardedStore(str(tmp_path), shards=3)
    fill(store, count=30)
    populated = [name for name in store.shards
                 if list(store.shard_store(name).block_digests())]
    assert len(populated) >= 2  # 30 distinct blocks cannot all land on one


def test_sharded_store_marker_pins_the_ring(tmp_path):
    ShardedStore(str(tmp_path), shards=3)
    # reopening without a count adopts the marker's ring
    again = ShardedStore(str(tmp_path))
    assert again.shards == shard_names(3)
    # a conflicting count is an error, not a silent re-ring
    with pytest.raises(ValueError, match="rebalance"):
        ShardedStore(str(tmp_path), shards=5)


def test_open_store_dispatches_on_marker(tmp_path):
    plain_root = str(tmp_path / "plain")
    sharded_root = str(tmp_path / "sharded")
    ArtifactStore(plain_root).put("k", 1)
    ShardedStore(sharded_root, shards=2).put("k", 2)
    assert isinstance(open_store(plain_root), ArtifactStore)
    opened = open_store(sharded_root)
    assert isinstance(opened, ShardedStore)
    assert opened.get("k") == 2


# -- read repair / scrub ----------------------------------------------------


def _some_block(store):
    for name in store.shards:
        for digest in store.shard_store(name).block_digests():
            return name, digest
    raise AssertionError("empty store")


def test_read_repair_restores_home_copy(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    keys = fill(store, count=6)
    home, digest = _some_block(store)
    data = store.shard_store(home).read_block(digest)
    other = [name for name in store.shards if name != home][0]
    # strand the only copy on the wrong shard
    store.shard_store(other).write_block(digest, data)
    store.shard_store(home).remove_block(digest)
    assert store.read_block(digest) == data
    assert store.block_repairs[home] == 1
    # the repair left a fresh home copy behind
    assert store.shard_store(home).has_block(digest)
    for key, value in keys.items():
        assert store.get(key) == value


def test_record_read_repair(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    fill(store, count=4)
    key = "obj/00"
    home = store.home_of_key(key)
    other = [name for name in store.shards if name != home][0]
    record = store.shard_store(home).get_record(key)
    store.shard_store(other).put_record(key, record)
    store.shard_store(home).remove_record(key)
    assert store.get_record(key) == record
    assert store.record_repairs[home] == 1


def test_scrub_heals_and_reports_loss(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    fill(store, count=6)
    # strand obj/00's block away from home (healable) ...
    digest = store.get_record("obj/00")["meta"]["blob"]
    home = store.home_of_block(digest)
    data = store.shard_store(home).read_block(digest)
    other = [name for name in store.shards if name != home][0]
    store.shard_store(other).write_block(digest, data)
    store.shard_store(home).remove_block(digest)
    # ... and destroy every copy of another (real loss)
    lost_key = "obj/05"
    record = store.get_record(lost_key)
    lost_digest = record["meta"]["blob"]
    for name in store.shards:
        store.shard_store(name).remove_block(lost_digest)
    report = store.scrub()
    assert report.repaired_blocks == 1
    assert report.lost_keys == [lost_key]
    assert store.verify() == [lost_key]


# -- rebalance --------------------------------------------------------------


def test_rebalance_grows_the_ring(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    keys = fill(store, count=20)
    before_blocks = sum(
        len(list(store.shard_store(name).block_digests()))
        for name in store.shards)
    moved = store.rebalance(shards=3)
    assert moved.shards == 3
    assert store.shards == shard_names(3)
    # nothing lost, placement canonical: a second pass moves nothing
    again = store.rebalance()
    assert again.moved_blocks == 0 and again.moved_records == 0
    after_blocks = sum(
        len(list(store.shard_store(name).block_digests()))
        for name in store.shards)
    assert after_blocks == before_blocks
    for key, value in keys.items():
        assert store.get(key) == value
    # the marker was rewritten, so a fresh open sees the new ring
    assert ShardedStore(str(tmp_path)).shards == shard_names(3)


def test_rebalance_dry_run_moves_nothing(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    fill(store, count=10)
    planned = store.rebalance(shards=4, dry_run=True)
    assert planned.dry_run and planned.moved_blocks > 0
    assert store.shards == shard_names(2)
    assert ShardedStore(str(tmp_path)).shards == shard_names(2)


def test_crashed_rebalance_is_recoverable(tmp_path):
    """Moved-but-uncommitted objects are strays read repair finds."""
    store = ShardedStore(str(tmp_path), shards=2)
    keys = fill(store, count=10)
    # simulate the crash: blocks moved to shard-02's layout, but the
    # marker (committed last) still names the old two-shard ring
    from repro.service.ring import HashRing
    new_ring = HashRing(shard_names(3), vnodes=store.ring.vnodes)
    extra = ArtifactStore(os.path.join(str(tmp_path), "shard-02"))
    for name in store.shards:
        shard = store.shard_store(name)
        for digest in list(shard.block_digests()):
            if new_ring.shard_for(digest) == "shard-02":
                extra.write_block(digest, shard.read_block(digest))
                shard.remove_block(digest)
    reopened = ShardedStore(str(tmp_path))
    assert reopened.shards == shard_names(2)  # old ring still rules
    # ... and every artifact still reads (repair pulls the strays back)
    # after rebalance adopts the strays into the new ring
    reopened.rebalance(shards=3)
    for key, value in keys.items():
        assert reopened.get(key) == value
    assert reopened.verify() == []


# -- gc across shards -------------------------------------------------------


def test_sharded_gc_keeps_live_blocks_anywhere(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    fill(store, count=8)
    home, digest = _some_block(store)
    data = store.shard_store(home).read_block(digest)
    other = [name for name in store.shards if name != home][0]
    store.shard_store(other).write_block(digest, data)  # live stray
    for key in ["obj/%02d" % index for index in range(4)]:
        store.delete(key)
    result = store.gc()
    assert result.removed_blocks > 0
    assert store.verify() == []
    # the stray replica of a live block survived the sweep
    assert store.shard_store(other).has_block(digest)


def test_sharded_stats_per_shard_breakdown(tmp_path):
    store = ShardedStore(str(tmp_path), shards=2)
    fill(store, count=10)
    store.get("obj/00")
    stats = store.stats()
    assert set(stats.shards) == set(shard_names(2))
    assert sum(entry["objects"] for entry in stats.shards.values()) == 10
    assert stats.objects == 10
    report = stats.to_json()
    assert "shards" in report
    for entry in report["shards"].values():
        for field in ("objects", "blocks", "stored_bytes", "hit_rate",
                      "repairs", "dedup_ratio"):
            assert field in entry


# -- crash safety: killed writer, torn manifest -----------------------------


def _writer_loop(root, barrier):
    store = ShardedStore(root)
    barrier.wait()
    index = 0
    while True:
        payload = {"index": index, "blob": os.urandom(40_000)}
        store.put("victim/%04d" % index, payload, "object")
        index += 1


@pytest.mark.parametrize("kill_after_s", [0.05, 0.15])
def test_killed_writer_corrupts_nothing(tmp_path, kill_after_s):
    """SIGKILL mid-put must never leave a corrupt or partial artifact."""
    root = str(tmp_path)
    store = ShardedStore(root, shards=2)
    survivors = fill(store, count=4)
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(2)
    writer = context.Process(target=_writer_loop, args=(root, barrier))
    writer.start()
    barrier.wait()
    time.sleep(kill_after_s)
    os.kill(writer.pid, signal.SIGKILL)
    writer.join(10.0)
    fresh = ShardedStore(root)
    # pre-existing artifacts are untouched
    for key, value in survivors.items():
        assert fresh.get(key) == value
    # whatever the victim managed to commit is fully readable: the
    # record write is the commit point, and it lands after the blocks
    for key in fresh.keys():
        fresh.get(key)
    assert fresh.verify() == []
    # interrupted temp files are swept by gc, not served to readers
    fresh.gc(tmp_ttl_s=0.0)
    for name in fresh.shards:
        shard_root = os.path.join(root, name)
        for dirpath, _dirnames, filenames in os.walk(shard_root):
            for filename in filenames:
                assert not filename.startswith(".tmp-")


def test_manifest_append_is_atomic_per_line(tmp_path):
    path = str(tmp_path / "run.jsonl")
    manifest = RunManifest(path)
    for index in range(5):
        manifest.append({"job": "j%d" % index, "state": "ok"})
    # a torn trailing line (killed writer) must not poison the reader
    with open(path, "ab") as handle:
        handle.write(b'{"job": "torn", "sta')
    records = read_manifest(path)
    assert [record["job"] for record in records] == \
        ["j%d" % index for index in range(5)]
    # appends after the tear start on a fresh line and are readable
    manifest.append({"job": "after", "state": "ok"})
    assert read_manifest(path)[-1]["job"] == "after"


def _manifest_writer(path, worker_id, count):
    manifest = RunManifest(path, resume=True)
    for index in range(count):
        manifest.append({"job": "w%d-%d" % (worker_id, index),
                         "state": "ok"})


def test_manifest_concurrent_appends_interleave_whole_lines(tmp_path):
    path = str(tmp_path / "run.jsonl")
    context = multiprocessing.get_context("fork")
    writers = [context.Process(target=_manifest_writer,
                               args=(path, worker_id, 50))
               for worker_id in range(4)]
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join(30.0)
        assert writer.exitcode == 0
    records = read_manifest(path)
    assert len(records) == 200  # no torn or interleaved lines
    seen = {record["job"] for record in records}
    assert len(seen) == 200


def test_sharded_store_marker_is_json(tmp_path):
    ShardedStore(str(tmp_path), shards=2)
    with open(os.path.join(str(tmp_path), SHARDS_MARKER)) as handle:
        marker = json.load(handle)
    assert marker["format"] == "repro-farm-shards"
    assert marker["shards"] == shard_names(2)


def test_cli_rebalance_and_scrub(tmp_path, capsys):
    from repro.core.cli import main

    root = str(tmp_path / "store")
    store = ShardedStore(root, shards=2)
    fill(store, 6)
    assert main(["farm", "rebalance", "--store", root, "--shards", "3"]) == 0
    out = capsys.readouterr().out
    assert "across 3 shards" in out
    reopened = ShardedStore(root)
    assert len(reopened.shards) == 3
    assert reopened.verify() == []
    assert main(["farm", "scrub", "--store", root]) == 0
    assert "0 lost" in capsys.readouterr().out
