"""Smoke tests: the runnable examples must execute end to end.

Only the two fast examples run here; the validation and multi-threaded
simulation examples exercise the same code paths as the benchmark
harnesses (which cover them at full scale).
"""

import runpy
import sys


def _run_example(path, argv=None):
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_example(capsys):
    _run_example("examples/quickstart.py")
    out = capsys.readouterr().out
    assert "pinball2elf: convert to a stand-alone ELFie" in out
    assert "matches recording: True" in out
    assert "Sniper-like simulation" in out


def test_sysstate_example(capsys):
    _run_example("examples/sysstate_file_replay.py")
    out = capsys.readouterr().out
    assert "read() re-executes natively and fails" in out
    assert "identical to the captured execution" in out
