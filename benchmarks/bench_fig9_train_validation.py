"""Fig. 9: prediction errors, simulation-based vs ELFie-based validation.

SPEC CPU2017 int rate (train inputs, scaled), PinPoints region
selection.  For every app the whole-program CPI and the region-weighted
predicted CPI are computed three ways:

- **simulation-based** (the traditional approach): whole program and
  each region ELFie simulated with the CoreSim-like detailed model,
- **ELFie-based, two instances**: whole program and region ELFies run
  natively with hardware counters, two independent measurement passes
  (different scheduler seeds), as in the paper's two hardware runs.

The paper's observation to reproduce: the errors do not match exactly
across methods, but follow similar trends — and gcc is the hardest app.

The per-app pipelines run through the **checkpoint farm**: a campaign
of profile → cluster → log → pinball2elf → validate jobs fanned over a
worker pool and memoized in a content-addressed artifact store.  The
bench checks the farm path is numerically identical to the direct
path, then re-runs the campaign warm (fully cached) and reports the
cold-vs-warm wall-time reduction — the paper's scale argument: regions
are validated *once* and reused, not regenerated per study.
"""

import time

from conftest import FAST, publish

from repro.analysis import Table, bar_chart, timings_table
from repro.farm import ArtifactStore, executed_jobs, read_manifest
from repro.simpoint import (
    FarmValidation,
    elfie_validation,
    run_pinpoints,
    run_pinpoints_campaign,
    validate_with_elfies,
    validate_with_simulator,
)
from repro.simulators import CoreSim, CoreSimConfig
from repro.workloads import SPEC2017_INT_RATE

APPS = list(SPEC2017_INT_RATE) if not FAST else [
    "502.gcc_r", "505.mcf_r", "531.deepsjeng_r"]

#: Worker processes for the campaign (the acceptance target is
#: concurrency with jobs >= 2, not machine-dependent speedups).
FARM_JOBS = 2


def _simulated_validation(pinpoints, image):
    """The traditional path: everything through the detailed simulator."""
    simulator = CoreSim(CoreSimConfig(frontend="sde"))

    def whole_cpi():
        return simulator.simulate_program(image).user_cpi

    def region_cpi(artifact, region):
        warmup = region.start - region.warmup_start
        result = simulator.simulate_elfie(artifact.image,
                                          roi_budget=region.length,
                                          warmup_budget=warmup)
        if result.measured_instructions < region.length:
            return None  # the ELFie died before the window completed
        return result.measured_cpi

    return validate_with_simulator(pinpoints, whole_cpi, region_cpi)


def _campaign(images, store, manifest_path, params, validations):
    return run_pinpoints_campaign(
        images, store,
        jobs=FARM_JOBS,
        manifest_path=manifest_path,
        slice_size=params["slice_size"],
        warmup=params["warmup"],
        max_k=params["max_k"],
        max_alternates=2,
        validations=validations,
    )


def _direct_reference(image, app_name, params):
    """The pre-farm serial path, for the numeric-identity check."""
    pinpoints = run_pinpoints(
        image, app_name,
        slice_size=params["slice_size"],
        warmup=params["warmup"],
        max_k=params["max_k"],
        max_alternates=2,
    )
    return (
        _simulated_validation(pinpoints, image),
        validate_with_elfies(pinpoints, seed=100, trials=params["trials"]),
        validate_with_elfies(pinpoints, seed=2200, trials=params["trials"]),
    )


def test_fig9_prediction_errors(benchmark, bench_params, tmp_path):
    images = {name: SPEC2017_INT_RATE[name].build(bench_params["input_set"])
              for name in APPS}
    validations = [
        FarmValidation("simulated", _simulated_validation, {}),
        elfie_validation("elfie_a", seed=100,
                         trials=bench_params["trials"]),
        elfie_validation("elfie_b", seed=2200,
                         trials=bench_params["trials"]),
    ]
    store = ArtifactStore(str(tmp_path / "store"))
    cold_manifest = str(tmp_path / "cold.jsonl")
    warm_manifest = str(tmp_path / "warm.jsonl")

    def experiment():
        start = time.perf_counter()
        cold = _campaign(images, store, cold_manifest, bench_params,
                         validations)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = _campaign(images, store, warm_manifest, bench_params,
                         validations)
        warm_wall = time.perf_counter() - start
        results = {
            name: (outcome.validations["simulated"],
                   outcome.validations["elfie_a"],
                   outcome.validations["elfie_b"])
            for name, outcome in cold.items()
        }
        return results, warm, cold_wall, warm_wall

    results, warm, cold_wall, warm_wall = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    # The farm path is numerically identical to the direct path.
    reference_app = APPS[0]
    ref_sim, ref_a, ref_b = _direct_reference(
        images[reference_app], reference_app, bench_params)
    farm_sim, farm_a, farm_b = results[reference_app]
    assert farm_sim.abs_error_percent == ref_sim.abs_error_percent
    assert farm_a.abs_error_percent == ref_a.abs_error_percent
    assert farm_b.abs_error_percent == ref_b.abs_error_percent
    assert farm_a.covered_weight == ref_a.covered_weight

    # Warm run: everything served from the store, no logger/converter
    # executions, and the same numbers come back.
    warm_records = read_manifest(warm_manifest)
    assert not executed_jobs(warm_records, "log")
    assert not executed_jobs(warm_records, "convert")
    assert cold_wall / warm_wall >= 5.0
    for name in APPS:
        assert (warm[name].validations["elfie_a"].abs_error_percent
                == results[name][1].abs_error_percent)

    # The cold campaign fanned out: every job is in the manifest, and
    # with jobs >= 2 more than one worker process executed them.
    cold_records = read_manifest(cold_manifest)
    assert all(record["state"] == "ok" for record in cold_records)
    workers = {record["worker"] for record in cold_records
               if record["cache"] == "miss" and record["worker"]}
    assert FARM_JOBS < 2 or len(workers) >= 2

    table = Table(
        title=("Fig. 9: prediction errors (%), simulation-based vs two "
               "ELFie-based instances"),
        headers=["app", "simulation", "ELFie run 1", "ELFie run 2",
                 "coverage"],
    )
    chart_entries = []
    for app_name, (simulated, elfie_a, elfie_b) in results.items():
        table.add_row(
            app_name,
            "%.2f" % simulated.abs_error_percent,
            "%.2f" % elfie_a.abs_error_percent,
            "%.2f" % elfie_b.abs_error_percent,
            "%.0f%%" % (100 * elfie_a.covered_weight),
        )
        chart_entries.append((app_name, elfie_a.abs_error_percent))
    stats = store.stats()
    rendering = "\n\n".join([
        table.render(),
        bar_chart("ELFie-based prediction error by app (%)",
                  chart_entries, unit="%"),
        timings_table("Checkpoint-farm campaign: cold vs warm store",
                      [("cold (empty store)", cold_wall),
                       ("warm (fully cached)", warm_wall)]),
        "store: %d artifacts, dedup %.1fx, compression %.1fx"
        % (stats.objects, stats.dedup_ratio, stats.compression_ratio),
    ])
    publish("fig9_train_validation", rendering)

    errors_sim = [simulated.abs_error_percent
                  for simulated, _, _ in results.values()]
    errors_elfie = [elfie.abs_error_percent
                    for _, elfie, _ in results.values()]
    # Shape assertions: both methods produce sane, correlated errors.
    assert all(err < 75 for err in errors_sim + errors_elfie)
    # The two ELFie instances agree with each other closely.
    for _, elfie_a, elfie_b in results.values():
        assert abs(elfie_a.abs_error_percent
                   - elfie_b.abs_error_percent) < 12.0
    # Coverage is high (ELFies mostly execute correctly).
    assert all(elfie.covered_weight > 0.7
               for _, elfie, _ in results.values())
