"""Fig. 9: prediction errors, simulation-based vs ELFie-based validation.

SPEC CPU2017 int rate (train inputs, scaled), PinPoints region
selection.  For every app the whole-program CPI and the region-weighted
predicted CPI are computed three ways:

- **simulation-based** (the traditional approach): whole program and
  each region ELFie simulated with the CoreSim-like detailed model,
- **ELFie-based, two instances**: whole program and region ELFies run
  natively with hardware counters, two independent measurement passes
  (different scheduler seeds), as in the paper's two hardware runs.

The paper's observation to reproduce: the errors do not match exactly
across methods, but follow similar trends — and gcc is the hardest app.
"""

from conftest import FAST, publish

from repro.analysis import Table, bar_chart
from repro.simpoint import (
    run_pinpoints,
    validate_with_elfies,
    validate_with_simulator,
)
from repro.simulators import CoreSim, CoreSimConfig
from repro.workloads import SPEC2017_INT_RATE

APPS = list(SPEC2017_INT_RATE) if not FAST else [
    "502.gcc_r", "505.mcf_r", "531.deepsjeng_r"]


def _validate_one(app_name, params):
    app = SPEC2017_INT_RATE[app_name]
    image = app.build(params["input_set"])
    pinpoints = run_pinpoints(
        image, app.name,
        slice_size=params["slice_size"],
        warmup=params["warmup"],
        max_k=params["max_k"],
        max_alternates=2,
    )
    simulator = CoreSim(CoreSimConfig(frontend="sde"))

    def whole_cpi():
        return simulator.simulate_program(image).user_cpi

    def region_cpi(artifact, region):
        warmup = region.start - region.warmup_start
        result = simulator.simulate_elfie(artifact.image,
                                          roi_budget=region.length,
                                          warmup_budget=warmup)
        if result.measured_instructions < region.length:
            return None  # the ELFie died before the window completed
        return result.measured_cpi

    simulated = validate_with_simulator(pinpoints, whole_cpi, region_cpi)
    elfie_a = validate_with_elfies(pinpoints, seed=100,
                                   trials=params["trials"])
    elfie_b = validate_with_elfies(pinpoints, seed=2200,
                                   trials=params["trials"])
    return simulated, elfie_a, elfie_b


def test_fig9_prediction_errors(benchmark, bench_params):
    def experiment():
        results = {}
        for app_name in APPS:
            results[app_name] = _validate_one(app_name, bench_params)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title=("Fig. 9: prediction errors (%), simulation-based vs two "
               "ELFie-based instances"),
        headers=["app", "simulation", "ELFie run 1", "ELFie run 2",
                 "coverage"],
    )
    chart_entries = []
    for app_name, (simulated, elfie_a, elfie_b) in results.items():
        table.add_row(
            app_name,
            "%.2f" % simulated.abs_error_percent,
            "%.2f" % elfie_a.abs_error_percent,
            "%.2f" % elfie_b.abs_error_percent,
            "%.0f%%" % (100 * elfie_a.covered_weight),
        )
        chart_entries.append((app_name, elfie_a.abs_error_percent))
    rendering = table.render() + "\n\n" + bar_chart(
        "ELFie-based prediction error by app (%)", chart_entries, unit="%")
    publish("fig9_train_validation", rendering)

    errors_sim = [simulated.abs_error_percent
                  for simulated, _, _ in results.values()]
    errors_elfie = [elfie.abs_error_percent
                    for _, elfie, _ in results.values()]
    # Shape assertions: both methods produce sane, correlated errors.
    assert all(err < 75 for err in errors_sim + errors_elfie)
    # The two ELFie instances agree with each other closely.
    for _, elfie_a, elfie_b in results.values():
        assert abs(elfie_a.abs_error_percent
                   - elfie_b.abs_error_percent) < 12.0
    # Coverage is high (ELFies mostly execute correctly).
    assert all(elfie.covered_weight > 0.7
               for _, elfie, _ in results.values())
