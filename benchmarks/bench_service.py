"""Checkpoint service throughput: concurrent campaigns and store contention.

Two measurements for the sharded, networked checkpoint farm:

- **campaign concurrency**: N identical-shape (but distinct-workload)
  PinPoints campaigns submitted to one service with 2 workers,
  concurrently vs back-to-back.  The fair-share scheduler should
  overlap the campaigns' independent stages, so the concurrent wall
  clock lands well under the sequential sum.
- **store contention**: concurrent writers pushing artifacts into the
  sharded store vs a single writer pushing the same bytes — the
  per-shard layout plus atomic-rename writes mean contended throughput
  should hold up (no global lock to convoy on).

Both publish machine-readable footers; the numbers are host-dependent,
so (unlike the interpreter-MIPS bench) nothing gates CI — the service
e2e smoke job covers correctness.
"""

import multiprocessing
import threading
import time

from conftest import FAST, publish

from repro.analysis import Table
from repro.service import ServerThread, ShardedStore, connect, worker_main
from repro.simpoint import elfie_validation
from repro.workloads import PhaseSpec, ProgramBuilder

CAMPAIGNS = 2 if FAST else 3
WORKERS = 2
PIPELINE = dict(slice_size=10_000, warmup=20_000, max_k=3 if FAST else 4,
                max_alternates=1)
WRITERS = 2 if FAST else 4
ARTIFACTS_PER_WRITER = 6 if FAST else 16
ARTIFACT_BYTES = 64 * 1024


def _workload(index):
    scale = 30_000 if FAST else 60_000
    return ProgramBuilder(
        name="svc%d" % index, threads=1,
        phases=[PhaseSpec("compute", scale, buffer_kb=8 + 4 * index),
                PhaseSpec("stream", scale, buffer_kb=16)],
    ).build()


def _run_campaign(host, port, label, image):
    from repro.service import run_service_campaign

    with connect(host, port, client_id=label) as client:
        run_service_campaign({label: image}, client,
                             validations=[elfie_validation("v", trials=1)],
                             **PIPELINE)


def _with_service(tmp_path, body):
    with ServerThread(str(tmp_path), shards=2, lease_timeout=20.0) as server:
        host, port = server.server.host, server.server.port
        context = multiprocessing.get_context("fork")
        workers = [context.Process(target=worker_main, args=(host, port),
                                   kwargs=dict(name="w%d" % index,
                                               poll_s=0.3, idle_exit_s=6.0))
                   for index in range(WORKERS)]
        for process in workers:
            process.start()
        try:
            return body(host, port)
        finally:
            for process in workers:
                process.join(120.0)


def bench_concurrent_campaigns(tmp_path_factory):
    images = {"app%d" % index: _workload(index)
              for index in range(CAMPAIGNS)}

    def sequential(host, port):
        started = time.perf_counter()
        for label, image in images.items():
            _run_campaign(host, port, label, image)
        return time.perf_counter() - started

    def concurrent(host, port):
        threads = [threading.Thread(target=_run_campaign,
                                    args=(host, port, label, image))
                   for label, image in images.items()]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return time.perf_counter() - started

    sequential_s = _with_service(
        tmp_path_factory.mktemp("svc-seq"), sequential)
    concurrent_s = _with_service(
        tmp_path_factory.mktemp("svc-conc"), concurrent)
    return sequential_s, concurrent_s


def bench_store_contention(root):
    payloads = [b"%04d" % index + b"\x5a" * (ARTIFACT_BYTES - 4)
                for index in range(WRITERS * ARTIFACTS_PER_WRITER)]

    def write_range(store, start, count):
        for index in range(start, start + count):
            store.put("bench/%04d" % index,
                      {"index": index, "blob": payloads[index]}, "object")

    single_store = ShardedStore(str(root / "single"), shards=2)
    started = time.perf_counter()
    write_range(single_store, 0, len(payloads))
    single_s = time.perf_counter() - started

    contended_store = ShardedStore(str(root / "contended"), shards=2)
    threads = [threading.Thread(
        target=write_range,
        args=(contended_store, index * ARTIFACTS_PER_WRITER,
              ARTIFACTS_PER_WRITER))
        for index in range(WRITERS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    contended_s = time.perf_counter() - started
    assert contended_store.verify() == []
    total_bytes = sum(len(blob) for blob in payloads)
    return single_s, contended_s, total_bytes


def test_bench_service(tmp_path_factory, tmp_path):
    sequential_s, concurrent_s = bench_concurrent_campaigns(tmp_path_factory)
    single_s, contended_s, total_bytes = bench_store_contention(tmp_path)

    table = Table(
        title="Checkpoint service: concurrency and store contention",
        headers=["measurement", "value"],
    )
    table.add_row("campaigns (N)", str(CAMPAIGNS))
    table.add_row("workers", str(WORKERS))
    table.add_row("sequential campaigns (s)", "%.2f" % sequential_s)
    table.add_row("concurrent campaigns (s)", "%.2f" % concurrent_s)
    table.add_row("campaign overlap speedup",
                  "%.2fx" % (sequential_s / concurrent_s))
    table.add_row("store single-writer (MB/s)",
                  "%.1f" % (total_bytes / single_s / 1e6))
    table.add_row("store %d-writer (MB/s)" % WRITERS,
                  "%.1f" % (total_bytes / contended_s / 1e6))
    table.add_row("contention retention",
                  "%.0f%%" % (100.0 * single_s / contended_s))
    text = table.render()
    text += "\ncampaign_speedup: %.3f" % (sequential_s / concurrent_s)
    text += "\ncontention_retention: %.3f" % (single_s / contended_s)
    publish("bench_service", text)
    # sanity floor, not a perf gate: overlap must not LOSE to sequential
    # by more than scheduling noise on a loaded host
    assert concurrent_s < sequential_s * 1.25


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-x", "-q", "-s"]))
