"""Table I: pinball-ELFie differences, including run-time overhead.

The feature rows are properties of the two artifact kinds; the overhead
rows are *measured*: host wall-clock of a native run vs a constrained
pinball replay vs an ELFie run, single- and multi-threaded.  The paper
reports ~15x (ST) and ~40x (MT) for pinball replay and "none (except
start-up code)" for ELFies; the reproduction's replay overhead comes
from its instrumentation layer (syscall interception + enforced
scheduling), so the ratios differ in magnitude but preserve the
ordering: replay >> ELFie ~= native.
"""

import time

from conftest import publish

from repro.analysis import Table
from repro.core import Pinball2Elf, Pinball2ElfOptions, run_elfie
from repro.pinplay import RegionSpec, log_region, replay
from repro.workloads import PhaseSpec, ProgramBuilder


def _wall(func, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def _program(threads):
    return ProgramBuilder(
        name="t1", threads=threads,
        phases=[PhaseSpec("compute", 8000, buffer_kb=16),
                PhaseSpec("stream", 8000, buffer_kb=16)],
    ).build()


def _measure(threads):
    image = _program(threads)
    # span both the compute and the stream phase so the measured mix is
    # representative (memory instrumentation fires on stream)
    region = RegionSpec(start=20_000 * threads, length=120_000 * threads,
                        name="t1.r0")
    pinball = log_region(image, region, seed=1)
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True)).convert()

    from repro.workloads import run_program

    # Native cost of exactly the captured region: time a native run to
    # the region start and one to the region end; the difference is the
    # region's native execution time (same instruction mix).
    def native_to(boundary):
        return lambda: run_program(image, seed=1,
                                   max_instructions=boundary)

    to_start_s = _wall(native_to(region.warmup_start))
    to_end_s = _wall(native_to(region.end))
    native_region_s = max(to_end_s - to_start_s, 1e-9)

    replay_s = _wall(lambda: replay(pinball))

    # The ELFie executes startup + the same region; compare its whole
    # run against native startup-free region time plus nothing — the
    # startup is the ELFie's only overhead, as the paper states.
    elfie_s = _wall(lambda: run_elfie(artifact.image, seed=2,
                                      track_roi=False))
    elfie_result = run_elfie(artifact.image, seed=2, track_roi=False)

    native_per = native_region_s / pinball.region_icount
    replay_per = replay_s / pinball.region_icount
    elfie_per = elfie_s / max(elfie_result.machine.total_icount(), 1)
    return replay_per / native_per, elfie_per / native_per


def test_table1_pinball_elfie_differences(benchmark, bench_params):
    def experiment():
        st_replay, st_elfie = _measure(threads=1)
        mt_replay, mt_elfie = _measure(threads=4)
        return st_replay, st_elfie, mt_replay, mt_elfie

    st_replay, st_elfie, mt_replay, mt_elfie = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    table = Table(
        title="Table I: pinball-ELFie differences",
        headers=["property", "pinballs", "ELFies"],
    )
    table.add_row("Allow constrained replay", "Yes", "No")
    table.add_row("Work across OSes", "Yes", "No")
    table.add_row("Handle all system calls", "Yes", "Most (stateless ones)")
    table.add_row("Allow symbolic debugging", "Yes", "No (hex-only)")
    table.add_row("Run natively", "No", "Yes")
    table.add_row("Exit gracefully", "Yes", "Yes (perf counters)")
    table.add_row("Run with simulators", "Yes (modified)", "Yes (unmodified)")
    table.add_row("Overhead vs native, ST [paper ~15x]",
                  "%.2fx" % st_replay, "%.2fx" % st_elfie)
    table.add_row("Overhead vs native, MT [paper ~40x]",
                  "%.2fx" % mt_replay, "%.2fx" % mt_elfie)
    note = ("note: paper magnitudes come from Pin JIT overhead over\n"
            "bare-metal native runs; this substrate interprets 'native'\n"
            "runs too, compressing the ratio. The ordering (replay >\n"
            "native ~= ELFie) is the reproduced shape.")
    publish("table1_overhead", table.render() + "\n" + note)

    # Shape assertions.  The paper's 15x/40x magnitudes reflect Pin's
    # JIT instrumentation over bare-metal native execution; on this
    # substrate "native" is itself interpreted, which compresses the
    # gap.  What must hold is the ordering: constrained replay costs
    # measurably more per instruction than a native run, an ELFie run
    # is native-speed, and replay is never cheaper than the ELFie.
    assert st_replay > 1.08
    assert mt_replay > 0.95   # MT timing noise; ordering holds on average
    assert st_elfie < st_replay * 1.3
    assert st_elfie < 1.6
