"""Table II: tuning gcc's PinPoints with a longer warmup region.

The paper's Fig. 9 shows a high error for gcc; increasing the warmup
from 800 M to 1.2 B instructions brought the prediction error down
(Table II).  The mechanism is microarchitectural: a longer warmup
leaves caches and TLBs in a state closer to the region's in-context
state, so the measured region CPI better matches its contribution to
the whole run.

Scaled here: warmup 80 K -> 120 K around 20 K-instruction slices, with
an additional *no-warmup* column to show the full trend.
"""

from conftest import publish

from repro.analysis import Table
from repro.simpoint import run_pinpoints, validate_with_elfies
from repro.workloads import SPEC2017_INT_RATE

WARMUPS = (0, 80_000, 120_000)     # paper: 800 M -> 1.2 B


def test_table2_gcc_warmup_tuning(benchmark, bench_params):
    app = SPEC2017_INT_RATE["502.gcc_r"]
    image = app.build(bench_params["input_set"])

    def experiment():
        errors = {}
        for warmup in WARMUPS:
            pinpoints = run_pinpoints(
                image, app.name,
                slice_size=bench_params["slice_size"],
                warmup=warmup,
                max_k=bench_params["max_k"],
                max_alternates=2,
            )
            validation = validate_with_elfies(
                pinpoints, trials=bench_params["trials"])
            errors[warmup] = (validation.abs_error_percent,
                              validation.covered_weight)
        return errors

    errors = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title=("Table II: gcc prediction error vs warmup length "
               "(paper: 800 M -> 1.2 B lowered the error)"),
        headers=["warmup (instructions)", "|error| %", "coverage"],
    )
    for warmup in WARMUPS:
        error, coverage = errors[warmup]
        table.add_row("{:,}".format(warmup), "%.2f" % error,
                      "%.0f%%" % (100 * coverage))
    publish("table2_gcc_warmup", table.render())

    # Shape: warmup helps — the biggest warmup beats no warmup, and
    # does not do worse than the baseline warmup.
    assert errors[120_000][0] <= errors[0][0]
    assert errors[120_000][0] <= errors[80_000][0] + 1.0
