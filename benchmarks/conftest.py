"""Shared fixtures and output plumbing for the paper's tables/figures.

Every bench regenerates one table or figure from the paper and writes
its rendering both to stdout and to ``benchmarks/results/<name>.txt``
(the files EXPERIMENTS.md references).

Scale: all instruction counts are scaled down from the paper (see
DESIGN.md §4).  Set ``REPRO_BENCH_FAST=1`` to shrink the workloads
further for a quick smoke run.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Fast mode: smaller inputs, fewer clusters (for smoke runs).
FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def publish(name: str, text: str) -> None:
    """Print a result artifact and persist it under benchmarks/results."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def bench_params():
    """Suite-wide experiment parameters (paper values, scaled)."""
    if FAST:
        return {
            "input_set": "test",
            "slice_size": 10_000,
            "warmup": 20_000,
            "max_k": 6,
            "trials": 1,
            "mt_region": 240_000,
            "gem5_budget": 10_000,
            "table4_region": 60_000,
        }
    return {
        "input_set": "train",
        "slice_size": 20_000,     # paper: 200 M
        "warmup": 80_000,         # paper: 800 M
        "max_k": 12,              # paper: 50 (scaled with slice count)
        "trials": 1,              # paper: 10 (cut for wall-clock; PMU is noise-free)
        "mt_region": 600_000,     # paper: 2.4 B aggregate
        "gem5_budget": 20_000,    # paper: 1 B slices
        "table4_region": 200_000,  # paper: 10 B single region
    }
