"""LoopPoint vs BBV-SimPoint: selection transfer on spin-heavy MT apps.

The LoopPoint claim (Sabu et al., carried into the ELFies MT workflow):
regions delimited by *work-marker crossing counts* stay meaningful when
the synchronization behaviour of the workload changes, while regions
delimited by *fixed icount windows* drift — spin time shifts every
icount boundary, so a window selected on one run covers a different
phase mix on another.

The protocol here makes that concrete as a **selection-transfer**
experiment:

1. Profile the base variant of each MT app once (scheduler seed 0) and
   select regions both ways from that single run — LoopPoint
   (marker-vector clustering, crossing-count windows) and BBV-SimPoint
   (basic-block vectors, fixed icount slices).  One representative per
   cluster, no alternates: the canonical methodology for both.
2. Perturb the workload: scale the spin-wait delay (lock backoff,
   barrier wait, steal backoff) and change the scheduler seed — the
   kind of drift between the machine regions were selected on and the
   machine they are studied on.
3. Measure each method's claimed windows *in the perturbed run* and
   predict its whole-program CPI.  LoopPoint locates a region by its
   marker window (crossing counts are invariant under spin scaling);
   BBV-SimPoint can only reuse its icount grid slice index.

LoopPoint's predictor is work-denominated (see
``repro.looppoint.validate``): per-crossing cycle and instruction rates
weighted by each cluster's share of total work crossings, predicted
CPI = the ratio of the extrapolations.  Spin inflates both rates
together, so the ratio cancels most of the noise.

Expected shape (the fig. 9 analogue for MT selection): LoopPoint's
mean error beats BBV-SimPoint's, with the largest gap on the
barrier-phase app where spin dominates the schedule.
"""

from conftest import FAST, publish

from repro.analysis import Table, bar_chart
from repro.looppoint import collect_looppoint, select_loop_regions
from repro.simpoint import collect_bbv, select_simpoints
from repro.workloads import MT_APPS

APP_NAMES = ["mt.prodcons", "mt.barrier", "mt.steal"]

#: Both methods select from the same base-variant run, the same slice
#: budget (~64 work crossings per marker slice realizes near the BBV
#: slice size on these apps), the same k cap and cluster seed.
SLICE_MARKERS = 64
SLICE_SIZE = 3_000
MAX_K = 8
CLUSTER_SEED = 42
PROFILE_SEED = 0

#: Perturbation grid: (spin-delay multiplier, scheduler seed).  The
#: base variant (mult 1, seed 0) is what selection saw; every entry
#: here is a run it did not.
GRID = [(1, 1), (1, 2), (3, 1), (3, 2), (3, 3), (6, 1), (6, 3), (0, 2)]
if FAST:
    GRID = [(3, 1), (6, 3), (0, 2)]


def _lp_predict(selection, perturbed_slices):
    """Work-denominated CPI prediction from marker-window transfer.

    Each representative's slice index addresses the same marker window
    in the perturbed profile (work-marker offsets and per-marker work
    totals are spin-invariant, so slice boundaries correspond
    crossing-for-crossing).  Rates are per work crossing; the cluster
    weight is a share of total work, so the extrapolation ratio is the
    predicted whole-program CPI.
    """
    cycles = icount = 0.0
    for cluster in selection.clusters:
        index = cluster.representative
        if index >= len(perturbed_slices):
            continue
        chunk = perturbed_slices[index]
        crossings = sum(chunk.vector.values())
        if not crossings:
            continue
        cycles += cluster.weight * chunk.cycles / crossings
        icount += cluster.weight * chunk.icount / crossings
    return cycles / icount if icount else 0.0


def _bbv_predict(selection, perturbed_profile):
    """Fixed-icount-window prediction: reuse each representative's
    slice index on the perturbed run's icount grid (all BBV-SimPoint
    can do — its windows have no schedule-invariant identity).  Slices
    past the perturbed run's end are dropped and the prediction is
    renormalized over the surviving weight."""
    total = covered = 0.0
    for cluster in selection.clusters:
        index = cluster.representative
        if index >= perturbed_profile.num_slices:
            continue
        total += cluster.weight * perturbed_profile.slice_cpi(index)
        covered += cluster.weight
    return total / covered if covered else 0.0


def _select(app):
    base = app.build("test")
    lp_profile = collect_looppoint(base, slice_markers=SLICE_MARKERS,
                                   seed=PROFILE_SEED)
    lp = select_loop_regions(lp_profile, max_k=MAX_K, seed=CLUSTER_SEED)
    bbv_profile = collect_bbv(base, slice_size=SLICE_SIZE,
                              seed=PROFILE_SEED)
    bbv = select_simpoints(bbv_profile, max_k=MAX_K, seed=CLUSTER_SEED)
    return lp, bbv


def _transfer_errors(app, lp, bbv):
    lp_errors, bbv_errors = [], []
    for mult, seed in GRID:
        perturbed = app.with_spin_delay(app.spin_delay * mult)
        image = perturbed.build("test")
        profile = collect_looppoint(image, slice_markers=SLICE_MARKERS,
                                    seed=seed)
        true_cpi = profile.whole_program_cpi
        lp_cpi = _lp_predict(lp, profile.slices)
        bbv_profile = collect_bbv(image, slice_size=SLICE_SIZE, seed=seed)
        bbv_cpi = _bbv_predict(bbv, bbv_profile)
        lp_errors.append(abs(true_cpi - lp_cpi) / true_cpi * 100)
        bbv_errors.append(abs(true_cpi - bbv_cpi) / true_cpi * 100)
    return lp_errors, bbv_errors


def test_looppoint_vs_bbv_selection_transfer(benchmark):
    apps = {name: MT_APPS[name] for name in APP_NAMES}

    def experiment():
        results = {}
        for name, app in apps.items():
            lp, bbv = _select(app)
            results[name] = (_transfer_errors(app, lp, bbv), lp.k, bbv.k)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title=("LoopPoint vs BBV-SimPoint: CPI prediction error (%%) "
               "under spin/seed perturbation (%d runs per app)"
               % len(GRID)),
        headers=["app", "LoopPoint", "BBV-SimPoint", "worst LP",
                 "worst BBV", "k (LP/BBV)"],
    )
    lp_all, bbv_all = [], []
    chart_entries = []
    for name, ((lp_errors, bbv_errors), lp_k, bbv_k) in results.items():
        lp_mean = sum(lp_errors) / len(lp_errors)
        bbv_mean = sum(bbv_errors) / len(bbv_errors)
        lp_all += lp_errors
        bbv_all += bbv_errors
        table.add_row(name, "%.2f" % lp_mean, "%.2f" % bbv_mean,
                      "%.2f" % max(lp_errors), "%.2f" % max(bbv_errors),
                      "%d/%d" % (lp_k, bbv_k))
        chart_entries.append((name + " LP", lp_mean))
        chart_entries.append((name + " BBV", bbv_mean))
    lp_mean = sum(lp_all) / len(lp_all)
    bbv_mean = sum(bbv_all) / len(bbv_all)
    table.add_row("MEAN", "%.2f" % lp_mean, "%.2f" % bbv_mean,
                  "%.2f" % max(lp_all), "%.2f" % max(bbv_all), "")
    rendering = "\n\n".join([
        table.render(),
        bar_chart("Mean prediction error by app and method (%)",
                  chart_entries, unit="%"),
        ("protocol: select once on the base variant (seed %d), predict "
         "each perturbed variant (spin-delay multiplier x scheduler "
         "seed); single representative per cluster, no alternates."
         % PROFILE_SEED),
    ])
    publish("looppoint_mt", rendering)

    # Sanity: both methods produce finite, plausible errors.
    assert all(err < 75 for err in lp_all + bbv_all)
    # The headline: LoopPoint transfers better overall...
    assert lp_mean < bbv_mean
    # ...and decisively on the spin-wait barrier app, the archetype
    # the marker-denominated windows exist for.
    (lp_barrier, bbv_barrier), _, _ = results["mt.barrier"]
    assert (sum(lp_barrier) / len(lp_barrier)
            < sum(bbv_barrier) / len(bbv_barrier))
