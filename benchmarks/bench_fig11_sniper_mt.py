"""Fig. 11: Sniper results for multi-threaded ELFies and pinballs.

The SPEC CPU2017 OpenMP speed subset runs with eight threads and active
waiting.  For each app a fixed-length multi-threaded region is captured
as a pinball; the pinball is simulated constrained, the ELFie
unconstrained with a ``(PC, count)`` end condition from a profiling
run.  The paper's observations to reproduce:

- constrained pinball simulation retires exactly the recorded
  instruction count,
- unconstrained ELFie simulation retires *more* instructions (spin
  loops run for however long simulated timing makes threads wait) —
  except for the single-threaded ``657.xz_s``, which matches exactly,
- the runtime predictions of the two modes differ (constrained replay
  introduces artificial stalls).
"""

from conftest import FAST, publish

from repro.analysis import Table
from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions
from repro.pinplay import RegionSpec, log_region
from repro.simulators import SniperSim
from repro.simulators.sniper import find_end_condition
from repro.workloads import SPEC2017_OMP_SPEED

APPS = list(SPEC2017_OMP_SPEED)
if FAST:
    APPS = ["638.imagick_s", "657.xz_s"]


def _simulate_app(name, params):
    app = SPEC2017_OMP_SPEED[name]
    image = app.build(params["input_set"])
    region_len = params["mt_region"]
    if app.threads == 1:
        region_len //= 4
    region = RegionSpec(start=region_len // 4, length=region_len,
                        name=name + ".mt")
    pinball = log_region(image, region, seed=5)
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        marker=MarkerSpec("sniper", 0x11))).convert()
    end_pc, end_count = find_end_condition(pinball)
    sim = SniperSim()
    constrained = sim.simulate_pinball(pinball)
    unconstrained = sim.simulate_elfie(artifact.image, end_pc=end_pc,
                                       end_count=end_count, seed=13)
    return pinball, constrained, unconstrained


def test_fig11_sniper_mt_elfies_vs_pinballs(benchmark, bench_params):
    def experiment():
        return {name: _simulate_app(name, bench_params) for name in APPS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title=("Fig. 11: Sniper, multi-threaded ELFies vs pinballs (PB); "
               "instruction counts relative to the recording"),
        headers=["app", "threads", "recorded", "PB sim", "ELFie sim",
                 "ELFie/rec", "PB runtime", "ELFie runtime"],
    )
    ratios = {}
    for name, (pinball, constrained, unconstrained) in results.items():
        ratio = unconstrained.instructions / pinball.region_icount
        ratios[name] = ratio
        table.add_row(
            name,
            pinball.num_threads,
            "{:,}".format(pinball.region_icount),
            "{:,}".format(constrained.instructions),
            "{:,}".format(unconstrained.instructions),
            "%.3fx" % ratio,
            "%.0f" % constrained.runtime_cycles,
            "%.0f" % unconstrained.runtime_cycles,
        )
    publish("fig11_sniper_mt", table.render())

    for name, (pinball, constrained, unconstrained) in results.items():
        # pinball simulation matches the recorded count exactly
        assert constrained.instructions == pinball.region_icount, name
        if pinball.num_threads == 1:
            # xz_s: single-threaded — ELFie matches too (paper)
            assert abs(ratios[name] - 1.0) < 0.02, name
        else:
            # unconstrained runs reach the same work point; the count
            # differs only by spin (a small deficit can appear when the
            # ELFie spins *less* than the recorded native run did)
            assert 0.90 < ratios[name] < 2.5, name
        # runtime predictions of the two modes differ
        assert (constrained.runtime_cycles
                != unconstrained.runtime_cycles), name
    # spin-loop inflation shows on some MT apps (paper: "much higher";
    # our synthetic imbalance is milder, so the tail is thinner)
    mt_ratios = [ratios[name] for name in APPS
                 if results[name][0].num_threads > 1]
    inflated = sum(1 for ratio in mt_ratios if ratio > 1.01)
    assert inflated >= 1
    # and the ST app is the closest-to-exact of all (the xz_s row)
    st_names = [name for name in APPS
                if results[name][0].num_threads == 1]
    for name in st_names:
        assert abs(ratios[name] - 1.0) <= min(
            abs(r - 1.0) for r in mt_ratios) + 0.02
