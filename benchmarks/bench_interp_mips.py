"""Interpreter throughput: superblock fast path vs per-instruction loop.

The tentpole claim of the translation-cache work: decoding straight-line
runs once into flat pre-bound blocks and executing them in a tight local
loop yields >=2x MIPS over the classic per-instruction dispatch loop on
the Table I micro workloads, with bit-identical architectural results.

``cpu.fast_dispatch = False`` forces the slow path, which *is* the
pre-change interpreter loop, so the A/B compares the two
implementations inside one build.  The published artifact carries a
machine-readable ``speedup_ratio:`` footer; CI reruns this bench in
smoke mode (``REPRO_BENCH_FAST=1``) and fails if the fresh ratio drops
more than 20% below the committed baseline.  The ratio — not raw MIPS —
is the gate, because it is host-machine-independent.
"""

import os
import re
import time

from conftest import FAST, RESULTS_DIR, publish

from repro.analysis import Table
from repro.machine import Machine, load_elf
from repro.workloads import PhaseSpec, ProgramBuilder

#: Allowed regression of the fast/slow speedup ratio vs the committed
#: baseline before CI fails the build.
RATIO_TOLERANCE = 0.20

_RATIO_RE = re.compile(r"^speedup_ratio:\s*([0-9.]+)", re.MULTILINE)


def _program(scale):
    return ProgramBuilder(
        name="mips", threads=1,
        phases=[PhaseSpec("compute", scale, buffer_kb=16),
                PhaseSpec("stream", scale, buffer_kb=16)],
    ).build()


def _measure(image, fast, repeats):
    """Best-of-N wall time and the (deterministic) final machine state."""
    best = float("inf")
    machine = None
    for _ in range(repeats):
        candidate = Machine(seed=1)
        load_elf(candidate, image)
        candidate.cpu.fast_dispatch = fast
        started = time.perf_counter()
        status = candidate.run()
        wall = time.perf_counter() - started
        assert status.kind == "exit", status
        if wall < best:
            best = wall
            machine = candidate
    return machine, best


def _arch_state(machine):
    return tuple(sorted(
        (t.tid, t.icount, t.cycles, t.branches, t.llc_misses)
        for t in machine.threads.values()))


def _baseline_ratio():
    """Speedup ratio from the committed results file, if present."""
    path = os.path.join(RESULTS_DIR, "interp_mips.txt")
    try:
        with open(path) as handle:
            match = _RATIO_RE.search(handle.read())
    except OSError:
        return None
    return float(match.group(1)) if match else None


def run_bench(repeats=5):
    # Smoke scale stays large enough that best-of-N wall times are not
    # dominated by scheduler jitter on a busy CI host.
    scale = 10_000 if FAST else 20_000
    image = _program(scale)
    baseline = _baseline_ratio()  # read before publish() overwrites it

    fast_machine, fast_wall = _measure(image, fast=True, repeats=repeats)
    slow_machine, slow_wall = _measure(image, fast=False, repeats=repeats)
    assert _arch_state(fast_machine) == _arch_state(slow_machine)

    icount = sum(t.icount for t in fast_machine.threads.values())
    fast_mips = icount / fast_wall / 1e6
    slow_mips = icount / slow_wall / 1e6
    ratio = fast_mips / slow_mips
    cpu = fast_machine.cpu
    hit_rate = cpu.block_hits / max(1, cpu.block_hits + cpu.block_misses)

    table = Table(
        title="Interpreter MIPS (Table I micro workload, ST)",
        headers=["measure", "value"],
    )
    table.add_row("instructions executed", icount)
    table.add_row("per-instruction loop wall (s)", "%.4f" % slow_wall)
    table.add_row("per-instruction loop MIPS", "%.3f" % slow_mips)
    table.add_row("superblock fast path wall (s)", "%.4f" % fast_wall)
    table.add_row("superblock fast path MIPS", "%.3f" % fast_mips)
    table.add_row("speedup", "%.2fx" % ratio)
    table.add_row("block cache hit rate", "%.4f" % hit_rate)
    publish("interp_mips",
            table.render() + "\nspeedup_ratio: %.3f" % ratio)
    return ratio, baseline, fast_mips, slow_mips


def test_interp_mips(benchmark):
    ratio, baseline, fast_mips, slow_mips = benchmark.pedantic(
        run_bench, rounds=1, iterations=1)
    # the tentpole contract: the block cache at least doubles throughput
    assert ratio >= 2.0, \
        "fast path only %.2fx over the per-instruction loop" % ratio
    if baseline is not None:
        floor = baseline * (1.0 - RATIO_TOLERANCE)
        assert ratio >= floor, \
            "speedup regressed: %.2fx < %.2fx (baseline %.2fx - 20%%)" \
            % (ratio, floor, baseline)


def main():
    ratio, baseline, fast_mips, slow_mips = run_bench()
    print("fast %.2f MIPS, slow %.2f MIPS, speedup %.2fx (baseline %s)"
          % (fast_mips, slow_mips, ratio,
             "%.2fx" % baseline if baseline else "none"))
    if ratio < 2.0:
        raise SystemExit("speedup below the 2x contract")
    if baseline is not None and ratio < baseline * (1.0 - RATIO_TOLERANCE):
        raise SystemExit("speedup regressed >20%% vs baseline %.2fx"
                         % baseline)


if __name__ == "__main__":
    main()
