"""Interpreter throughput: dispatch tiers vs the per-instruction loop.

The perf claim of the interpreter work, measured tier by tier on the
Table I micro workloads:

- ``slow``     — the classic per-instruction dispatch loop (baseline),
- ``block``    — superblock translation cache (round 1: ~2.4x),
- ``chain``    — superblock chaining across block exits,
- ``compiled`` — threaded-code compilation of hot blocks, with
  self-loop blocks spinning inside the generated code.

All tiers must produce bit-identical architectural results; the bench
asserts it on every run for both a single-threaded and a two-thread
workload.  Tier repeats are interleaved (slow, block, chain, compiled,
slow, ...) so each tier's best-of-N samples the same host-noise
environment, and one shape-keyed compiler cache is shared across
repeats so the compiled tier measures steady-state throughput, not
first-run codegen cost (a checkpoint farm compiles a region once and
executes it thousands of times).

The published artifact carries a machine-readable ``speedup_ratio:``
footer (compiled/slow on the ST workload); CI reruns this bench in
smoke mode (``REPRO_BENCH_FAST=1``) and fails if the fresh ratio drops
more than 20% below the committed baseline.  The ratio — not raw MIPS —
is the gate, because it is host-machine-independent.
"""

import os
import re
import time

from conftest import FAST, RESULTS_DIR, publish

from repro.analysis import Table
from repro.machine import Machine, load_elf
from repro.machine.compile import BlockCompiler
from repro.workloads import PhaseSpec, ProgramBuilder

#: Allowed regression of the compiled/slow speedup ratio vs the
#: committed baseline before CI fails the build.
RATIO_TOLERANCE = 0.20

#: Hard floors, independent of the committed baseline: the superblock
#: cache at least doubles throughput, and the compiled tier at least
#: quintuples it (the round-2 contract).
BLOCK_FLOOR = 2.0
COMPILED_FLOOR = 5.0

TIERS = ("slow", "block", "chain", "compiled")

_RATIO_RE = re.compile(r"^speedup_ratio:\s*([0-9.]+)", re.MULTILINE)


def _program(scale, threads=1):
    return ProgramBuilder(
        name="mips", threads=threads,
        phases=[PhaseSpec("compute", scale, buffer_kb=16),
                PhaseSpec("stream", scale, buffer_kb=16)],
    ).build()


def _arch_state(machine):
    return tuple(sorted(
        (t.tid, t.icount, t.cycles, t.branches, t.llc_misses)
        for t in machine.threads.values()))


def _measure_tiers(image, repeats, compiler):
    """Interleaved best-of-N wall time per dispatch tier.

    Returns ``(machines, walls)`` dicts keyed by tier, after asserting
    every tier retired the identical architectural state.
    """
    best = {tier: float("inf") for tier in TIERS}
    machines = {}
    for _ in range(repeats):
        for tier in TIERS:
            candidate = Machine(seed=1)
            load_elf(candidate, image)
            candidate.cpu.set_dispatch(tier)
            candidate.cpu._compiler = compiler
            started = time.perf_counter()
            status = candidate.run()
            wall = time.perf_counter() - started
            assert status.kind == "exit", status
            if wall < best[tier]:
                best[tier] = wall
                machines[tier] = candidate
    reference = _arch_state(machines["slow"])
    for tier in TIERS:
        assert _arch_state(machines[tier]) == reference, \
            "tier %s diverged from the per-instruction loop" % tier
    return machines, best


def _baseline_ratio():
    """Speedup ratio from the committed results file, if present."""
    path = os.path.join(RESULTS_DIR, "interp_mips.txt")
    try:
        with open(path) as handle:
            match = _RATIO_RE.search(handle.read())
    except OSError:
        return None
    return float(match.group(1)) if match else None


def run_bench(repeats=5):
    # Smoke scale stays large enough that best-of-N wall times are not
    # dominated by scheduler jitter on a busy CI host.
    scale = 10_000 if FAST else 20_000
    baseline = _baseline_ratio()  # read before publish() overwrites it
    compiler = BlockCompiler()    # shared: steady-state codegen cache

    st_machines, st_walls = _measure_tiers(
        _program(scale), repeats, compiler)
    mt_machines, mt_walls = _measure_tiers(
        _program(scale // 2, threads=2), max(2, repeats - 2), compiler)

    st_icount = sum(t.icount for t in st_machines["slow"].threads.values())
    mt_icount = sum(t.icount for t in mt_machines["slow"].threads.values())
    st_mips = {t: st_icount / st_walls[t] / 1e6 for t in TIERS}
    mt_mips = {t: mt_icount / mt_walls[t] / 1e6 for t in TIERS}
    ratios = {t: st_mips[t] / st_mips["slow"] for t in TIERS}
    ratio = ratios["compiled"]
    cpu = st_machines["compiled"].cpu
    hit_rate = cpu.block_hits / max(1, cpu.block_hits + cpu.block_misses)

    table = Table(
        title="Interpreter MIPS by dispatch tier (Table I micro workload)",
        headers=["tier", "ST MIPS", "ST speedup", "MT MIPS", "MT speedup"],
    )
    for tier in TIERS:
        table.add_row(
            tier,
            "%.3f" % st_mips[tier],
            "%.2fx" % ratios[tier],
            "%.3f" % mt_mips[tier],
            "%.2fx" % (mt_mips[tier] / mt_mips["slow"]),
        )
    footer = [
        "ST instructions %d, MT instructions %d" % (st_icount, mt_icount),
        "block cache hit rate %.4f (compiled tier, ST)" % hit_rate,
        "compiled blocks %d, compiled calls %d, chain hits %d" % (
            cpu.compiled_blocks, cpu.compiled_calls, cpu.chain_hits),
        "speedup_ratio: %.3f" % ratio,
    ]
    publish("interp_mips", table.render() + "\n" + "\n".join(footer))
    return ratio, ratios, baseline, st_mips


def _check(ratio, ratios, baseline):
    assert ratios["block"] >= BLOCK_FLOOR, \
        "block tier only %.2fx over the per-instruction loop" \
        % ratios["block"]
    assert ratio >= COMPILED_FLOOR, \
        "compiled tier only %.2fx over the per-instruction loop" % ratio
    if baseline is not None:
        floor = baseline * (1.0 - RATIO_TOLERANCE)
        assert ratio >= floor, \
            "speedup regressed: %.2fx < %.2fx (baseline %.2fx - 20%%)" \
            % (ratio, floor, baseline)


def test_interp_mips(benchmark):
    ratio, ratios, baseline, _ = benchmark.pedantic(
        run_bench, rounds=1, iterations=1)
    _check(ratio, ratios, baseline)


def main():
    ratio, ratios, baseline, st_mips = run_bench()
    print("ST MIPS:", "  ".join(
        "%s %.2f (%.2fx)" % (t, st_mips[t], ratios[t]) for t in TIERS))
    print("baseline %s" % ("%.2fx" % baseline if baseline else "none"))
    try:
        _check(ratio, ratios, baseline)
    except AssertionError as exc:
        raise SystemExit(str(exc))


if __name__ == "__main__":
    main()
