"""Table III: basic statistics for the SPEC CPU2017 ref PinPoints run.

The ref case study (§IV-A2) applies PinPoints to the int + fp rate
apps with reference inputs — runs far too long for whole-program
simulation, which is exactly why ELFie-based validation matters.  The
table reports, per app: the dynamic instruction count, the number of
200 M (here 20 K) slices, the chosen cluster count k, and the number of
selected regions.

Scaled: ref inputs are 8x train (paper's ref/train icount ratios vary
by app from ~3x to ~100x; a single factor keeps the suite tractable).
"""

from conftest import FAST, publish

from repro.analysis import Table
from repro.simpoint import collect_bbv, select_simpoints
from repro.workloads import SPEC2017_FP_RATE, SPEC2017_INT_RATE

APPS = {**SPEC2017_INT_RATE, **SPEC2017_FP_RATE}
# keep the bench inside a practical single-core budget: the int suite
# plus a representative fp subset (the full dict runs identically)
_SELECT = list(SPEC2017_INT_RATE)[:7] + ["503.bwaves_r", "519.lbm_r",
                                         "544.nab_r"]
APPS = {name: APPS[name] for name in _SELECT}
if FAST:
    APPS = {name: APPS[name]
            for name in ("502.gcc_r", "505.mcf_r", "519.lbm_r")}


def test_table3_ref_statistics(benchmark, bench_params):
    slice_size = bench_params["slice_size"]

    def experiment():
        stats = {}
        for name, app in APPS.items():
            image = app.build("ref" if not FAST else "train")
            profile = collect_bbv(image, slice_size=slice_size)
            simpoints = select_simpoints(profile,
                                         max_k=bench_params["max_k"])
            stats[name] = (profile.total_icount, profile.num_slices,
                           simpoints.k, app.suite)
        return stats

    stats = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title=("Table III: SPEC CPU2017 ref statistics "
               "(icounts scaled ~1000:1 from the paper)"),
        headers=["app", "suite", "dynamic icount", "slices", "regions (k)"],
    )
    for name, (icount, slices, k, suite) in sorted(stats.items()):
        table.add_row(name, suite, "{:,}".format(icount), slices, k)
    total = sum(icount for icount, _, _, _ in stats.values())
    table.add_row("total", "", "{:,}".format(total), "", "")
    publish("table3_ref_stats", table.render())

    icounts = [icount for icount, _, _, _ in stats.values()]
    # Shape: a spread of program lengths (the paper's 1.3 B - 452 B is
    # compressed by the single ref scale factor; see the module doc)
    if not FAST:
        assert max(icounts) > 1.5 * min(icounts)
    # every app yields a meaningful number of slices and regions
    for name, (icount, slices, k, _) in stats.items():
        assert slices >= 10, name
        assert 1 <= k <= bench_params["max_k"], name
