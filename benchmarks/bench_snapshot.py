"""Snapshot subsystem cost model: capture/restore latency, dedup.

Three measurements for the self-checkpointing VM (DESIGN.md §9):

- **capture / restore latency**: wall clock to suspend a mid-run
  machine into a `MachineSnapshot` and to rebuild a bit-identical
  machine from it, plus the serialized footprint (pages + canonical
  state blob).
- **cold vs incremental store cost**: bytes the content-addressed
  store actually gains when a second checkpoint of the same run lands
  a few quanta after the first — page-block dedup should make the
  increment a small fraction of the cold cost.
- **suspend/resume tax**: end-to-end wall clock of a run that
  checkpoints itself several times (through the canonical encoding)
  vs the straight run, with the digests asserted equal — the price of
  preemptibility on an uninterrupted-equivalent execution.

Numbers are host-dependent, so nothing gates CI; the lockstep job
covers correctness.  A digest-equality assert keeps the bench honest.
"""

import time

from conftest import FAST, publish

from repro.analysis import Table
from repro.farm import ArtifactStore
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.snapshot import MachineSnapshot, capture, restore, snapshot_digest
from repro.workloads import get_app

SUSPEND_AT = 60_000
INCREMENT = 30_000
HOPS = 2 if FAST else 4
REPEATS = 3 if FAST else 10


def _boot(image, seed=0):
    machine = Machine(seed=seed)
    load_elf(machine, image)
    return machine


def _wire(snapshot):
    return MachineSnapshot.from_state_bytes(
        {addr: (prot, bytes(data))
         for addr, (prot, data) in snapshot.pages.items()},
        snapshot.state_bytes())


def bench_capture_restore(image):
    machine = _boot(image)
    assert machine.run(max_instructions=SUSPEND_AT).kind == "stopped"

    started = time.perf_counter()
    for _ in range(REPEATS):
        snapshot = capture(machine)
    capture_s = (time.perf_counter() - started) / REPEATS

    started = time.perf_counter()
    for _ in range(REPEATS):
        resumed = restore(_wire(snapshot))
    restore_s = (time.perf_counter() - started) / REPEATS
    assert snapshot_digest(capture(resumed)) == snapshot_digest(snapshot)

    footprint = snapshot.memory_bytes() + len(snapshot.state_bytes())
    return capture_s, restore_s, footprint, len(snapshot.pages)


def bench_incremental_store(root, image):
    from repro.farm.codec import encode

    machine = _boot(image)
    machine.run(max_instructions=SUSPEND_AT)
    store = ArtifactStore(str(root))
    early = capture(machine)
    store.put("ck0", early, kind="snapshot")
    cold_bytes = store.stats().unique_bytes

    machine.run(max_instructions=SUSPEND_AT + INCREMENT)
    late = capture(machine)
    store.put("ck1", late, kind="snapshot")
    incr_bytes = store.stats().unique_bytes - cold_bytes

    # page-level sharing, separated from the per-snapshot state blob
    # (the state blob is inherently unique to each checkpoint)
    _, early_meta, _ = encode(early, kind="snapshot")
    _, late_meta, _ = encode(late, kind="snapshot")
    early_pages = {digest for _, _, digest in early_meta["pages"]}
    late_pages = [digest for _, _, digest in late_meta["pages"]]
    shared = sum(1 for digest in late_pages if digest in early_pages)
    page_share = shared / len(late_pages)
    return cold_bytes, incr_bytes, page_share


def bench_suspend_resume_tax(image):
    straight = _boot(image)
    started = time.perf_counter()
    straight.run()
    straight_s = time.perf_counter() - started
    total = straight.executed_total

    started = time.perf_counter()
    machine = _boot(image)
    for hop in range(1, HOPS + 1):
        status = machine.run(max_instructions=hop * total // (HOPS + 1))
        assert status.kind == "stopped"
        machine = restore(_wire(capture(machine)))
    machine.run()
    hopped_s = time.perf_counter() - started
    assert machine.executed_total == total
    assert machine.mem.snapshot() == straight.mem.snapshot()
    return straight_s, hopped_s, total


def test_bench_snapshot(tmp_path):
    image = get_app("505.mcf_r").build("test" if FAST else "train")
    capture_s, restore_s, footprint, pages = bench_capture_restore(image)
    cold_bytes, incr_bytes, page_share = bench_incremental_store(
        tmp_path, image)
    straight_s, hopped_s, total = bench_suspend_resume_tax(image)

    table = Table(
        title="Self-checkpointing VM: capture/restore cost",
        headers=["measurement", "value"],
    )
    table.add_row("suspend point (insns)", str(SUSPEND_AT))
    table.add_row("snapshot pages", str(pages))
    table.add_row("snapshot footprint (KB)", "%.0f" % (footprint / 1024))
    table.add_row("capture latency (ms)", "%.2f" % (capture_s * 1e3))
    table.add_row("restore latency (ms)", "%.2f" % (restore_s * 1e3))
    table.add_row("cold store cost (KB)", "%.0f" % (cold_bytes / 1024))
    table.add_row("incremental +%dk insns (KB)" % (INCREMENT // 1000),
                  "%.0f" % (incr_bytes / 1024))
    table.add_row("incremental / cold",
                  "%.0f%%" % (100.0 * incr_bytes / cold_bytes))
    table.add_row("page blocks shared", "%.0f%%" % (100.0 * page_share))
    table.add_row("straight run (s)", "%.2f" % straight_s)
    table.add_row("%d-hop suspend/resume run (s)" % HOPS,
                  "%.2f" % hopped_s)
    table.add_row("suspend/resume tax",
                  "%.1f%%" % (100.0 * (hopped_s - straight_s) / straight_s))
    text = table.render()
    text += "\ncapture_ms: %.3f" % (capture_s * 1e3)
    text += "\nrestore_ms: %.3f" % (restore_s * 1e3)
    text += "\nincremental_fraction: %.3f" % (incr_bytes / cold_bytes)
    text += "\npage_share: %.3f" % page_share
    publish("bench_snapshot", text)
    # dedup sanity (not a perf gate): an incremental checkpoint must
    # reuse the overwhelming majority of the prior one's page blocks
    assert page_share > 0.9


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-x", "-q", "-s"]))
