"""Table IV: application-level vs full-system simulation with CoreSim.

An identical ELFie (a single-region SimPoint of 525.x264_r) is
simulated twice on the CoreSim-like detailed model: once with the
SDE-style user-only front-end and once with the Simics-style
full-system front-end.  Paper numbers for the 10 B-instruction region:
+1.6% ring-0 instructions, +5.2% runtime, +45.4% data footprint — a
disproportionate effect from relatively few OS instructions.
"""

from conftest import publish

from repro.analysis import Table
from repro.simpoint import collect_bbv, select_simpoints
from repro.simulators import CoreSim, CoreSimConfig
from repro.workloads import SPEC2017_INT_RATE
from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions
from repro.pinplay import log_region


def test_table4_user_vs_full_system(benchmark, bench_params):
    app = SPEC2017_INT_RATE["525.x264_r"]
    image = app.build(bench_params["input_set"])
    region_len = bench_params["table4_region"]

    def experiment():
        # single-region SimPoint: the heaviest cluster's representative
        profile = collect_bbv(image, slice_size=region_len)
        simpoints = select_simpoints(profile, max_k=6)
        best = max(simpoints.clusters, key=lambda c: c.weight)
        region = simpoints.regions()[0]
        for candidate in simpoints.regions():
            if candidate.name.endswith(str(best.cluster_id)):
                region = candidate
                break
        pinball = log_region(image, region, seed=1)
        artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
            perf_exit=True, marker=MarkerSpec("simics", 0x1))).convert()
        user = CoreSim(CoreSimConfig(frontend="sde")).simulate_elfie(
            artifact.image, roi_budget=region_len)
        full = CoreSim(CoreSimConfig(frontend="simics")).simulate_elfie(
            artifact.image, roi_budget=region_len)
        return user, full

    user, full = benchmark.pedantic(experiment, rounds=1, iterations=1)

    def delta(new, old):
        return 100.0 * (new - old) / old if old else 0.0

    table = Table(
        title=("Table IV: user-only (SDE) vs full-system (Simics) "
               "CoreSim simulation of one x264 ELFie"),
        headers=["statistic", "user-only", "full-system", "delta",
                 "paper delta"],
    )
    table.add_row("ring-3 instructions", user.instructions_ring3,
                  full.instructions_ring3, "0.0%", "0.0%")
    table.add_row("ring-0 instructions", user.instructions_ring0,
                  full.instructions_ring0,
                  "+%.1f%% of ring3" % (100.0 * full.instructions_ring0
                                        / full.instructions_ring3),
                  "+1.6%")
    table.add_row("runtime (cycles)", "%.0f" % user.runtime_cycles,
                  "%.0f" % full.runtime_cycles,
                  "%+.1f%%" % delta(full.runtime_cycles,
                                    user.runtime_cycles), "+5.2%")
    table.add_row("data footprint (KiB)",
                  user.data_footprint_bytes // 1024,
                  full.data_footprint_bytes // 1024,
                  "%+.1f%%" % delta(full.data_footprint_bytes,
                                    user.data_footprint_bytes), "+45.4%")
    table.add_row("DTLB misses", user.dtlb_misses, full.dtlb_misses,
                  "%+.1f%%" % delta(full.dtlb_misses, user.dtlb_misses),
                  "n/a")
    table.add_row("LLC misses", user.llc_misses, full.llc_misses,
                  "%+.1f%%" % delta(full.llc_misses, user.llc_misses),
                  "n/a")
    table.add_row("prefetch lines", user.prefetch_lines,
                  full.prefetch_lines,
                  "%+.1f%%" % delta(full.prefetch_lines,
                                    user.prefetch_lines), "n/a")
    publish("table4_fullsystem", table.render())

    # Shape assertions (Table IV's qualitative content).
    assert user.instructions_ring0 == 0
    assert user.instructions_ring3 == full.instructions_ring3
    ring0_share = full.instructions_ring0 / full.instructions_ring3
    assert 0.001 < ring0_share < 0.08
    runtime_delta = ((full.runtime_cycles - user.runtime_cycles)
                     / user.runtime_cycles)
    # the few OS instructions have a disproportionate runtime effect
    assert runtime_delta > ring0_share
    assert full.data_footprint_bytes > user.data_footprint_bytes
    assert full.dtlb_misses > user.dtlb_misses
