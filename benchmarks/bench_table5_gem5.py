"""Table V: binary-driven simulation of ELFies with gem5 (SE mode).

Nineteen SPEC CPU2006 applications, one 1 B-instruction (scaled: 20 K)
SimPoint representative each, simulated on two processor
configurations — Nehalem-like and Haswell-like — to study the impact of
scaling critical resources (register file, ROB, load/store queues).

The table reports, per app: the number of slices in the whole run, the
representative slice picked by SimPoint, and the IPC under both
configurations.  The reproduced shape: the Haswell-like configuration
never loses, and gains most on memory-bound applications.
"""

from conftest import FAST, publish

from repro.analysis import Table
from repro.core import MarkerSpec, Pinball2Elf, Pinball2ElfOptions
from repro.pinplay import log_region
from repro.simpoint import collect_bbv, select_simpoints
from repro.simulators import Gem5Sim, HASWELL_LIKE, NEHALEM_LIKE
from repro.workloads import SPEC2006_SUBSET

APPS = list(SPEC2006_SUBSET)
if FAST:
    APPS = APPS[:4]


def _simulate_app(name, params):
    app = SPEC2006_SUBSET[name]
    image = app.build(params["input_set"])
    slice_size = params["gem5_budget"]
    profile = collect_bbv(image, slice_size=slice_size)
    simpoints = select_simpoints(profile, max_k=8)
    # "the most representative region": the heaviest cluster's
    # representative, falling back to the next candidate if the slice
    # cannot be fully captured (the run's final short slice)
    best = max(simpoints.clusters, key=lambda c: c.weight)
    slice_index = best.representative
    for rank in range(len(best.candidates)):
        candidate = best.alternate(rank)
        if candidate is not None and (
                (candidate + 1) * slice_size <= profile.total_icount):
            slice_index = candidate
            break
    from repro.pinplay import RegionSpec

    region = RegionSpec(start=slice_index * slice_size, length=slice_size,
                        warmup=2 * slice_size, name=name + ".rep",
                        weight=best.weight)
    pinball = log_region(image, region, seed=1)
    artifact = Pinball2Elf(pinball, Pinball2ElfOptions(
        perf_exit=True, marker=MarkerSpec("sniper", 0x5))).convert()
    warmup = region.start - region.warmup_start
    nehalem = Gem5Sim(NEHALEM_LIKE).simulate_elfie(
        artifact.image, roi_budget=region.length, warmup_budget=warmup)
    haswell = Gem5Sim(HASWELL_LIKE).simulate_elfie(
        artifact.image, roi_budget=region.length, warmup_budget=warmup)
    return profile.num_slices, slice_index, nehalem.ipc, haswell.ipc


def test_table5_gem5_two_configs(benchmark, bench_params):
    def experiment():
        return {name: _simulate_app(name, bench_params) for name in APPS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title=("Table V: gem5 SE-mode IPC of one SimPoint ELFie per app, "
               "Nehalem-like vs Haswell-like"),
        headers=["app", "total slices", "rep slice", "IPC nehalem",
                 "IPC haswell", "gain"],
    )
    gains = []
    for name, (slices, rep, nehalem_ipc, haswell_ipc) in sorted(
            results.items()):
        gain = haswell_ipc / nehalem_ipc - 1.0 if nehalem_ipc else 0.0
        gains.append(gain)
        table.add_row(name, slices, rep, "%.3f" % nehalem_ipc,
                      "%.3f" % haswell_ipc, "%+.1f%%" % (100 * gain))
    publish("table5_gem5", table.render())

    # Shape: Haswell-like never loses; some apps benefit noticeably;
    # IPCs stay within the 4-wide machine's bounds.
    assert all(gain >= -0.01 for gain in gains)
    assert any(gain > 0.05 for gain in gains)
    for name, (_, _, nehalem_ipc, haswell_ipc) in results.items():
        assert 0 < nehalem_ipc <= 4.0, name
        assert 0 < haswell_ipc <= 4.0, name
