"""Observability overhead: the disabled hook path on Table I workloads.

The contract the ``repro.observe`` null-object design makes: with
observability *disabled* (the default), an instrumented call site costs
one module-attribute lookup plus an ``enabled`` test, and hooks on the
interpreter's hot path fire at scheduler-quantum granularity — never
per instruction.  This bench holds the whole pipeline to <3%
instruction-throughput overhead on the Table I micro workloads.

Methodology: the hook sites that a native run crosses are one guard per
scheduler quantum (``Cpu.run_thread``) and one per syscall
(``Kernel.dispatch``).  We measure (a) the real per-guard cost with a
tight loop over the actual disabled-path code, (b) the workload's
native wall time and hook-site count, and report the overhead fraction
``guard_cost x sites / wall``.  An enabled (tracing + metrics) A/B run
is reported alongside for context.
"""

import time

from conftest import publish

from repro.analysis import Table
from repro.machine.scheduler import Scheduler
from repro.observe import hooks
from repro.workloads import PhaseSpec, ProgramBuilder, run_program


def _wall(func, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def _program(threads=1):
    return ProgramBuilder(
        name="t1", threads=threads,
        phases=[PhaseSpec("compute", 8000, buffer_kb=16),
                PhaseSpec("stream", 8000, buffer_kb=16)],
    ).build()


def _guard_cost_s(iterations=200_000):
    """Per-site cost of the disabled path: attr lookup + enabled test."""
    assert not hooks.OBS.enabled

    def loop():
        for _ in range(iterations):
            obs = hooks.OBS
            if obs.enabled:
                raise AssertionError("disabled path only")

    def empty():
        for _ in range(iterations):
            pass

    return max(_wall(loop) - _wall(empty), 0.0) / iterations


def test_observe_disabled_overhead(benchmark, bench_params):
    image = _program()

    def experiment():
        machine, status, _ = run_program(image, seed=1)
        assert status.kind == "exit"

        icount = sum(t.icount for t in machine.threads.values())
        syscalls = len(machine.kernel.trace)
        # hook sites a native run crosses: one guard per scheduler
        # quantum in Cpu.run_thread, one per syscall in Kernel.dispatch
        quantum = Scheduler().base_quantum
        sites = icount / quantum + syscalls

        native_s = _wall(lambda: run_program(image, seed=1))
        guard_s = _guard_cost_s()
        overhead_pct = 100.0 * guard_s * sites / native_s

        def enabled_run():
            with hooks.observed():
                run_program(image, seed=1)

        enabled_s = _wall(enabled_run)
        return (icount, syscalls, sites, native_s, guard_s, overhead_pct,
                enabled_s)

    (icount, syscalls, sites, native_s, guard_s, overhead_pct,
     enabled_s) = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title="Observability overhead (Table I micro workload, ST)",
        headers=["measure", "value"],
    )
    table.add_row("instructions executed", icount)
    table.add_row("syscalls", syscalls)
    table.add_row("hook sites crossed", "%.0f" % sites)
    table.add_row("native wall (s)", "%.4f" % native_s)
    table.add_row("per-site guard cost (ns)", "%.1f" % (guard_s * 1e9))
    table.add_row("disabled overhead (%)", "%.4f" % overhead_pct)
    table.add_row("enabled wall (s)", "%.4f" % enabled_s)
    table.add_row("enabled slowdown", "%.3fx" % (enabled_s / native_s))
    publish("observe_overhead", table.render())

    # the tentpole contract: <3% with observability disabled
    assert overhead_pct < 3.0
    # and even fully enabled, quantum-granularity hooks stay cheap
    assert enabled_s < native_s * 1.5
