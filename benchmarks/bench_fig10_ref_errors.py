"""Fig. 10: SPEC CPU2017 ref PinPoints prediction errors.

The point of this case study (§IV-A2): with ELFies, validation of the
*reference*-input region selection is possible at all — whole-program
simulation at this scale is out of reach, but native whole-program runs
and native region ELFie runs are cheap.  Alternate representatives
(second/third-best slice per cluster) recover coverage when a primary
ELFie fails, reaching 90%+ in most cases.

Scaled: ref = 8x train; a 6-app subset of int+fp rate keeps the bench
inside a practical budget (the per-app pipeline is identical for the
full suite — pass the full dict below to run it).
"""

from conftest import FAST, publish

from repro.analysis import Table, bar_chart
from repro.simpoint import run_pinpoints, validate_with_elfies
from repro.workloads import SPEC2017_FP_RATE, SPEC2017_INT_RATE

APPS = ["502.gcc_r", "505.mcf_r", "519.lbm_r", "544.nab_r"]
if FAST:
    APPS = APPS[:2]
_ALL = {**SPEC2017_INT_RATE, **SPEC2017_FP_RATE}


def test_fig10_ref_prediction_errors(benchmark, bench_params):
    def experiment():
        results = {}
        for name in APPS:
            app = _ALL[name]
            image = app.build("ref" if not FAST else "train")
            pinpoints = run_pinpoints(
                image, app.name,
                slice_size=bench_params["slice_size"],
                warmup=bench_params["warmup"],
                max_k=bench_params["max_k"],
                max_alternates=2,
            )
            validation = validate_with_elfies(pinpoints, trials=1)
            no_alternates = validate_with_elfies(pinpoints, trials=1,
                                                 use_alternates=False)
            results[name] = (validation, no_alternates)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        title="Fig. 10: ref PinPoints prediction errors (ELFie-based)",
        headers=["app", "|error| %", "coverage", "coverage w/o alternates",
                 "alternates used"],
    )
    chart = []
    for name, (validation, no_alternates) in results.items():
        used = sum(1 for m in validation.measurements
                   if m.used_alternate)
        table.add_row(
            name,
            "%.2f" % validation.abs_error_percent,
            "%.0f%%" % (100 * validation.covered_weight),
            "%.0f%%" % (100 * no_alternates.covered_weight),
            used,
        )
        chart.append((name, validation.abs_error_percent))
    rendering = table.render() + "\n\n" + bar_chart(
        "ref prediction error by app (%)", chart, unit="%")
    publish("fig10_ref_errors", rendering)

    # Shape: coverage reaches 90%+ in most cases (paper's claim), and
    # alternates never reduce coverage.
    coverages = [validation.covered_weight
                 for validation, _ in results.values()]
    high = sum(1 for cov in coverages if cov >= 0.9)
    assert high >= len(coverages) // 2 + 1
    for validation, no_alternates in results.values():
        assert validation.covered_weight >= no_alternates.covered_weight
        assert validation.abs_error_percent < 60
