"""Fig. 10: SPEC CPU2017 ref PinPoints prediction errors.

The point of this case study (§IV-A2): with ELFies, validation of the
*reference*-input region selection is possible at all — whole-program
simulation at this scale is out of reach, but native whole-program runs
and native region ELFie runs are cheap.  Alternate representatives
(second/third-best slice per cluster) recover coverage when a primary
ELFie fails, reaching 90%+ in most cases.

Scaled: ref = 8x train; a 6-app subset of int+fp rate keeps the bench
inside a practical budget (the per-app pipeline is identical for the
full suite — pass the full dict below to run it).

The per-app pipelines run through the checkpoint farm (see
bench_fig9_train_validation.py): a cold campaign populates the
content-addressed store, a warm campaign re-validates from cache with
zero logger/converter executions, and the bench asserts the farm path
matches the direct path exactly.
"""

import time

from conftest import FAST, publish

from repro.analysis import Table, bar_chart, timings_table
from repro.farm import ArtifactStore, executed_jobs, read_manifest
from repro.simpoint import (
    elfie_validation,
    run_pinpoints,
    run_pinpoints_campaign,
    validate_with_elfies,
)
from repro.workloads import SPEC2017_FP_RATE, SPEC2017_INT_RATE

APPS = ["502.gcc_r", "505.mcf_r", "519.lbm_r", "544.nab_r"]
if FAST:
    APPS = APPS[:2]
_ALL = {**SPEC2017_INT_RATE, **SPEC2017_FP_RATE}

FARM_JOBS = 2


def _campaign(images, store, manifest_path, params, validations):
    return run_pinpoints_campaign(
        images, store,
        jobs=FARM_JOBS,
        manifest_path=manifest_path,
        slice_size=params["slice_size"],
        warmup=params["warmup"],
        max_k=params["max_k"],
        max_alternates=2,
        validations=validations,
    )


def test_fig10_ref_prediction_errors(benchmark, bench_params, tmp_path):
    input_set = "ref" if not FAST else "train"
    images = {name: _ALL[name].build(input_set) for name in APPS}
    validations = [
        elfie_validation("with_alternates", trials=1),
        elfie_validation("no_alternates", trials=1, use_alternates=False),
    ]
    store = ArtifactStore(str(tmp_path / "store"))
    cold_manifest = str(tmp_path / "cold.jsonl")
    warm_manifest = str(tmp_path / "warm.jsonl")

    def experiment():
        start = time.perf_counter()
        cold = _campaign(images, store, cold_manifest, bench_params,
                         validations)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = _campaign(images, store, warm_manifest, bench_params,
                         validations)
        warm_wall = time.perf_counter() - start
        results = {
            name: (outcome.validations["with_alternates"],
                   outcome.validations["no_alternates"])
            for name, outcome in cold.items()
        }
        return results, warm, cold_wall, warm_wall

    results, warm, cold_wall, warm_wall = benchmark.pedantic(
        experiment, rounds=1, iterations=1)

    # Farm path == direct path, bit for bit.
    reference_app = APPS[0]
    direct = run_pinpoints(
        images[reference_app], reference_app,
        slice_size=bench_params["slice_size"],
        warmup=bench_params["warmup"],
        max_k=bench_params["max_k"],
        max_alternates=2,
    )
    ref_with = validate_with_elfies(direct, trials=1)
    ref_without = validate_with_elfies(direct, trials=1,
                                       use_alternates=False)
    farm_with, farm_without = results[reference_app]
    assert farm_with.abs_error_percent == ref_with.abs_error_percent
    assert farm_with.covered_weight == ref_with.covered_weight
    assert farm_without.covered_weight == ref_without.covered_weight

    # Warm campaign: fully cached, no capture or conversion work.
    warm_records = read_manifest(warm_manifest)
    assert not executed_jobs(warm_records, "log")
    assert not executed_jobs(warm_records, "convert")
    assert cold_wall / warm_wall >= 5.0
    for name in APPS:
        assert (warm[name].validations["with_alternates"].abs_error_percent
                == results[name][0].abs_error_percent)
    cold_records = read_manifest(cold_manifest)
    assert all(record["state"] == "ok" for record in cold_records)

    table = Table(
        title="Fig. 10: ref PinPoints prediction errors (ELFie-based)",
        headers=["app", "|error| %", "coverage", "coverage w/o alternates",
                 "alternates used"],
    )
    chart = []
    for name, (validation, no_alternates) in results.items():
        used = sum(1 for m in validation.measurements
                   if m.used_alternate)
        table.add_row(
            name,
            "%.2f" % validation.abs_error_percent,
            "%.0f%%" % (100 * validation.covered_weight),
            "%.0f%%" % (100 * no_alternates.covered_weight),
            used,
        )
        chart.append((name, validation.abs_error_percent))
    stats = store.stats()
    rendering = "\n\n".join([
        table.render(),
        bar_chart("ref prediction error by app (%)", chart, unit="%"),
        timings_table("Checkpoint-farm campaign: cold vs warm store",
                      [("cold (empty store)", cold_wall),
                       ("warm (fully cached)", warm_wall)]),
        "store: %d artifacts, dedup %.1fx, compression %.1fx"
        % (stats.objects, stats.dedup_ratio, stats.compression_ratio),
    ])
    publish("fig10_ref_errors", rendering)

    # Shape: coverage reaches 90%+ in most cases (paper's claim), and
    # alternates never reduce coverage.
    coverages = [validation.covered_weight
                 for validation, _ in results.values()]
    high = sum(1 for cov in coverages if cov >= 0.9)
    assert high >= len(coverages) // 2 + 1
    for validation, no_alternates in results.values():
        assert validation.covered_weight >= no_alternates.covered_weight
        assert validation.abs_error_percent < 60
