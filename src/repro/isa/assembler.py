"""Two-pass assembler for PX assembly text.

The syntax is deliberately close to AT&T-free Intel syntax::

    start:
        mov rax, 60          ; register, immediate or label
        ld rbx, [rax+8]      ; 8-byte load
        st [rbx-16], rcx
        add rax, rbx
        cmp rax, 100
        jl start
        syscall
    table:
        .quad start          ; label value as data (thread-entry tables)
        .long 5
        .byte 0xff
        .ascii "hello"
        .zero 16
        .align 8

Labels may be used as 64-bit immediates (``mov rax, label``), as branch
targets, and in ``.quad`` data — exactly what ELFie startup code needs
for its thread-entry tables.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.encoding import encode
from repro.isa.instructions import (
    Instruction,
    Op,
    OPCODE_TABLE,
    OPERAND_SIZE,
    Operand,
)
from repro.isa.registers import GPR_INDEX, XMM_INDEX


class AssemblyError(Exception):
    """Raised on any syntax or semantic error in assembly input."""


@dataclass(frozen=True)
class LabelRef:
    """A symbolic reference resolved during the second pass."""

    name: str
    addend: int = 0


# Internal operand classification produced by the parser.
_REG = "reg"
_XREG = "xreg"
_IMM = "imm"
_FLT = "flt"
_MEM = "mem"
_SYM = "sym"
_MEMABS = "memabs"   # [label] — expanded via the r11 scratch register

#: Register used to expand absolute memory operands ([label]); by
#: convention r11 is a caller-clobbered scratch register (as on x86-64,
#: where the kernel clobbers it on syscall).
SCRATCH_REG = 11


@dataclass
class _Item:
    """One assembled item: an instruction or a data directive blob."""

    kind: str                      # "insn" | "data"
    size: int
    op: Optional[Op] = None
    operands: Tuple[object, ...] = ()
    data: bytes = b""
    sym_quads: List[Tuple[int, LabelRef]] = field(default_factory=list)
    line: int = 0


@dataclass
class AssembledProgram:
    """Result of assembling a source text or emit sequence.

    ``relocs`` lists the byte offsets (relative to ``base``) of every
    8-byte field holding a label's *absolute* address — MOV_RI/JMPABS
    immediates and ``.quad label`` slots.  A loader sliding the image
    (ASLR) must add the slide to each of these; REL32 branches are
    PC-relative and need no fixup.
    """

    base: int
    code: bytes
    labels: Dict[str, int]
    relocs: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.code)

    def address_of(self, label: str) -> int:
        """Absolute address of *label*."""
        if label not in self.labels:
            raise KeyError("undefined label %r" % label)
        return self.labels[label]


def _unescape(text: str) -> bytes:
    """Process C-style escapes (\\n, \\t, \\0, \\\\, \\") in string literals."""
    return (
        text.encode("utf-8")
        .decode("unicode_escape")
        .encode("latin-1")
    )


def _parse_int(token: str) -> int:
    return int(token, 0)


def _is_int(token: str) -> bool:
    try:
        int(token, 0)
        return True
    except ValueError:
        return False


def _is_float(token: str) -> bool:
    if _is_int(token):
        return False
    try:
        float(token)
        return True
    except ValueError:
        return False


def _split_operands(text: str) -> List[str]:
    """Split an operand string on commas not inside brackets or quotes."""
    parts: List[str] = []
    depth = 0
    in_str = False
    current = []
    for ch in text:
        if ch == '"':
            in_str = not in_str
            current.append(ch)
        elif ch == "[" and not in_str:
            depth += 1
            current.append(ch)
        elif ch == "]" and not in_str:
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0 and not in_str:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _classify(token: str) -> Tuple[str, object]:
    """Classify one operand token into (kind, value)."""
    if token.startswith("["):
        if not token.endswith("]"):
            raise AssemblyError("malformed memory operand %r" % token)
        inner = token[1:-1].strip()
        # forms: reg | reg+imm | reg-imm
        for sep, sign in (("+", 1), ("-", -1)):
            idx = inner.find(sep)
            if idx > 0:
                base_tok = inner[:idx].strip()
                disp_tok = inner[idx + 1 :].strip()
                if base_tok not in GPR_INDEX:
                    raise AssemblyError("unknown base register %r" % base_tok)
                if not _is_int(disp_tok):
                    raise AssemblyError("bad displacement %r" % disp_tok)
                return _MEM, (GPR_INDEX[base_tok], sign * _parse_int(disp_tok))
        if inner not in GPR_INDEX:
            # absolute addressing: [label] or [label+off]
            kind, value = _classify(inner)
            if kind == _SYM or kind == _IMM:
                return _MEMABS, value
            raise AssemblyError("unknown base register %r" % inner)
        return _MEM, (GPR_INDEX[inner], 0)
    if token in GPR_INDEX:
        return _REG, GPR_INDEX[token]
    if token in XMM_INDEX:
        return _XREG, XMM_INDEX[token]
    if _is_int(token):
        return _IMM, _parse_int(token)
    if _is_float(token):
        return _FLT, float(token)
    # label, possibly label+addend
    for sep, sign in (("+", 1), ("-", -1)):
        idx = token.find(sep)
        if idx > 0:
            name = token[:idx].strip()
            off = token[idx + 1 :].strip()
            if _is_int(off) and name.isidentifier():
                return _SYM, LabelRef(name, sign * _parse_int(off))
    if not token.replace(".", "_").replace("$", "_").isidentifier():
        raise AssemblyError("cannot parse operand %r" % token)
    return _SYM, LabelRef(token)


# (mnemonic, shape tuple) -> Op.  Shapes use the internal kinds above,
# with _SYM accepted wherever _IMM is.
_ALU_RR_RI = {
    "add": (Op.ADD_RR, Op.ADD_RI),
    "sub": (Op.SUB_RR, Op.SUB_RI),
    "imul": (Op.IMUL_RR, Op.IMUL_RI),
    "and": (Op.AND_RR, Op.AND_RI),
    "or": (Op.OR_RR, Op.OR_RI),
    "xor": (Op.XOR_RR, Op.XOR_RI),
    "shl": (Op.SHL_RR, Op.SHL_RI),
    "shr": (Op.SHR_RR, Op.SHR_RI),
}

_SIMPLE = {
    "nop": Op.NOP,
    "hlt": Op.HLT,
    "syscall": Op.SYSCALL,
    "cpuid": Op.CPUID,
    "pause": Op.PAUSE,
    "rdtsc": Op.RDTSC,
    "ret": Op.RET,
    "pushf": Op.PUSHF,
    "popf": Op.POPF,
}

_BRANCHES = {
    "jmp": Op.JMP,
    "jz": Op.JZ,
    "je": Op.JZ,
    "jnz": Op.JNZ,
    "jne": Op.JNZ,
    "jl": Op.JL,
    "jge": Op.JGE,
    "jg": Op.JG,
    "jle": Op.JLE,
    "jb": Op.JB,
    "jae": Op.JAE,
}

_LOADS = {"ld": Op.LD, "ld4": Op.LD4, "ld1": Op.LD1, "lea": Op.LEA, "fld": Op.FLD}
_STORES = {"st": Op.ST, "st4": Op.ST4, "st1": Op.ST1, "fst": Op.FST}
_FARITH = {"fadd": Op.FADD, "fsub": Op.FSUB, "fmul": Op.FMUL, "fdiv": Op.FDIV,
           "fcmp": Op.FCMP}
_ATOMICS = {"xadd": Op.XADD, "cmpxchg": Op.CMPXCHG, "xchg": Op.XCHG}
_XSTATE = {"xsave": Op.XSAVE, "xrstor": Op.XRSTOR}
_SEGBASE = {"wrfsbase": Op.WRFSBASE, "wrgsbase": Op.WRGSBASE,
            "rdfsbase": Op.RDFSBASE, "rdgsbase": Op.RDGSBASE}


def _select_op(mnemonic: str, kinds: Sequence[str], line: int) -> Op:
    """Pick the opcode for *mnemonic* given classified operand kinds."""

    def err() -> AssemblyError:
        return AssemblyError(
            "line %d: bad operands for %r: %s" % (line, mnemonic, list(kinds))
        )

    m = mnemonic
    if m in _SIMPLE:
        if kinds:
            raise err()
        return _SIMPLE[m]
    if m == "marker":
        if kinds != [_IMM]:
            raise err()
        return Op.MARKER
    if m == "mov":
        if kinds == [_REG, _REG]:
            return Op.MOV_RR
        if kinds == [_REG, _IMM] or kinds == [_REG, _SYM]:
            return Op.MOV_RI
        raise err()
    if m in _LOADS:
        if kinds == [_XREG, _MEM] and m == "fld":
            return Op.FLD
        if kinds == [_REG, _MEM] and m != "fld":
            return _LOADS[m]
        raise err()
    if m in _STORES:
        if kinds == [_MEM, _XREG] and m == "fst":
            return Op.FST
        if kinds == [_MEM, _REG] and m != "fst":
            return _STORES[m]
        raise err()
    if m in _ALU_RR_RI:
        if kinds == [_REG, _REG]:
            return _ALU_RR_RI[m][0]
        if kinds == [_REG, _IMM]:
            return _ALU_RR_RI[m][1]
        raise err()
    if m == "div":
        if kinds == [_REG, _REG]:
            return Op.DIV_RR
        raise err()
    if m == "mod":
        if kinds == [_REG, _REG]:
            return Op.MOD_RR
        raise err()
    if m == "cmp":
        if kinds == [_REG, _REG]:
            return Op.CMP_RR
        if kinds == [_REG, _IMM]:
            return Op.CMP_RI
        raise err()
    if m == "test":
        if kinds == [_REG, _REG]:
            return Op.TEST_RR
        raise err()
    if m == "jmpabs":
        if kinds == [_IMM] or kinds == [_SYM]:
            return Op.JMPABS
        raise err()
    if m in _BRANCHES:
        if m == "jmp" and kinds == [_REG]:
            return Op.JMP_R
        if kinds == [_SYM] or kinds == [_IMM]:
            return _BRANCHES[m]
        raise err()
    if m == "call":
        if kinds == [_REG]:
            return Op.CALL_R
        if kinds == [_SYM] or kinds == [_IMM]:
            return Op.CALL
        raise err()
    if m == "push":
        if kinds == [_REG]:
            return Op.PUSH
        raise err()
    if m == "pop":
        if kinds == [_REG]:
            return Op.POP
        raise err()
    if m in _ATOMICS:
        if kinds == [_MEM, _REG]:
            return _ATOMICS[m]
        raise err()
    if m == "fmov":
        if kinds == [_XREG, _XREG]:
            return Op.FMOV_XX
        if kinds == [_XREG, _FLT] or kinds == [_XREG, _IMM]:
            return Op.FMOV_XI
        raise err()
    if m in _FARITH:
        if kinds == [_XREG, _XREG]:
            return _FARITH[m]
        raise err()
    if m == "cvtsi2sd":
        if kinds == [_XREG, _REG]:
            return Op.CVTSI2SD
        raise err()
    if m == "cvtsd2si":
        if kinds == [_REG, _XREG]:
            return Op.CVTSD2SI
        raise err()
    if m in _XSTATE:
        if kinds == [_MEM]:
            return _XSTATE[m]
        raise err()
    if m in _SEGBASE:
        if kinds == [_REG]:
            return _SEGBASE[m]
        raise err()
    raise AssemblyError("line %d: unknown mnemonic %r" % (line, mnemonic))


class Assembler:
    """Two-pass PX assembler.

    Use :meth:`add` to feed source text (possibly in several chunks) and
    :meth:`assemble` to produce the final :class:`AssembledProgram`.
    """

    def __init__(self, base: int = 0) -> None:
        self.base = base
        self._items: List[_Item] = []
        self._labels: Dict[str, int] = {}  # label -> offset from base
        self._offset = 0
        self._line_no = 0

    # -- source interface ------------------------------------------------

    def add(self, text: str) -> "Assembler":
        """Parse and append assembly source text.  Returns self."""
        for raw_line in text.splitlines():
            self._line_no += 1
            self._parse_line(raw_line)
        return self

    def define_label(self, name: str) -> None:
        """Define *name* at the current offset."""
        if name in self._labels:
            raise AssemblyError("duplicate label %r" % name)
        self._labels[name] = self._offset

    def emit_bytes(self, data: bytes) -> None:
        """Append raw data bytes at the current offset."""
        self._items.append(_Item(kind="data", size=len(data), data=bytes(data)))
        self._offset += len(data)

    def emit_quad_label(self, ref: Union[str, LabelRef]) -> None:
        """Append an 8-byte slot holding a label's absolute address."""
        if isinstance(ref, str):
            ref = LabelRef(ref)
        item = _Item(kind="data", size=8, data=b"\x00" * 8,
                     sym_quads=[(0, ref)])
        self._items.append(item)
        self._offset += 8

    @property
    def current_offset(self) -> int:
        return self._offset

    # -- parsing ----------------------------------------------------------

    def _parse_line(self, raw_line: str) -> None:
        # strip comments (';' or '#'), respecting string literals
        line = []
        in_str = False
        for ch in raw_line:
            if ch == '"':
                in_str = not in_str
            if ch in ";#" and not in_str:
                break
            line.append(ch)
        text = "".join(line).strip()
        if not text:
            return
        # labels (possibly several on one line)
        while True:
            idx = text.find(":")
            if idx <= 0:
                break
            head = text[:idx].strip()
            if not head.replace(".", "_").replace("$", "_").isidentifier():
                break
            self.define_label(head)
            text = text[idx + 1 :].strip()
        if not text:
            return
        if text.startswith("."):
            self._parse_directive(text)
            return
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        tokens = _split_operands(operand_text)
        classified = [_classify(tok) for tok in tokens]
        kinds = [kind for kind, _ in classified]
        values = [value for _, value in classified]
        # Expand absolute memory operands ([label]) through the scratch
        # register: "ld rax, [flag]" -> "mov r11, flag; ld rax, [r11]".
        abs_indices = [i for i, kind in enumerate(kinds) if kind == _MEMABS]
        if len(abs_indices) > 1:
            raise AssemblyError(
                "line %d: at most one absolute memory operand" % self._line_no
            )
        if abs_indices:
            index = abs_indices[0]
            self._emit_insn(Op.MOV_RI, (SCRATCH_REG, values[index]))
            kinds[index] = _MEM
            values[index] = (SCRATCH_REG, 0)
        # Expand ALU/cmp immediates wider than 32 bits through the
        # scratch register: "imul rbx, BIGCONST" ->
        # "mov r11, BIGCONST; imul rbx, r11".
        if (
            mnemonic != "mov"
            and kinds == [_REG, _IMM]
            and not -(1 << 31) <= int(values[1]) < (1 << 31)
        ):
            if values[0] == SCRATCH_REG:
                raise AssemblyError(
                    "line %d: r11 is the assembler scratch register and "
                    "cannot take a wide immediate" % self._line_no
                )
            self._emit_insn(Op.MOV_RI, (SCRATCH_REG, values[1]))
            kinds[1] = _REG
            values[1] = SCRATCH_REG
        op = _select_op(mnemonic, kinds, self._line_no)
        self._emit_insn(op, tuple(values))

    def _emit_insn(self, op: Op, operands: Tuple[object, ...]) -> None:
        from repro.isa.instructions import instruction_size

        self._items.append(
            _Item(
                kind="insn",
                size=instruction_size(op),
                op=op,
                operands=operands,
                line=self._line_no,
            )
        )
        self._offset += self._items[-1].size

    def _parse_directive(self, text: str) -> None:
        parts = text.split(None, 1)
        name = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        if name == ".quad":
            for tok in _split_operands(arg):
                if _is_int(tok):
                    self.emit_bytes(struct.pack("<Q", _parse_int(tok) & ((1 << 64) - 1)))
                else:
                    kind, value = _classify(tok)
                    if kind != _SYM:
                        raise AssemblyError(".quad takes ints or labels, got %r" % tok)
                    self.emit_quad_label(value)  # type: ignore[arg-type]
        elif name == ".long":
            for tok in _split_operands(arg):
                self.emit_bytes(struct.pack("<I", _parse_int(tok) & 0xFFFFFFFF))
        elif name == ".byte":
            for tok in _split_operands(arg):
                self.emit_bytes(bytes([_parse_int(tok) & 0xFF]))
        elif name == ".double":
            for tok in _split_operands(arg):
                self.emit_bytes(struct.pack("<d", float(tok)))
        elif name == ".ascii":
            if not (arg.startswith('"') and arg.endswith('"')):
                raise AssemblyError(".ascii requires a quoted string")
            self.emit_bytes(_unescape(arg[1:-1]))
        elif name == ".asciz":
            if not (arg.startswith('"') and arg.endswith('"')):
                raise AssemblyError(".asciz requires a quoted string")
            self.emit_bytes(_unescape(arg[1:-1]) + b"\x00")
        elif name == ".zero":
            self.emit_bytes(b"\x00" * _parse_int(arg))
        elif name == ".align":
            align = _parse_int(arg)
            if align <= 0 or align & (align - 1):
                raise AssemblyError(".align requires a power of two")
            pad = (-self._offset) % align
            if pad:
                self.emit_bytes(b"\x00" * pad)
        else:
            raise AssemblyError("unknown directive %r" % name)

    # -- second pass -------------------------------------------------------

    def _resolve(self, value: object, pc_after: int) -> object:
        """Resolve LabelRef operands to absolute addresses."""
        if isinstance(value, LabelRef):
            if value.name not in self._labels:
                raise AssemblyError("undefined label %r" % value.name)
            return self.base + self._labels[value.name] + value.addend
        return value

    def assemble(self) -> AssembledProgram:
        """Run the second pass and produce the final program bytes."""
        out = bytearray()
        offset = 0
        relocs: List[int] = []
        for item in self._items:
            if item.kind == "data":
                blob = bytearray(item.data)
                for pos, ref in item.sym_quads:
                    addr = self._resolve(ref, 0)
                    struct.pack_into("<Q", blob, pos, int(addr) & ((1 << 64) - 1))
                    relocs.append(offset + pos)
                out += blob
            else:
                assert item.op is not None
                pc_after = self.base + offset + item.size
                resolved = []
                field_offset = offset + 1  # past the opcode byte
                for kind, value in zip(OPCODE_TABLE[item.op], item.operands):
                    was_label = isinstance(value, LabelRef)
                    value = self._resolve(value, pc_after)
                    if kind == Operand.REL32 and isinstance(value, int):
                        # branch targets were resolved to absolute addresses;
                        # immediates given as ints are already relative
                        orig = item.operands[len(resolved)]
                        if isinstance(orig, LabelRef):
                            value = value - pc_after
                    elif kind == Operand.I64 and was_label:
                        # Absolute address baked into an 8-byte immediate
                        # (MOV_RI / JMPABS): slid by the ASLR loader.
                        relocs.append(field_offset)
                    resolved.append(value)
                    field_offset += OPERAND_SIZE[kind]
                out += encode(Instruction(item.op, tuple(resolved)))
            offset += item.size
        labels = {name: self.base + off for name, off in self._labels.items()}
        return AssembledProgram(base=self.base, code=bytes(out), labels=labels,
                                relocs=relocs)


def assemble(text: str, base: int = 0) -> AssembledProgram:
    """Assemble *text* at the given base address."""
    return Assembler(base=base).add(text).assemble()
