"""Binary encoding and decoding of PX instructions."""

from __future__ import annotations

import struct
from typing import Tuple

from repro.isa.instructions import (
    Instruction,
    Op,
    OPCODE_TABLE,
    Operand,
)


class InstructionDecodeError(Exception):
    """Raised when a byte sequence is not a valid PX instruction.

    During ELFie execution this is the analog of x86 #UD: it occurs when
    control flow diverges into bytes that are data, not code.  When
    ``truncated`` is true the stream ended mid-instruction (typically the
    next page is unmapped), which the CPU surfaces as a SIGSEGV-style
    fault rather than SIGILL.
    """

    def __init__(self, message: str, truncated: bool = False) -> None:
        self.truncated = truncated
        super().__init__(message)


_VALID_OPCODES = {int(op) for op in Op}


def _encode_operand(kind: Operand, value: object) -> bytes:
    if kind in (Operand.R, Operand.X):
        reg = int(value)  # type: ignore[arg-type]
        if not 0 <= reg <= 15:
            raise ValueError("register index out of range: %r" % (value,))
        return bytes([reg])
    if kind == Operand.I64:
        return struct.pack("<Q", int(value) & ((1 << 64) - 1))  # type: ignore[arg-type]
    if kind in (Operand.I32, Operand.REL32):
        ival = int(value)  # type: ignore[arg-type]
        if not -(1 << 31) <= ival < (1 << 32):
            raise ValueError("32-bit immediate out of range: %r" % (value,))
        return struct.pack("<i", ival if ival < (1 << 31) else ival - (1 << 32))
    if kind == Operand.M:
        base, disp = value  # type: ignore[misc]
        base = int(base)
        disp = int(disp)
        if not 0 <= base <= 15:
            raise ValueError("memory base register out of range: %r" % (base,))
        if not -(1 << 31) <= disp < (1 << 31):
            raise ValueError("memory displacement out of range: %r" % (disp,))
        return bytes([base]) + struct.pack("<i", disp)
    if kind == Operand.F64:
        return struct.pack("<d", float(value))  # type: ignore[arg-type]
    raise AssertionError("unknown operand kind %r" % (kind,))


def encode(insn: Instruction) -> bytes:
    """Encode one instruction to bytes."""
    parts = [bytes([int(insn.op)])]
    for kind, value in zip(OPCODE_TABLE[insn.op], insn.operands):
        parts.append(_encode_operand(kind, value))
    return b"".join(parts)


def _decode_operand(kind: Operand, data: bytes, offset: int) -> Tuple[object, int]:
    if kind in (Operand.R, Operand.X):
        if offset >= len(data):
            raise InstructionDecodeError("truncated register operand", truncated=True)
        return data[offset], offset + 1
    if kind == Operand.I64:
        if offset + 8 > len(data):
            raise InstructionDecodeError("truncated 64-bit immediate", truncated=True)
        (value,) = struct.unpack_from("<Q", data, offset)
        return value, offset + 8
    if kind in (Operand.I32, Operand.REL32):
        if offset + 4 > len(data):
            raise InstructionDecodeError("truncated 32-bit immediate", truncated=True)
        (value,) = struct.unpack_from("<i", data, offset)
        return value, offset + 4
    if kind == Operand.M:
        if offset + 5 > len(data):
            raise InstructionDecodeError("truncated memory operand", truncated=True)
        base = data[offset]
        if base > 15:
            raise InstructionDecodeError("invalid base register %d" % base)
        (disp,) = struct.unpack_from("<i", data, offset + 1)
        return (base, disp), offset + 5
    if kind == Operand.F64:
        if offset + 8 > len(data):
            raise InstructionDecodeError("truncated float immediate", truncated=True)
        (value,) = struct.unpack_from("<d", data, offset)
        return value, offset + 8
    raise AssertionError("unknown operand kind %r" % (kind,))


def decode(data: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction starting at *offset*.

    Returns the instruction and the offset just past it.  Raises
    :class:`InstructionDecodeError` on invalid or truncated encodings.
    """
    if offset >= len(data):
        raise InstructionDecodeError("empty instruction stream", truncated=True)
    opcode = data[offset]
    if opcode not in _VALID_OPCODES:
        raise InstructionDecodeError("invalid opcode 0x%02x" % opcode)
    op = Op(opcode)
    operands = []
    pos = offset + 1
    for kind in OPCODE_TABLE[op]:
        value, pos = _decode_operand(kind, data, pos)
        if kind == Operand.R or kind == Operand.X:
            if value > 15:
                raise InstructionDecodeError("invalid register %d" % value)
        operands.append(value)
    return Instruction(op, tuple(operands)), pos
