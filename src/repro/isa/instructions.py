"""Instruction model and opcode table for the PX architecture.

Every instruction is an opcode byte followed by a fixed operand layout
determined by the opcode, so instruction length is a function of the
opcode alone.  Operand kinds:

``R``
    General-purpose register, one byte (hardware index 0-15).
``X``
    Extended (xmm) register, one byte.
``I64``
    64-bit little-endian immediate.
``I32``
    32-bit little-endian signed immediate.
``M``
    Memory operand ``[base + disp32]``: one base-register byte followed
    by a signed 32-bit displacement.
``REL32``
    Signed 32-bit branch displacement relative to the address of the
    *next* instruction (like x86 near jumps).
``F64``
    64-bit float immediate (encoded as its IEEE-754 bit pattern).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class Operand(enum.Enum):
    """Operand kinds, each with a fixed encoded width."""

    R = "R"
    X = "X"
    I64 = "I64"
    I32 = "I32"
    M = "M"
    REL32 = "REL32"
    F64 = "F64"


#: Encoded size in bytes of each operand kind.
OPERAND_SIZE: Dict[Operand, int] = {
    Operand.R: 1,
    Operand.X: 1,
    Operand.I64: 8,
    Operand.I32: 4,
    Operand.M: 5,
    Operand.REL32: 4,
    Operand.F64: 8,
}


class Op(enum.IntEnum):
    """PX opcodes.  Values are the encoded opcode byte."""

    # System / special
    NOP = 0x00
    HLT = 0x01
    SYSCALL = 0x02
    CPUID = 0x03
    PAUSE = 0x04
    MARKER = 0x05
    RDTSC = 0x06

    # Data movement
    MOV_RI = 0x10
    MOV_RR = 0x11
    LD = 0x12        # 8-byte load
    ST = 0x13        # 8-byte store
    LEA = 0x14
    LD4 = 0x15       # 4-byte zero-extending load
    ST4 = 0x16       # 4-byte store
    LD1 = 0x17       # 1-byte zero-extending load
    ST1 = 0x18       # 1-byte store

    # Integer ALU, register-register
    ADD_RR = 0x20
    SUB_RR = 0x21
    IMUL_RR = 0x22
    DIV_RR = 0x23    # unsigned; divide-by-zero traps
    AND_RR = 0x24
    OR_RR = 0x25
    XOR_RR = 0x26
    SHL_RR = 0x27
    SHR_RR = 0x28
    MOD_RR = 0x29    # unsigned remainder

    # Integer ALU, register-immediate
    ADD_RI = 0x2A
    SUB_RI = 0x2B
    IMUL_RI = 0x2C
    AND_RI = 0x2D
    OR_RI = 0x2E
    XOR_RI = 0x2F
    SHL_RI = 0x48
    SHR_RI = 0x49

    # Compare / test
    CMP_RR = 0x30
    CMP_RI = 0x31
    TEST_RR = 0x32

    # Control flow
    JMP = 0x38
    JZ = 0x39
    JNZ = 0x3A
    JL = 0x3B
    JGE = 0x3C
    JG = 0x3D
    JLE = 0x3E
    JB = 0x45
    JAE = 0x46
    JMP_R = 0x3F
    #: Absolute 64-bit jump.  x86 pinball2elf synthesizes this with a
    #: register-free RIP-relative memory-indirect jump (jmp [rip+off]);
    #: PX provides it directly so thread-entry stubs can transfer to the
    #: captured code without clobbering any restored register (Fig. 6).
    JMPABS = 0x47
    CALL = 0x40
    RET = 0x41
    PUSH = 0x42
    POP = 0x43
    CALL_R = 0x44
    PUSHF = 0x4A
    POPF = 0x4B

    # Atomics (LOCK-prefixed semantics)
    XADD = 0x50
    CMPXCHG = 0x51
    XCHG = 0x52

    # Floating point (extended state)
    FMOV_XI = 0x60
    FLD = 0x61
    FST = 0x62
    FADD = 0x63
    FSUB = 0x64
    FMUL = 0x65
    FDIV = 0x66
    FCMP = 0x67
    CVTSI2SD = 0x68
    CVTSD2SI = 0x69
    FMOV_XX = 0x6A

    # Extended state / segment bases (startup-code support)
    XSAVE = 0x72
    XRSTOR = 0x73
    WRFSBASE = 0x74
    WRGSBASE = 0x75
    RDFSBASE = 0x76
    RDGSBASE = 0x77


#: opcode -> tuple of operand kinds, in encoding order.
OPCODE_TABLE: Dict[Op, Tuple[Operand, ...]] = {
    Op.NOP: (),
    Op.HLT: (),
    Op.SYSCALL: (),
    Op.CPUID: (),
    Op.PAUSE: (),
    Op.MARKER: (Operand.I32,),
    Op.RDTSC: (),
    Op.MOV_RI: (Operand.R, Operand.I64),
    Op.MOV_RR: (Operand.R, Operand.R),
    Op.LD: (Operand.R, Operand.M),
    Op.ST: (Operand.M, Operand.R),
    Op.LEA: (Operand.R, Operand.M),
    Op.LD4: (Operand.R, Operand.M),
    Op.ST4: (Operand.M, Operand.R),
    Op.LD1: (Operand.R, Operand.M),
    Op.ST1: (Operand.M, Operand.R),
    Op.ADD_RR: (Operand.R, Operand.R),
    Op.SUB_RR: (Operand.R, Operand.R),
    Op.IMUL_RR: (Operand.R, Operand.R),
    Op.DIV_RR: (Operand.R, Operand.R),
    Op.AND_RR: (Operand.R, Operand.R),
    Op.OR_RR: (Operand.R, Operand.R),
    Op.XOR_RR: (Operand.R, Operand.R),
    Op.SHL_RR: (Operand.R, Operand.R),
    Op.SHR_RR: (Operand.R, Operand.R),
    Op.MOD_RR: (Operand.R, Operand.R),
    Op.ADD_RI: (Operand.R, Operand.I32),
    Op.SUB_RI: (Operand.R, Operand.I32),
    Op.IMUL_RI: (Operand.R, Operand.I32),
    Op.AND_RI: (Operand.R, Operand.I32),
    Op.OR_RI: (Operand.R, Operand.I32),
    Op.XOR_RI: (Operand.R, Operand.I32),
    Op.SHL_RI: (Operand.R, Operand.I32),
    Op.SHR_RI: (Operand.R, Operand.I32),
    Op.CMP_RR: (Operand.R, Operand.R),
    Op.CMP_RI: (Operand.R, Operand.I32),
    Op.TEST_RR: (Operand.R, Operand.R),
    Op.JMP: (Operand.REL32,),
    Op.JZ: (Operand.REL32,),
    Op.JNZ: (Operand.REL32,),
    Op.JL: (Operand.REL32,),
    Op.JGE: (Operand.REL32,),
    Op.JG: (Operand.REL32,),
    Op.JLE: (Operand.REL32,),
    Op.JB: (Operand.REL32,),
    Op.JAE: (Operand.REL32,),
    Op.JMP_R: (Operand.R,),
    Op.JMPABS: (Operand.I64,),
    Op.CALL: (Operand.REL32,),
    Op.RET: (),
    Op.PUSH: (Operand.R,),
    Op.POP: (Operand.R,),
    Op.CALL_R: (Operand.R,),
    Op.PUSHF: (),
    Op.POPF: (),
    Op.XADD: (Operand.M, Operand.R),
    Op.CMPXCHG: (Operand.M, Operand.R),
    Op.XCHG: (Operand.M, Operand.R),
    Op.FMOV_XI: (Operand.X, Operand.F64),
    Op.FLD: (Operand.X, Operand.M),
    Op.FST: (Operand.M, Operand.X),
    Op.FADD: (Operand.X, Operand.X),
    Op.FSUB: (Operand.X, Operand.X),
    Op.FMUL: (Operand.X, Operand.X),
    Op.FDIV: (Operand.X, Operand.X),
    Op.FCMP: (Operand.X, Operand.X),
    Op.CVTSI2SD: (Operand.X, Operand.R),
    Op.CVTSD2SI: (Operand.R, Operand.X),
    Op.FMOV_XX: (Operand.X, Operand.X),
    Op.XSAVE: (Operand.M,),
    Op.XRSTOR: (Operand.M,),
    Op.WRFSBASE: (Operand.R,),
    Op.WRGSBASE: (Operand.R,),
    Op.RDFSBASE: (Operand.R,),
    Op.RDGSBASE: (Operand.R,),
}

#: Branch opcodes whose operand is a REL32 target.
BRANCH_OPS = frozenset(
    {Op.JMP, Op.JZ, Op.JNZ, Op.JL, Op.JGE, Op.JG, Op.JLE, Op.JB, Op.JAE, Op.CALL}
)

#: Conditional branches only (used by branch-predictor models).
COND_BRANCH_OPS = frozenset(
    {Op.JZ, Op.JNZ, Op.JL, Op.JGE, Op.JG, Op.JLE, Op.JB, Op.JAE}
)

#: Opcodes that read memory.
MEM_READ_OPS = frozenset(
    {Op.LD, Op.LD4, Op.LD1, Op.FLD, Op.XADD, Op.CMPXCHG, Op.XCHG, Op.XRSTOR,
     Op.POP, Op.POPF, Op.RET}
)

#: Opcodes that write memory.
MEM_WRITE_OPS = frozenset(
    {Op.ST, Op.ST4, Op.ST1, Op.FST, Op.XADD, Op.CMPXCHG, Op.XCHG, Op.XSAVE,
     Op.PUSH, Op.PUSHF, Op.CALL, Op.CALL_R}
)


def instruction_size(op: Op) -> int:
    """Encoded size in bytes of an instruction with opcode *op*."""
    return 1 + sum(OPERAND_SIZE[kind] for kind in OPCODE_TABLE[op])


@dataclass(frozen=True)
class Instruction:
    """A decoded PX instruction.

    ``operands`` holds one value per operand kind in the opcode table:
    ints for R/X/I64/I32/REL32, floats for F64, and ``(base, disp)``
    tuples for M.
    """

    op: Op
    operands: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        expected = OPCODE_TABLE[self.op]
        if len(self.operands) != len(expected):
            raise ValueError(
                "%s expects %d operands, got %d"
                % (self.op.name, len(expected), len(self.operands))
            )

    @property
    def size(self) -> int:
        """Encoded size of this instruction in bytes."""
        return instruction_size(self.op)

    @property
    def is_branch(self) -> bool:
        return (self.op in BRANCH_OPS
                or self.op in (Op.JMP_R, Op.CALL_R, Op.RET, Op.JMPABS))

    @property
    def is_cond_branch(self) -> bool:
        return self.op in COND_BRANCH_OPS

    @property
    def reads_memory(self) -> bool:
        return self.op in MEM_READ_OPS

    @property
    def writes_memory(self) -> bool:
        return self.op in MEM_WRITE_OPS
