"""PX instruction-set architecture.

PX is a 64-bit register machine with x86-named general-purpose registers,
an RFLAGS-style flag register, FS/GS segment bases, and an XSAVE-style
extended floating-point state.  It stands in for x86-64 in this
reproduction: every construct the paper's ELFie startup code needs
(clone loops, XRSTOR context restore, WRFSBASE, marker instructions,
spin loops with PAUSE) is expressible and executable in PX.

The package provides:

- :mod:`repro.isa.registers` -- register names and indices
- :mod:`repro.isa.instructions` -- the instruction model and opcode table
- :mod:`repro.isa.encoding` -- binary encode/decode of instructions
- :mod:`repro.isa.assembler` -- a two-pass assembler with labels
- :mod:`repro.isa.disassembler` -- textual disassembly
"""

from repro.isa.registers import (
    GPR_NAMES,
    GPR_INDEX,
    XMM_COUNT,
    RegisterFile,
    Flags,
)
from repro.isa.instructions import Instruction, Op, OPCODE_TABLE
from repro.isa.encoding import encode, decode, InstructionDecodeError
from repro.isa.assembler import Assembler, AssemblyError, assemble
from repro.isa.disassembler import disassemble, disassemble_one

__all__ = [
    "GPR_NAMES",
    "GPR_INDEX",
    "XMM_COUNT",
    "RegisterFile",
    "Flags",
    "Instruction",
    "Op",
    "OPCODE_TABLE",
    "encode",
    "decode",
    "InstructionDecodeError",
    "Assembler",
    "AssemblyError",
    "assemble",
    "disassemble",
    "disassemble_one",
]
