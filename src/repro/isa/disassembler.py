"""Textual disassembly of PX machine code.

Used by debugging helpers and by ``pinball2elf --dump-contexts`` style
assembly listings.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.isa.encoding import decode, InstructionDecodeError
from repro.isa.instructions import Instruction, Op, OPCODE_TABLE, Operand
from repro.isa.registers import GPR_NAMES, XMM_NAMES

# Display mnemonic per opcode (inverse of the assembler's tables).
_MNEMONIC = {
    Op.NOP: "nop", Op.HLT: "hlt", Op.SYSCALL: "syscall", Op.CPUID: "cpuid",
    Op.PAUSE: "pause", Op.MARKER: "marker", Op.RDTSC: "rdtsc",
    Op.MOV_RI: "mov", Op.MOV_RR: "mov", Op.LD: "ld", Op.ST: "st",
    Op.LEA: "lea", Op.LD4: "ld4", Op.ST4: "st4", Op.LD1: "ld1", Op.ST1: "st1",
    Op.ADD_RR: "add", Op.SUB_RR: "sub", Op.IMUL_RR: "imul", Op.DIV_RR: "div",
    Op.AND_RR: "and", Op.OR_RR: "or", Op.XOR_RR: "xor", Op.SHL_RR: "shl",
    Op.SHR_RR: "shr", Op.MOD_RR: "mod",
    Op.ADD_RI: "add", Op.SUB_RI: "sub", Op.IMUL_RI: "imul", Op.AND_RI: "and",
    Op.OR_RI: "or", Op.XOR_RI: "xor", Op.SHL_RI: "shl", Op.SHR_RI: "shr",
    Op.CMP_RR: "cmp", Op.CMP_RI: "cmp", Op.TEST_RR: "test",
    Op.JMP: "jmp", Op.JZ: "jz", Op.JNZ: "jnz", Op.JL: "jl", Op.JGE: "jge",
    Op.JG: "jg", Op.JLE: "jle", Op.JB: "jb", Op.JAE: "jae", Op.JMP_R: "jmp", Op.JMPABS: "jmpabs",
    Op.CALL: "call", Op.RET: "ret", Op.PUSH: "push", Op.POP: "pop",
    Op.CALL_R: "call", Op.PUSHF: "pushf", Op.POPF: "popf",
    Op.XADD: "xadd", Op.CMPXCHG: "cmpxchg", Op.XCHG: "xchg",
    Op.FMOV_XI: "fmov", Op.FLD: "fld", Op.FST: "fst", Op.FADD: "fadd",
    Op.FSUB: "fsub", Op.FMUL: "fmul", Op.FDIV: "fdiv", Op.FCMP: "fcmp",
    Op.CVTSI2SD: "cvtsi2sd", Op.CVTSD2SI: "cvtsd2si", Op.FMOV_XX: "fmov",
    Op.XSAVE: "xsave", Op.XRSTOR: "xrstor",
    Op.WRFSBASE: "wrfsbase", Op.WRGSBASE: "wrgsbase",
    Op.RDFSBASE: "rdfsbase", Op.RDGSBASE: "rdgsbase",
}


def _format_operand(kind: Operand, value: object, pc_after: Optional[int]) -> str:
    if kind == Operand.R:
        return GPR_NAMES[int(value)]  # type: ignore[arg-type]
    if kind == Operand.X:
        return XMM_NAMES[int(value)]  # type: ignore[arg-type]
    if kind == Operand.I64:
        return "0x%x" % int(value)  # type: ignore[arg-type]
    if kind == Operand.I32:
        return str(int(value))  # type: ignore[arg-type]
    if kind == Operand.REL32:
        rel = int(value)  # type: ignore[arg-type]
        if pc_after is not None:
            return "0x%x" % (pc_after + rel)
        return ("+%d" % rel) if rel >= 0 else str(rel)
    if kind == Operand.M:
        base, disp = value  # type: ignore[misc]
        if disp == 0:
            return "[%s]" % GPR_NAMES[base]
        sign = "+" if disp > 0 else "-"
        return "[%s%s%d]" % (GPR_NAMES[base], sign, abs(disp))
    if kind == Operand.F64:
        return repr(float(value))  # type: ignore[arg-type]
    raise AssertionError("unknown operand kind %r" % (kind,))


def format_instruction(insn: Instruction, pc: Optional[int] = None) -> str:
    """Render one instruction as assembly text.

    If *pc* (the instruction's address) is given, branch targets are shown
    as absolute addresses.
    """
    pc_after = pc + insn.size if pc is not None else None
    mnemonic = _MNEMONIC[insn.op]
    rendered = [
        _format_operand(kind, value, pc_after)
        for kind, value in zip(OPCODE_TABLE[insn.op], insn.operands)
    ]
    if rendered:
        return "%s %s" % (mnemonic, ", ".join(rendered))
    return mnemonic


def disassemble_one(data: bytes, offset: int = 0,
                    pc: Optional[int] = None) -> Tuple[str, int]:
    """Disassemble one instruction; returns (text, next offset)."""
    insn, next_offset = decode(data, offset)
    return format_instruction(insn, pc), next_offset


def disassemble(data: bytes, base: int = 0,
                stop_on_error: bool = True) -> Iterator[Tuple[int, str]]:
    """Yield (address, text) for each instruction in *data*.

    With ``stop_on_error=False``, undecodable bytes are rendered as
    ``.byte`` lines and disassembly continues — useful when code and data
    are interleaved (as in ELFie memory images).
    """
    offset = 0
    while offset < len(data):
        address = base + offset
        try:
            insn, next_offset = decode(data, offset)
        except InstructionDecodeError:
            if stop_on_error:
                return
            yield address, ".byte 0x%02x" % data[offset]
            offset += 1
            continue
        yield address, format_instruction(insn, address)
        offset = next_offset
