"""Register model for the PX architecture.

The general-purpose registers carry the x86-64 names so that pinball
``.reg`` files, ELFie context symbols (``.t0.rax`` ...), and startup code
read exactly like the paper's artifacts.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List

#: GPR names in x86-64 encoding order (index = hardware register number).
GPR_NAMES: List[str] = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

#: Map from register name to hardware index.
GPR_INDEX: Dict[str, int] = {name: i for i, name in enumerate(GPR_NAMES)}

#: Number of extended (floating point) registers, named xmm0..xmm15.
XMM_COUNT = 16

#: Names of the extended registers.
XMM_NAMES: List[str] = ["xmm%d" % i for i in range(XMM_COUNT)]

XMM_INDEX: Dict[str, int] = {name: i for i, name in enumerate(XMM_NAMES)}

MASK64 = (1 << 64) - 1

# Size in bytes of the serialized XSAVE-style extended-state area:
# 16 xmm registers of 8 bytes each plus an 8-byte MXCSR-like control word.
XSAVE_AREA_SIZE = XMM_COUNT * 8 + 8


@dataclass(slots=True)
class Flags:
    """Condition flags, an RFLAGS subset sufficient for PX control flow."""

    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False

    def to_word(self) -> int:
        """Pack the flags into an RFLAGS-style integer (x86 bit positions)."""
        word = 0x2  # bit 1 is always set in RFLAGS
        if self.cf:
            word |= 1 << 0
        if self.zf:
            word |= 1 << 6
        if self.sf:
            word |= 1 << 7
        if self.of:
            word |= 1 << 11
        return word

    @classmethod
    def from_word(cls, word: int) -> "Flags":
        """Unpack flags from an RFLAGS-style integer."""
        return cls(
            cf=bool(word & (1 << 0)),
            zf=bool(word & (1 << 6)),
            sf=bool(word & (1 << 7)),
            of=bool(word & (1 << 11)),
        )

    def copy(self) -> "Flags":
        return Flags(zf=self.zf, sf=self.sf, cf=self.cf, of=self.of)


@dataclass(slots=True)
class RegisterFile:
    """Full architectural state of one PX hardware thread.

    This is the unit captured per thread in a pinball ``.reg`` file and
    restored by ELFie startup code (GPRs + flags via the stack, extended
    state via XRSTOR, segment bases via WRFSBASE/WRGSBASE).
    """

    gpr: List[int] = field(default_factory=lambda: [0] * 16)
    rip: int = 0
    flags: Flags = field(default_factory=Flags)
    fs_base: int = 0
    gs_base: int = 0
    xmm: List[float] = field(default_factory=lambda: [0.0] * XMM_COUNT)
    mxcsr: int = 0x1F80  # default x86 MXCSR value

    def __post_init__(self) -> None:
        if len(self.gpr) != 16:
            raise ValueError("RegisterFile requires exactly 16 GPRs")
        if len(self.xmm) != XMM_COUNT:
            raise ValueError("RegisterFile requires exactly %d xmm registers" % XMM_COUNT)

    # -- named accessors -------------------------------------------------

    def get(self, name: str) -> int:
        """Read a GPR by its x86 name."""
        return self.gpr[GPR_INDEX[name]]

    def set(self, name: str, value: int) -> None:
        """Write a GPR by its x86 name (value is truncated to 64 bits)."""
        self.gpr[GPR_INDEX[name]] = value & MASK64

    @property
    def rsp(self) -> int:
        return self.gpr[GPR_INDEX["rsp"]]

    @rsp.setter
    def rsp(self, value: int) -> None:
        self.gpr[GPR_INDEX["rsp"]] = value & MASK64

    @property
    def rax(self) -> int:
        return self.gpr[GPR_INDEX["rax"]]

    @rax.setter
    def rax(self, value: int) -> None:
        self.gpr[GPR_INDEX["rax"]] = value & MASK64

    # -- serialization ---------------------------------------------------

    def xsave_bytes(self) -> bytes:
        """Serialize the extended state as an XSAVE-area-like blob."""
        parts = [struct.pack("<d", v) for v in self.xmm]
        parts.append(struct.pack("<Q", self.mxcsr & MASK64))
        return b"".join(parts)

    def xrstor_bytes(self, blob: bytes) -> None:
        """Restore the extended state from an XSAVE-area-like blob."""
        if len(blob) != XSAVE_AREA_SIZE:
            raise ValueError(
                "xsave area must be %d bytes, got %d" % (XSAVE_AREA_SIZE, len(blob))
            )
        for i in range(XMM_COUNT):
            (self.xmm[i],) = struct.unpack_from("<d", blob, i * 8)
        (self.mxcsr,) = struct.unpack_from("<Q", blob, XMM_COUNT * 8)

    def copy(self) -> "RegisterFile":
        """Deep copy of the architectural state."""
        return RegisterFile(
            gpr=list(self.gpr),
            rip=self.rip,
            flags=self.flags.copy(),
            fs_base=self.fs_base,
            gs_base=self.gs_base,
            xmm=list(self.xmm),
            mxcsr=self.mxcsr,
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (used by the pinball .reg format)."""
        return {
            "gpr": {name: self.gpr[i] for i, name in enumerate(GPR_NAMES)},
            "rip": self.rip,
            "rflags": self.flags.to_word(),
            "fs_base": self.fs_base,
            "gs_base": self.gs_base,
            "xmm": list(self.xmm),
            "mxcsr": self.mxcsr,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RegisterFile":
        """Inverse of :meth:`to_dict`."""
        gpr_map = data["gpr"]
        regs = cls(
            gpr=[int(gpr_map[name]) & MASK64 for name in GPR_NAMES],
            rip=int(data["rip"]),
            flags=Flags.from_word(int(data["rflags"])),
            fs_base=int(data["fs_base"]),
            gs_base=int(data["gs_base"]),
            xmm=[float(v) for v in data["xmm"]],
            mxcsr=int(data["mxcsr"]),
        )
        return regs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self.to_dict() == other.to_dict()
