"""A gem5-like binary-driven simulator, SE mode (paper §III-C3, §IV-D).

gem5 is not Pin-based: it loads the binary itself and provides system
services directly (Syscall Emulation mode).  This model does the same —
it loads an ELFie (or any PX ELF executable) with its own copy of the
loader and emulates execution, feeding an out-of-order analytical core
model.

The core model is interval-style: instructions dispatch at the
configured width; long-latency (off-chip) misses stall the ROB for the
portion of the miss latency the window cannot hide, divided by the
memory-level parallelism the LSQ supports; branch mispredicts cost a
pipeline refill.  Two configurations reproduce Table V's comparison of
critical-resource scaling (Nehalem-like vs Haswell-like).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.elfie import prepare_elfie_machine
from repro.isa.instructions import Op
from repro.machine.machine import ExitStatus
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.simulators.branch import BranchPredictor
from repro.simulators.cachesim import Cache, CacheHierarchy, MEMORY_LATENCY


@dataclass(frozen=True)
class Gem5Config:
    """An out-of-order machine configuration."""

    name: str
    width: int
    rob: int
    lsq: int
    regfile: int
    pipeline_depth: int
    l1_kb: int = 32
    l2_kb: int = 128
    llc_kb: int = 1024  # scaled with workloads (DESIGN.md §4)

    @property
    def mlp(self) -> float:
        """Memory-level parallelism the LSQ can sustain."""
        return max(1.0, self.lsq / 12.0)

    @property
    def effective_window(self) -> float:
        """The instruction window the machine can actually keep in
        flight: the ROB, unless the physical register file runs out
        first (about 40 registers are pinned to architectural state)."""
        return min(self.rob, max(self.regfile - 40, 16) * 1.6)

    @property
    def hidden_latency(self) -> float:
        """Miss cycles the window hides under continued dispatch."""
        return self.effective_window / self.width


#: The two Table V processor configurations.  Both are 4-wide: the case
#: study scales the *critical resources* (register file, ROB, load/store
#: queues), which is where the IPC difference comes from.
NEHALEM_LIKE = Gem5Config(name="nehalem-like", width=4, rob=128, lsq=48,
                          regfile=128, pipeline_depth=14)
HASWELL_LIKE = Gem5Config(name="haswell-like", width=4, rob=192, lsq=72,
                          regfile=168, pipeline_depth=14)


class _Gem5Tool(Tool):
    """Interval-model accounting over the functional execution."""

    wants_instructions = True
    wants_memory = True
    wants_blocks = True

    def __init__(self, config: Gem5Config,
                 roi_budget: Optional[int], roi_armed: bool,
                 warmup_budget: int = 0) -> None:
        self.config = config
        self.llc = Cache("LLC", config.llc_kb, 16, 30)
        self.hierarchy = CacheHierarchy.build(
            self.llc, l1_kb=config.l1_kb, l2_kb=config.l2_kb)
        self.predictor = BranchPredictor(
            mispredict_penalty=config.pipeline_depth)
        self.instructions = 0
        self.base_cycles = 0.0
        self.stall_cycles = 0.0
        self.roi_active = roi_armed
        self.roi_budget = roi_budget
        self.warmup_budget = warmup_budget
        self.warmup_cycles: Optional[float] = None
        self._pending_branch = None
        self._miss_stall = max(
            0.0, MEMORY_LATENCY - config.hidden_latency) / config.mlp
        # serialization cost of long-latency ALU ops shrinks with width
        self._long_op_cost = {
            int(Op.DIV_RR): 20.0 / config.width,
            int(Op.MOD_RR): 20.0 / config.width,
            int(Op.FDIV): 12.0 / config.width,
            int(Op.IMUL_RR): 2.0 / config.width,
            int(Op.IMUL_RI): 2.0 / config.width,
            int(Op.FMUL): 2.0 / config.width,
        }

    def on_instruction(self, machine, thread, pc, insn) -> None:
        if self._pending_branch is not None:
            branch_pc, fallthrough = self._pending_branch
            self._pending_branch = None
            self.stall_cycles += self.predictor.predict_and_update(
                branch_pc, pc != fallthrough)
        if not self.roi_active:
            if insn.op is Op.MARKER:
                self.roi_active = True
            return
        self.instructions += 1
        self.base_cycles += 1.0 / self.config.width
        self.stall_cycles += self._long_op_cost.get(int(insn.op), 0.0)
        if insn.is_cond_branch:
            self._pending_branch = (pc, pc + insn.size)
        if (self.warmup_cycles is None
                and self.instructions >= self.warmup_budget):
            self.warmup_cycles = self.base_cycles + self.stall_cycles
        if (self.roi_budget is not None
                and self.instructions >= self.roi_budget + self.warmup_budget):
            machine.request_stop("gem5 budget")

    def on_basic_block(self, machine, thread, pc) -> None:
        if not self.roi_active:
            return
        before = self.llc.misses
        self.hierarchy.fetch_access(pc)
        if self.llc.misses > before:
            self.stall_cycles += self._miss_stall

    def _data(self, addr: int) -> None:
        l2_before = self.hierarchy.l2.misses
        l1_before = self.hierarchy.l1d.misses
        self.hierarchy.data_access(addr)
        if self.hierarchy.l2.misses > l2_before:
            self.stall_cycles += self._miss_stall
        elif self.hierarchy.l1d.misses > l1_before:
            # L2 hits are partially hidden by the window
            self.stall_cycles += max(
                0.0, 10.0 - self.config.hidden_latency / 8.0)

    def on_memory_read(self, machine, thread, addr, size) -> None:
        if self.roi_active:
            self._data(addr)

    def on_memory_write(self, machine, thread, addr, size) -> None:
        if self.roi_active:
            self._data(addr)


@dataclass
class Gem5Result:
    """SE-mode simulation outcome."""

    config_name: str
    status: ExitStatus
    instructions: int
    cycles: float
    llc_misses: int
    branch_mispredict_rate: float

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        ipc = self.ipc
        return 1.0 / ipc if ipc else 0.0


class Gem5Sim:
    """gem5 SE-mode front-end."""

    def __init__(self, config: Gem5Config = NEHALEM_LIKE) -> None:
        self.config = config

    def simulate_elfie(self, image: bytes,
                       roi_budget: Optional[int] = None,
                       warmup_budget: int = 0,
                       seed: int = 0,
                       fs: Optional[FileSystem] = None,
                       workdir: str = "/",
                       max_instructions: int = 50_000_000) -> Gem5Result:
        """Load and simulate an ELFie in SE mode.

        gem5 needs no modification for ELFies: the binary is loaded by
        the simulator's own loader and the ROI begins at the marker.
        With a *warmup_budget*, that many leading ROI instructions warm
        the microarchitectural state but are excluded from the reported
        instruction/cycle counts.
        """
        machine, _ = prepare_elfie_machine(image, seed=seed, fs=fs,
                                           workdir=workdir)
        tool = _Gem5Tool(self.config, roi_budget=roi_budget,
                         roi_armed=False, warmup_budget=warmup_budget)
        machine.attach(tool)
        status = machine.run(max_instructions=max_instructions)
        machine.detach(tool)
        cycles = tool.base_cycles + tool.stall_cycles
        instructions = tool.instructions
        if warmup_budget and tool.warmup_cycles is not None:
            cycles -= tool.warmup_cycles
            instructions -= tool.warmup_budget
        return Gem5Result(
            config_name=self.config.name,
            status=status,
            instructions=instructions,
            cycles=cycles,
            llc_misses=tool.llc.misses,
            branch_mispredict_rate=tool.predictor.mispredict_rate,
        )
