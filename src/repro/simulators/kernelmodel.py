"""Synthetic ring-0 instruction streams for full-system simulation.

The paper's Table IV compares user-only (SDE front-end) against
full-system (Simics front-end) simulation of the same ELFie; the
full-system run additionally executes operating-system code: system
call service routines and periodic timer interrupts.  We cannot run a
real kernel, so this module substitutes deterministic synthetic
streams that exercise the same simulator mechanisms: extra ring-0
instructions, instruction fetches from a kernel code region, and data
accesses over a large, sparse kernel working set (page tables, slab
caches, the scheduler's runqueues), which is what disturbs TLBs,
caches, prefetchers, and memory bandwidth in the real measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.machine.kernel import NR

#: Kernel virtual address bases (x86-64 direct-map style).
KERNEL_TEXT_BASE = 0xFFFFFFFF81000000
KERNEL_DATA_BASE = 0xFFFF888000000000

#: Span of the synthetic kernel data working set (bytes).
KERNEL_DATA_SPAN = 8 << 20

#: Ring-0 instructions charged per syscall service routine.
SYSCALL_COSTS = {
    NR.READ: 900,
    NR.WRITE: 800,
    NR.OPEN: 1400,
    NR.CLOSE: 500,
    NR.LSEEK: 350,
    NR.MMAP: 1600,
    NR.MPROTECT: 1200,
    NR.MUNMAP: 1100,
    NR.BRK: 700,
    NR.CLONE: 2500,
    NR.FUTEX: 600,
    NR.GETTIMEOFDAY: 250,
    NR.EXIT: 1200,
    NR.EXIT_GROUP: 1500,
}
DEFAULT_SYSCALL_COST = 450

#: A timer interrupt fires every this many user instructions...
TIMER_INTERVAL = 25_000
#: ...and its handler runs this many ring-0 instructions.
TIMER_COST = 320

#: Fraction of kernel instructions that access kernel data (1 in N).
DATA_EVERY = 6
#: Kernel instruction fetch advances a new line every N instructions.
FETCH_LINE_EVERY = 8
#: Every Nth data access leaves the episode's local block (footprint).
FAR_EVERY = 4

_MASK64 = (1 << 64) - 1


@dataclass
class KernelStream:
    """One ring-0 episode: its length and its memory-access pattern."""

    instructions: int
    seed: int
    #: Stable per-cause seed: the same handler executes the same kernel
    #: text every time, so instruction fetches hit the caches on repeat
    #: episodes (only data addresses vary per episode).
    fetch_seed: int = 0

    def accesses(self) -> Iterator[Tuple[str, int]]:
        """Yield ("fetch" | "data", address) events for the episode.

        Addresses are produced by a seeded LCG so the stream is
        deterministic for a given (cause, sequence-number) seed.  Most
        data accesses walk an episode-local 4 KiB block (a kernel stack
        or slab page — good locality), while every ``FAR_EVERY``-th
        access touches a fresh line somewhere in the large kernel
        working set, which is what grows the full-system data footprint
        (Table IV's +45%) without making every access a miss.
        """
        state = (self.seed * 6364136223846793005 + 1442695040888963407) & _MASK64
        fetch_base = KERNEL_TEXT_BASE + (self.fetch_seed % 0x400) * 4096
        local_base = KERNEL_DATA_BASE + ((state >> 8) % 0x10000) * 4096
        data_index = 0
        for index in range(self.instructions):
            if index % FETCH_LINE_EVERY == 0:
                yield "fetch", fetch_base + (index // FETCH_LINE_EVERY) * 64
            if index % DATA_EVERY == 0:
                data_index += 1
                if data_index % FAR_EVERY == 0:
                    state = (state * 2862933555777941757 + 3037000493) & _MASK64
                    offset = (state >> 16) % KERNEL_DATA_SPAN
                    yield "data", KERNEL_DATA_BASE + (offset & ~0x3F)
                else:
                    yield "data", local_base + (data_index * 8) % 4096


def syscall_stream(number: int, sequence: int) -> KernelStream:
    """The kernel episode servicing syscall *number*."""
    cost = SYSCALL_COSTS.get(number, DEFAULT_SYSCALL_COST)
    return KernelStream(instructions=cost,
                        seed=(number << 20) ^ sequence,
                        fetch_seed=number)


def timer_stream(sequence: int) -> KernelStream:
    """The kernel episode for one timer interrupt."""
    return KernelStream(instructions=TIMER_COST,
                        seed=0x71E4 ^ (sequence << 8),
                        fetch_seed=0x71E4)
