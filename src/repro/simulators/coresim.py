"""A CoreSim-like detailed x86 simulator (paper §III-C2, §IV-C).

CoreSim is an execution-driven, cycle-accurate many-core simulator with
two front-ends: SDE (user-space instructions only) and Simics (full
system).  This model keeps that split:

- ``frontend="sde"``: only ring-3 (application) instructions reach the
  timing model; system calls are charged a fixed trap latency,
- ``frontend="simics"``: each system call additionally injects a
  synthetic ring-0 service stream, and a timer interrupt fires
  periodically (see :mod:`repro.simulators.kernelmodel`); kernel
  fetches and data accesses go through the same caches and TLBs as
  application traffic.

The timing model is a width-limited core with L1I/L1D, a private L2, a
shared LLC, I/D TLBs, a next-line prefetcher, and a bimodal branch
predictor — enough microarchitectural surface for the Table IV
comparison (instruction counts, runtime, TLB/cache pressure, data
footprint, prefetcher traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.elfie import prepare_elfie_machine
from repro.isa.instructions import Op
from repro.machine.machine import ExitStatus
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.simulators.branch import BranchPredictor
from repro.simulators.cachesim import Cache, CacheHierarchy
from repro.simulators.kernelmodel import (
    TIMER_INTERVAL,
    syscall_stream,
    timer_stream,
)


@dataclass
class CoreSimConfig:
    """Detailed-model configuration (default: Skylake-like)."""

    name: str = "skylake"
    dispatch_width: int = 4
    l1_kb: int = 32
    l2_kb: int = 128
    #: LLC scaled with the workload scaling (DESIGN.md §4): regions are
    #: ~1000x shorter than the paper's, so a full-size LLC would keep
    #: transients longer than whole regions.
    llc_kb: int = 512
    llc_assoc: int = 16
    tlb_entries: int = 64
    tlb_penalty: int = 30
    mispredict_penalty: int = 14
    syscall_trap_cycles: int = 150
    #: "sde" (user-only) or "simics" (full-system).
    frontend: str = "sde"
    prefetch_next_line: bool = True


class _CoreSimTool(Tool):
    """Single-core detailed timing model as an instrumentation tool."""

    wants_instructions = True
    wants_memory = True
    wants_blocks = True

    def __init__(self, config: CoreSimConfig,
                 roi_budget: Optional[int],
                 warmup_budget: int = 0) -> None:
        self.config = config
        self.llc = Cache("LLC", config.llc_kb, config.llc_assoc, 30)
        self.hierarchy = CacheHierarchy.build(
            self.llc, l1_kb=config.l1_kb, l2_kb=config.l2_kb,
            with_tlbs=True, tlb_entries=config.tlb_entries,
            tlb_penalty=config.tlb_penalty,
        )
        self.predictor = BranchPredictor(
            mispredict_penalty=config.mispredict_penalty)
        self.cycles = 0.0
        self.ring3_instructions = 0
        self.ring0_instructions = 0
        self.prefetch_lines = 0
        self.roi_active = False
        self.roi_budget = roi_budget
        #: ROI instructions that warm microarchitectural state without
        #: being measured (the PinPoints warmup region).
        self.warmup_budget = warmup_budget
        self.warmup_cycles: Optional[float] = None if warmup_budget else 0.0
        self.warmup_ring0: int = 0
        self._instr_cost = 1.0 / config.dispatch_width
        self._pending_branch = None
        self._since_timer = 0
        self._kernel_episodes = 0
        # long-latency execution costs (partially hidden by the window)
        self._long_op_cost = {
            int(Op.DIV_RR): 18.0, int(Op.MOD_RR): 18.0,
            int(Op.FDIV): 11.0,
            int(Op.IMUL_RR): 2.0, int(Op.IMUL_RI): 2.0,
            int(Op.FMUL): 2.5, int(Op.FADD): 2.0, int(Op.FSUB): 2.0,
        }

    # -- kernel stream injection -------------------------------------------

    def _run_kernel_stream(self, stream) -> None:
        self.ring0_instructions += stream.instructions
        self.cycles += stream.instructions * self._instr_cost
        for kind, addr in stream.accesses():
            if kind == "fetch":
                self.cycles += self.hierarchy.fetch_access(addr)
            else:
                self.cycles += self.hierarchy.data_access(addr)

    def _maybe_timer(self, machine) -> None:
        if self._since_timer >= TIMER_INTERVAL:
            self._since_timer = 0
            if self.config.frontend == "simics":
                self._kernel_episodes += 1
                self._run_kernel_stream(timer_stream(self._kernel_episodes))

    # -- instrumentation callbacks -------------------------------------------

    def on_instruction(self, machine, thread, pc, insn) -> None:
        if self._pending_branch is not None:
            branch_pc, fallthrough = self._pending_branch
            self._pending_branch = None
            self.cycles += self.predictor.predict_and_update(
                branch_pc, pc != fallthrough)
        if not self.roi_active:
            if insn.op is Op.MARKER:
                self.roi_active = True
            return
        self.cycles += self._instr_cost
        cost = self._long_op_cost.get(int(insn.op))
        if cost is not None:
            self.cycles += cost
        self.ring3_instructions += 1
        self._since_timer += 1
        if insn.is_cond_branch:
            self._pending_branch = (pc, pc + insn.size)
        self._maybe_timer(machine)
        if (self.warmup_cycles is None
                and self.ring3_instructions >= self.warmup_budget):
            self.warmup_cycles = self.cycles
            self.warmup_ring0 = self.ring0_instructions
        if (self.roi_budget is not None
                and self.ring3_instructions
                >= self.roi_budget + self.warmup_budget):
            machine.request_stop("coresim budget")

    def on_basic_block(self, machine, thread, pc) -> None:
        if self.roi_active:
            self.cycles += self.hierarchy.fetch_access(pc)

    def _data(self, addr: int) -> None:
        before = self.hierarchy.l1d.misses
        self.cycles += self.hierarchy.data_access(addr)
        if (self.config.prefetch_next_line
                and self.hierarchy.l1d.misses > before):
            # next-line prefetch into the LLC
            self.llc.access(addr + 64)
            self.prefetch_lines += 1

    def on_memory_read(self, machine, thread, addr, size) -> None:
        if self.roi_active:
            self._data(addr)

    def on_memory_write(self, machine, thread, addr, size) -> None:
        if self.roi_active:
            self._data(addr)

    def on_syscall_after(self, machine, thread, number, result) -> None:
        if not self.roi_active:
            return
        self.cycles += self.config.syscall_trap_cycles
        if self.config.frontend == "simics":
            self._kernel_episodes += 1
            self._run_kernel_stream(
                syscall_stream(number, self._kernel_episodes))


@dataclass
class CoreSimResult:
    """Detailed-simulation statistics (the Table IV columns)."""

    config_name: str
    frontend: str
    status: ExitStatus
    instructions_ring3: int
    instructions_ring0: int
    runtime_cycles: float
    llc_misses: int
    dtlb_misses: int
    itlb_misses: int
    data_footprint_bytes: int
    prefetch_lines: int
    branch_mispredict_rate: float

    @property
    def instructions_total(self) -> int:
        return self.instructions_ring3 + self.instructions_ring0

    @property
    def ipc(self) -> float:
        if self.runtime_cycles == 0:
            return 0.0
        return self.instructions_total / self.runtime_cycles

    @property
    def cpi(self) -> float:
        ipc = self.ipc
        return 1.0 / ipc if ipc else 0.0

    @property
    def user_cpi(self) -> float:
        """Cycles per ring-3 instruction (for CPI-based validation)."""
        if self.instructions_ring3 == 0:
            return 0.0
        return self.runtime_cycles / self.instructions_ring3

    #: Post-warmup measurement window (filled by simulate_elfie when a
    #: warmup budget was given).
    measured_instructions: int = 0
    measured_cycles: float = 0.0

    @property
    def measured_cpi(self) -> float:
        """CPI of the post-warmup measured window (user instructions)."""
        if self.measured_instructions == 0:
            return self.user_cpi
        return self.measured_cycles / self.measured_instructions


class CoreSim:
    """CoreSim front-end: simulate ELFies or plain program binaries."""

    def __init__(self, config: Optional[CoreSimConfig] = None) -> None:
        self.config = config or CoreSimConfig()

    def _finish(self, tool: _CoreSimTool, status: ExitStatus) -> CoreSimResult:
        hierarchy = tool.hierarchy
        return CoreSimResult(
            config_name=self.config.name,
            frontend=self.config.frontend,
            status=status,
            instructions_ring3=tool.ring3_instructions,
            instructions_ring0=tool.ring0_instructions,
            runtime_cycles=tool.cycles,
            llc_misses=tool.llc.misses,
            dtlb_misses=hierarchy.dtlb.misses if hierarchy.dtlb else 0,
            itlb_misses=hierarchy.itlb.misses if hierarchy.itlb else 0,
            data_footprint_bytes=tool.llc.footprint_bytes(),
            prefetch_lines=tool.prefetch_lines,
            branch_mispredict_rate=tool.predictor.mispredict_rate,
        )

    def simulate_elfie(self, image: bytes,
                       roi_budget: Optional[int] = None,
                       warmup_budget: int = 0,
                       seed: int = 0,
                       fs: Optional[FileSystem] = None,
                       workdir: str = "/",
                       max_instructions: int = 50_000_000) -> CoreSimResult:
        """Simulate an ELFie (startup skipped via the ROI marker).

        *warmup_budget* ROI instructions warm caches/TLBs before the
        measured window of *roi_budget* instructions begins, matching
        the PinPoints warmup methodology.
        """
        machine, _ = prepare_elfie_machine(image, seed=seed, fs=fs,
                                           workdir=workdir)
        tool = _CoreSimTool(self.config, roi_budget=roi_budget,
                            warmup_budget=warmup_budget)
        machine.attach(tool)
        status = machine.run(max_instructions=max_instructions)
        machine.detach(tool)
        result = self._finish(tool, status)
        if tool.warmup_cycles is not None:
            result.measured_instructions = (tool.ring3_instructions
                                            - tool.warmup_budget)
            result.measured_cycles = tool.cycles - tool.warmup_cycles
        return result

    def simulate_program(self, image: bytes,
                         max_instructions: Optional[int] = None,
                         seed: int = 0,
                         fs: Optional[FileSystem] = None) -> CoreSimResult:
        """Whole-program detailed simulation (the weeks-long baseline of
        the traditional validation flow).  The ROI is the entire run."""
        from repro.machine.loader import load_elf
        from repro.machine.machine import Machine

        machine = Machine(seed=seed, fs=fs)
        load_elf(machine, image)
        tool = _CoreSimTool(self.config, roi_budget=None)
        tool.roi_active = True
        machine.attach(tool)
        status = machine.run(max_instructions=max_instructions)
        machine.detach(tool)
        return self._finish(tool, status)
