"""Set-associative caches and TLBs for the simulator timing models.

These are the component models shared by the Sniper-like, CoreSim-like
and gem5-like simulators.  They are deliberately simple (LRU, inclusive
lookups, no MSHRs) but track everything the case studies report:
accesses, misses, and distinct-line footprints (Table IV's data
footprint column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

LINE_SHIFT = 6
LINE_SIZE = 1 << LINE_SHIFT


class Cache:
    """One set-associative, LRU cache level."""

    def __init__(self, name: str, size_kb: int, assoc: int,
                 latency: int, parent: Optional["Cache"] = None) -> None:
        size = size_kb * 1024
        lines = size // LINE_SIZE
        if lines % assoc:
            raise ValueError("cache size not divisible by associativity")
        self.name = name
        self.sets = lines // assoc
        self.assoc = assoc
        self.latency = latency
        self.parent = parent
        self._ways: List[List[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0
        #: Distinct lines ever touched (footprint tracking).
        self.touched: Set[int] = set()

    def access(self, addr: int) -> int:
        """Look up the line containing *addr*; returns the cycles spent
        at this level and below (parent chains on miss)."""
        line = addr >> LINE_SHIFT
        index = line % self.sets
        ways = self._ways[index]
        self.accesses += 1
        self.touched.add(line)
        if line in ways:
            ways.remove(line)
            ways.append(line)  # most-recently-used at the back
            return self.latency
        self.misses += 1
        cycles = self.latency
        if self.parent is not None:
            cycles += self.parent.access(addr)
        else:
            cycles += MEMORY_LATENCY
        ways.append(line)
        if len(ways) > self.assoc:
            ways.pop(0)
        return cycles

    def invalidate_all(self) -> None:
        self._ways = [[] for _ in range(self.sets)]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def footprint_bytes(self) -> int:
        """Bytes of distinct lines that passed through this cache."""
        return len(self.touched) * LINE_SIZE


#: DRAM access latency in cycles.
MEMORY_LATENCY = 120


class Tlb:
    """A fully-associative, LRU translation lookaside buffer."""

    PAGE_SHIFT = 12

    def __init__(self, name: str, entries: int, miss_penalty: int) -> None:
        self.name = name
        self.entries = entries
        self.miss_penalty = miss_penalty
        self._lru: List[int] = []
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate; returns extra cycles (0 on hit)."""
        page = addr >> self.PAGE_SHIFT
        self.accesses += 1
        if page in self._lru:
            self._lru.remove(page)
            self._lru.append(page)
            return 0
        self.misses += 1
        self._lru.append(page)
        if len(self._lru) > self.entries:
            self._lru.pop(0)
        return self.miss_penalty

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class CacheHierarchy:
    """A private L1D/L1I + L2 per core, with a shared LLC."""

    l1d: Cache
    l1i: Cache
    l2: Cache
    llc: Cache
    dtlb: Optional[Tlb] = None
    itlb: Optional[Tlb] = None

    @classmethod
    def build(cls, llc: Cache,
              l1_kb: int = 32, l1_assoc: int = 8, l1_latency: int = 2,
              l2_kb: int = 256, l2_assoc: int = 8, l2_latency: int = 10,
              with_tlbs: bool = False,
              tlb_entries: int = 64, tlb_penalty: int = 30,
              ) -> "CacheHierarchy":
        """Build one core's private hierarchy under a shared *llc*."""
        l2 = Cache("L2", l2_kb, l2_assoc, l2_latency, parent=llc)
        l1d = Cache("L1D", l1_kb, l1_assoc, l1_latency, parent=l2)
        l1i = Cache("L1I", l1_kb, l1_assoc, l1_latency, parent=l2)
        dtlb = Tlb("DTLB", tlb_entries, tlb_penalty) if with_tlbs else None
        itlb = Tlb("ITLB", tlb_entries * 2, tlb_penalty) if with_tlbs else None
        return cls(l1d=l1d, l1i=l1i, l2=l2, llc=llc, dtlb=dtlb, itlb=itlb)

    def data_access(self, addr: int) -> int:
        cycles = self.l1d.access(addr)
        if self.dtlb is not None:
            cycles += self.dtlb.access(addr)
        return cycles

    def fetch_access(self, addr: int) -> int:
        cycles = self.l1i.access(addr)
        if self.itlb is not None:
            cycles += self.itlb.access(addr)
        return cycles

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for cache in (self.l1d, self.l1i, self.l2, self.llc):
            out["%s_accesses" % cache.name.lower()] = cache.accesses
            out["%s_misses" % cache.name.lower()] = cache.misses
        for tlb in (self.dtlb, self.itlb):
            if tlb is not None:
                out["%s_accesses" % tlb.name.lower()] = tlb.accesses
                out["%s_misses" % tlb.name.lower()] = tlb.misses
        return out
