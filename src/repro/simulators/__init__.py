"""The three x86 simulators the paper drives with ELFies (§III-C, §IV).

- :mod:`repro.simulators.sniper` -- a Sniper-like multi-core simulator
  built as a Pin tool on the machine's instrumentation hooks; simulates
  ELFies unmodified and replays pinballs in constrained mode (Fig. 11),
- :mod:`repro.simulators.coresim` -- a CoreSim-like detailed simulator
  with two front-ends: SDE-style user-only and Simics-style full-system
  (ring-0 kernel instruction streams, TLBs — Table IV),
- :mod:`repro.simulators.gem5` -- a gem5-like binary-driven SE-mode
  simulator with an out-of-order analytical core model and two machine
  configurations (Nehalem-like, Haswell-like — Table V),
- :mod:`repro.simulators.cachesim` / :mod:`repro.simulators.branch` --
  the shared cache/TLB and branch-predictor component models,
- :mod:`repro.simulators.kernelmodel` -- synthetic ring-0 instruction
  streams standing in for OS execution in full-system mode.
"""

from repro.simulators.cachesim import Cache, CacheHierarchy, Tlb
from repro.simulators.branch import BranchPredictor
from repro.simulators.sniper import SniperConfig, SniperResult, SniperSim
from repro.simulators.coresim import (
    CoreSimConfig,
    CoreSimResult,
    CoreSim,
)
from repro.simulators.gem5 import (
    Gem5Config,
    Gem5Result,
    Gem5Sim,
    NEHALEM_LIKE,
    HASWELL_LIKE,
)

__all__ = [
    "Cache",
    "CacheHierarchy",
    "Tlb",
    "BranchPredictor",
    "SniperConfig",
    "SniperResult",
    "SniperSim",
    "CoreSimConfig",
    "CoreSimResult",
    "CoreSim",
    "Gem5Config",
    "Gem5Result",
    "Gem5Sim",
    "NEHALEM_LIKE",
    "HASWELL_LIKE",
]
