"""A Sniper-like multi-core simulator (paper §III-C1, §IV-B).

Sniper is a Pin-based x86 multi-core simulator; this model is likewise
built as an instrumentation tool over the platform's Pin-style hooks.
It simulates:

- **ELFies** without any simulator modification: load the binary, wait
  for the ROI marker, simulate until an end condition — either a
  ``(PC, count)`` pair (the paper's choice for multi-threaded regions,
  with the count determined by a separate profiling run) or an
  aggregate instruction budget;
- **pinballs** in constrained-replay mode (Sniper + PinPlay library):
  system-call injection and the recorded thread order are enforced
  while the same timing model runs, so thread interleaving is
  pre-determined — which is what makes constrained simulation able to
  introduce artificial stalls (the Fig. 11 contrast).

The core model is interval-flavoured: a dispatch-width base cost plus
penalties from private L1/L2, a shared LLC, and a bimodal branch
predictor.  Threads map to cores round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.elfie import prepare_elfie_machine
from repro.isa.instructions import Op
from repro.machine.machine import ExitStatus
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.pinball import Pinball
from repro.machine.scheduler import Scheduler, ScheduleSlice
from repro.pinplay.replayer import ReplaySession
from repro.simulators.branch import BranchPredictor
from repro.simulators.cachesim import Cache, CacheHierarchy


class _TimingDrivenScheduler(Scheduler):
    """Advance the thread whose simulated core time is furthest behind.

    Real Sniper interleaves threads by simulated cycles, not retired
    instructions.  Under this policy a thread spinning at a barrier
    (high IPC, few misses) retires many more instructions per simulated
    cycle than a thread doing cache-missing work — which is exactly why
    unconstrained multi-threaded ELFie simulations retire *more*
    instructions than their constrained pinball replays (Fig. 11).
    """

    def __init__(self, tool: "_SniperTool", quantum: int = 64) -> None:
        super().__init__(seed=0, base_quantum=quantum, jitter=0.0)
        self._tool = tool

    def pick(self, runnable_tids):
        tids = sorted(runnable_tids)
        if not tids:
            raise RuntimeError("no runnable threads (deadlock)")
        cycles = self._tool.core_cycles
        cores = self._tool.config.cores
        tid = min(tids, key=lambda t: (cycles[t % cores], t))
        return ScheduleSlice(tid=tid, quantum=self.base_quantum)


@dataclass
class SniperConfig:
    """Machine configuration (default: Gainestown-like 8-core OOO)."""

    name: str = "gainestown-8"
    cores: int = 8
    dispatch_width: int = 4
    l1_kb: int = 32
    l2_kb: int = 128
    llc_kb: int = 2048  # shared, scaled with workloads (DESIGN.md §4)
    llc_assoc: int = 16
    mispredict_penalty: int = 12


class _SniperTool(Tool):
    """The timing model, attached as a Pin tool."""

    wants_instructions = True
    wants_memory = True
    wants_blocks = True

    def __init__(self, config: SniperConfig, roi_armed: bool,
                 end_pc: Optional[int], end_count: int,
                 roi_budget: Optional[int]) -> None:
        self.config = config
        self.llc = Cache("LLC", config.llc_kb, config.llc_assoc, 30)
        self.cores: List[CacheHierarchy] = [
            CacheHierarchy.build(self.llc, l1_kb=config.l1_kb,
                                 l2_kb=config.l2_kb)
            for _ in range(config.cores)
        ]
        self.predictors = [BranchPredictor(
            mispredict_penalty=config.mispredict_penalty)
            for _ in range(config.cores)]
        self.core_cycles = [0.0] * config.cores
        self.core_instructions = [0] * config.cores
        self.roi_active = roi_armed
        self.end_pc = end_pc
        self.end_count = end_count
        self._end_seen = 0
        self.roi_budget = roi_budget
        self._instr_cost = 1.0 / config.dispatch_width
        self._pending_branch: Dict[int, Tuple[int, int, int]] = {}

    def _core(self, tid: int) -> int:
        return tid % self.config.cores

    def on_instruction(self, machine, thread, pc, insn) -> None:
        core = self._core(thread.tid)
        pending = self._pending_branch.pop(thread.tid, None)
        if pending is not None:
            branch_pc, fallthrough, branch_core = pending
            taken = pc != fallthrough
            self.core_cycles[branch_core] += self.predictors[
                branch_core].predict_and_update(branch_pc, taken)
        if not self.roi_active:
            if insn.op is Op.MARKER:
                self.roi_active = True
                hooks.OBS.instant("sniper.roi_enter", "sniper",
                                  tid=thread.tid, pc=pc)
            return
        self.core_cycles[core] += self._instr_cost
        self.core_instructions[core] += 1
        if insn.is_cond_branch:
            self._pending_branch[thread.tid] = (pc, pc + insn.size, core)
        if self.end_pc is not None and pc == self.end_pc:
            self._end_seen += 1
            if self._end_seen >= self.end_count:
                hooks.OBS.instant("sniper.roi_exit", "sniper",
                                  reason="end condition", pc=pc)
                machine.request_stop("sniper end condition")
                return
        if (self.roi_budget is not None
                and sum(self.core_instructions) >= self.roi_budget):
            hooks.OBS.instant("sniper.roi_exit", "sniper",
                              reason="instruction budget", pc=pc)
            machine.request_stop("sniper instruction budget")

    def on_basic_block(self, machine, thread, pc) -> None:
        if self.roi_active:
            core = self._core(thread.tid)
            self.core_cycles[core] += self.cores[core].fetch_access(pc)

    def on_memory_read(self, machine, thread, addr, size) -> None:
        if self.roi_active:
            core = self._core(thread.tid)
            self.core_cycles[core] += self.cores[core].data_access(addr)

    def on_memory_write(self, machine, thread, addr, size) -> None:
        if self.roi_active:
            core = self._core(thread.tid)
            self.core_cycles[core] += self.cores[core].data_access(addr)


@dataclass
class SniperResult:
    """Simulation outcome."""

    config_name: str
    constrained: bool
    instructions: int
    core_instructions: List[int]
    core_cycles: List[float]
    status: ExitStatus
    llc_misses: int = 0
    branch_mispredict_rate: float = 0.0

    @property
    def runtime_cycles(self) -> float:
        """Predicted runtime: the busiest core's cycle count."""
        return max(self.core_cycles) if self.core_cycles else 0.0

    @property
    def ipc(self) -> float:
        runtime = self.runtime_cycles
        return self.instructions / runtime if runtime else 0.0

    @property
    def cpi(self) -> float:
        return 1.0 / self.ipc if self.ipc else 0.0


class SniperSim:
    """Front-end entry points for ELFie and pinball simulation."""

    def __init__(self, config: Optional[SniperConfig] = None) -> None:
        self.config = config or SniperConfig()

    def _finish(self, tool: _SniperTool, status: ExitStatus,
                constrained: bool) -> SniperResult:
        mispredicts = sum(p.mispredicts for p in tool.predictors)
        lookups = sum(p.lookups for p in tool.predictors)
        return SniperResult(
            config_name=self.config.name,
            constrained=constrained,
            instructions=sum(tool.core_instructions),
            core_instructions=list(tool.core_instructions),
            core_cycles=list(tool.core_cycles),
            status=status,
            llc_misses=tool.llc.misses,
            branch_mispredict_rate=(mispredicts / lookups) if lookups else 0.0,
        )

    def simulate_elfie(self, image: bytes,
                       end_pc: Optional[int] = None,
                       end_count: int = 1,
                       roi_budget: Optional[int] = None,
                       seed: int = 0,
                       fs: Optional[FileSystem] = None,
                       workdir: str = "/",
                       timing_driven: bool = True,
                       max_instructions: int = 50_000_000) -> SniperResult:
        """Simulate an ELFie, skipping startup via the ROI marker.

        Simulation ends at the (end_pc, end_count) condition, at the
        aggregate ROI instruction budget, or when the ELFie exits.
        With ``timing_driven`` (the default, matching real Sniper)
        threads progress in simulated time rather than round-robin by
        retired instructions.
        """
        machine, _ = prepare_elfie_machine(image, seed=seed, fs=fs,
                                           workdir=workdir)
        tool = _SniperTool(self.config, roi_armed=False, end_pc=end_pc,
                           end_count=end_count, roi_budget=roi_budget)
        if timing_driven:
            machine.scheduler = _TimingDrivenScheduler(tool)
        machine.attach(tool)
        with hooks.OBS.span("sniper.simulate_elfie", "sniper"):
            status = machine.run(max_instructions=max_instructions)
        machine.detach(tool)
        return self._finish(tool, status, constrained=False)

    def simulate_pinball(self, pinball: Pinball, seed: int = 0,
                         fs: Optional[FileSystem] = None) -> SniperResult:
        """Constrained simulation: replay the pinball under the timing
        model (Sniper modified to include the PinPlay library)."""
        session = ReplaySession(pinball, injection=True, seed=seed, fs=fs,
                                instrument=False)
        machine = session.machine
        tool = _SniperTool(self.config, roi_armed=True, end_pc=None,
                           end_count=0, roi_budget=None)
        machine.attach(tool)
        with hooks.OBS.span("sniper.simulate_pinball", "sniper",
                            pinball=pinball.name):
            status = session.run()
        machine.detach(tool)
        session.result()
        return self._finish(tool, status, constrained=True)


def find_end_condition(pinball: Pinball, seed: int = 0,
                       spin_radius: int = 64) -> Tuple[int, int]:
    """Choose a ``(PC, count)`` end condition for ELFie simulation.

    Per the paper, the PC must be "a specific instruction at the end of
    the code region outside any spin-loops or synchronization code" and
    the count its global execution count, "determined using a separate
    profiling run".  The profiling run here is a constrained replay:
    we histogram every PC, mark PCs within *spin_radius* bytes of a
    PAUSE as spin code, and return the most recently executed non-spin
    PC together with its accumulated count at region end.
    """
    from collections import deque

    class _Profiler(Tool):
        wants_instructions = True

        def __init__(self) -> None:
            self.counts: Dict[int, int] = {}
            self.spin: set = set()
            self.recent: deque = deque(maxlen=512)

        def on_instruction(self, machine, thread, pc, insn) -> None:
            self.counts[pc] = self.counts.get(pc, 0) + 1
            self.recent.append(pc)
            if insn.op is Op.PAUSE:
                for delta in range(-spin_radius, spin_radius + 1):
                    self.spin.add(pc + delta)

    session = ReplaySession(pinball, injection=True, seed=seed, fs=None,
                            instrument=False)
    profiler = _Profiler()
    session.machine.attach(profiler)
    session.run()
    for pc in reversed(profiler.recent):
        if pc not in profiler.spin:
            return pc, profiler.counts[pc]
    # everything near the end was spin code; fall back to the busiest PC
    pc = max(profiler.counts, key=profiler.counts.get)
    return pc, profiler.counts[pc]


def profile_end_condition(pinball: Pinball, end_pc: int,
                          seed: int = 0) -> Tuple[int, int]:
    """Determine the global execution count of *end_pc* in the region.

    The paper picks a PC at the end of the code region outside any
    spin loop and counts its executions in a separate profiling run;
    here the profiling run is a constrained replay of the pinball.
    Returns ``(end_pc, count)`` ready for :meth:`SniperSim.simulate_elfie`.
    """

    class _Counter(Tool):
        wants_instructions = True

        def __init__(self) -> None:
            self.count = 0

        def on_instruction(self, machine, thread, pc, insn) -> None:
            if pc == end_pc:
                self.count += 1

    session = ReplaySession(pinball, injection=True, seed=seed, fs=None,
                            instrument=False)
    counter = _Counter()
    session.machine.attach(counter)
    session.run()
    return end_pc, counter.count
