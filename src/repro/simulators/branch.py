"""A 2-bit saturating-counter branch predictor (bimodal)."""

from __future__ import annotations

from typing import Dict


class BranchPredictor:
    """Bimodal predictor: a table of 2-bit counters indexed by PC."""

    def __init__(self, table_bits: int = 12,
                 mispredict_penalty: int = 12) -> None:
        self.table_size = 1 << table_bits
        self.mask = self.table_size - 1
        self.counters: Dict[int, int] = {}
        self.mispredict_penalty = mispredict_penalty
        self.lookups = 0
        self.mispredicts = 0

    def predict_and_update(self, pc: int, taken: bool) -> int:
        """Predict the branch at *pc*, train, and return the penalty
        cycles (0 on correct prediction)."""
        index = (pc >> 1) & self.mask
        counter = self.counters.get(index, 1)  # weakly not-taken
        prediction = counter >= 2
        self.lookups += 1
        if taken and counter < 3:
            counter += 1
        elif not taken and counter > 0:
            counter -= 1
        self.counters[index] = counter
        if prediction != taken:
            self.mispredicts += 1
            return self.mispredict_penalty
        return 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.lookups if self.lookups else 0.0
