"""Simulation region selection: BBV profiling, SimPoint, PinPoints.

The paper validates PinPoints-selected regions with ELFies (§IV-A).
This package provides the full selection pipeline:

- :mod:`repro.simpoint.bbv` -- basic-block-vector profiling in fixed
  instruction slices (the SimPoint feature extractor),
- :mod:`repro.simpoint.kmeans` -- random projection + k-means with
  BIC model selection (maxK),
- :mod:`repro.simpoint.simpoint` -- representative and alternate slice
  selection with weights,
- :mod:`repro.simpoint.pinpoints` -- the end-to-end PinPoints driver
  (profile, cluster, capture a fat pinball per representative), both
  direct and farm-backed (parallel, store-memoized campaigns),
- :mod:`repro.simpoint.validation` -- prediction-error computation,
  ELFie-based and simulation-based validation, coverage with
  alternates.
"""

from repro.simpoint.bbv import BBVProfile, collect_bbv
from repro.simpoint.kmeans import KMeansResult, cluster_points, cluster_vectors
from repro.simpoint.simpoint import SimPointResult, pick_regions, select_simpoints
from repro.simpoint.pinpoints import (
    FarmAppOutcome,
    FarmValidation,
    PinPointsResult,
    add_pinpoints_jobs,
    elfie_validation,
    fidelity_validation,
    run_pinpoints,
    run_pinpoints_campaign,
    run_pinpoints_farm,
)
from repro.simpoint.validation import (
    RegionMeasurement,
    ValidationResult,
    prediction_error,
    validate_with_elfies,
    validate_with_simulator,
)

__all__ = [
    "BBVProfile",
    "collect_bbv",
    "KMeansResult",
    "cluster_points",
    "cluster_vectors",
    "SimPointResult",
    "pick_regions",
    "select_simpoints",
    "PinPointsResult",
    "FarmAppOutcome",
    "FarmValidation",
    "add_pinpoints_jobs",
    "elfie_validation",
    "fidelity_validation",
    "run_pinpoints",
    "run_pinpoints_campaign",
    "run_pinpoints_farm",
    "RegionMeasurement",
    "ValidationResult",
    "prediction_error",
    "validate_with_elfies",
    "validate_with_simulator",
]
