"""SimPoint region selection: representatives, alternates, weights.

For each cluster, the slice closest to the centroid is the
*representative* (the simulation point); the next-closest slices are
*alternates*, which the paper uses to recover coverage when an ELFie
for the primary representative fails to execute correctly (§I-B:
"alternate region selection ... to increase coverage up to 90%+").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.pinplay.regions import RegionSpec
from repro.simpoint.bbv import BBVProfile
from repro.simpoint.kmeans import KMeansResult, cluster_vectors


@dataclass
class SimPointCluster:
    """One phase cluster and its candidate slices."""

    cluster_id: int
    weight: float
    #: Slice indices ordered by distance to the centroid (best first).
    candidates: List[int]

    @property
    def representative(self) -> int:
        return self.candidates[0]

    def alternate(self, rank: int) -> Optional[int]:
        """The rank-th best representative (0 = primary)."""
        if rank < len(self.candidates):
            return self.candidates[rank]
        return None


@dataclass
class SimPointResult:
    """Selected simulation points for one program."""

    slice_size: int
    clusters: List[SimPointCluster]
    kmeans: KMeansResult

    @property
    def k(self) -> int:
        return len(self.clusters)

    def regions(self, warmup: int = 0, name_prefix: str = "r",
                max_alternates: int = 0) -> List[RegionSpec]:
        """RegionSpecs for representatives (rank 0) and alternates.

        Alternates carry the same weight as their primary and a name
        suffix ``.altN``.
        """
        specs: List[RegionSpec] = []
        for cluster in self.clusters:
            for rank in range(max_alternates + 1):
                slice_index = cluster.alternate(rank)
                if slice_index is None:
                    continue
                suffix = "" if rank == 0 else ".alt%d" % rank
                specs.append(
                    RegionSpec(
                        start=slice_index * self.slice_size,
                        length=self.slice_size,
                        warmup=warmup,
                        name="%s%d%s" % (name_prefix, cluster.cluster_id,
                                         suffix),
                        weight=cluster.weight,
                    )
                )
        return specs


def select_simpoints(profile: BBVProfile, max_k: int = 50,
                     seed: int = 42,
                     max_candidates: int = 4) -> SimPointResult:
    """Cluster a BBV profile and pick representatives + alternates."""
    kmeans = cluster_vectors(profile.vectors, max_k=max_k, seed=seed)
    total = len(profile.vectors)
    clusters: List[SimPointCluster] = []
    for cluster_id in range(kmeans.k):
        members = kmeans.members(cluster_id)
        if len(members) == 0:
            continue
        distances = kmeans.distances_to_centroid(cluster_id)
        order = np.argsort(distances, kind="stable")
        candidates = [int(members[i]) for i in order[:max_candidates]]
        clusters.append(
            SimPointCluster(
                cluster_id=cluster_id,
                weight=len(members) / total,
                candidates=candidates,
            )
        )
    return SimPointResult(slice_size=profile.slice_size, clusters=clusters,
                          kmeans=kmeans)


def pick_regions(profile: BBVProfile, max_k: int = 50, warmup: int = 0,
                 seed: int = 42,
                 name_prefix: str = "r") -> List[RegionSpec]:
    """One-call convenience: profile -> representative regions."""
    result = select_simpoints(profile, max_k=max_k, seed=seed)
    return result.regions(warmup=warmup, name_prefix=name_prefix)
