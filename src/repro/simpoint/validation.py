"""Validation of simulation-region selection (paper §IV-A).

The quality metric is the *prediction error*::

    error = (whole_program_CPI - region_predicted_CPI) / whole_program_CPI

where the predicted CPI is the region-weight-weighted mean of per-region
CPIs.  The paper computes the true value two ways:

- **traditionally**, by simulating the entire program (weeks of
  simulation time), and
- **with ELFies**, by running the whole program and each region ELFie
  natively with hardware counters (an hour).

Both are implemented here.  Failed ELFies (signal exits, short runs)
are replaced by their cluster's alternate representatives, reproducing
the paper's coverage-recovery strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.elfie import prepare_elfie_machine
from repro.core.pinball2elf import ElfieArtifact
from repro.isa.instructions import Op
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem
from repro.pinplay.regions import RegionSpec
from repro.simpoint.pinpoints import PinPointsResult


def prediction_error(true_value: float, predicted: float) -> float:
    """The paper's error definition: (true - predicted) / true."""
    if true_value == 0:
        return 0.0
    return (true_value - predicted) / true_value


class _RegionMeter(Tool):
    """Measures cycles over the captured region, skipping the warmup.

    Watches the ROI marker; once ``warmup`` post-marker instructions
    have retired *machine-wide* the meter starts, and after ``length``
    more it stops the machine.  Progress is global (summed over all
    threads) because region windows are defined in global instruction
    counts: for a multi-threaded ELFie each thread retires only a
    fraction of the window, and the ELFie's perf-counter exit fires on
    the global count — a per-thread meter would never finish.  For a
    single-threaded ELFie global and per-thread progress coincide, so
    the measurement is unchanged.  Cycle counts come from the simulated
    hardware timing model, so attaching this tool does not perturb the
    measurement (unlike a real Pintool).
    """

    wants_instructions = True

    def __init__(self, warmup: int, length: int) -> None:
        self.warmup = warmup
        self.length = length
        self.tid: Optional[int] = None
        self.start_cycles: Optional[int] = None
        self.end_cycles: Optional[int] = None
        self._base = 0
        self._start_at = 0
        self._end_at = 0

    def on_instruction(self, machine, thread, pc, insn) -> None:
        if self.tid is None:
            if insn.op is Op.MARKER:
                self.tid = thread.tid
                self._base = machine.total_icount()
                self._start_at = self.warmup
                self._end_at = self.warmup + self.length
            return
        progress = machine.total_icount() - self._base
        if self.start_cycles is None:
            if progress >= self._start_at:
                self.start_cycles = machine.total_cycles()
            return
        if self.end_cycles is None and progress >= self._end_at:
            self.end_cycles = machine.total_cycles()
            machine.request_stop("region measured")

    @property
    def cpi(self) -> Optional[float]:
        if self.start_cycles is None or self.end_cycles is None:
            return None
        return (self.end_cycles - self.start_cycles) / self.length


@dataclass
class RegionMeasurement:
    """Native measurement of one region ELFie."""

    region: RegionSpec
    cpi: Optional[float]
    ok: bool
    detail: str = ""
    used_alternate: Optional[str] = None
    #: Work-denominated rates (LoopPoint marker metering only): cycles
    #: and retired instructions per work-marker crossing over the
    #: measured window.  None for icount-metered measurements.
    cycles_per_work: Optional[float] = None
    icount_per_work: Optional[float] = None


@dataclass
class ValidationResult:
    """Outcome of validating one program's region selection."""

    app_name: str
    whole_program_cpi: float
    measurements: List[RegionMeasurement] = field(default_factory=list)

    @property
    def covered_weight(self) -> float:
        """Coverage: the summed weight of correctly-executing regions."""
        return sum(m.region.weight for m in self.measurements if m.ok)

    @property
    def predicted_cpi(self) -> float:
        """Weight-normalized predicted CPI over covered regions."""
        covered = self.covered_weight
        if covered == 0:
            return 0.0
        return sum(
            m.region.weight * m.cpi for m in self.measurements if m.ok
        ) / covered

    @property
    def error(self) -> float:
        return prediction_error(self.whole_program_cpi, self.predicted_cpi)

    @property
    def abs_error_percent(self) -> float:
        return abs(self.error) * 100.0


def measure_elfie_region(artifact: ElfieArtifact, region: RegionSpec,
                         seed: int = 0,
                         fs: Optional[FileSystem] = None,
                         workdir: str = "/",
                         budget_factor: int = 6) -> RegionMeasurement:
    """Run a region ELFie natively and measure its post-warmup CPI."""
    try:
        machine, _loaded = prepare_elfie_machine(
            artifact.image, seed=seed, fs=fs, workdir=workdir)
    except Exception as exc:  # loader failures (stack collision)
        return RegionMeasurement(region=region, cpi=None, ok=False,
                                 detail="loader: %s" % exc)
    # The marker sits at the captured window start (warmup_start); the
    # instructions to skip are those actually captured before the
    # region, which is less than the nominal warmup when the region
    # starts early in the program.
    effective_warmup = region.start - region.warmup_start
    meter = _RegionMeter(warmup=effective_warmup, length=region.length)
    machine.attach(meter)
    # Budget: startup (stack copy) + warmup + region, with headroom.
    budget = budget_factor * (region.warmup + region.length) + 2_000_000
    status = machine.run(max_instructions=budget)
    machine.detach(meter)
    cpi = meter.cpi
    if cpi is None:
        detail = ("died: %s" % status.detail if status.kind == "signal"
                  else "incomplete: %s" % status.detail)
        return RegionMeasurement(region=region, cpi=None, ok=False,
                                 detail=detail)
    return RegionMeasurement(region=region, cpi=cpi, ok=True)


def validate_with_elfies(result: PinPointsResult,
                         seed: int = 0,
                         trials: int = 3,
                         fs: Optional[FileSystem] = None,
                         use_alternates: bool = True) -> ValidationResult:
    """ELFie-based validation: native runs instead of simulation.

    Each region is measured ``trials`` times (different scheduler
    seeds) and averaged, as the paper does (ten trials per
    measurement).  When a primary region's ELFie fails, the cluster's
    alternates are tried in order.
    """
    validation = ValidationResult(
        app_name=result.app_name,
        whole_program_cpi=result.profile.whole_program_cpi,
    )
    for region in result.primary_regions:
        measurement = _measure_with_alternates(
            result, region, seed=seed, trials=trials, fs=fs,
            use_alternates=use_alternates)
        validation.measurements.append(measurement)
    return validation


def _measure_with_alternates(result: PinPointsResult, region: RegionSpec,
                             seed: int, trials: int,
                             fs: Optional[FileSystem],
                             use_alternates: bool) -> RegionMeasurement:
    candidates = [region]
    if use_alternates:
        candidates += result.alternates_for(region)
    last: Optional[RegionMeasurement] = None
    for candidate in candidates:
        artifact = result.elfies.get(candidate.name)
        if artifact is None:
            continue
        cpis: List[float] = []
        failure: Optional[RegionMeasurement] = None
        for trial in range(trials):
            measurement = measure_elfie_region(
                artifact, candidate, seed=seed + trial * 101, fs=fs)
            if measurement.ok:
                cpis.append(measurement.cpi)
            else:
                failure = measurement
                break
        if cpis and failure is None:
            return RegionMeasurement(
                region=RegionSpec(
                    start=candidate.start, length=candidate.length,
                    warmup=candidate.warmup, name=candidate.name,
                    weight=region.weight,
                ),
                cpi=sum(cpis) / len(cpis),
                ok=True,
                used_alternate=(candidate.name
                                if candidate.name != region.name else None),
            )
        last = failure
    if last is not None:
        return RegionMeasurement(region=region, cpi=None, ok=False,
                                 detail=last.detail)
    return RegionMeasurement(region=region, cpi=None, ok=False,
                             detail="no ELFie available")


def validate_with_simulator(
        result: PinPointsResult,
        whole_cpi_fn: Callable[[], float],
        region_cpi_fn: Callable[[ElfieArtifact, RegionSpec], Optional[float]],
) -> ValidationResult:
    """Traditional, simulation-based validation.

    ``whole_cpi_fn`` simulates the entire program (the expensive step
    the paper replaces); ``region_cpi_fn`` simulates one region ELFie.
    """
    validation = ValidationResult(
        app_name=result.app_name,
        whole_program_cpi=whole_cpi_fn(),
    )
    for region in result.primary_regions:
        artifact = result.elfies.get(region.name)
        cpi = region_cpi_fn(artifact, region) if artifact else None
        validation.measurements.append(
            RegionMeasurement(region=region, cpi=cpi, ok=cpi is not None,
                              detail="" if cpi is not None else "no result")
        )
    return validation
