"""Basic-block-vector (BBV) profiling.

SimPoint's feature is the per-slice frequency vector of executed basic
blocks.  The profiler drives the machine in exact ``slice_size``-
instruction chunks from the host, so slice boundaries align perfectly
with the global instruction counts the logger later uses to capture the
selected regions.

As a bonus for validation, the profiler records per-slice cycle counts,
which makes the *true* whole-program CPI (and the per-slice CPI
timeline) available from the same run — this is what the paper computes
with a whole-program native run on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.elf.reader import ElfFile
from repro.elf.structs import PF_X, PT_LOAD
from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.machine.tool import Tool
from repro.machine.vfs import FileSystem


def _text_base(image: bytes) -> int:
    """Lowest executable-segment address: the module's code base."""
    elf = ElfFile(image)
    bases = [s.p_vaddr for s in elf.segments
             if s.p_type == PT_LOAD and s.p_flags & PF_X]
    return min(bases) if bases else 0


class _BlockCounter(Tool):
    """Counts basic-block entries, weighted by block instruction length.

    Block length is measured as the retired-instruction delta between
    consecutive block entries of the same thread, which for a stable
    loop equals the static block length (the standard BBV weighting).
    A block-only tool: it needs no per-instruction callback, so BBV
    profiling runs on the interpreter's superblock fast path.

    Vector keys are module+offset-relative (block pc minus the module's
    text base), so a profile of the same module loaded at a different
    base — ASLR — produces identical vectors.
    """

    wants_instructions = False
    wants_blocks = True

    def __init__(self, module_base: int = 0) -> None:
        self.module_base = module_base
        self.current: Dict[int, int] = {}
        self._open_block: Dict[int, int] = {}   # tid -> block offset
        self._open_icount: Dict[int, int] = {}  # tid -> icount at entry

    def on_basic_block(self, machine, thread, pc) -> None:
        tid = thread.tid
        previous = self._open_block.get(tid)
        if previous is not None:
            retired = thread.icount - self._open_icount[tid]
            if retired:
                self.current[previous] = (
                    self.current.get(previous, 0) + retired)
        self._open_block[tid] = pc - self.module_base
        self._open_icount[tid] = thread.icount

    def take(self, machine) -> Dict[int, int]:
        # Attribute the instructions retired in each still-open block to
        # this slice, then roll the open blocks into the next one.
        for tid, pc in self._open_block.items():
            thread = machine.threads[tid]
            retired = thread.icount - self._open_icount[tid]
            if retired:
                self.current[pc] = self.current.get(pc, 0) + retired
                self._open_icount[tid] = thread.icount
        vector = self.current
        self.current = {}
        return vector


@dataclass
class BBVProfile:
    """Result of a whole-program BBV profiling run."""

    slice_size: int
    #: One frequency vector per slice: block offset (pc relative to
    #: ``module_base``) -> weighted count.  Module-relative keys make
    #: profiles comparable across load addresses (ASLR).
    vectors: List[Dict[int, int]]
    #: Cycles consumed by each slice (same hardware timing model).
    slice_cycles: List[int]
    #: Instructions actually retired in each slice (the last slice of a
    #: program is usually short).
    slice_icounts: List[int]
    total_icount: int = 0
    total_cycles: int = 0
    exit_kind: str = "exit"
    #: Text base the block offsets are relative to.
    module_base: int = 0

    @property
    def num_slices(self) -> int:
        return len(self.vectors)

    @property
    def whole_program_cpi(self) -> float:
        """The true whole-program CPI on the native hardware model."""
        if self.total_icount == 0:
            return 0.0
        return self.total_cycles / self.total_icount

    def slice_cpi(self, index: int) -> float:
        if self.slice_icounts[index] == 0:
            return 0.0
        return self.slice_cycles[index] / self.slice_icounts[index]

    def slice_start(self, index: int) -> int:
        """Global instruction count where a slice begins."""
        return index * self.slice_size


def collect_bbv(image: bytes, slice_size: int, seed: int = 0,
                fs: Optional[FileSystem] = None,
                argv: Optional[Sequence[str]] = None,
                max_slices: int = 1_000_000,
                preemptible: bool = False) -> BBVProfile:
    """Profile a program into per-slice basic-block vectors.

    The run is driven in exact ``slice_size`` chunks; the returned
    profile's slice boundaries therefore land on exact global
    instruction counts.

    With *preemptible* the profiler cooperates with the snapshot
    subsystem's preemption context: it polls for a preemption request
    at every slice boundary and, when one arrives, captures a machine
    snapshot carrying the profiling progress in ``extra`` and raises
    :class:`~repro.snapshot.preempt.Preempted`.  On entry it first
    claims any parked ``kind == "bbv"`` resume snapshot and continues
    the interrupted profile instead of starting cold — the slice
    boundaries (and therefore the resulting profile) are identical to
    an uninterrupted run because mid-quantum suspension is
    schedule-transparent.
    """
    if slice_size <= 0:
        raise ValueError("slice_size must be positive")

    vectors: List[Dict[int, int]] = []
    slice_cycles: List[int] = []
    slice_icounts: List[int] = []
    cycles_before = 0
    start_index = 0
    machine = None
    counter = _BlockCounter(module_base=_text_base(image))
    if preemptible:
        from repro.snapshot import preempt, restore
        parked = preempt.take_resume(kind="bbv")
        if parked is not None:
            machine = restore(parked, tools=[counter])
            extra = parked.extra
            start_index = int(extra["index"])
            vectors = [{int(pc): int(count) for pc, count in pairs}
                       for pairs in extra["vectors"]]
            slice_cycles = [int(c) for c in extra["slice_cycles"]]
            slice_icounts = [int(c) for c in extra["slice_icounts"]]
            cycles_before = int(extra["cycles_before"])
    if machine is None:
        machine = Machine(seed=seed, fs=fs)
        load_elf(machine, image, argv=argv)
        machine.attach(counter)

    status = None
    for index in range(start_index, max_slices):
        if preemptible and preempt.requested():
            from repro.snapshot import Preempted, capture
            # JSON canonicalization would stringify int dict keys, so
            # the vectors travel as [pc, count] pair lists.
            raise Preempted(capture(machine, extra={
                "kind": "bbv",
                "index": index,
                "vectors": [sorted(v.items()) for v in vectors],
                "slice_cycles": slice_cycles,
                "slice_icounts": slice_icounts,
                "cycles_before": cycles_before,
            }), reason="bbv profile preempted at slice %d" % index)
        boundary = (index + 1) * slice_size
        status = machine.run(max_instructions=boundary)
        icount_now = machine.executed_total
        cycles_now = machine.total_cycles()
        executed = icount_now - index * slice_size
        if executed > 0:
            vectors.append(counter.take(machine))
            slice_cycles.append(cycles_now - cycles_before)
            slice_icounts.append(executed)
        cycles_before = cycles_now
        if status.kind != "stopped":
            break
    machine.detach(counter)
    return BBVProfile(
        slice_size=slice_size,
        vectors=vectors,
        slice_cycles=slice_cycles,
        slice_icounts=slice_icounts,
        total_icount=machine.executed_total,
        total_cycles=machine.total_cycles(),
        exit_kind=status.kind if status else "exit",
        module_base=counter.module_base,
    )
