"""Random projection + k-means with BIC model selection.

Follows the SimPoint 3.0 recipe: L1-normalize the BBVs, project them
onto a low-dimensional space with a seeded random matrix, run k-means
(k-means++ seeding) for each k up to maxK, score each clustering with
the Bayesian Information Criterion, and keep the smallest k whose BIC
reaches a fraction of the best observed BIC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

#: SimPoint's default projected dimensionality.
PROJECTION_DIM = 15

#: Accept the smallest k reaching this fraction of the best BIC.
BIC_THRESHOLD = 0.9


@dataclass
class KMeansResult:
    """A clustering of program slices."""

    k: int
    labels: np.ndarray           # slice index -> cluster id
    centroids: np.ndarray        # (k, dim)
    points: np.ndarray           # projected slice vectors (n, dim)
    bic: float

    def members(self, cluster: int) -> np.ndarray:
        """Indices of slices in a cluster."""
        return np.nonzero(self.labels == cluster)[0]

    def distances_to_centroid(self, cluster: int) -> np.ndarray:
        """Distance of each member slice to its cluster centroid."""
        members = self.members(cluster)
        return np.linalg.norm(
            self.points[members] - self.centroids[cluster], axis=1
        )


def project_vectors(vectors: Sequence[Dict[int, int]],
                    dim: int = PROJECTION_DIM, seed: int = 42) -> np.ndarray:
    """L1-normalize sparse BBVs and random-project to *dim* dimensions."""
    keys = sorted({key for vector in vectors for key in vector})
    index = {key: i for i, key in enumerate(keys)}
    dense = np.zeros((len(vectors), max(len(keys), 1)))
    for row, vector in enumerate(vectors):
        total = sum(vector.values())
        if total == 0:
            continue
        for key, count in vector.items():
            dense[row, index[key]] = count / total
    rng = np.random.RandomState(seed)
    projection = rng.normal(size=(dense.shape[1], dim)) / np.sqrt(dim)
    return dense @ projection


def _weighted_index(weights: np.ndarray, rng: np.random.RandomState) -> int:
    """Draw an index proportionally to *weights* via inverse-CDF search.

    Equivalent to ``rng.choice(n, p=weights/total)`` but byte-stable:
    the only float operations are a cumulative sum and one comparison
    sweep, both evaluated in a fixed order, so the same seed picks the
    same index on every host (``choice`` renormalizes ``p`` internally,
    which has been observed to flip ties across numpy builds).
    """
    edges = np.cumsum(weights)
    draw = rng.random_sample() * edges[-1]
    return min(int(np.searchsorted(edges, draw, side="right")),
               len(edges) - 1)


def _kmeans_once(points: np.ndarray, k: int, seed: int,
                 iterations: int = 60) -> KMeansResult:
    n = points.shape[0]
    # The *only* randomness in the whole clustering stage: one explicit
    # RandomState per (points, k) run.  Region selection must be
    # byte-reproducible across runs and hosts — global numpy RNG state
    # must never leak in.
    rng = np.random.RandomState(seed)
    # k-means++ seeding
    centroids = [points[rng.randint(n)]]
    for _ in range(1, k):
        dists = np.min(
            [np.sum((points - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = dists.sum()
        if total <= 0:
            centroids.append(points[rng.randint(n)])
            continue
        centroids.append(points[_weighted_index(dists, rng)])
    centers = np.array(centroids)

    labels = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = np.linalg.norm(points[:, None, :] - centers[None, :, :],
                                   axis=2)
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = points[labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
    bic = _bic_score(points, labels, centers)
    return KMeansResult(k=k, labels=labels, centroids=centers,
                        points=points, bic=bic)


def _bic_score(points: np.ndarray, labels: np.ndarray,
               centers: np.ndarray) -> float:
    """BIC under a spherical Gaussian model (SimPoint's criterion)."""
    n, dim = points.shape
    k = centers.shape[0]
    if n <= k:
        return float("-inf")
    sse = 0.0
    for cluster in range(k):
        members = points[labels == cluster]
        if len(members):
            sse += float(np.sum((members - centers[cluster]) ** 2))
    variance = max(sse / (dim * (n - k)), 1e-12)
    log_likelihood = 0.0
    for cluster in range(k):
        size = int(np.sum(labels == cluster))
        if size == 0:
            continue
        log_likelihood += (
            size * np.log(size / n)
            - size * dim / 2.0 * np.log(2.0 * np.pi * variance)
            - (size - 1) * dim / 2.0
        )
    parameters = k * (dim + 1)
    return log_likelihood - parameters / 2.0 * np.log(n)


def cluster_vectors(vectors: Sequence[Dict[int, int]], max_k: int = 50,
                    dim: int = PROJECTION_DIM, seed: int = 42,
                    ) -> KMeansResult:
    """Cluster BBVs, choosing k by the SimPoint BIC rule.

    k-means runs for every k in 1..min(max_k, n); the smallest k whose
    BIC reaches ``BIC_THRESHOLD`` of the best BIC (after shifting all
    scores positive) is selected.
    """
    if not vectors:
        raise ValueError("no vectors to cluster")
    points = project_vectors(vectors, dim=dim, seed=seed)
    return cluster_points(points, max_k=max_k, seed=seed)


def cluster_points(points: np.ndarray, max_k: int = 50,
                   seed: int = 42) -> KMeansResult:
    """BIC-selected k-means over already-projected points.

    Shared by SimPoint (random-projected BBVs) and LoopPoint
    (PCA-projected marker vectors): the clustering and model-selection
    machinery is identical, only the feature pipeline differs.
    """
    if len(points) == 0:
        raise ValueError("no points to cluster")
    n = points.shape[0]
    candidates: List[KMeansResult] = []
    for k in range(1, min(max_k, n) + 1):
        candidates.append(_kmeans_once(points, k, seed=seed + k))
    scores = np.array([c.bic for c in candidates])
    finite = scores[np.isfinite(scores)]
    if len(finite) == 0:
        return candidates[0]
    low = finite.min()
    shifted = scores - low
    best = shifted.max()
    if best <= 0:
        return candidates[0]
    for candidate, score in zip(candidates, shifted):
        if np.isfinite(score) and score >= BIC_THRESHOLD * best:
            return candidate
    return candidates[int(np.argmax(shifted))]
