"""The PinPoints driver: profile, cluster, capture, convert (paper §IV-A).

PinPoints automates "profiling an x86 application, finding phases, and
creating a checkpoint called a pinball for each representative region".
This module runs that pipeline on the simulated platform and optionally
converts every pinball to an ELFie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.markers import MarkerSpec
from repro.core.pinball2elf import ElfieArtifact, Pinball2Elf, Pinball2ElfOptions
from repro.machine.vfs import FileSystem
from repro.pinplay.logger import LogOptions, log_region, log_regions
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.simpoint.bbv import BBVProfile, collect_bbv
from repro.simpoint.simpoint import SimPointResult, select_simpoints


@dataclass
class PinPointsResult:
    """Everything the PinPoints pipeline produced for one program."""

    app_name: str
    profile: BBVProfile
    simpoints: SimPointResult
    #: Primary + alternate regions (rank encoded in the region name).
    regions: List[RegionSpec]
    #: region name -> captured fat pinball.
    pinballs: Dict[str, Pinball] = field(default_factory=dict)
    #: region name -> generated ELFie artifact.
    elfies: Dict[str, ElfieArtifact] = field(default_factory=dict)

    @property
    def primary_regions(self) -> List[RegionSpec]:
        return [r for r in self.regions if ".alt" not in r.name]

    def alternates_for(self, region: RegionSpec) -> List[RegionSpec]:
        """Alternate regions of the same cluster, best first."""
        base = region.name.split(".alt")[0]
        return sorted(
            (r for r in self.regions
             if r.name.startswith(base + ".alt")),
            key=lambda r: r.name,
        )


def run_pinpoints(image: bytes, app_name: str,
                  slice_size: int = 20_000,
                  warmup: int = 80_000,
                  max_k: int = 50,
                  seed: int = 0,
                  fs: Optional[FileSystem] = None,
                  max_alternates: int = 2,
                  capture: bool = True,
                  make_elfies: bool = True,
                  marker: Optional[MarkerSpec] = None,
                  perf_exit: bool = True,
                  cluster_seed: int = 42) -> PinPointsResult:
    """Run the full PinPoints pipeline on *image*.

    With ``capture`` a fat pinball is logged per region (primaries and
    up to *max_alternates* alternates); with ``make_elfies`` each
    pinball is converted to an ELFie with a ROI marker and graceful-exit
    counters.
    """
    profile = collect_bbv(image, slice_size=slice_size, seed=seed, fs=fs)
    simpoints = select_simpoints(profile, max_k=max_k, seed=cluster_seed)
    regions = simpoints.regions(warmup=warmup,
                                name_prefix="%s.r" % app_name,
                                max_alternates=max_alternates)
    result = PinPointsResult(
        app_name=app_name,
        profile=profile,
        simpoints=simpoints,
        regions=regions,
    )
    if not capture:
        return result
    marker = marker or MarkerSpec("sniper", 0xE1F)
    capturable = [region for region in regions
                  if region.end <= profile.total_icount]
    # Windows of different regions may overlap (a big warmup around
    # adjacent slices); capture overlapping ones in separate passes.
    passes: List[List[RegionSpec]] = []
    for region in sorted(capturable, key=lambda r: r.warmup_start):
        for group in passes:
            if group and group[-1].end <= region.warmup_start:
                group.append(region)
                break
        else:
            passes.append([region])
    for group in passes:
        pinballs = log_regions(image, group, seed=seed, fs=fs)
        for name, pinball in pinballs.items():
            pinball.program_icount = profile.total_icount
            result.pinballs[name] = pinball
            if make_elfies:
                artifact = Pinball2Elf(
                    pinball,
                    Pinball2ElfOptions(perf_exit=perf_exit, marker=marker),
                ).convert()
                result.elfies[name] = artifact
    return result
