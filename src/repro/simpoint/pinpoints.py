"""The PinPoints driver: profile, cluster, capture, convert (paper §IV-A).

PinPoints automates "profiling an x86 application, finding phases, and
creating a checkpoint called a pinball for each representative region".
This module runs that pipeline on the simulated platform and optionally
converts every pinball to an ELFie.

Two driver paths produce identical results:

- :func:`run_pinpoints` — the direct path: one process, one app,
  everything recomputed from scratch;
- :func:`run_pinpoints_campaign` / :func:`run_pinpoints_farm` — the
  farm-backed path: the pipeline is decomposed into dependency-ordered
  jobs (profile → cluster → log regions → pinball2elf → validate),
  fanned across a worker pool, and memoized through a content-addressed
  artifact store so a re-run with unchanged inputs is a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.markers import MarkerSpec
from repro.core.pinball2elf import ElfieArtifact, Pinball2Elf, Pinball2ElfOptions
from repro.farm.codec import stable_digest
from repro.farm.jobs import Job, JobGraph, Ref
from repro.farm.runner import FarmRunner
from repro.farm.store import ArtifactStore
from repro.machine.vfs import FileSystem
from repro.observe import hooks
from repro.pinplay.logger import log_regions
from repro.pinplay.pinball import Pinball
from repro.pinplay.regions import RegionSpec
from repro.simpoint.bbv import BBVProfile, collect_bbv
from repro.simpoint.simpoint import SimPointResult, select_simpoints

#: Region-selector identity/version for this pipeline.  Farm memo keys
#: lead with it (and manifests record it), so BBV-SimPoint artifacts
#: and LoopPoint artifacts for the same workload never collide in the
#: store.  Bump the version when the selection algorithm changes.
REGION_SELECTOR = "bbv-simpoint/v1"


@dataclass
class PinPointsResult:
    """Everything the PinPoints pipeline produced for one program."""

    app_name: str
    profile: BBVProfile
    simpoints: SimPointResult
    #: Primary + alternate regions (rank encoded in the region name).
    regions: List[RegionSpec]
    #: region name -> captured fat pinball.
    pinballs: Dict[str, Pinball] = field(default_factory=dict)
    #: region name -> generated ELFie artifact.
    elfies: Dict[str, ElfieArtifact] = field(default_factory=dict)

    @property
    def primary_regions(self) -> List[RegionSpec]:
        return [r for r in self.regions if ".alt" not in r.name]

    def alternates_for(self, region: RegionSpec) -> List[RegionSpec]:
        """Alternate regions of the same cluster, best first."""
        base = region.name.split(".alt")[0]
        return sorted(
            (r for r in self.regions
             if r.name.startswith(base + ".alt")),
            key=lambda r: r.name,
        )


def run_pinpoints(image: bytes, app_name: str,
                  slice_size: int = 20_000,
                  warmup: int = 80_000,
                  max_k: int = 50,
                  seed: int = 0,
                  fs: Optional[FileSystem] = None,
                  max_alternates: int = 2,
                  capture: bool = True,
                  make_elfies: bool = True,
                  marker: Optional[MarkerSpec] = None,
                  perf_exit: bool = True,
                  cluster_seed: int = 42) -> PinPointsResult:
    """Run the full PinPoints pipeline on *image*.

    With ``capture`` a fat pinball is logged per region (primaries and
    up to *max_alternates* alternates); with ``make_elfies`` each
    pinball is converted to an ELFie with a ROI marker and graceful-exit
    counters.
    """
    obs = hooks.OBS
    with obs.span("pinpoints.profile", "pinpoints", app=app_name):
        profile = collect_bbv(image, slice_size=slice_size, seed=seed, fs=fs)
    with obs.span("pinpoints.cluster", "pinpoints", app=app_name):
        simpoints = select_simpoints(profile, max_k=max_k, seed=cluster_seed)
    regions = simpoints.regions(warmup=warmup,
                                name_prefix="%s.r" % app_name,
                                max_alternates=max_alternates)
    result = PinPointsResult(
        app_name=app_name,
        profile=profile,
        simpoints=simpoints,
        regions=regions,
    )
    if not capture:
        return result
    marker = marker or MarkerSpec("sniper", 0xE1F)
    with obs.span("pinpoints.capture", "pinpoints", app=app_name):
        for group in _capture_passes(regions, profile.total_icount):
            pinballs = log_regions(image, group, seed=seed, fs=fs)
            for name, pinball in pinballs.items():
                pinball.program_icount = profile.total_icount
                result.pinballs[name] = pinball
                if make_elfies:
                    with obs.span("pinpoints.convert", "pinpoints",
                                  region=name):
                        artifact = Pinball2Elf(
                            pinball,
                            Pinball2ElfOptions(perf_exit=perf_exit,
                                               marker=marker),
                        ).convert()
                    result.elfies[name] = artifact
    return result


def _capture_passes(regions: Sequence[RegionSpec],
                    total_icount: int) -> List[List[RegionSpec]]:
    """Group capturable regions into non-overlapping logger passes.

    Windows of different regions may overlap (a big warmup around
    adjacent slices); overlapping ones are captured in separate passes.
    Shared by the direct and farm-backed drivers so both log the exact
    same windows in the exact same runs.
    """
    capturable = [region for region in regions
                  if region.end <= total_icount]
    passes: List[List[RegionSpec]] = []
    for region in sorted(capturable, key=lambda r: r.warmup_start):
        for group in passes:
            if group and group[-1].end <= region.warmup_start:
                group.append(region)
                break
        else:
            passes.append([region])
    return passes


# ---------------------------------------------------------------------------
# Farm-backed driver: the pipeline as a memoized, parallel job graph.
# ---------------------------------------------------------------------------

#: A post-pipeline measurement pass: ``fn(result, image, **params)``
#: must be a picklable module-level callable returning any picklable
#: value (typically a ``ValidationResult``).
@dataclass(frozen=True)
class FarmValidation:
    label: str
    fn: Callable[..., Any]
    params: Dict[str, Any] = field(default_factory=dict)


def _validate_elfies_job(result: "PinPointsResult", image: bytes,
                         **kwargs) -> Any:
    # imported lazily: validation.py imports this module
    from repro.simpoint.validation import validate_with_elfies
    return validate_with_elfies(result, **kwargs)


def elfie_validation(label: str, seed: int = 0, trials: int = 3,
                     use_alternates: bool = True) -> FarmValidation:
    """The standard ELFie-based validation pass as a farm job spec."""
    return FarmValidation(label, _validate_elfies_job,
                          {"seed": seed, "trials": trials,
                           "use_alternates": use_alternates})


def _verify_fidelity_job(result: "PinPointsResult", image: bytes,
                         **kwargs: Any) -> Dict[str, Any]:
    from repro.verify import verify_pinball

    names = sorted(result.pinballs)
    max_regions = kwargs.get("max_regions")
    skipped = 0
    if max_regions is not None and len(names) > max_regions:
        skipped = len(names) - max_regions
        names = names[:max_regions]
    reports = {
        name: verify_pinball(image, result.pinballs[name],
                             seed=kwargs.get("seed", 0),
                             epochs=kwargs.get("epochs", 8),
                             bisect=kwargs.get("bisect", True)).to_json()
        for name in names
    }
    return {
        "ok": all(report["ok"] for report in reports.values()),
        "checked": len(reports),
        "skipped": skipped,
        "regions": reports,
    }


def fidelity_validation(label: str, seed: int = 0, epochs: int = 8,
                        bisect: bool = True,
                        max_regions: Optional[int] = None) -> FarmValidation:
    """Differential replay-fidelity check as a farm validation pass.

    Runs :func:`repro.verify.verify_pinball` (native vs replay in
    digest-checkpointed epochs) over every captured region; the job
    result is memoized in the store like any other validation, so a
    re-run of an unchanged campaign is free.
    """
    params: Dict[str, Any] = {"seed": seed, "epochs": epochs,
                              "bisect": bisect}
    if max_regions is not None:
        params["max_regions"] = max_regions
    return FarmValidation(label, _verify_fidelity_job, params)


@dataclass
class FarmAppOutcome:
    """What the farm campaign produced for one app."""

    result: "PinPointsResult"
    validations: Dict[str, Any] = field(default_factory=dict)


def _region_spec_tuple(region: RegionSpec) -> List[Any]:
    return [region.start, region.length, region.warmup, region.name,
            region.weight]


def _job_profile(image: bytes, slice_size: int, seed: int) -> BBVProfile:
    # Always preemptible: the poll is one Event check per slice, and a
    # preemption is only ever requested by a draining worker's SIGTERM
    # handler (or a --preemptible campaign runner).
    return collect_bbv(image, slice_size=slice_size, seed=seed,
                       preemptible=True)


def _job_select(profile: BBVProfile, max_k: int,
                cluster_seed: int) -> SimPointResult:
    return select_simpoints(profile, max_k=max_k, seed=cluster_seed)


def _job_log_group(image: bytes, regions: Sequence[RegionSpec], seed: int,
                   program_icount: int) -> Dict[str, Pinball]:
    pinballs = log_regions(image, regions, seed=seed)
    for pinball in pinballs.values():
        pinball.program_icount = program_icount
    return pinballs


def _job_convert(pinball: Optional[Pinball], perf_exit: bool,
                 marker_type: str, marker_tag: int) -> Optional[ElfieArtifact]:
    if pinball is None:
        # the logger skipped this region (program ended early); the
        # direct path simply has no ELFie for it either
        return None
    options = Pinball2ElfOptions(
        perf_exit=perf_exit, marker=MarkerSpec(marker_type, marker_tag))
    return Pinball2Elf(pinball, options).convert()


def _job_assemble(app_name: str, profile: BBVProfile,
                  simpoints: SimPointResult, regions: List[RegionSpec],
                  groups: List[Dict[str, Pinball]],
                  elfies: Dict[str, Optional[ElfieArtifact]]) -> PinPointsResult:
    result = PinPointsResult(app_name=app_name, profile=profile,
                             simpoints=simpoints, regions=regions)
    for group in groups:
        result.pinballs.update(group)
    result.elfies = {name: artifact for name, artifact in elfies.items()
                     if artifact is not None}
    return result


def _job_validate(fn: Callable[..., Any], result: PinPointsResult,
                  image: bytes, params: Dict[str, Any]) -> Any:
    return fn(result, image, **params)


def add_pinpoints_jobs(graph: JobGraph, image: bytes, app_name: str,
                       slice_size: int = 20_000,
                       warmup: int = 80_000,
                       max_k: int = 50,
                       seed: int = 0,
                       max_alternates: int = 2,
                       marker: Optional[MarkerSpec] = None,
                       perf_exit: bool = True,
                       cluster_seed: int = 42,
                       validations: Sequence[FarmValidation] = ()) -> str:
    """Add one app's PinPoints pipeline to a campaign graph.

    Jobs are keyed by a deterministic digest of (workload, region,
    logger options, converter options), so unchanged sub-pipelines are
    served from the store on re-runs.  The log/convert/validate tail of
    the graph depends on the clustering outcome, so it is added by an
    ``expand`` callback once the selection job completes.

    Returns the name of the app's assemble job (whose result is the
    :class:`PinPointsResult`); validation jobs are named
    ``<app>/validate/<label>``.
    """
    marker = marker or MarkerSpec("sniper", 0xE1F)
    workload_key = stable_digest({"image": image, "app": app_name,
                                  "selector": REGION_SELECTOR})
    profile_name = "%s/profile" % app_name
    select_name = "%s/select" % app_name
    graph.add(Job(
        name=profile_name,
        fn=_job_profile,
        args=(image, slice_size, seed),
        key=stable_digest([REGION_SELECTOR, "pinpoints.profile",
                           workload_key, slice_size, seed]),
        stage="profile",
        selector=REGION_SELECTOR,
    ))

    pipeline_spec = {
        "selector": REGION_SELECTOR,
        "workload": workload_key,
        "slice_size": slice_size, "warmup": warmup, "max_k": max_k,
        "seed": seed, "cluster_seed": cluster_seed,
        "max_alternates": max_alternates,
        "marker": [marker.marker_type, marker.tag],
        "perf_exit": perf_exit,
        "log": {"fat": True},
    }

    def expand_selection(simpoints: SimPointResult, graph: JobGraph,
                         results: Dict[str, Any]) -> None:
        profile = results[profile_name]
        regions = simpoints.regions(warmup=warmup,
                                    name_prefix="%s.r" % app_name,
                                    max_alternates=max_alternates)
        passes = _capture_passes(regions, profile.total_icount)
        group_names: List[str] = []
        convert_refs: Dict[str, Ref] = {}
        for index, group in enumerate(passes):
            group_name = "%s/log%d" % (app_name, index)
            graph.add(Job(
                name=group_name,
                fn=_job_log_group,
                args=(image, list(group), seed, profile.total_icount),
                key=stable_digest([REGION_SELECTOR, "pinpoints.log",
                                   workload_key, seed, {"fat": True},
                                   [_region_spec_tuple(r) for r in group]]),
                kind="pinballs",
                deps=(select_name,),
                stage="log",
                selector=REGION_SELECTOR,
            ))
            group_names.append(group_name)
            for region in group:
                convert_name = "%s/convert/%s" % (app_name, region.name)
                graph.add(Job(
                    name=convert_name,
                    fn=_job_convert,
                    args=(Ref(group_name,
                              select=lambda pbs, n=region.name: pbs.get(n)),
                          perf_exit, marker.marker_type, marker.tag),
                    key=stable_digest([REGION_SELECTOR, "pinpoints.elfie",
                                       workload_key,
                                       _region_spec_tuple(region), seed,
                                       {"fat": True},
                                       {"perf_exit": perf_exit,
                                        "marker": [marker.marker_type,
                                                   marker.tag]}]),
                    stage="convert",
                    selector=REGION_SELECTOR,
                ))
                convert_refs[region.name] = Ref(convert_name)
        assemble_name = "%s/assemble" % app_name
        graph.add(Job(
            name=assemble_name,
            fn=_job_assemble,
            args=(app_name, Ref(profile_name), Ref(select_name),
                  list(regions), [Ref(name) for name in group_names],
                  convert_refs),
            local=True,
            stage="assemble",
            selector=REGION_SELECTOR,
        ))
        for validation in validations:
            graph.add(Job(
                name="%s/validate/%s" % (app_name, validation.label),
                fn=_job_validate,
                args=(validation.fn, Ref(assemble_name), image,
                      dict(validation.params)),
                key=stable_digest([REGION_SELECTOR, "pinpoints.validate",
                                   pipeline_spec, validation.label,
                                   "%s.%s" % (validation.fn.__module__,
                                              validation.fn.__qualname__),
                                   validation.params]),
                stage="validate",
                selector=REGION_SELECTOR,
            ))

    graph.add(Job(
        name=select_name,
        fn=_job_select,
        args=(Ref(profile_name), max_k, cluster_seed),
        key=stable_digest([REGION_SELECTOR, "pinpoints.select",
                           workload_key, slice_size, seed, max_k,
                           cluster_seed]),
        stage="cluster",
        expand=expand_selection,
        selector=REGION_SELECTOR,
    ))
    return "%s/assemble" % app_name


def run_pinpoints_campaign(images: Dict[str, bytes],
                           store: ArtifactStore,
                           jobs: Optional[int] = None,
                           manifest_path: Optional[str] = None,
                           runner: Optional[FarmRunner] = None,
                           slice_size: int = 20_000,
                           warmup: int = 80_000,
                           max_k: int = 50,
                           seed: int = 0,
                           max_alternates: int = 2,
                           marker: Optional[MarkerSpec] = None,
                           perf_exit: bool = True,
                           cluster_seed: int = 42,
                           validations: Sequence[FarmValidation] = (),
                           preemptible: bool = False,
                           ) -> Dict[str, FarmAppOutcome]:
    """Run the PinPoints pipeline for several apps through the farm.

    Independent per-app jobs fan out across the runner's worker pool;
    every completed job is memoized in *store*, so re-running the same
    campaign is a warm, logger/converter-free pass.  Produces exactly
    what :func:`run_pinpoints` + the validation functions produce for
    each app, plus the run manifest for observability.

    With *preemptible*, a requested preemption (SIGTERM under
    ``farm run --preemptible``) checkpoints the in-flight profile job
    into the store, defers the rest of the graph, and returns the apps
    that did finish; re-running the identical campaign resumes from
    the memoized results plus the checkpoint.
    """
    obs = hooks.OBS
    with obs.span("campaign.build", "farm", apps=sorted(images)):
        graph = JobGraph()
        for app_name, image in images.items():
            add_pinpoints_jobs(graph, image, app_name,
                               slice_size=slice_size, warmup=warmup,
                               max_k=max_k, seed=seed,
                               max_alternates=max_alternates, marker=marker,
                               perf_exit=perf_exit, cluster_seed=cluster_seed,
                               validations=validations)
    if runner is None:
        runner = FarmRunner(store, jobs=jobs, manifest_path=manifest_path,
                            preemptible=preemptible)
    with obs.span("campaign.run", "farm", apps=sorted(images),
                  workers=runner.jobs):
        results = runner.run(graph, strict=not preemptible)
    outcomes: Dict[str, FarmAppOutcome] = {}
    for app_name in images:
        assembled = results.get("%s/assemble" % app_name)
        if assembled is None:
            continue  # preempted/deferred before this app finished
        outcomes[app_name] = FarmAppOutcome(
            result=assembled,
            validations={
                validation.label:
                    results["%s/validate/%s" % (app_name, validation.label)]
                for validation in validations
                if "%s/validate/%s" % (app_name, validation.label) in results
            },
        )
    return outcomes


def run_pinpoints_farm(image: bytes, app_name: str,
                       store: ArtifactStore,
                       **kwargs: Any) -> FarmAppOutcome:
    """Single-app convenience wrapper over the campaign runner."""
    return run_pinpoints_campaign({app_name: image}, store,
                                  **kwargs)[app_name]
