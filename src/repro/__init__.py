"""ELFies: executable region checkpoints for performance analysis and
simulation — a reproduction of Patil et al., CGO 2021.

The package is organized bottom-up:

- :mod:`repro.isa` — the PX instruction set (the x86-64 stand-in),
- :mod:`repro.machine` — the simulated platform: CPU, memory, kernel,
  scheduler, PMU, ELF loader, Pin-style instrumentation,
- :mod:`repro.elf` — the ELF64 object format,
- :mod:`repro.pinplay` — region capture (pinballs) and constrained
  replay,
- :mod:`repro.core` — **pinball2elf**, the paper's contribution,
- :mod:`repro.simpoint` — SimPoint/PinPoints region selection and its
  validation,
- :mod:`repro.simulators` — the Sniper-like, CoreSim-like and
  gem5-like consumers,
- :mod:`repro.workloads` — SPEC-like synthetic benchmark suites,
- :mod:`repro.analysis` — measurement and reporting helpers.

The typical pipeline (see ``examples/quickstart.py``)::

    from repro.workloads import build_executable
    from repro.pinplay import RegionSpec, log_region
    from repro.core import Pinball2Elf, Pinball2ElfOptions, run_elfie

    image = build_executable(source)
    pinball = log_region(image, RegionSpec(start=..., length=...))
    elfie = Pinball2Elf(pinball, Pinball2ElfOptions(perf_exit=True)).convert()
    run = run_elfie(elfie.image)
"""

__version__ = "1.0.0"

__all__ = [
    "isa",
    "machine",
    "elf",
    "pinplay",
    "core",
    "simpoint",
    "simulators",
    "workloads",
    "analysis",
]
