"""The sharded content-addressed store: N roots behind one ring.

Layout under the sharded root::

    shards.json            ring configuration (shard names + vnodes)
    shard-00/              a plain :class:`ArtifactStore`
    shard-01/
    ...

Blocks are placed by their own SHA-256 digest on a consistent-hash
ring (:mod:`repro.service.ring`); artifact meta records are placed by
the SHA-256 of their key.  Everything inherits the single-shard store's
crash-safety discipline — write-temp-then-``os.replace`` for blocks and
records — so concurrent writers (the service's workers) never expose a
partially written block to readers.

Cross-shard healing:

- **read repair**: a block or record missing (or corrupt) on its home
  shard is searched for on the other shards and, when a verified copy
  is found, copied home before being served;
- **scrub** walks every live reference, repairing what it can and
  reporting what it cannot;
- **rebalance** re-rings the store onto a new shard count, moving each
  block/record to its new home (consistent hashing keeps the moved
  fraction near ``1/N``).

The degenerate one-shard store behaves exactly like a plain
:class:`ArtifactStore` with an extra directory level, which is how the
existing local ``farm run`` path runs unchanged on either layout.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.farm import codec
from repro.farm.store import (
    STALE_TMP_S,
    ArtifactStore,
    GCStats,
    StoreCorruption,
    StoreStats,
    _atomic_write,
    _referenced_digests,
    build_record,
)
from repro.observe import hooks
from repro.service.ring import HashRing

SHARDS_MARKER = "shards.json"

_FORMAT = "repro-farm-shards"
_VERSION = 1


def shard_names(count: int) -> List[str]:
    return ["shard-%02d" % index for index in range(count)]


@dataclass
class ShardedStoreStats(StoreStats):
    """Aggregate store stats plus the per-shard breakdown."""

    #: shard name -> {objects, blocks, stored_bytes, unique_bytes,
    #: logical_bytes, dedup_ratio, hits, repairs, hit_rate}
    shards: Dict[str, dict] = field(default_factory=dict)

    def to_json(self) -> dict:
        report = super().to_json()
        report["shards"] = {name: dict(entry)
                           for name, entry in sorted(self.shards.items())}
        return report


@dataclass
class RebalanceStats:
    """What :meth:`ShardedStore.rebalance` moved."""

    moved_blocks: int = 0
    moved_bytes: int = 0
    moved_records: int = 0
    shards: int = 0
    dry_run: bool = False

    def to_json(self) -> dict:
        return {"moved_blocks": self.moved_blocks,
                "moved_bytes": self.moved_bytes,
                "moved_records": self.moved_records,
                "shards": self.shards,
                "dry_run": self.dry_run}


@dataclass
class ScrubStats:
    """What a :meth:`ShardedStore.scrub` pass found and fixed."""

    objects: int = 0
    blocks_checked: int = 0
    repaired_blocks: int = 0
    repaired_records: int = 0
    #: keys with at least one unrecoverable block
    lost_keys: List[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"objects": self.objects,
                "blocks_checked": self.blocks_checked,
                "repaired_blocks": self.repaired_blocks,
                "repaired_records": self.repaired_records,
                "lost_keys": sorted(self.lost_keys)}


class ShardedStore:
    """A content-addressed store spread over N shard roots.

    Drop-in for :class:`ArtifactStore` wherever the farm runner or the
    service touches a store: ``put/get/contains/kind_of/delete/keys/
    stats/gc/verify`` all exist with the same semantics.
    """

    def __init__(self, root: str, shards: Optional[int] = None,
                 vnodes: int = 128, compress_level: int = 6) -> None:
        self.root = root
        marker = os.path.join(root, SHARDS_MARKER)
        if os.path.exists(marker):
            with open(marker) as handle:
                config = json.load(handle)
            if config.get("format") != _FORMAT:
                raise StoreCorruption("%s is not a sharded store marker"
                                      % marker)
            names = list(config["shards"])
            vnodes = int(config.get("vnodes", vnodes))
            if shards is not None and shards != len(names):
                raise ValueError(
                    "store has %d shards; use rebalance(shards=%d) to "
                    "change the ring" % (len(names), shards))
        else:
            names = shard_names(shards if shards is not None else 2)
            os.makedirs(root, exist_ok=True)
            _atomic_write(marker, json.dumps(
                {"format": _FORMAT, "version": _VERSION,
                 "shards": names, "vnodes": vnodes},
                sort_keys=True).encode("utf-8"))
        self.compress_level = compress_level
        self.ring = HashRing(names, vnodes=vnodes)
        self._stores = {name: ArtifactStore(os.path.join(root, name),
                                            compress_level=compress_level)
                        for name in names}
        # session counters behind the per-shard hit rate the service
        # reports (a fresh CLI process starts from zero)
        self.block_hits = {name: 0 for name in names}
        self.block_repairs = {name: 0 for name in names}
        self.record_repairs = {name: 0 for name in names}

    @property
    def shards(self) -> List[str]:
        return list(self.ring.shards)

    def shard_store(self, name: str) -> ArtifactStore:
        return self._stores[name]

    # -- placement ---------------------------------------------------------

    def home_of_block(self, digest: str) -> str:
        return self.ring.shard_for(digest)

    def home_of_key(self, key: str) -> str:
        return self.ring.shard_for(codec.sha256_hex(key.encode("utf-8")))

    def _others(self, home: str) -> Iterator[ArtifactStore]:
        for name in self.ring.shards:
            if name != home:
                yield self._stores[name]

    # -- blocks ------------------------------------------------------------

    def has_block(self, digest: str) -> bool:
        if self._stores[self.home_of_block(digest)].has_block(digest):
            return True
        return any(store.has_block(digest)
                   for store in self._others(self.home_of_block(digest)))

    def write_block(self, digest: str, data: bytes) -> None:
        self._stores[self.home_of_block(digest)].write_block(digest, data)

    def read_block(self, digest: str) -> bytes:
        """Verified read with cross-shard read repair.

        The home shard is authoritative; on a miss or a corrupt copy
        (which the underlying read drops from disk) every other shard
        is searched for a verified replica, which is copied home before
        being returned.
        """
        home = self.home_of_block(digest)
        try:
            data = self._stores[home].read_block(digest)
        except StoreCorruption:
            data = self._repair_block(home, digest)
        else:
            self.block_hits[home] += 1
        return data

    def _repair_block(self, home: str, digest: str) -> bytes:
        obs = hooks.OBS
        for store in self._others(home):
            if not store.has_block(digest):
                continue
            try:
                data = store.read_block(digest)
            except StoreCorruption:
                continue  # that copy was damaged too (and was dropped)
            self._stores[home].write_block(digest, data)
            self.block_repairs[home] += 1
            if obs.enabled:
                obs.count("service.store.read_repairs")
            return data
        raise StoreCorruption("block %s missing from every shard" % digest)

    # -- records -----------------------------------------------------------

    def put(self, key: str, obj: Any, kind: str = "") -> str:
        kind, meta, blocks = codec.encode(obj, kind)
        for digest, data in blocks.items():
            self.write_block(digest, data)
        self.put_record(key, build_record(key, kind, meta, blocks))
        return key

    def put_record(self, key: str, record: dict) -> None:
        self._stores[self.home_of_key(key)].put_record(key, record)

    def get_record(self, key: str) -> dict:
        home = self.home_of_key(key)
        try:
            return self._stores[home].get_record(key)
        except KeyError:
            pass
        for store in self._others(home):
            try:
                record = store.get_record(key)
            except KeyError:
                continue
            # read repair: install the stray record at its home shard
            self._stores[home].put_record(key, record)
            self.record_repairs[home] += 1
            return record
        raise KeyError(key)

    def get(self, key: str) -> Any:
        record = self.get_record(key)
        return codec.decode(record["kind"], record["meta"], self.read_block)

    def contains(self, key: str) -> bool:
        if self._stores[self.home_of_key(key)].contains(key):
            return True
        return any(store.contains(key)
                   for store in self._others(self.home_of_key(key)))

    def kind_of(self, key: str) -> str:
        return self.get_record(key)["kind"]

    def delete(self, key: str) -> bool:
        # strays from pre-rebalance layouts must die with the home copy
        return any([store.remove_record(key)
                    for store in self._stores.values()])

    def keys(self) -> Iterator[str]:
        seen = set()
        for store in self._stores.values():
            for key in store.keys():
                if key not in seen:
                    seen.add(key)
                    yield key

    # -- maintenance -------------------------------------------------------

    def stats(self) -> ShardedStoreStats:
        stats = ShardedStoreStats()
        per_shard = {
            name: {"objects": 0, "blocks": 0, "stored_bytes": 0,
                   "unique_bytes": 0, "logical_bytes": 0,
                   "hits": self.block_hits[name],
                   "repairs": self.block_repairs[name]}
            for name in self.ring.shards
        }
        unique: Dict[str, int] = {}
        for key in self.keys():
            record = self.get_record(key)
            stats.objects += 1
            kind = record["kind"]
            stats.objects_by_kind[kind] = \
                stats.objects_by_kind.get(kind, 0) + 1
            stats.logical_bytes += record.get("logical_bytes", 0)
            per_shard[self.home_of_key(key)]["objects"] += 1
            for digest, size in record.get("block_sizes", {}).items():
                unique[digest] = size
                per_shard[self.home_of_block(digest)]["logical_bytes"] \
                    += size
        for name, store in self._stores.items():
            for digest in store.block_digests():
                stats.blocks += 1
                per_shard[name]["blocks"] += 1
                size = store.block_size(digest)
                stats.stored_bytes += size
                per_shard[name]["stored_bytes"] += size
        for digest, size in unique.items():
            home = self.home_of_block(digest)
            if self._stores[home].has_block(digest):
                stats.unique_bytes += size
                stats.compressed_bytes += self._stores[home].block_size(digest)
                per_shard[home]["unique_bytes"] += size
        for name, entry in per_shard.items():
            entry["dedup_ratio"] = round(
                entry["logical_bytes"] / entry["unique_bytes"], 3) \
                if entry["unique_bytes"] else 1.0
            lookups = entry["hits"] + entry["repairs"]
            entry["hit_rate"] = round(entry["hits"] / lookups, 3) \
                if lookups else 1.0
        stats.shards = per_shard
        return stats

    def gc(self, dry_run: bool = False,
           tmp_ttl_s: float = STALE_TMP_S,
           prune_snapshots: bool = False,
           snapshot_roots: Iterable[str] = ()) -> GCStats:
        """Mark-sweep over every shard against the global live set.

        A live block is kept on *any* shard it appears on (a stray
        replica of a live block is future read-repair fodder, and
        rebalance is the tool that canonicalizes placement, not gc).
        ``prune_snapshots``/*snapshot_roots* behave as in
        :meth:`repro.farm.store.ArtifactStore.gc`: non-root preemption
        checkpoints are dropped before the mark phase.
        """
        result = GCStats(dry_run=dry_run)
        pruned: set = set()
        if prune_snapshots:
            roots = set(snapshot_roots)
            for key in list(self.keys()):
                if self.get_record(key)["kind"] == "snapshot" \
                        and key not in roots:
                    pruned.add(key)
                    result.removed_snapshots += 1
                    if not dry_run:
                        self.delete(key)
        live: set = set()
        for key in self.keys():
            if key in pruned:
                continue
            live.update(_referenced_digests(self.get_record(key)["meta"]))
        for store in self._stores.values():
            for digest in list(store.block_digests()):
                if digest in live:
                    result.live_blocks += 1
                    continue
                result.freed_bytes += store.block_size(digest)
                if not dry_run:
                    store.remove_block(digest)
                result.removed_blocks += 1
            if not dry_run:
                store.sweep_tmp(tmp_ttl_s)
        return result

    def verify(self) -> List[str]:
        """Re-hash every live reference; returns unrecoverable keys.

        Unlike the single-shard verify this *may heal the store*: a
        reference satisfied by read repair from another shard counts as
        good (and leaves a fresh home copy behind).
        """
        bad: List[str] = []
        for key in sorted(self.keys()):
            record = self.get_record(key)
            try:
                for digest in set(_referenced_digests(record["meta"])):
                    self.read_block(digest)
            except StoreCorruption:
                bad.append(key)
        return bad

    def scrub(self) -> ScrubStats:
        """Walk every artifact, read-repairing what the shards allow.

        The per-key loop is exactly a verifying read of each referenced
        block through the repair path; the report separates healed
        damage (``repaired_*``) from real loss (``lost_keys``).
        """
        report = ScrubStats()
        repairs_before = dict(self.block_repairs)
        records_before = dict(self.record_repairs)
        for key in sorted(self.keys()):
            report.objects += 1
            record = self.get_record(key)
            lost = False
            for digest in set(_referenced_digests(record["meta"])):
                report.blocks_checked += 1
                try:
                    self.read_block(digest)
                except StoreCorruption:
                    lost = True
            if lost:
                report.lost_keys.append(key)
        report.repaired_blocks = sum(
            self.block_repairs[name] - repairs_before[name]
            for name in self.ring.shards)
        report.repaired_records = sum(
            self.record_repairs[name] - records_before[name]
            for name in self.ring.shards)
        return report

    def rebalance(self, shards: Optional[int] = None,
                  dry_run: bool = False) -> RebalanceStats:
        """Move every block and record to its home under a new ring.

        With *shards* the ring is regrown/shrunk to that count first
        (consistent hashing keeps movement near the minimum); without
        it the pass just canonicalizes stray placements left by read
        repair or crashed rebalances.
        """
        old_names = self.ring.shards
        new_names = shard_names(shards) if shards is not None else old_names
        new_ring = HashRing(new_names, vnodes=self.ring.vnodes)
        stores = dict(self._stores)
        for name in new_names:
            if name not in stores:
                stores[name] = ArtifactStore(
                    os.path.join(self.root, name),
                    compress_level=self.compress_level)
        result = RebalanceStats(shards=len(new_names), dry_run=dry_run)
        for name, store in sorted(stores.items()):
            for digest in list(store.block_digests()):
                home = new_ring.shard_for(digest)
                if home == name:
                    continue
                result.moved_blocks += 1
                if dry_run:
                    continue
                data = store.read_block(digest)  # verified before the move
                result.moved_bytes += len(data)
                stores[home].write_block(digest, data)
                store.remove_block(digest)
            for key in list(store.keys()):
                home = new_ring.shard_for(
                    codec.sha256_hex(key.encode("utf-8")))
                if home == name:
                    continue
                result.moved_records += 1
                if dry_run:
                    continue
                stores[home].put_record(key, store.get_record(key))
                store.remove_record(key)
        if dry_run:
            return result
        # commit the new ring only after every object reached its home,
        # so a crash mid-move leaves strays the read-repair path finds
        _atomic_write(os.path.join(self.root, SHARDS_MARKER), json.dumps(
            {"format": _FORMAT, "version": _VERSION,
             "shards": new_names, "vnodes": self.ring.vnodes},
            sort_keys=True).encode("utf-8"))
        self.ring = new_ring
        self._stores = {name: stores[name] for name in new_names}
        for counter in (self.block_hits, self.block_repairs,
                        self.record_repairs):
            for name in new_names:
                counter.setdefault(name, 0)
        return result
