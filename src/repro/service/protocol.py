"""The checkpoint service's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON (one object per frame).  Requests carry a ``verb`` plus an
``id`` the client generates; responses echo the ``id`` and carry
``ok: true`` or ``ok: false`` with an ``error`` string and an HTTP-ish
``code`` (429 queue-full, 409 lease-lost, 404 not-found).

The ``id`` doubles as the **idempotency token**: a client that loses the
connection mid-call reconnects and resends the *same* envelope, and the
server replays the recorded response for mutating verbs instead of
re-executing them — so a retried ``submit`` cannot double-enqueue and a
retried ``complete`` cannot double-complete.

Binary payloads (pickled job callables, artifact blocks) travel as
base64 strings inside the JSON; blocks are keyed by their SHA-256, which
the server re-verifies before anything touches the store.

Verbs: ``hello``, ``submit``, ``lease``, ``heartbeat``, ``complete``,
``cancel``, ``wait``, ``put-artifact``, ``get-artifact``,
``has-artifact``, ``stats``.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import struct
from typing import Any, Dict, Optional

#: Hard ceiling on one frame; a header claiming more is a protocol
#: error, not an allocation (a garbage or hostile header must not OOM
#: the server).
MAX_FRAME = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed framing or JSON on the wire."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    body = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError("frame of %d bytes exceeds the %d limit"
                            % (len(body), MAX_FRAME))
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("undecodable frame: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError("frame is not a JSON object")
    return message


# -- blocking sockets (client side) -----------------------------------------

def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """*count* bytes, or None on clean EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection dropped mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """One frame, or None when the peer closed between frames."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("frame header claims %d bytes" % length)
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection dropped mid-frame")
    return _decode_body(body)


# -- asyncio streams (server side) ------------------------------------------

async def read_message(
        reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection dropped mid-header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("frame header claims %d bytes" % length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection dropped mid-frame")
    return _decode_body(body)


async def write_message(writer: asyncio.StreamWriter,
                        message: Dict[str, Any]) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- binary payload packing -------------------------------------------------

def pack_bytes(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def unpack_bytes(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ProtocolError("bad base64 payload: %s" % exc)


def pack_blocks(blocks: Dict[str, bytes]) -> Dict[str, str]:
    return {digest: pack_bytes(data) for digest, data in blocks.items()}


def unpack_blocks(packed: Dict[str, str]) -> Dict[str, bytes]:
    return {digest: unpack_bytes(text) for digest, text in packed.items()}


def error_response(error: str, code: int = 500, **extra: Any) -> dict:
    response = {"ok": False, "error": error, "code": code}
    response.update(extra)
    return response
