"""repro.service — the networked checkpoint farm.

Turns the local :mod:`repro.farm` into a shared service:

- :mod:`repro.service.ring` / :mod:`repro.service.shards` — the
  content-addressed block pool spread over N shard roots by consistent
  hashing, with read-repair, scrub, and rebalance;
- :mod:`repro.service.scheduler` — the bounded, fair-share, lease-based
  work queue;
- :mod:`repro.service.protocol` — length-prefixed JSON frames with
  idempotent request ids;
- :mod:`repro.service.server` / :mod:`repro.service.client` /
  :mod:`repro.service.worker` — the asyncio endpoint, the blocking
  client, and the pull-based worker loop;
- :mod:`repro.service.campaign` — the service twin of the farm runner,
  bit-identical to ``farm run``.
"""

from repro.service.campaign import ServiceCampaignRunner, run_service_campaign
from repro.service.client import (
    ServiceBusy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    connect,
)
from repro.service.protocol import ProtocolError
from repro.service.ring import HashRing
from repro.service.scheduler import (
    FairShareScheduler,
    LeaseLost,
    QueueFull,
    ServiceJob,
    UnknownJob,
)
from repro.service.server import CheckpointServer, ServerThread, serve
from repro.service.shards import SHARDS_MARKER, ShardedStore, shard_names
from repro.service.worker import ServiceWorker, worker_main

__all__ = [
    "CheckpointServer",
    "FairShareScheduler",
    "HashRing",
    "LeaseLost",
    "ProtocolError",
    "QueueFull",
    "SHARDS_MARKER",
    "ServerThread",
    "ServiceBusy",
    "ServiceCampaignRunner",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "ServiceUnavailable",
    "ServiceWorker",
    "ShardedStore",
    "UnknownJob",
    "connect",
    "run_service_campaign",
    "serve",
    "shard_names",
    "worker_main",
]
