"""The checkpoint-service server: asyncio sockets over store + scheduler.

One process owns the (sharded) artifact store and a
:class:`FairShareScheduler`; remote workers and campaign clients speak
the length-prefixed JSON protocol.  The server itself executes no jobs —
it admits, leases, and settles them, and brokers artifact bytes between
the store and the network.  Store I/O runs in a thread pool so a large
``put-artifact`` cannot stall lease/heartbeat traffic.

Crash/fault behaviour by construction:

- a connection dropped mid-frame affects only that connection — no
  partial request is ever dispatched;
- an uploaded block whose bytes do not hash to its claimed digest is
  rejected before the store sees it;
- a worker that dies mid-job stops heartbeating, its lease expires, and
  the reaper re-queues the job;
- duplicated mutating requests (client retries after a lost response)
  are replayed from the response cache keyed by request id.

``repro.observe`` instrumentation: ``service.queue_depth`` gauge,
``service.lease_latency_s`` histogram (submit -> first lease),
``service.submits/leases/completes`` counters, and the sharded store's
per-shard hit/repair counters via ``stats``.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.farm import codec
from repro.farm.store import build_record, open_store
from repro.observe import hooks
from repro.service import protocol
from repro.service.scheduler import (
    FairShareScheduler,
    LeaseLost,
    QueueFull,
    UnknownJob,
)

#: How many mutating-request responses are kept for idempotent replay.
REPLAY_CACHE = 4096

_MUTATING = ("submit", "lease", "complete", "put-artifact", "cancel")


class CheckpointServer:
    """The service endpoint (run me inside an asyncio event loop)."""

    def __init__(self, store: Any, host: str = "127.0.0.1", port: int = 0,
                 lease_timeout: float = 10.0, max_queued: int = 1024,
                 retries: int = 2) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.scheduler = FairShareScheduler(
            max_queued=max_queued, lease_timeout=lease_timeout,
            retries=retries)
        self._replay: "OrderedDict[str, dict]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper: Optional[asyncio.Task] = None
        self._connections: set = set()
        self.submits = 0
        self.completes = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._reaper = asyncio.ensure_future(self._reap_leases())
        return self.host, self.port

    async def stop(self) -> None:
        if self._reaper is not None:
            self._reaper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)

    async def _reap_leases(self) -> None:
        interval = max(0.02, self.lease_timeout / 4.0)
        while True:
            await asyncio.sleep(interval)
            expired = self.scheduler.expire()
            obs = hooks.OBS
            if obs.enabled:
                if expired:
                    obs.count("service.leases_expired", len(expired))
                obs.gauge("service.queue_depth", self.scheduler.queued)

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    message = await protocol.read_message(reader)
                except protocol.ProtocolError:
                    break  # torn frame: nothing was dispatched; drop peer
                if message is None:
                    break
                response = await self._dispatch(message)
                response.setdefault("ok", True)
                response["id"] = message.get("id")
                try:
                    await protocol.write_message(writer, response)
                except (ConnectionError, OSError):
                    break
        except asyncio.CancelledError:
            pass  # server shutdown cancels open connections
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, message: Dict[str, Any]) -> dict:
        verb = str(message.get("verb", ""))
        request_id = message.get("id")
        if verb in _MUTATING and request_id is not None \
                and request_id in self._replay:
            return dict(self._replay[request_id])
        handler = getattr(self, "_verb_" + verb.replace("-", "_"), None)
        if handler is None:
            return protocol.error_response("unknown verb %r" % verb, 400)
        try:
            response = await handler(message)
        except QueueFull as exc:
            response = protocol.error_response(
                "queue-full", 429, retryable=True, detail=str(exc))
        except LeaseLost as exc:
            response = protocol.error_response(
                "lease-lost", 409, detail=str(exc))
        except (UnknownJob, KeyError) as exc:
            response = protocol.error_response(
                "not-found", 404, detail=str(exc))
        except protocol.ProtocolError as exc:
            response = protocol.error_response(str(exc), 400)
        except Exception as exc:  # the server must survive any request
            response = protocol.error_response(
                "%s: %s" % (type(exc).__name__, exc), 500)
        if verb in _MUTATING and request_id is not None:
            self._replay[request_id] = dict(response)
            while len(self._replay) > REPLAY_CACHE:
                self._replay.popitem(last=False)
        return response

    async def _store_call(self, fn, *args):
        return await asyncio.get_event_loop().run_in_executor(
            None, fn, *args)

    # -- job verbs ---------------------------------------------------------

    async def _verb_hello(self, message: dict) -> dict:
        return {"server": "repro.service", "version": 1}

    async def _verb_submit(self, message: dict) -> dict:
        memo_key = str(message.get("key", "") or "")
        if memo_key and not message.get("force") \
                and await self._store_call(self.store.contains, memo_key):
            obs = hooks.OBS
            if obs.enabled:
                obs.count("service.cache_hits")
            return {"status": "cached", "key": memo_key}
        status, job = self.scheduler.submit(
            client=str(message.get("client", "anonymous")),
            name=str(message.get("name", "")),
            payload=str(message.get("payload", "")),
            memo_key=memo_key,
            result_key=str(message.get("result_key", "") or memo_key),
            kind=str(message.get("kind", "")),
            stage=str(message.get("stage", "")),
            priority=int(message.get("priority", 0)),
            retries=message.get("retries"),
        )
        self.submits += 1
        obs = hooks.OBS
        if obs.enabled:
            obs.count("service.submits")
            obs.gauge("service.queue_depth", self.scheduler.queued)
        return {"status": status, "job": job.describe()}

    async def _verb_lease(self, message: dict) -> dict:
        worker = str(message.get("worker", "worker"))
        wait_s = float(message.get("wait_s", 0.0))
        deadline = asyncio.get_event_loop().time() + wait_s
        while True:
            job = self.scheduler.lease(worker)
            if job is not None:
                obs = hooks.OBS
                if obs.enabled:
                    obs.count("service.leases")
                    obs.observe("service.lease_latency_s",
                                max(0.0, job.first_leased_at
                                    - job.submitted_at))
                grant = job.describe()
                grant.update({
                    "payload": job.payload,
                    "lease_id": job.lease_id,
                    "lease_timeout_s": self.lease_timeout,
                    "heartbeat_s": max(0.05, self.lease_timeout / 3.0),
                })
                return {"job": grant}
            if asyncio.get_event_loop().time() >= deadline:
                return {"job": None}
            await asyncio.sleep(0.02)

    async def _verb_heartbeat(self, message: dict) -> dict:
        deadline = self.scheduler.heartbeat(str(message["lease_id"]))
        return {"deadline": deadline}

    async def _verb_complete(self, message: dict) -> dict:
        status = str(message.get("status", "ok"))
        job = self.scheduler.complete(
            lease_id=str(message.get("lease_id", "")),
            request_id=str(message.get("id", "")),
            ok=bool(status == "ok"),
            error=str(message.get("error", "")),
            wall_s=float(message.get("wall_s", 0.0)),
            icount=message.get("icount"),
            worker=str(message.get("worker", "")),
            preempted=bool(status == "preempted"),
            snapshot_key=str(message.get("snapshot_key", "") or ""),
        )
        self.completes += 1
        obs = hooks.OBS
        if obs.enabled:
            obs.count("service.completes")
            if status == "preempted":
                obs.count("service.preemptions")
            obs.gauge("service.queue_depth", self.scheduler.queued)
        return {"job": job.describe()}

    async def _verb_cancel(self, message: dict) -> dict:
        job = self.scheduler.cancel(str(message["job_id"]))
        return {"job": job.describe()}

    async def _verb_wait(self, message: dict) -> dict:
        """Block (bounded) until the named jobs settle; return states."""
        job_ids = [str(job_id) for job_id in message.get("jobs", [])]
        timeout_s = float(message.get("timeout_s", 0.0))
        jobs = [self.scheduler.get(job_id) for job_id in job_ids]
        pending = [job for job in jobs if not job.settled]
        if pending and timeout_s > 0:
            waiters = [asyncio.ensure_future(job.done.wait())
                       for job in pending]
            try:
                await asyncio.wait(waiters, timeout=timeout_s,
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                for waiter in waiters:
                    waiter.cancel()
        return {"jobs": {job.job_id: job.describe() for job in jobs}}

    # -- artifact verbs ----------------------------------------------------

    def _put_artifact(self, key: str, kind: str, meta: dict,
                      blocks: Dict[str, bytes]) -> None:
        for digest, data in blocks.items():
            if codec.sha256_hex(data) != digest:
                raise protocol.ProtocolError(
                    "uploaded block %s fails digest verification" % digest)
        for digest, data in blocks.items():
            self.store.write_block(digest, data)
        self.store.put_record(key, build_record(key, kind, meta, blocks))

    async def _verb_put_artifact(self, message: dict) -> dict:
        key = str(message["key"])
        blocks = protocol.unpack_blocks(message.get("blocks", {}))
        await self._store_call(
            self._put_artifact, key, str(message.get("kind", "object")),
            message.get("meta", {}), blocks)
        obs = hooks.OBS
        if obs.enabled:
            obs.count("service.artifacts_put")
            obs.count("service.artifact_bytes_in",
                      sum(len(data) for data in blocks.values()))
        return {"key": key}

    def _get_artifact(self, key: str) -> Tuple[dict, Dict[str, bytes]]:
        record = self.store.get_record(key)  # KeyError -> 404
        blocks: Dict[str, bytes] = {}
        for digest in set(_referenced(record["meta"])):
            blocks[digest] = self.store.read_block(digest)
        return record, blocks

    async def _verb_get_artifact(self, message: dict) -> dict:
        key = str(message["key"])
        record, blocks = await self._store_call(self._get_artifact, key)
        obs = hooks.OBS
        if obs.enabled:
            obs.count("service.artifacts_got")
            obs.count("service.artifact_bytes_out",
                      sum(len(data) for data in blocks.values()))
        return {"key": key, "kind": record["kind"], "meta": record["meta"],
                "blocks": protocol.pack_blocks(blocks)}

    async def _verb_has_artifact(self, message: dict) -> dict:
        key = str(message["key"])
        return {"key": key,
                "present": await self._store_call(self.store.contains, key)}

    async def _verb_stats(self, message: dict) -> dict:
        response = {
            "scheduler": self.scheduler.stats(),
            "submits": self.submits,
            "completes": self.completes,
        }
        if message.get("store"):
            stats = await self._store_call(self.store.stats)
            response["store"] = stats.to_json()
        return response


def _referenced(meta: dict):
    from repro.farm.store import _referenced_digests
    return _referenced_digests(meta)


class ServerThread:
    """Run a :class:`CheckpointServer` on a daemon thread.

    The in-process deployment the tests and benchmarks use, and what
    lets a single Python process host server + workers + client.  The
    CLI's ``service start`` uses :func:`serve_forever` instead.
    """

    def __init__(self, store_root: str, shards: int = 0,
                 host: str = "127.0.0.1", port: int = 0,
                 lease_timeout: float = 10.0, max_queued: int = 1024,
                 retries: int = 2) -> None:
        if shards > 0:
            from repro.service.shards import ShardedStore
            store = ShardedStore(store_root, shards=shards)
        else:
            store = open_store(store_root)
        self.server = CheckpointServer(
            store, host=host, port=port, lease_timeout=lease_timeout,
            max_queued=max_queued, retries=retries)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._started = threading.Event()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()
        # drain cancellations after run_forever stops
        self.loop.run_until_complete(self.server.stop())
        self.loop.close()

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        self._started.wait(10.0)
        return self.server.host, self.server.port

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10.0)

    @property
    def store(self) -> Any:
        return self.server.store

    @property
    def scheduler(self) -> FairShareScheduler:
        return self.server.scheduler

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


async def serve(store_root: str, shards: int = 0, host: str = "127.0.0.1",
                port: int = 0, lease_timeout: float = 10.0,
                max_queued: int = 1024, retries: int = 2) -> None:
    """Foreground server (the ``service start`` CLI entry point)."""
    if shards > 0:
        from repro.service.shards import ShardedStore
        store = ShardedStore(store_root, shards=shards)
    else:
        store = open_store(store_root)
    server = CheckpointServer(store, host=host, port=port,
                              lease_timeout=lease_timeout,
                              max_queued=max_queued, retries=retries)
    bound_host, bound_port = await server.start()
    shard_note = ""
    if hasattr(store, "shards"):
        shard_note = ", %d shards" % len(store.shards)
    print("repro.service listening on %s:%d (store %s%s)"
          % (bound_host, bound_port, store_root, shard_note), flush=True)
    try:
        await asyncio.Event().wait()  # until cancelled (SIGINT)
    finally:
        await server.stop()
