"""Drive a farm job graph through the checkpoint service.

:class:`ServiceCampaignRunner` is the networked sibling of
:class:`repro.farm.runner.FarmRunner`, and keeps its exact semantics:

- the **DAG stays in the client**: dependency tracking, ``Ref``
  resolution (including ``select`` lambdas, which are not picklable and
  never cross the wire), ``local`` jobs, and ``expand`` callbacks all
  run here — the server only ever sees flat, self-contained jobs;
- resolved arguments ship with the submit, results come back through
  the content-addressed store, so a job's bytes-in/bytes-out are
  identical to the multiprocessing path — which is what makes service
  campaigns **bit-identical** to ``farm run``;
- memoization is server-side (``status: "cached"``) against the shared
  store, plus in-flight dedup: two clients racing the same campaign
  share single executions and both fetch the same artifacts;
- every terminal state appends the same manifest record
  ``farm run`` writes, so downstream tooling cannot tell the paths
  apart.

Failures follow the server's retry policy (lease expiry re-queues, N
retries, then ``failed``); downstream jobs are marked ``blocked``
exactly as the local runner does.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.farm.jobs import Job, JobGraph, resolve_refs
from repro.farm.manifest import RunManifest
from repro.farm.runner import CampaignError, RunReport, _job_icount
from repro.observe import hooks
from repro.service.client import ServiceClient, ServiceError

#: How long one ``wait`` long-poll blocks server-side.
_WAIT_SLICE_S = 0.5


class ServiceCampaignRunner:
    """Executes :class:`JobGraph`s against a checkpoint service."""

    def __init__(self, client: ServiceClient,
                 manifest_path: Optional[str] = None,
                 run_id: str = "", priority: int = 0,
                 retries: Optional[int] = None) -> None:
        self.client = client
        self.manifest = RunManifest(manifest_path) if manifest_path else None
        self.run_id = run_id or ("run-%d-%d" % (os.getpid(),
                                                int(time.time() * 1000)))
        self.priority = priority
        self.retries = retries
        self.report = RunReport()

    # -- manifest (same record shape as FarmRunner._record) ----------------

    def _record(self, job: Job, state: str, cache: str, wall_s: float,
                worker: Any, attempts: int, error: str = "",
                icount: Optional[int] = None) -> None:
        self.report.states[job.name] = state
        self.report.cache[job.name] = cache
        if state != "ok":
            self.report.failures[job.name] = error or state
        wall = round(wall_s, 6)
        if self.manifest is not None:
            self.manifest.append({
                "job": job.name,
                "stage": job.stage,
                "key": job.key,
                "state": state,
                "cache": cache,
                "wall_s": wall,
                "worker": worker,
                "attempts": attempts,
                "error": error,
                "icount": icount,
            })
        obs = hooks.OBS
        if obs.enabled:
            obs.count("farm.jobs")
            obs.count("farm.cache.%s" % cache)
            if state != "ok":
                obs.count("farm.%s" % state)
            if wall:
                obs.observe("farm.job_wall_s", wall)

    # -- execution ---------------------------------------------------------

    def run(self, graph: JobGraph, strict: bool = True) -> Dict[str, Any]:
        """Run every job via the service; returns ``{name: result}``."""
        self.report = RunReport()
        results: Dict[str, Any] = {}
        done: Dict[str, str] = {}      # name -> ok|failed|blocked
        inflight: Dict[str, dict] = {}  # name -> {job_id, result_key}
        while True:
            progressed = self._schedule(graph, results, done, inflight)
            progressed |= self._collect(graph, results, done, inflight)
            remaining = [name for name in graph.order() if name not in done]
            if not remaining and not inflight:
                break
            if not progressed and not inflight:
                # jobs remain but none can ever become ready
                for name in remaining:
                    self._record(graph.jobs[name], "blocked", "none",
                                 0.0, None, 0, "dependency never completed")
                    done[name] = "blocked"
                break
        if strict and self.report.failures:
            raise CampaignError(dict(self.report.failures))
        return results

    def _ready(self, graph: JobGraph, done: Dict[str, str],
               inflight: Dict[str, dict]) -> List[Job]:
        ready: List[Job] = []
        for name in graph.order():
            if name in done or name in inflight:
                continue
            job = graph.jobs[name]
            dep_states = [done.get(dep) for dep in job.deps]
            if any(state in ("failed", "blocked") for state in dep_states):
                self._record(job, "blocked", "none", 0.0, None, 0,
                             "upstream failure: %s" % ", ".join(
                                 dep for dep in job.deps
                                 if done.get(dep) in ("failed", "blocked")))
                done[name] = "blocked"
                continue
            if all(state == "ok" for state in dep_states):
                ready.append(job)
        return ready

    def _result_key(self, job: Job) -> str:
        # keyless jobs still need a store slot for the wire round trip;
        # scope it to this run so concurrent campaigns cannot collide
        return job.key or "svc/%s/%s" % (self.run_id, job.name)

    def _schedule(self, graph: JobGraph, results: Dict[str, Any],
                  done: Dict[str, str], inflight: Dict[str, dict]) -> bool:
        progressed = False
        for job in self._ready(graph, done, inflight):
            args = resolve_refs(job.args, results)
            kwargs = resolve_refs(job.kwargs, results)
            if job.local:
                self._run_local(job, args, kwargs, results, done, graph)
                progressed = True
                continue
            response = self.client.submit(
                name=job.name, fn=job.fn, args=args, kwargs=kwargs,
                key=job.key, result_key=self._result_key(job),
                kind=job.kind, stage=job.stage, priority=self.priority,
                retries=job.retries if job.retries is not None
                else self.retries)
            status = response["status"]
            if status == "cached":
                if self._serve_cached(job, results, done, graph):
                    progressed = True
                    continue
                # corrupt cache entry: force a recompute
                response = self.client.submit(
                    name=job.name, fn=job.fn, args=args, kwargs=kwargs,
                    key=job.key, result_key=self._result_key(job),
                    kind=job.kind, stage=job.stage, priority=self.priority,
                    retries=job.retries if job.retries is not None
                    else self.retries, force=True)
                status = response["status"]
            inflight[job.name] = {
                "job_id": response["job"]["job_id"],
                "result_key": self._result_key(job),
                "duplicate": status == "duplicate",
            }
            progressed = True
        return progressed

    def _serve_cached(self, job: Job, results: Dict[str, Any],
                      done: Dict[str, str], graph: JobGraph) -> bool:
        try:
            result = self.client.get_artifact(job.key)
        except ServiceError:
            return False  # damaged entry must never poison a campaign
        results[job.name] = result
        done[job.name] = "ok"
        self._record(job, "ok", "hit", 0.0, None, 0)
        self._finish(job, result, graph, results)
        return True

    def _run_local(self, job: Job, args: tuple, kwargs: dict,
                   results: Dict[str, Any], done: Dict[str, str],
                   graph: JobGraph) -> None:
        start = time.perf_counter()
        try:
            result = job.fn(*args, **kwargs)
        except Exception as exc:
            done[job.name] = "failed"
            self._record(job, "failed", "miss" if job.key else "none",
                         0.0, os.getpid(), 1,
                         "%s: %s" % (type(exc).__name__, exc))
            return
        wall = time.perf_counter() - start
        if job.key:
            self.client.put_artifact(job.key, result, job.kind)
        results[job.name] = result
        done[job.name] = "ok"
        self._record(job, "ok", "miss" if job.key else "none", wall,
                     os.getpid(), 1, icount=_job_icount(result))
        self._finish(job, result, graph, results)

    def _collect(self, graph: JobGraph, results: Dict[str, Any],
                 done: Dict[str, str], inflight: Dict[str, dict]) -> bool:
        if not inflight:
            return False
        states = self.client.wait(
            [entry["job_id"] for entry in inflight.values()],
            timeout_s=_WAIT_SLICE_S)
        progressed = False
        for name in list(inflight):
            entry = inflight[name]
            view = states.get(entry["job_id"])
            if view is None or view["state"] in ("queued", "leased"):
                continue
            del inflight[name]
            progressed = True
            job = graph.jobs[name]
            cache = "miss" if job.key else "none"
            if entry["duplicate"]:
                cache = "hit" if job.key else cache
            if view["state"] == "ok":
                result = self.client.get_artifact(entry["result_key"])
                results[name] = result
                done[name] = "ok"
                self._record(job, "ok", cache, view.get("wall_s", 0.0),
                             view.get("worker"), view.get("attempts", 1),
                             icount=view.get("icount"))
                self._finish(job, result, graph, results)
            else:
                done[name] = "failed"
                self._record(job, "failed", cache, view.get("wall_s", 0.0),
                             view.get("worker"), view.get("attempts", 1),
                             view.get("error") or view["state"])
        return progressed

    def _finish(self, job: Job, result: Any, graph: JobGraph,
                results: Dict[str, Any]) -> None:
        if job.expand is not None:
            job.expand(result, graph, results)


def run_service_campaign(images: Dict[str, bytes], client: ServiceClient,
                         manifest_path: Optional[str] = None,
                         run_id: str = "", priority: int = 0,
                         slice_size: int = 20_000,
                         warmup: int = 80_000,
                         max_k: int = 50,
                         seed: int = 0,
                         max_alternates: int = 2,
                         marker: Any = None,
                         perf_exit: bool = True,
                         cluster_seed: int = 42,
                         validations: Sequence[Any] = ()) -> Dict[str, Any]:
    """Run the PinPoints pipeline for several apps through the service.

    The service twin of
    :func:`repro.simpoint.pinpoints.run_pinpoints_campaign`: the same
    graph, the same keys, the same results — executed by remote workers
    against the shared sharded store instead of a local pool.  Returns
    ``{app: FarmAppOutcome}``.
    """
    from repro.simpoint.pinpoints import FarmAppOutcome, add_pinpoints_jobs

    obs = hooks.OBS
    with obs.span("campaign.build", "service", apps=sorted(images)):
        graph = JobGraph()
        for app_name, image in images.items():
            add_pinpoints_jobs(graph, image, app_name,
                               slice_size=slice_size, warmup=warmup,
                               max_k=max_k, seed=seed,
                               max_alternates=max_alternates, marker=marker,
                               perf_exit=perf_exit,
                               cluster_seed=cluster_seed,
                               validations=validations)
    runner = ServiceCampaignRunner(client, manifest_path=manifest_path,
                                   run_id=run_id, priority=priority)
    with obs.span("campaign.run", "service", apps=sorted(images)):
        results = runner.run(graph)
    return {
        app_name: FarmAppOutcome(
            result=results["%s/assemble" % app_name],
            validations={
                validation.label:
                    results["%s/validate/%s" % (app_name, validation.label)]
                for validation in validations
            },
        )
        for app_name in images
    }
