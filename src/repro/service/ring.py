"""Consistent hashing for the sharded checkpoint store.

The ring places every shard at ``vnodes`` pseudo-random points on a
64-bit circle (SHA-256 of ``"<shard>#<vnode>"``); a digest maps to the
first shard point at or after its own position.  Properties the sharded
store depends on:

- **stable**: the mapping is a pure function of the shard names and the
  vnode count — independent of construction order, process, or session;
- **minimal movement**: adding a shard only reassigns the arc segments
  the new shard's points capture (~1/N of the keyspace), so a rebalance
  after growing the farm moves ~1/N of the blocks, not all of them;
- **balanced**: with enough vnodes the arc fractions concentrate around
  1/N (128 vnodes holds per-shard load within a few percent).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

#: Ring positions use the top 64 bits of SHA-256 — plenty of spread,
#: and block digests (already SHA-256 hex) index the ring for free.
_SPACE = 1 << 64


def _point(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


class HashRing:
    """A stable consistent-hash ring over named shards."""

    def __init__(self, shards: Sequence[str], vnodes: int = 128) -> None:
        if not shards:
            raise ValueError("a ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ValueError("duplicate shard names: %r" % (list(shards),))
        self.shards = sorted(shards)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for shard in self.shards:
            for vnode in range(vnodes):
                points.append((_point("%s#%d" % (shard, vnode)), shard))
        points.sort()
        self._points = points
        self._positions = [position for position, _shard in points]

    def shard_for(self, digest_hex: str) -> str:
        """The shard owning *digest_hex* (any hex string, 16+ chars)."""
        position = int(digest_hex[:16], 16) % _SPACE
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._points):
            index = 0  # wrap: first point owns the top arc
        return self._points[index][1]

    def arc_fractions(self) -> Dict[str, float]:
        """Fraction of the keyspace each shard owns (sums to 1.0)."""
        fractions = {shard: 0.0 for shard in self.shards}
        points = self._points
        for index, (position, _shard) in enumerate(points):
            # the arc *ending* at this point belongs to this point's shard
            previous = points[index - 1][0]
            arc = (position - previous) % _SPACE or _SPACE
            fractions[points[index][1]] += arc / _SPACE
        return fractions
