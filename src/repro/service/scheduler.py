"""The service's work queue: fair-share admission, leases, retries.

Scheduling model (all decisions are O(log n), all state in-memory):

- every queued job belongs to a **client**; each client keeps a
  priority queue (higher ``priority`` first, FIFO within a priority);
- across clients the scheduler runs **fair share by virtual time**: a
  lease charges the job's client ``1/weight`` vtime, and the next lease
  always goes to the backlogged client with the lowest vtime — so two
  clients flooding the queue drain in alternation regardless of who
  submitted first, and a weight-2 client drains twice as fast;
- the queue is **bounded**: ``submit`` raises :class:`QueueFull` once
  ``max_queued`` jobs wait, which the server surfaces as a retryable
  429 — backpressure instead of unbounded memory;
- jobs are **memo-deduplicated in flight**: a second submit of the same
  memoization key while the first is queued or leased attaches to the
  existing job ("duplicate") instead of running the work twice — this
  is what makes two clients racing the same campaign bit-identical and
  single-execution;
- a lease carries a **deadline**; workers heartbeat to extend it, and
  :meth:`expire` re-queues jobs whose worker went silent (or fails them
  once attempts exceed ``1 + retries``) — a dead worker loses its lease,
  never the job;
- ``complete`` is **idempotent per request id**: replays of a delivered
  completion return the settled job; a completion racing a lost lease
  raises :class:`LeaseLost` (the job re-ran elsewhere — the
  content-addressed store makes the duplicate artifact write harmless).

The scheduler is transport-free and clock-injectable, so every invariant
above is unit-testable without sockets or sleeps.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

try:
    import asyncio
    _Event = asyncio.Event
except ImportError:  # pragma: no cover - asyncio is stdlib
    _Event = None


class QueueFull(Exception):
    """Admission refused: the bounded queue is at capacity (retryable)."""


class LeaseLost(Exception):
    """The lease was expired, reassigned, or never existed."""


class UnknownJob(KeyError):
    """No job with that id."""


@dataclass
class ServiceJob:
    """One unit of remote work, as the scheduler tracks it."""

    job_id: str
    client: str
    name: str
    #: opaque to the scheduler (base64 pickle of ``(fn, args, kwargs)``)
    payload: str
    memo_key: str = ""
    result_key: str = ""
    kind: str = ""
    stage: str = ""
    priority: int = 0
    retries: int = 2
    state: str = "queued"  # queued | leased | ok | failed | cancelled
    attempts: int = 0
    error: str = ""
    worker: str = ""
    lease_id: str = ""
    lease_deadline: float = 0.0
    submitted_at: float = 0.0
    first_leased_at: float = 0.0
    wall_s: float = 0.0
    icount: Optional[int] = None
    #: store key of the checkpoint a preempted worker pushed; the next
    #: lease resumes from it (and gc treats it as a root while unsettled)
    snapshot_key: str = ""
    #: how many times the job was preempted and re-queued
    preemptions: int = 0
    #: every client that submitted this memo key while it was in flight
    clients: Set[str] = field(default_factory=set)
    #: request ids whose completion was accepted (idempotency record)
    completed_requests: Set[str] = field(default_factory=set)
    done: "_Event" = field(default_factory=_Event)

    @property
    def settled(self) -> bool:
        return self.state in ("ok", "failed", "cancelled")

    def describe(self) -> dict:
        """The wire-visible view (no payload: leases carry it once)."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "client": self.client,
            "state": self.state,
            "stage": self.stage,
            "memo_key": self.memo_key,
            "result_key": self.result_key,
            "kind": self.kind,
            "priority": self.priority,
            "attempts": self.attempts,
            "error": self.error,
            "worker": self.worker,
            "wall_s": self.wall_s,
            "icount": self.icount,
            "snapshot_key": self.snapshot_key,
            "preemptions": self.preemptions,
        }


class FairShareScheduler:
    """Bounded, fair-share, lease-based job queue (see module docs)."""

    def __init__(self, max_queued: int = 1024,
                 lease_timeout: float = 10.0,
                 retries: int = 2,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_queued = max_queued
        self.lease_timeout = lease_timeout
        self.retries = retries
        self.clock = clock
        self.jobs: Dict[str, ServiceJob] = {}
        #: client -> heap of (-priority, seq, job_id)
        self._queues: Dict[str, List[Tuple[int, int, str]]] = {}
        self._vtime: Dict[str, float] = {}
        self._weights: Dict[str, float] = {}
        self._by_memo: Dict[str, str] = {}  # in-flight memo key -> job id
        self._leases: Dict[str, str] = {}   # lease id -> job id
        self._seq = itertools.count()
        self._queued = 0

    # -- admission ---------------------------------------------------------

    def set_weight(self, client: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[client] = weight

    def submit(self, client: str, name: str, payload: str,
               memo_key: str = "", result_key: str = "", kind: str = "",
               stage: str = "", priority: int = 0,
               retries: Optional[int] = None) -> Tuple[str, ServiceJob]:
        """Admit one job; returns ``(status, job)``.

        ``status`` is ``"queued"`` for a fresh admission or
        ``"duplicate"`` when an in-flight job with the same memo key
        absorbed this submit.  Raises :class:`QueueFull` at capacity
        (duplicates never count against capacity).
        """
        if memo_key and memo_key in self._by_memo:
            job = self.jobs[self._by_memo[memo_key]]
            if not job.settled:
                job.clients.add(client)
                return "duplicate", job
        if self._queued >= self.max_queued:
            raise QueueFull("queue at capacity (%d jobs)" % self.max_queued)
        job = ServiceJob(
            job_id="J%06d" % next(self._seq),
            client=client, name=name, payload=payload,
            memo_key=memo_key, result_key=result_key, kind=kind,
            stage=stage, priority=priority,
            retries=self.retries if retries is None else retries,
            submitted_at=self.clock(),
        )
        job.clients.add(client)
        self.jobs[job.job_id] = job
        if memo_key:
            self._by_memo[memo_key] = job.job_id
        self._enqueue(job)
        return "queued", job

    def _enqueue(self, job: ServiceJob) -> None:
        job.state = "queued"
        job.lease_id = ""
        heapq.heappush(self._queues.setdefault(job.client, []),
                       (-job.priority, next(self._seq), job.job_id))
        self._queued += 1
        # a newcomer starts at the active floor, not at zero: otherwise
        # a fresh client would monopolize leases until it "caught up"
        if job.client not in self._vtime:
            floor = min(self._vtime.values()) if self._vtime else 0.0
            self._vtime[job.client] = floor

    # -- leasing -----------------------------------------------------------

    def _peek_ready(self, client: str) -> bool:
        """Prune settled heads; True when the client has a queued job."""
        heap = self._queues.get(client)
        while heap:
            job = self.jobs[heap[0][2]]
            if job.state == "queued":
                return True
            heapq.heappop(heap)  # cancelled/re-leased stale entry
        return False

    def lease(self, worker: str) -> Optional[ServiceJob]:
        """Hand the fairest next job to *worker*, or None when idle."""
        backlogged = [client for client in self._queues
                      if self._peek_ready(client)]
        if not backlogged:
            return None
        client = min(backlogged, key=lambda name: (self._vtime[name], name))
        _neg_priority, _seq, job_id = heapq.heappop(self._queues[client])
        job = self.jobs[job_id]
        now = self.clock()
        job.state = "leased"
        job.attempts += 1
        job.worker = worker
        job.lease_id = "L%06d" % next(self._seq)
        job.lease_deadline = now + self.lease_timeout
        if not job.first_leased_at:
            job.first_leased_at = now
        self._leases[job.lease_id] = job.job_id
        self._queued -= 1
        self._vtime[client] += 1.0 / self._weights.get(client, 1.0)
        return job

    def heartbeat(self, lease_id: str) -> float:
        """Extend a live lease; returns the new deadline."""
        job = self._job_for_lease(lease_id)
        job.lease_deadline = self.clock() + self.lease_timeout
        return job.lease_deadline

    def _job_for_lease(self, lease_id: str) -> ServiceJob:
        job_id = self._leases.get(lease_id)
        if job_id is None:
            raise LeaseLost("unknown or expired lease %s" % lease_id)
        job = self.jobs[job_id]
        if job.state != "leased" or job.lease_id != lease_id:
            raise LeaseLost("lease %s is no longer current" % lease_id)
        return job

    # -- completion --------------------------------------------------------

    def complete(self, lease_id: str, request_id: str, ok: bool = True,
                 error: str = "", wall_s: float = 0.0,
                 icount: Optional[int] = None,
                 worker: str = "",
                 preempted: bool = False,
                 snapshot_key: str = "") -> ServiceJob:
        """Settle (or retry) the leased job; idempotent per request id.

        A *preempted* completion is neither success nor failure: the
        worker checkpointed the job (pushing *snapshot_key* to the
        store) and surrendered the lease.  The job is re-queued with
        the snapshot key attached — and the lease's attempt is handed
        back, so a job drained N times across worker restarts still
        has its full retry budget for real failures.
        """
        job_id = self._leases.get(lease_id)
        if job_id is not None:
            job = self.jobs[job_id]
            if request_id and request_id in job.completed_requests:
                return job  # replayed delivery
            if job.state == "leased" and job.lease_id == lease_id:
                if request_id:
                    job.completed_requests.add(request_id)
                if preempted:
                    job.attempts = max(0, job.attempts - 1)
                    job.preemptions += 1
                    if snapshot_key:
                        job.snapshot_key = snapshot_key
                    job.error = ""
                    del self._leases[lease_id]
                    self._enqueue(job)
                elif ok:
                    job.wall_s = wall_s
                    job.icount = icount
                    if worker:
                        job.worker = worker
                    self._settle(job, "ok")
                elif job.attempts < 1 + job.retries:
                    job.error = error
                    del self._leases[lease_id]
                    self._enqueue(job)
                else:
                    self._settle(job, "failed", error or "job failed")
                return job
        # no current lease: tolerate replays of an already-settled job
        for job in self.jobs.values():
            if request_id and request_id in job.completed_requests:
                return job
        raise LeaseLost("lease %s is no longer current" % lease_id)

    def _settle(self, job: ServiceJob, state: str, error: str = "") -> None:
        job.state = state
        job.error = "" if state == "ok" else (error or job.error)
        self._leases.pop(job.lease_id, None)
        job.lease_id = ""
        if job.memo_key and self._by_memo.get(job.memo_key) == job.job_id:
            del self._by_memo[job.memo_key]
        job.done.set()

    def cancel(self, job_id: str) -> ServiceJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        if job.settled:
            return job
        if job.state == "queued":
            self._queued -= 1  # its heap entry is pruned lazily
        self._settle(job, "cancelled", "cancelled")
        return job

    # -- lease expiry ------------------------------------------------------

    def expire(self, now: Optional[float] = None) -> List[ServiceJob]:
        """Re-queue (or fail) jobs whose lease deadline passed."""
        now = self.clock() if now is None else now
        touched: List[ServiceJob] = []
        for lease_id in list(self._leases):
            job = self.jobs[self._leases[lease_id]]
            if job.state != "leased" or job.lease_deadline > now:
                continue
            del self._leases[lease_id]
            touched.append(job)
            if job.attempts < 1 + job.retries:
                job.error = "lease expired (worker %s)" % job.worker
                self._enqueue(job)
            else:
                self._settle(job, "failed",
                             "lease expired (worker %s), retries exhausted"
                             % job.worker)
        return touched

    # -- introspection -----------------------------------------------------

    def get(self, job_id: str) -> ServiceJob:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise UnknownJob(job_id)

    @property
    def queued(self) -> int:
        return self._queued

    def snapshot_roots(self) -> List[str]:
        """Snapshot keys the store must keep: unsettled preempted jobs.

        Once a job settles its snapshot is garbage (the real artifact
        exists, or the retry budget is gone); while it is queued or
        leased the snapshot is the job's progress and must survive gc.
        """
        return sorted({job.snapshot_key for job in self.jobs.values()
                       if job.snapshot_key and not job.settled})

    def stats(self) -> dict:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        clients = {}
        for client, heap in self._queues.items():
            depth = sum(1 for _p, _s, job_id in heap
                        if self.jobs[job_id].state == "queued")
            clients[client] = {
                "queued": depth,
                "vtime": round(self._vtime.get(client, 0.0), 6),
                "weight": self._weights.get(client, 1.0),
            }
        return {
            "queued": self._queued,
            "leased": len(self._leases),
            "jobs": len(self.jobs),
            "states": states,
            "clients": clients,
            "preemptions": sum(job.preemptions
                               for job in self.jobs.values()),
            "snapshot_roots": self.snapshot_roots(),
        }
