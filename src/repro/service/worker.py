"""The service worker: lease, execute, upload, complete — forever.

A worker is a plain process (no asyncio) that long-polls ``lease``,
unpickles the job payload, runs it, uploads the result through
``put-artifact``, and reports ``complete``.  While the job runs, a
background thread heartbeats the lease on a **second** connection so a
long-running checkpoint replay cannot time out merely for being slow —
only a dead or wedged worker loses its lease.

Failure model: if the worker dies mid-job the heartbeats stop, the
server's reaper expires the lease, and the job re-queues for another
worker.  If the worker survives but ``complete`` races a reaped lease,
the 409 is logged and dropped — the re-run elsewhere is authoritative,
and the content-addressed store makes the duplicate artifact harmless.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from repro.farm.runner import _job_icount
from repro.observe import hooks
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    decode_payload,
)


class _Heartbeat:
    """Keeps one lease alive from a daemon thread until stopped."""

    def __init__(self, client: ServiceClient, lease_id: str,
                 interval_s: float) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval = max(0.05, interval_s)
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.heartbeat(self._lease_id)
            except ServiceError:
                self.lost = True  # lease reaped: stop burning the wire
                return
            except ServiceUnavailable:
                pass  # keep trying; the lease may still be alive

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(5.0)


class ServiceWorker:
    """Pulls and executes jobs until stopped or the queue stays idle."""

    def __init__(self, host: str, port: int, name: str = "",
                 poll_s: float = 1.0, idle_exit_s: float = 0.0) -> None:
        self.name = name or ("worker-%d" % os.getpid())
        self.client = ServiceClient(host, port, client_id=self.name)
        #: dedicated connection for heartbeats (the main socket is busy
        #: with put-artifact/complete while a job runs)
        self.pulse = ServiceClient(host, port,
                                   client_id=self.name + "/hb")
        self.poll_s = poll_s
        #: exit after this long with no work (0 = run forever)
        self.idle_exit_s = idle_exit_s
        self.jobs_done = 0
        self.jobs_failed = 0
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> int:
        """The worker loop; returns the number of jobs executed."""
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            try:
                grant = self.client.lease(self.name, wait_s=self.poll_s)
            except ServiceUnavailable:
                if self.idle_exit_s:
                    return self.jobs_done
                time.sleep(self.poll_s)
                continue
            if grant is None:
                now = time.monotonic()
                idle_since = idle_since or now
                if self.idle_exit_s and now - idle_since > self.idle_exit_s:
                    return self.jobs_done
                continue
            idle_since = None
            self._execute(grant)
        return self.jobs_done

    def _execute(self, grant: dict) -> None:
        lease_id = grant["lease_id"]
        heartbeat_s = float(grant.get("heartbeat_s", 1.0))
        obs = hooks.OBS
        start = time.perf_counter()
        with _Heartbeat(self.pulse, lease_id, heartbeat_s) as pulse:
            ok, error, icount = True, "", None
            try:
                fn, args, kwargs = decode_payload(grant["payload"])
                result = fn(*args, **kwargs)
                icount = _job_icount(result)
                result_key = grant.get("result_key") or grant.get("memo_key")
                if result_key:
                    self.client.put_artifact(result_key, result,
                                             grant.get("kind", ""))
            except Exception as exc:
                ok = False
                error = "%s: %s" % (type(exc).__name__, exc)
                if obs.enabled:
                    obs.count("service.worker.errors")
        wall = time.perf_counter() - start
        if pulse.lost:
            # the lease was reaped under us: the job re-ran elsewhere,
            # so our completion (and artifact) must not be reported
            if obs.enabled:
                obs.count("service.worker.lost_leases")
            return
        try:
            self.client.complete(lease_id, ok=ok, error=error, wall_s=wall,
                                 icount=icount, worker=self.name)
        except ServiceError as exc:
            if exc.code != 409:  # 409 = lease reaped mid-completion
                raise
            if obs.enabled:
                obs.count("service.worker.lost_leases")
            return
        if ok:
            self.jobs_done += 1
        else:
            self.jobs_failed += 1
        if obs.enabled:
            obs.count("service.worker.jobs")
            obs.observe("service.worker.wall_s", wall)


def worker_main(host: str, port: int, name: str = "", poll_s: float = 1.0,
                idle_exit_s: float = 0.0) -> int:
    """Process entry point (used by ``repro service worker`` and tests)."""
    worker = ServiceWorker(host, port, name=name, poll_s=poll_s,
                           idle_exit_s=idle_exit_s)
    try:
        return worker.run()
    finally:
        worker.client.close()
        worker.pulse.close()
