"""The service worker: lease, execute, upload, complete — forever.

A worker is a plain process (no asyncio) that long-polls ``lease``,
unpickles the job payload, runs it, uploads the result through
``put-artifact``, and reports ``complete``.  While the job runs, a
background thread heartbeats the lease on a **second** connection so a
long-running checkpoint replay cannot time out merely for being slow —
only a dead or wedged worker loses its lease.

Failure model: if the worker dies mid-job the heartbeats stop, the
server's reaper expires the lease, and the job re-queues for another
worker.  If the worker survives but ``complete`` races a reaped lease,
the 409 is logged and dropped — the re-run elsewhere is authoritative,
and the content-addressed store makes the duplicate artifact harmless.

Preemption (graceful drain): on SIGTERM the worker stops taking new
leases and asks the running job to checkpoint itself through
:mod:`repro.snapshot.preempt`.  A cooperative job raises ``Preempted``
with a machine snapshot; the worker pushes it to the store and
completes the lease as *preempted*, so the scheduler re-queues the job
with the snapshot key attached and the next worker resumes instead of
restarting.  A job that ignores the request is given
``drain_timeout_s`` to finish; past that a watchdog **abandons the
lease explicitly** (a failed completion, so the retry is immediate
rather than waiting out lease expiry) and exits the process.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Optional

from repro.farm.runner import _job_icount
from repro.observe import hooks
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    decode_payload,
)
from repro.snapshot import preempt, snapshot_digest
from repro.snapshot.preempt import Preempted


def snapshot_key_for(snapshot) -> str:
    """Store key under which a preemption checkpoint is pushed."""
    return "snap/" + snapshot_digest(snapshot)


class _Heartbeat:
    """Keeps one lease alive from a daemon thread until stopped."""

    def __init__(self, client: ServiceClient, lease_id: str,
                 interval_s: float) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval = max(0.05, interval_s)
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._client.heartbeat(self._lease_id)
            except ServiceError:
                self.lost = True  # lease reaped: stop burning the wire
                return
            except ServiceUnavailable:
                pass  # keep trying; the lease may still be alive

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(5.0)


class ServiceWorker:
    """Pulls and executes jobs until stopped or the queue stays idle."""

    def __init__(self, host: str, port: int, name: str = "",
                 poll_s: float = 1.0, idle_exit_s: float = 0.0,
                 drain_timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.name = name or ("worker-%d" % os.getpid())
        self.client = ServiceClient(host, port, client_id=self.name)
        #: dedicated connection for heartbeats (the main socket is busy
        #: with put-artifact/complete while a job runs)
        self.pulse = ServiceClient(host, port,
                                   client_id=self.name + "/hb")
        self.poll_s = poll_s
        #: exit after this long with no work (0 = run forever)
        self.idle_exit_s = idle_exit_s
        #: grace period for the in-flight job to finish or checkpoint
        #: after SIGTERM (0 = wait forever)
        self.drain_timeout_s = drain_timeout_s
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_preempted = 0
        self._stop = threading.Event()
        self._current_lease = ""

    def stop(self) -> None:
        self._stop.set()

    # -- graceful drain ----------------------------------------------------

    def install_signal_handlers(self) -> None:
        """Route SIGTERM to :meth:`handle_sigterm` (main thread only)."""
        signal.signal(signal.SIGTERM, self.handle_sigterm)

    def handle_sigterm(self, signum=None, frame=None) -> None:
        """Drain: no new leases, checkpoint request, bounded grace.

        Safe to call from a signal handler — it only sets events and
        starts the watchdog thread.
        """
        self.stop()
        preempt.request()
        if self.drain_timeout_s > 0:
            threading.Thread(target=self._drain_watchdog,
                             daemon=True).start()

    def _drain_watchdog(self) -> None:
        deadline = time.monotonic() + self.drain_timeout_s
        while time.monotonic() < deadline:
            if not self._current_lease:
                return  # drained cleanly; run() will return
            time.sleep(0.05)
        lease_id = self._current_lease
        if lease_id:
            # The job neither finished nor checkpointed in time: give
            # the lease back explicitly so the scheduler retries now
            # instead of waiting out the lease timeout.  Fresh
            # connection — the worker's own sockets are mid-call.
            try:
                with ServiceClient(self.host, self.port,
                                   client_id=self.name + "/drain",
                                   retries=1) as emergency:
                    emergency.complete(
                        lease_id, ok=False,
                        error="worker %s drain timeout" % self.name,
                        worker=self.name)
            except Exception:
                pass  # lease expiry remains the backstop
        os._exit(1)

    def run(self) -> int:
        """The worker loop; returns the number of jobs executed."""
        # a fresh loop starts with a clean process-global preemption
        # context (a prior in-process worker may have drained)
        preempt.reset()
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            try:
                grant = self.client.lease(self.name, wait_s=self.poll_s)
            except ServiceUnavailable:
                if self.idle_exit_s:
                    return self.jobs_done
                time.sleep(self.poll_s)
                continue
            if grant is None:
                now = time.monotonic()
                idle_since = idle_since or now
                if self.idle_exit_s and now - idle_since > self.idle_exit_s:
                    return self.jobs_done
                continue
            idle_since = None
            self._execute(grant)
        return self.jobs_done

    def _seed_resume(self, grant: dict) -> None:
        """Park a re-leased job's checkpoint for its body to claim."""
        preempt.GLOBAL.take_resume()  # drop any unclaimed stale slot
        key = str(grant.get("snapshot_key", "") or "")
        if not key:
            return
        try:
            snapshot = self.client.get_artifact(key)
        except Exception:
            return  # missing/corrupt checkpoint: start cold
        preempt.set_resume(snapshot)
        obs = hooks.OBS
        if obs.enabled:
            obs.count("service.worker.resumes")

    def _execute(self, grant: dict) -> None:
        lease_id = grant["lease_id"]
        heartbeat_s = float(grant.get("heartbeat_s", 1.0))
        obs = hooks.OBS
        start = time.perf_counter()
        self._current_lease = lease_id
        try:
            with _Heartbeat(self.pulse, lease_id, heartbeat_s) as pulse:
                ok, error, icount = True, "", None
                snapshot = None
                try:
                    fn, args, kwargs = decode_payload(grant["payload"])
                    self._seed_resume(grant)
                    result = fn(*args, **kwargs)
                    icount = _job_icount(result)
                    result_key = (grant.get("result_key")
                                  or grant.get("memo_key"))
                    if result_key:
                        self.client.put_artifact(result_key, result,
                                                 grant.get("kind", ""))
                except Preempted as exc:
                    snapshot = exc.snapshot
                except Exception as exc:
                    ok = False
                    error = "%s: %s" % (type(exc).__name__, exc)
                    if obs.enabled:
                        obs.count("service.worker.errors")
            wall = time.perf_counter() - start
            if pulse.lost:
                # the lease was reaped under us: the job re-ran
                # elsewhere, so our completion (and artifact) must not
                # be reported
                if obs.enabled:
                    obs.count("service.worker.lost_leases")
                return
            try:
                if snapshot is not None:
                    snap_key = snapshot_key_for(snapshot)
                    self.client.put_artifact(snap_key, snapshot, "snapshot")
                    self.client.complete(lease_id, preempted=True,
                                         snapshot_key=snap_key,
                                         wall_s=wall, worker=self.name)
                else:
                    self.client.complete(lease_id, ok=ok, error=error,
                                         wall_s=wall, icount=icount,
                                         worker=self.name)
            except ServiceError as exc:
                if exc.code != 409:  # 409 = lease reaped mid-completion
                    raise
                if obs.enabled:
                    obs.count("service.worker.lost_leases")
                return
            if snapshot is not None:
                self.jobs_preempted += 1
                if obs.enabled:
                    obs.count("service.worker.preemptions")
            elif ok:
                self.jobs_done += 1
            else:
                self.jobs_failed += 1
            if obs.enabled:
                obs.count("service.worker.jobs")
                obs.observe("service.worker.wall_s", wall)
        finally:
            self._current_lease = ""


def worker_main(host: str, port: int, name: str = "", poll_s: float = 1.0,
                idle_exit_s: float = 0.0,
                drain_timeout_s: float = 30.0) -> int:
    """Process entry point (used by ``repro service worker`` and tests)."""
    worker = ServiceWorker(host, port, name=name, poll_s=poll_s,
                           idle_exit_s=idle_exit_s,
                           drain_timeout_s=drain_timeout_s)
    try:
        worker.install_signal_handlers()
    except ValueError:
        pass  # not the main thread (embedded in tests): no SIGTERM hook
    try:
        return worker.run()
    finally:
        worker.client.close()
        worker.pulse.close()
