"""Blocking client for the checkpoint service.

One :class:`ServiceClient` owns one socket.  Calls are synchronous
request/response; on a connection failure the client reconnects with
capped exponential backoff and **resends the same envelope** (same
request id), which the server's replay cache turns into an idempotent
retry — a submit that died after the server enqueued but before the
response arrived does not double-enqueue.

Error mapping: a response with ``ok: false`` raises
:class:`ServiceBusy` for retryable 429s (after the client's own retries
are exhausted), :class:`ServiceError` otherwise; transport failure past
the retry budget raises :class:`ServiceUnavailable`.

The client is what campaign runners and workers embed; it is
intentionally thread-unfriendly (one socket, one outstanding call) —
use one client per thread, as :class:`repro.service.worker.ServiceWorker`
does for its heartbeat thread.
"""

from __future__ import annotations

import itertools
import os
import pickle
import socket
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.farm import codec
from repro.service import protocol


class ServiceError(Exception):
    """The server refused the request (non-retryable)."""

    def __init__(self, error: str, code: int = 500) -> None:
        super().__init__("%s (code %d)" % (error, code))
        self.error = error
        self.code = code


class ServiceBusy(ServiceError):
    """Backpressure: the queue is full and retries were exhausted."""


class ServiceUnavailable(Exception):
    """Could not reach the server within the retry budget."""


class ServiceClient:
    """Blocking, reconnecting, idempotent-retry protocol client."""

    def __init__(self, host: str, port: int, client_id: str = "",
                 retries: int = 5, backoff: float = 0.05,
                 max_backoff: float = 2.0, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id or ("client-%d" % os.getpid())
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._seq = itertools.count()

    # -- transport ---------------------------------------------------------

    def _next_id(self) -> str:
        return "%s:%d:%d" % (self.client_id, os.getpid(), next(self._seq))

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def call(self, verb: str, *, wait_budget: float = 0.0,
             **fields: Any) -> dict:
        """One request/response round trip with retry-on-disconnect.

        The envelope (including its ``id``) is built once and resent
        verbatim on every retry, so the server can deduplicate.  A 429
        queue-full response is retried with the same backoff schedule;
        ``wait_budget`` extends the read timeout for long-poll verbs.
        """
        message = dict(fields)
        message["verb"] = verb
        message.setdefault("id", self._next_id())
        delay = self.backoff
        last_error: Optional[Exception] = None
        for attempt in range(1 + self.retries):
            if attempt:
                time.sleep(delay)
                delay = min(delay * 2, self.max_backoff)
            try:
                sock = self._connect()
                if wait_budget:
                    sock.settimeout(self.timeout + wait_budget)
                protocol.send_message(sock, message)
                response = protocol.recv_message(sock)
                if wait_budget:
                    sock.settimeout(self.timeout)
            except (OSError, protocol.ProtocolError) as exc:
                last_error = exc
                self._drop()
                continue
            if response is None:  # server closed between frames
                last_error = ConnectionError("server closed the connection")
                self._drop()
                continue
            if response.get("ok", False):
                return response
            code = int(response.get("code", 500))
            error = str(response.get("error", "unknown error"))
            if code == 429 and response.get("retryable"):
                last_error = ServiceBusy(error, code)
                continue  # backpressure: back off and retry
            raise ServiceError(error, code)
        if isinstance(last_error, ServiceBusy):
            raise last_error
        raise ServiceUnavailable(
            "no response from %s:%d after %d attempts: %s"
            % (self.host, self.port, 1 + self.retries, last_error))

    # -- job verbs ---------------------------------------------------------

    def hello(self) -> dict:
        return self.call("hello")

    def submit(self, name: str, fn: Any, args: tuple = (),
               kwargs: Optional[dict] = None, key: str = "",
               result_key: str = "", kind: str = "", stage: str = "",
               priority: int = 0, retries: Optional[int] = None,
               force: bool = False) -> dict:
        """Submit one job; returns the server's status + job view.

        ``status`` is ``"cached"`` (result already in the store),
        ``"queued"``, or ``"duplicate"`` (attached to an identical
        in-flight job).
        """
        payload = protocol.pack_bytes(
            pickle.dumps((fn, tuple(args), dict(kwargs or {})), protocol=4))
        fields: Dict[str, Any] = dict(
            client=self.client_id, name=name, payload=payload, key=key,
            result_key=result_key or key, kind=kind, stage=stage,
            priority=priority, force=force)
        if retries is not None:
            fields["retries"] = retries
        return self.call("submit", **fields)

    def lease(self, worker: str, wait_s: float = 0.0) -> Optional[dict]:
        """Lease the next job (long-polling up to *wait_s*), or None."""
        response = self.call("lease", worker=worker, wait_s=wait_s,
                             wait_budget=wait_s)
        return response.get("job")

    def heartbeat(self, lease_id: str) -> float:
        return float(self.call("heartbeat", lease_id=lease_id)["deadline"])

    def complete(self, lease_id: str, ok: bool = True, error: str = "",
                 wall_s: float = 0.0, icount: Optional[int] = None,
                 worker: str = "", preempted: bool = False,
                 snapshot_key: str = "") -> dict:
        if preempted:
            status = "preempted"
        else:
            status = "ok" if ok else "failed"
        return self.call("complete", lease_id=lease_id,
                         status=status, error=error,
                         wall_s=wall_s, icount=icount, worker=worker,
                         snapshot_key=snapshot_key)["job"]

    def cancel(self, job_id: str) -> dict:
        return self.call("cancel", job_id=job_id)["job"]

    def wait(self, job_ids: List[str], timeout_s: float = 30.0) -> dict:
        """States of *job_ids*, blocking up to *timeout_s* for settles."""
        response = self.call("wait", jobs=list(job_ids),
                             timeout_s=timeout_s, wait_budget=timeout_s)
        return response["jobs"]

    # -- artifact verbs ----------------------------------------------------

    def put_artifact(self, key: str, obj: Any, kind: str = "") -> str:
        """Encode *obj* with the farm codec and upload it under *key*."""
        kind, meta, blocks = codec.encode(obj, kind)
        self.call("put-artifact", key=key, kind=kind, meta=meta,
                  blocks=protocol.pack_blocks(blocks))
        return kind

    def get_artifact(self, key: str) -> Any:
        """Download and decode the artifact stored under *key*."""
        response = self.call("get-artifact", key=key)
        blocks = protocol.unpack_blocks(response.get("blocks", {}))

        def fetch(digest: str) -> bytes:
            data = blocks[digest]
            if codec.sha256_hex(data) != digest:
                raise protocol.ProtocolError(
                    "downloaded block %s fails digest verification" % digest)
            return data

        return codec.decode(response["kind"], response["meta"], fetch)

    def has_artifact(self, key: str) -> bool:
        return bool(self.call("has-artifact", key=key)["present"])

    def stats(self, store: bool = False) -> dict:
        return self.call("stats", store=store)


def connect(host: str, port: int, **kwargs: Any) -> ServiceClient:
    """Connect eagerly (raises now, not on first call, if unreachable)."""
    client = ServiceClient(host, port, **kwargs)
    client.hello()
    return client


def decode_payload(payload: str) -> Tuple[Any, tuple, dict]:
    """Unpack a job payload into ``(fn, args, kwargs)`` (worker side)."""
    fn, args, kwargs = pickle.loads(protocol.unpack_bytes(payload))
    return fn, args, kwargs
