"""ProgramBuilder: turn a phase schedule into a runnable PX executable.

Single-threaded programs run their phases back to back.  Multi-threaded
programs are SPMD in the OpenMP style the paper evaluates: every thread
executes the same phase schedule on its own buffer, separated by
*active-wait* barriers (xadd arrival counter + pause spin loop).  The
spinning is deliberate: it is what makes an unconstrained ELFie run
retire more instructions than its constrained pinball replay (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workloads.compile import build_executable
from repro.workloads.phases import KERNEL_INSTRUCTIONS_PER_ITER, phase_source

#: Per-thread worker stack size in the generated data section.
WORKER_STACK_BYTES = 16384


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a program: a kernel run for some iterations."""

    kernel: str
    iterations: int
    buffer_kb: int = 64
    #: Extra iterations per thread index (OpenMP trip-count imbalance).
    skew_iters: int = 0

    @property
    def estimated_instructions(self) -> int:
        return self.iterations * KERNEL_INSTRUCTIONS_PER_ITER[self.kernel]


@dataclass
class ProgramBuilder:
    """Builds an executable from a phase schedule."""

    name: str
    phases: List[PhaseSpec]
    threads: int = 1
    data_base: int = 0x600000

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a program needs at least one phase")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")

    @property
    def buffer_bytes(self) -> int:
        return max(p.buffer_kb for p in self.phases) * 1024

    def estimated_instructions(self) -> int:
        """Rough retired-instruction estimate (all threads, no spin)."""
        per_thread = sum(p.estimated_instructions for p in self.phases)
        return per_thread * self.threads

    # -- assembly generation -------------------------------------------------

    def _phase_block(self, index: int, spec: PhaseSpec) -> str:
        prefix = "p%d" % index
        return phase_source(spec.kernel, prefix, spec.iterations,
                            "buf", self.buffer_bytes,
                            skew_iters=spec.skew_iters)

    def _barrier(self, index: int) -> str:
        """Active-wait barrier: atomic arrival count + pause spin."""
        return f"""
barrier_{index}:
    mov rdx, bar_{index}_count
    mov rax, 1
    xadd [rdx], rax
bar_{index}_spin:
    ld rax, [rdx]
    cmp rax, {self.threads}
    jae bar_{index}_done
    pause
    jmp bar_{index}_spin
bar_{index}_done:
    ret
"""

    def code_source(self) -> str:
        """The program's .text assembly."""
        lines: List[str] = ["_start:"]
        # Spawn workers (threads 1..T-1), each jumping to its entry stub.
        for worker in range(1, self.threads):
            lines.append(f"""
    mov rax, 56
    mov rdi, 0x100
    mov rsi, stack_{worker}_top
    mov rdx, worker_{worker}
    syscall
""")
        lines.append("""
    mov r15, 0
    mov rbp, buf_0
    jmp body
""")
        for worker in range(1, self.threads):
            lines.append(f"""
worker_{worker}:
    mov r15, {worker}
    mov rbp, buf_{worker}
    jmp body
""")
        lines.append("body:")
        for index, spec in enumerate(self.phases):
            lines.append(self._phase_block(index, spec))
            if self.threads > 1:
                lines.append(f"    call barrier_{index}")
        lines.append("""
    cmp r15, 0
    jz main_exit
    mov rax, 60
    mov rdi, 0
    syscall
main_exit:
    mov rax, 231
    mov rdi, 0
    syscall
""")
        if self.threads > 1:
            for index in range(len(self.phases)):
                lines.append(self._barrier(index))
        return "\n".join(lines)

    def data_source(self) -> str:
        """The program's .data assembly (buffers, stacks, barriers)."""
        lines: List[str] = []
        for thread in range(self.threads):
            lines.append(f"buf_{thread}:")
            lines.append(f".zero {self.buffer_bytes}")
        lines.append("buf:")  # alias label for phase templates
        lines.append(".quad 0")
        for worker in range(1, self.threads):
            lines.append(f"stack_{worker}:")
            lines.append(f".zero {WORKER_STACK_BYTES}")
            lines.append(f"stack_{worker}_top:")
            lines.append(".quad 0")
        if self.threads > 1:
            for index in range(len(self.phases)):
                lines.append(f"bar_{index}_count:")
                lines.append(".quad 0")
        return "\n".join(lines) + "\n"

    def build(self) -> bytes:
        """Assemble and link the program into an ELF executable."""
        return build_executable(
            self.code_source(),
            data_source=self.data_source(),
            data_base=self.data_base,
        )
