"""SPEC-like synthetic workload suites.

The paper's evaluation uses SPEC CPU2006 and CPU2017; those suites
cannot ship here, so each app is replaced by a synthetic PX program with
a deterministic, app-specific multi-phase schedule (seeded by the app
name).  What matters for the reproduction is preserved:

- distinct time-varying phase behaviour per app (SimPoint has real
  clusters to find),
- a wide spread of whole-program instruction counts across the suite,
- ``gcc`` configured with many short, diverse phases, making it the
  hardest app to represent (Fig. 9 / Table II),
- OpenMP-speed apps built multi-threaded with active-wait barriers, and
  ``657.xz_s`` kept single-threaded (Fig. 11).

Instruction counts are scaled roughly 1000:1 from the paper (see
DESIGN.md §4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.builder import PhaseSpec, ProgramBuilder

_KERNEL_POOL = ["compute", "stream", "pointer_chase", "branchy", "fpkernel",
                "divide"]
_INT_POOL = ["compute", "stream", "pointer_chase", "branchy", "divide"]
_FP_POOL = ["fpkernel", "stream", "compute", "pointer_chase"]

#: Multiplier applied to phase iterations for each input set.
INPUT_SCALES = {"test": 0.25, "train": 1.0, "ref": 8.0}


@dataclass(frozen=True)
class SpecApp:
    """One synthetic benchmark application."""

    name: str
    suite: str                      # "2017int" | "2017fp" | "2017omp" | "2006"
    segments: Tuple[Tuple[str, int], ...]  # (kernel, iterations) timeline
    threads: int = 1
    buffer_kb: int = 64
    #: OpenMP-style per-thread trip-count imbalance (fraction of the
    #: iteration count added per thread index).
    thread_skew: float = 0.0

    def phases(self, input_set: str = "train") -> List[PhaseSpec]:
        """Phase schedule scaled for an input set."""
        scale = INPUT_SCALES[input_set]
        return [
            PhaseSpec(kernel=kernel,
                      iterations=max(1, int(iterations * scale)),
                      buffer_kb=self.buffer_kb,
                      skew_iters=int(iterations * scale * self.thread_skew))
            for kernel, iterations in self.segments
        ]

    def builder(self, input_set: str = "train") -> ProgramBuilder:
        return ProgramBuilder(name=self.name,
                              phases=self.phases(input_set),
                              threads=self.threads)

    def build(self, input_set: str = "train") -> bytes:
        """Build the app's ELF executable for an input set."""
        return self.builder(input_set).build()

    def estimated_instructions(self, input_set: str = "train") -> int:
        return self.builder(input_set).estimated_instructions()


def _make_schedule(name: str, pool: List[str], n_behaviours: int,
                   n_segments: int, base_iters: int,
                   spread: float = 0.6) -> Tuple[Tuple[str, int], ...]:
    """Deterministic, app-specific phase timeline.

    Draws *n_behaviours* (kernel, intensity) pairs and arranges
    *n_segments* segments among them with recurring structure (phases
    reappear over time, as real programs' do).
    """
    rng = random.Random(name)
    behaviours = []
    for _ in range(n_behaviours):
        kernel = rng.choice(pool)
        intensity = base_iters * rng.uniform(1.0 - spread, 1.0 + spread)
        behaviours.append((kernel, int(intensity)))
    segments = []
    for index in range(n_segments):
        kernel, intensity = behaviours[index % n_behaviours
                                       if rng.random() < 0.7
                                       else rng.randrange(n_behaviours)]
        jitter = rng.uniform(0.8, 1.2)
        segments.append((kernel, max(100, int(intensity * jitter))))
    return tuple(segments)


def _int_app(name: str, behaviours: int, segments: int,
             base_iters: int, buffer_kb: int = 64) -> SpecApp:
    return SpecApp(name=name, suite="2017int",
                   segments=_make_schedule(name, _INT_POOL, behaviours,
                                           segments, base_iters),
                   buffer_kb=buffer_kb)


def _fp_app(name: str, behaviours: int, segments: int,
            base_iters: int, buffer_kb: int = 64) -> SpecApp:
    return SpecApp(name=name, suite="2017fp",
                   segments=_make_schedule(name, _FP_POOL, behaviours,
                                           segments, base_iters),
                   buffer_kb=buffer_kb)


#: SPEC CPU2017 int rate (the Fig. 9 / Table II / Table III suite).
#: gcc gets many short diverse phases — the paper's hardest app.
SPEC2017_INT_RATE: Dict[str, SpecApp] = {
    app.name: app
    for app in [
        _int_app("500.perlbench_r", 3, 12, 6000),
        SpecApp(
            name="502.gcc_r", suite="2017int",
            segments=_make_schedule("502.gcc_r", _INT_POOL,
                                    n_behaviours=6, n_segments=48,
                                    base_iters=1500, spread=0.9),
            buffer_kb=256,
        ),
        _int_app("505.mcf_r", 2, 10, 9000, buffer_kb=512),
        _int_app("520.omnetpp_r", 3, 14, 5000, buffer_kb=256),
        _int_app("523.xalancbmk_r", 4, 16, 4000),
        _int_app("525.x264_r", 3, 18, 7000),
        _int_app("531.deepsjeng_r", 2, 8, 8000),
        _int_app("541.leela_r", 3, 10, 6500),
        _int_app("548.exchange2_r", 2, 6, 12000),
        _int_app("557.xz_r", 3, 12, 5500),
    ]
}

#: SPEC CPU2017 fp rate subset (joins int rate for the ref study).
SPEC2017_FP_RATE: Dict[str, SpecApp] = {
    app.name: app
    for app in [
        _fp_app("503.bwaves_r", 2, 10, 9000, buffer_kb=256),
        _fp_app("507.cactuBSSN_r", 3, 12, 7000),
        _fp_app("508.namd_r", 2, 8, 10000),
        _fp_app("519.lbm_r", 2, 6, 14000, buffer_kb=512),
        _fp_app("538.imagick_r", 3, 14, 5000),
        _fp_app("544.nab_r", 3, 10, 6000),
    ]
}


def _omp_app(name: str, behaviours: int, segments: int, base_iters: int,
             threads: int = 8) -> SpecApp:
    return SpecApp(name=name, suite="2017omp",
                   segments=_make_schedule(name, _FP_POOL, behaviours,
                                           segments, base_iters),
                   threads=threads, buffer_kb=32, thread_skew=0.04)


#: SPEC CPU2017 OpenMP speed subset, 8 threads (Fig. 11).
#: 657.xz_s runs single-threaded, as in the paper.
SPEC2017_OMP_SPEED: Dict[str, SpecApp] = {
    app.name: app
    for app in [
        _omp_app("603.bwaves_s", 2, 6, 3000),
        _omp_app("619.lbm_s", 2, 5, 4000),
        _omp_app("621.wrf_s", 3, 8, 2500),
        _omp_app("627.cam4_s", 3, 7, 2800),
        _omp_app("628.pop2_s", 2, 6, 3200),
        _omp_app("638.imagick_s", 3, 8, 2600),
        _omp_app("644.nab_s", 2, 6, 3000),
        SpecApp(name="657.xz_s", suite="2017omp",
                segments=_make_schedule("657.xz_s", _INT_POOL, 3, 10, 2400),
                threads=1, buffer_kb=32),
    ]
}


def _app2006(name: str, behaviours: int, segments: int,
             base_iters: int) -> SpecApp:
    pool = _FP_POOL if name.split(".")[1] in {
        "bwaves", "gamess", "milc", "gromacs", "cactusADM", "leslie3d",
        "namd", "soplex", "povray", "lbm",
    } else _INT_POOL
    return SpecApp(name=name, suite="2006",
                   segments=_make_schedule(name, pool, behaviours,
                                           segments, base_iters))


#: The 19 SPEC CPU2006 apps of the gem5 case study (Table V).
SPEC2006_SUBSET: Dict[str, SpecApp] = {
    app.name: app
    for app in [
        _app2006("400.perlbench", 3, 10, 5000),
        _app2006("401.bzip2", 2, 8, 6000),
        _app2006("403.gcc", 5, 24, 2000),
        _app2006("410.bwaves", 2, 8, 8000),
        _app2006("416.gamess", 3, 10, 6000),
        _app2006("429.mcf", 2, 8, 9000),
        _app2006("433.milc", 2, 8, 7000),
        _app2006("435.gromacs", 3, 10, 6000),
        _app2006("436.cactusADM", 2, 6, 9000),
        _app2006("437.leslie3d", 2, 8, 7000),
        _app2006("444.namd", 2, 6, 9000),
        _app2006("445.gobmk", 3, 12, 4000),
        _app2006("450.soplex", 3, 10, 5000),
        _app2006("453.povray", 3, 10, 5000),
        _app2006("456.hmmer", 2, 6, 9000),
        _app2006("458.sjeng", 2, 8, 7000),
        _app2006("462.libquantum", 2, 6, 10000),
        _app2006("464.h264ref", 3, 12, 5000),
        _app2006("470.lbm", 2, 6, 10000),
    ]
}

_ALL_SUITES = (SPEC2017_INT_RATE, SPEC2017_FP_RATE, SPEC2017_OMP_SPEED,
               SPEC2006_SUBSET)


def get_app(name: str):
    """Look up an app in any suite by its full name.

    Covers the SPEC-like suites and the irregular-MT suite
    (:mod:`repro.workloads.mt`); both app kinds expose the same
    ``build(input_set)`` / ``estimated_instructions(input_set)``
    surface and a ``threads`` attribute.
    """
    for suite in _ALL_SUITES:
        if name in suite:
            return suite[name]
    from repro.workloads.mt import MT_APPS  # deferred: mt imports us
    if name in MT_APPS:
        return MT_APPS[name]
    raise KeyError("unknown benchmark %r" % name)
