"""Phase kernels: assembly templates with distinct microarchitectural
behaviour.

Each kernel generates one program phase as PX assembly.  The kernels are
chosen so that phases differ in CPI on the platform's hardware timing
model (cache misses, divides, floating point, branches), which is what
gives SimPoint phase analysis something real to find:

``compute``
    Register-only integer arithmetic; CPI near 1.
``stream``
    Sequential loads/stores over a buffer larger than the hardware
    cache; steady miss rate, memory-bound CPI.
``pointer_chase``
    LCG-scattered loads over the buffer; high miss rate, highest CPI.
``branchy``
    Data-dependent conditional branches, light memory traffic.
``fpkernel``
    Floating-point multiply/add chains; mid CPI from FP latencies.
``divide``
    Integer division chains; very high CPI, no memory traffic.

All kernels preserve the invariant that the only registers carrying
state across phases are rbp (thread workspace base) and r15 (thread id);
everything else is phase-local.
"""

from __future__ import annotations

from typing import Callable, Dict

#: Approximate retired instructions per (iteration, element) for sizing.
KERNEL_INSTRUCTIONS_PER_ITER = {
    "compute": 10,
    "stream": 10,
    "pointer_chase": 15,
    "branchy": 10,
    "fpkernel": 9,
    "divide": 7,
}


def _iter_header(prefix: str, iterations: int, skew_iters: int) -> str:
    """Loop-count header: thread i runs iterations + i * skew_iters.

    The thread index is carried in r15 (the builder's SPMD convention);
    a nonzero skew models OpenMP trip-count imbalance, which is what
    makes threads wait (and spin) at barriers.
    """
    if not skew_iters:
        return f"""
{prefix}_start:
    mov rcx, {iterations}"""
    return f"""
{prefix}_start:
    mov rcx, {iterations}
    mov rdx, r15
    imul rdx, {skew_iters}
    add rcx, rdx"""


def _compute(prefix: str, iterations: int, buf: str, buf_bytes: int,
             skew_iters: int = 0) -> str:
    return _iter_header(prefix, iterations, skew_iters) + f"""
    mov rax, 0x9e3779b97f4a7c15
    mov rbx, 1
{prefix}_loop:
    imul rbx, 6364136223846793005
    add rbx, 1442695040888963407
    mov rdx, rbx
    shr rdx, 33
    xor rbx, rdx
    add rax, rbx
    sub rcx, 1
    cmp rcx, 0
    jnz {prefix}_loop
"""


def _stream(prefix: str, iterations: int, buf: str, buf_bytes: int,
           skew_iters: int = 0) -> str:
    # One iteration touches one element; the pointer wraps at buffer end.
    return _iter_header(prefix, iterations, skew_iters) + f"""
    mov rdi, rbp
    mov rdx, rbp
    add rdx, {buf_bytes}
{prefix}_loop:
    ld rax, [rdi]
    add rax, rcx
    st [rdi], rax
    add rdi, 8
    cmp rdi, rdx
    jb {prefix}_nowrap
    mov rdi, rbp
{prefix}_nowrap:
    sub rcx, 1
    cmp rcx, 0
    jnz {prefix}_loop
"""


def _pointer_chase(prefix: str, iterations: int, buf: str, buf_bytes: int,
                  skew_iters: int = 0) -> str:
    # LCG index generator scatters accesses across the buffer.
    mask = max(buf_bytes // 8, 2) - 1  # elements must be a power of two
    return _iter_header(prefix, iterations, skew_iters) + f"""
    mov rbx, 12345
{prefix}_loop:
    imul rbx, 2862933555777941757
    add rbx, 3037000493
    mov rdx, rbx
    shr rdx, 17
    and rdx, {mask}
    shl rdx, 3
    add rdx, rbp
    ld rax, [rdx]
    add rax, 1
    st [rdx], rax
    sub rcx, 1
    cmp rcx, 0
    jnz {prefix}_loop
"""


def _branchy(prefix: str, iterations: int, buf: str, buf_bytes: int,
            skew_iters: int = 0) -> str:
    return _iter_header(prefix, iterations, skew_iters) + f"""
    mov rbx, 98765
    mov rax, 0
{prefix}_loop:
    imul rbx, 6364136223846793005
    add rbx, 1442695040888963407
    mov rdx, rbx
    shr rdx, 60
    cmp rdx, 8
    jl {prefix}_low
    add rax, 3
    jmp {prefix}_next
{prefix}_low:
    cmp rdx, 4
    jl {prefix}_lower
    add rax, 2
    jmp {prefix}_next
{prefix}_lower:
    add rax, 1
{prefix}_next:
    sub rcx, 1
    cmp rcx, 0
    jnz {prefix}_loop
"""


def _fpkernel(prefix: str, iterations: int, buf: str, buf_bytes: int,
             skew_iters: int = 0) -> str:
    return _iter_header(prefix, iterations, skew_iters) + f"""
    fmov xmm0, 1.000000119
    fmov xmm1, 0.999999881
    fmov xmm2, 1.5
{prefix}_loop:
    fmul xmm2, xmm0
    fadd xmm2, xmm1
    fmul xmm2, xmm1
    fsub xmm2, xmm1
    sub rcx, 1
    cmp rcx, 0
    jnz {prefix}_loop
"""


def _divide(prefix: str, iterations: int, buf: str, buf_bytes: int,
           skew_iters: int = 0) -> str:
    return _iter_header(prefix, iterations, skew_iters) + f"""
    mov rax, 0xfffffffffffffffb
{prefix}_loop:
    mov rbx, rcx
    add rbx, 3
    div rax, rbx
    add rax, 0x123456789abcdef
    sub rcx, 1
    cmp rcx, 0
    jnz {prefix}_loop
"""


PHASE_KERNELS: Dict[str, Callable[[str, int, str, int], str]] = {
    "compute": _compute,
    "stream": _stream,
    "pointer_chase": _pointer_chase,
    "branchy": _branchy,
    "fpkernel": _fpkernel,
    "divide": _divide,
}


def phase_source(kernel: str, prefix: str, iterations: int,
                 buf_label: str, buf_bytes: int,
                 skew_iters: int = 0) -> str:
    """Generate the assembly for one phase.

    *prefix* must be unique per phase instance (label namespace); the
    thread's buffer base is expected in rbp and its index in r15.  A
    nonzero *skew_iters* adds that many iterations per thread index
    (OpenMP-style trip-count imbalance).
    """
    if kernel not in PHASE_KERNELS:
        raise KeyError("unknown phase kernel %r" % kernel)
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    return PHASE_KERNELS[kernel](prefix, iterations, buf_label, buf_bytes,
                                 skew_iters)
