"""Irregular multi-threaded workloads for LoopPoint evaluation.

The SPMD builder in :mod:`repro.workloads.builder` models OpenMP-style
programs: every thread runs the same phase schedule between barriers.
LoopPoint's motivation is the workloads that model does *not* cover —
programs whose threads make unequal, schedule-dependent progress, so a
global instruction count is a poor clock.  This module generates three
such shapes directly as PX assembly:

``producer_consumer``
    One producer publishes items into a buffer; consumer threads claim
    items with an atomic ticket counter and pause-spin until their item
    is published.  Item processing dispatches on the item index to one
    of three kernels with very different CPI (integer mixing, divide
    chains, scattered memory chases), so the program has real phases.
    A ``spin_delay`` knob inserts a pause-loop in the producer between
    items: raising it stretches the consumers' wait time without adding
    a single instruction of real work, which is the scenario where
    instruction counts mislead and marker counts do not.

``barrier_phases``
    SPMD phases separated by active-wait barriers; phases cycle through
    the three kernels, and a *straggler* (thread 0 running a
    ``spin_delay`` pause-loop before each barrier) makes every other
    thread spin proportionally longer.  Again the real work is
    independent of the knob.

``work_stealing``
    Threads race on a shared task counter (xadd); a task's kernel and
    size depend irregularly on its index, so the per-thread work split
    is schedule-dependent.  Finished workers futex-wake the main
    thread, which futex-waits on per-worker completion flags.

All three keep the machine's deterministic-scheduling invariant: for a
fixed seed the interleaving, and therefore every profile, is exactly
reproducible — while *across* seeds the spin time (and therefore every
icount-based boundary) shifts, which is what the LoopPoint-vs-SimPoint
benchmark measures.  The synchronization idioms are the ones the
LoopPoint harvester classifies as *sync* (``pause`` spin bodies, futex
wait loops), so varying ``spin_delay`` must leave the work-marker
vectors near-identical — that property is tested directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.workloads.compile import build_executable

#: Same input-set scaling the SPEC-like suites use.
from repro.workloads.spec import INPUT_SCALES

#: Mixing constants for the integer work loops (splitmix64 / MMIX).
_MIX_A = 0x9E3779B97F4A7C15
_MIX_B = 6364136223846793005
_MIX_C = 1442695040888963407

_DATA_BASE = 0x600000
_STACK_BYTES = 8192
#: Shared scatter buffer for the memory-chase kernel (power of two).
_WBUF_BYTES = 1 << 16
_WBUF_MASK = (_WBUF_BYTES // 8) - 1


def _spawn(worker: int, entry: str) -> List[str]:
    """Clone one worker thread onto its generated stack."""
    return [
        "    mov rax, 56",
        "    mov rdi, 0x100",
        "    mov rsi, wstack_%d_top" % worker,
        "    mov rdx, %s" % entry,
        "    syscall",
    ]


def _stack_data(worker: int) -> List[str]:
    return ["wstack_%d:" % worker,
            "    .zero %d" % _STACK_BYTES,
            "wstack_%d_top:" % worker,
            "    .quad 0"]


def _pause_delay(label: str, count: int) -> List[str]:
    """A pure pause-spin delay loop; harvested as a *spin* marker.

    Emitted even for ``count == 0`` (skipped at runtime) so the static
    marker map — and every marker offset — is identical across
    ``spin_delay`` values; only dynamic spin time varies.
    """
    return [
        "    mov rcx, %d" % count,
        "    cmp rcx, 0",
        "    jz %s_done" % label,
        "%s:" % label,
        "    pause",
        "    sub rcx, 1",
        "    cmp rcx, 0",
        "    jnz %s" % label,
        "%s_done:" % label,
    ]


# -- the three work kernels (distinct CPI; all are *work* markers) ----------


def _mix_loop(label: str) -> List[str]:
    """Register-only integer mixing; CPI near 1."""
    return [
        "%s:" % label,
        "    imul rbx, %d" % _MIX_B,
        "    add rbx, %d" % _MIX_C,
        "    mov rdx, rbx",
        "    shr rdx, 33",
        "    xor rbx, rdx",
        "    sub rcx, 1",
        "    cmp rcx, 0",
        "    jnz %s" % label,
    ]


def _div_loop(label: str) -> List[str]:
    """Integer-division chain; very high CPI."""
    return [
        "    mov rax, 0xfffffffffffffffb",
        "%s:" % label,
        "    mov rbx, rcx",
        "    add rbx, 3",
        "    div rax, rbx",
        "    add rax, %d" % _MIX_C,
        "    sub rcx, 1",
        "    cmp rcx, 0",
        "    jnz %s" % label,
    ]


def _chase_loop(label: str) -> List[str]:
    """LCG-scattered loads/stores over the shared buffer; miss-bound
    CPI between the other two."""
    return [
        "    mov rsi, wbuf",
        "%s:" % label,
        "    imul rbx, 2862933555777941757",
        "    add rbx, 3037000493",
        "    mov rdx, rbx",
        "    shr rdx, 17",
        "    and rdx, %d" % _WBUF_MASK,
        "    shl rdx, 3",
        "    add rdx, rsi",
        "    ld rax, [rdx]",
        "    add rax, 1",
        "    st [rdx], rax",
        "    sub rcx, 1",
        "    cmp rcx, 0",
        "    jnz %s" % label,
    ]


_KERNELS = (_mix_loop, _div_loop, _chase_loop)


def _dispatch_work(prefix: str, count: Optional[int],
                   index_reg: str) -> List[str]:
    """Run ``count`` iterations of the kernel picked by ``index_reg & 3``
    (0, 1 -> mix; 2 -> divide; 3 -> chase): runtime-irregular work.
    ``count=None`` means the caller already loaded rcx."""
    lines = ([] if count is None else ["    mov rcx, %d" % count]) + [
        "    mov rbx, %s" % index_reg,
        "    add rbx, %d" % _MIX_A,
        "    mov rdx, %s" % index_reg,
        "    and rdx, 3",
        "    cmp rdx, 2",
        "    jl %s_mix_entry" % prefix,
        "    jz %s_div_entry" % prefix,
        "    jmp %s_chase_entry" % prefix,
        "%s_mix_entry:" % prefix,
    ]
    lines += _mix_loop("%s_mix" % prefix)
    lines += ["    jmp %s_done" % prefix, "%s_div_entry:" % prefix]
    lines += _div_loop("%s_div" % prefix)
    lines += ["    jmp %s_done" % prefix, "%s_chase_entry:" % prefix]
    lines += _chase_loop("%s_chase" % prefix)
    lines += ["%s_done:" % prefix]
    return lines


def _futex_join(workers: int) -> List[str]:
    """Main-thread join: futex-wait until each worker posts its flag.

    The wait loop body contains ``mov rax, 202`` + ``syscall``, the
    futex idiom the harvester classifies as *futex* sync.
    """
    lines: List[str] = []
    for worker in range(1, workers + 1):
        lines += [
            "join_wait_%d:" % worker,
            "    ld rax, [dflag_%d]" % worker,
            "    cmp rax, 0",
            "    jnz join_done_%d" % worker,
            "    mov rax, 202",
            "    mov rdi, dflag_%d" % worker,
            "    mov rsi, 0",
            "    mov rdx, 0",
            "    syscall",
            "    jmp join_wait_%d" % worker,
            "join_done_%d:" % worker,
        ]
    return lines


def _worker_exit_via_flag() -> List[str]:
    """Worker epilogue: post the per-thread flag (indexed by r15) and
    futex-wake the joiner, then exit."""
    return [
        "    mov rdi, dflag_0",
        "    mov rax, r15",
        "    shl rax, 3",
        "    add rdi, rax",
        "    mov rcx, 1",
        "    st [rdi], rcx",
        "    mov rax, 202",
        "    mov rsi, 1",
        "    mov rdx, 1",
        "    syscall",
        "    mov rax, 60",
        "    mov rdi, 0",
        "    syscall",
    ]


def _flag_data(workers: int) -> List[str]:
    # Contiguous 8-byte flags so workers can index them by thread id.
    lines = []
    for worker in range(workers + 1):
        lines += ["dflag_%d:" % worker, "    .quad 0"]
    return lines


def _common_data(app: "MTApp") -> List[str]:
    data = ["wbuf:", "    .zero %d" % _WBUF_BYTES]
    data += _flag_data(app.threads - 1)
    for worker in range(1, app.threads):
        data += _stack_data(worker)
    return data


# ---------------------------------------------------------------------------
# producer / consumer


def _producer_consumer(app: "MTApp", scale: float) -> Tuple[str, str]:
    items = max(1, int(app.items * scale))
    work = max(1, int(app.work_iters * scale))
    consumers = app.threads - 1
    code: List[str] = ["_start:"]
    for worker in range(1, app.threads):
        code += _spawn(worker, "consumer_%d" % worker)
    code += ["    mov r15, 0",
             "    mov r14, 0"]
    # producer: publish `items` items, each preceded by real work and
    # followed by the spin_delay pause loop (sync, not work)
    code += [
        "prod_loop:",
        "    cmp r14, %d" % items,
        "    jae prod_done",
        "    mov rcx, %d" % work,
        "    mov rbx, r14",
        "    add rbx, %d" % _MIX_A,
    ]
    code += _chase_loop("prod_work")
    code += _pause_delay("prod_delay", app.spin_delay)
    code += [
        "    mov rdi, published",
        "    mov rax, 1",
        "    xadd [rdi], rax",
        "    add r14, 1",
        "    jmp prod_loop",
        "prod_done:",
    ]
    code += _futex_join(consumers)
    code += ["    mov rax, 231", "    mov rdi, 0", "    syscall"]

    for worker in range(1, app.threads):
        code += [
            "consumer_%d:" % worker,
            "    mov r15, %d" % worker,
            "cons_loop_%d:" % worker,
            "    mov rdi, claim",
            "    mov rax, 1",
            "    xadd [rdi], rax",
            "    cmp rax, %d" % items,
            "    jae cons_done_%d" % worker,
            "    mov r13, rax",
            "    add r13, 1",
            # pause-spin until the claimed item is published (sync)
            "cons_wait_%d:" % worker,
            "    ld rcx, [published]",
            "    cmp rcx, r13",
            "    jae cons_go_%d" % worker,
            "    pause",
            "    jmp cons_wait_%d" % worker,
            "cons_go_%d:" % worker,
        ]
        code += _dispatch_work("cons_%d" % worker, work, "r13")
        code += ["    jmp cons_loop_%d" % worker,
                 "cons_done_%d:" % worker]
        code += _worker_exit_via_flag()

    data: List[str] = ["claim:", "    .quad 0",
                       "published:", "    .quad 0"]
    data += _common_data(app)
    return "\n".join(code), "\n".join(data)


# ---------------------------------------------------------------------------
# barrier phases with a straggler


def _barrier_phases(app: "MTApp", scale: float) -> Tuple[str, str]:
    iters = max(1, int(app.work_iters * scale))
    code: List[str] = ["_start:"]
    for worker in range(1, app.threads):
        code += _spawn(worker, "bworker_%d" % worker)
    code += ["    mov r15, 0", "    jmp bbody"]
    for worker in range(1, app.threads):
        code += ["bworker_%d:" % worker,
                 "    mov r15, %d" % worker,
                 "    jmp bbody"]
    code += ["bbody:"]
    for phase in range(app.phases):
        # cycle the kernels so consecutive phases differ sharply in CPI
        kernel = _KERNELS[phase % len(_KERNELS)]
        phase_iters = iters * (1 + phase % 2)
        code += ["    mov rcx, %d" % phase_iters,
                 "    mov rbx, r15",
                 "    add rbx, %d" % (_MIX_A + phase)]
        code += kernel("ph%d_work" % phase)
        # the straggler: only thread 0 delays, everyone else spins at
        # the barrier for the corresponding extra time
        code += ["    cmp r15, 0",
                 "    jnz ph%d_nodelay" % phase]
        code += _pause_delay("ph%d_straggle" % phase, app.spin_delay)
        code += ["ph%d_nodelay:" % phase,
                 "    call barrier_%d" % phase]
    code += [
        "    cmp r15, 0",
        "    jz bmain_exit",
        "    mov rax, 60",
        "    mov rdi, 0",
        "    syscall",
        "bmain_exit:",
        "    mov rax, 231",
        "    mov rdi, 0",
        "    syscall",
    ]
    for phase in range(app.phases):
        # the builder's active-wait idiom: xadd arrival + pause spin
        code += [
            "barrier_%d:" % phase,
            "    mov rdx, bar_%d_count" % phase,
            "    mov rax, 1",
            "    xadd [rdx], rax",
            "bar_%d_spin:" % phase,
            "    ld rax, [rdx]",
            "    cmp rax, %d" % app.threads,
            "    jae bar_%d_exit" % phase,
            "    pause",
            "    jmp bar_%d_spin" % phase,
            "bar_%d_exit:" % phase,
            "    ret",
        ]
    data: List[str] = []
    for phase in range(app.phases):
        data += ["bar_%d_count:" % phase, "    .quad 0"]
    data += _common_data(app)
    return "\n".join(code), "\n".join(data)


# ---------------------------------------------------------------------------
# work stealing


def _work_stealing(app: "MTApp", scale: float) -> Tuple[str, str]:
    tasks = max(1, int(app.items * scale))
    iters = max(1, int(app.work_iters * scale))
    code: List[str] = ["_start:"]
    for worker in range(1, app.threads):
        code += _spawn(worker, "sworker_%d" % worker)
    code += ["    mov r15, 0", "    jmp steal"]
    for worker in range(1, app.threads):
        code += ["sworker_%d:" % worker,
                 "    mov r15, %d" % worker,
                 "    jmp steal"]
    # shared stealing loop: every thread races on the task counter, and
    # a task's kernel and size depend irregularly on its index, so
    # which thread ends up with how much work is schedule-dependent
    code += [
        "steal:",
        "steal_loop:",
        "    mov rdi, taskctr",
        "    mov rax, 1",
        "    xadd [rdi], rax",
        "    cmp rax, %d" % tasks,
        "    jae steal_done",
        "    mov r13, rax",
    ]
    # claim backoff: a pause-loop after winning the ticket, modelling
    # contention on a shared task queue.  Pure synchronization — the
    # pause body makes the harvester classify both this loop and the
    # enclosing steal_loop as sync, so varying spin_delay perturbs
    # every icount in the program without touching the work markers
    # (the task kernels) or their crossing counts.
    code += _pause_delay("sback", app.spin_delay)
    code += [
        "    mov rcx, r13",
        "    and rcx, 7",
        "    add rcx, 1",
        "    imul rcx, %d" % iters,
    ]
    code += _dispatch_work("task", None, "r13")
    code += [
        "    jmp steal_loop",
        "steal_done:",
        "    cmp r15, 0",
        "    jz smain_join",
    ]
    code += _worker_exit_via_flag()
    code += ["smain_join:"]
    code += _futex_join(app.threads - 1)
    code += ["    mov rax, 231", "    mov rdi, 0", "    syscall"]
    data: List[str] = ["taskctr:", "    .quad 0"]
    data += _common_data(app)
    return "\n".join(code), "\n".join(data)


_GENERATORS = {
    "producer_consumer": _producer_consumer,
    "barrier_phases": _barrier_phases,
    "work_stealing": _work_stealing,
}


@dataclass(frozen=True)
class MTApp:
    """One irregular-MT workload, buildable like a :class:`SpecApp`."""

    name: str
    kind: str                 # key into _GENERATORS
    threads: int = 4
    #: Items (producer/consumer) or tasks (work stealing).
    items: int = 48
    #: Inner work-loop iterations per item / task / phase unit.
    work_iters: int = 160
    #: Barrier-phase count (barrier_phases only).
    phases: int = 6
    #: Pause-loop iterations of pure synchronization delay.  Varying
    #: this changes spin time only — never the work-marker offsets or
    #: the amount of real work.
    spin_delay: int = 0

    def with_spin_delay(self, spin_delay: int) -> "MTApp":
        return replace(self, spin_delay=spin_delay)

    def source(self, input_set: str = "train") -> Tuple[str, str]:
        """(code, data) assembly for an input set."""
        scale = INPUT_SCALES[input_set]
        return _GENERATORS[self.kind](self, scale)

    def build(self, input_set: str = "train") -> bytes:
        code, data = self.source(input_set)
        return build_executable(code, data_source=data + "\n",
                                data_base=_DATA_BASE)

    def estimated_instructions(self, input_set: str = "train") -> int:
        scale = INPUT_SCALES[input_set]
        per_item = max(1, int(self.work_iters * scale)) * 8
        if self.kind == "barrier_phases":
            return per_item * self.phases * 2 * self.threads
        return max(1, int(self.items * scale)) * per_item * 2


#: The irregular-MT suite; resolvable through ``workloads.get_app``.
MT_APPS: Dict[str, MTApp] = {
    app.name: app
    for app in [
        MTApp(name="mt.prodcons", kind="producer_consumer",
              threads=4, items=48, work_iters=160, spin_delay=40),
        MTApp(name="mt.barrier", kind="barrier_phases",
              threads=4, work_iters=220, phases=6, spin_delay=120),
        MTApp(name="mt.steal", kind="work_stealing",
              threads=4, items=56, work_iters=90, spin_delay=80),
    ]
}


def get_mt_app(name: str) -> MTApp:
    if name not in MT_APPS:
        raise KeyError("unknown MT workload %r" % name)
    return MT_APPS[name]
