"""Workload construction: PX program building and SPEC-like suites.

The paper evaluates on SPEC CPU2006/2017, which cannot ship with this
reproduction; instead :mod:`repro.workloads.spec` defines synthetic
multi-phase programs named after the apps used in each experiment, built
from the phase kernels in :mod:`repro.workloads.phases` through the
:class:`~repro.workloads.builder.ProgramBuilder`.
"""

from repro.workloads.compile import build_executable, compile_program, run_program
from repro.workloads.builder import ProgramBuilder, PhaseSpec
from repro.workloads.phases import PHASE_KERNELS, phase_source
from repro.workloads.spec import (
    SpecApp,
    SPEC2017_INT_RATE,
    SPEC2017_FP_RATE,
    SPEC2017_OMP_SPEED,
    SPEC2006_SUBSET,
    get_app,
)
from repro.workloads.mt import MTApp, MT_APPS, get_mt_app

__all__ = [
    "build_executable",
    "compile_program",
    "run_program",
    "ProgramBuilder",
    "PhaseSpec",
    "PHASE_KERNELS",
    "phase_source",
    "SpecApp",
    "SPEC2017_INT_RATE",
    "SPEC2017_FP_RATE",
    "SPEC2017_OMP_SPEED",
    "SPEC2006_SUBSET",
    "get_app",
    "MTApp",
    "MT_APPS",
    "get_mt_app",
]
