"""Convenience pipeline: PX assembly source -> ELF executable -> run.

This is the "GCC -O2" of the reproduction: it turns assembly text into a
statically linked PX ELF executable with conventional ``.text`` and
``.data`` placement, ready for the loader, the PinPlay logger, or any of
the simulators.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.elf.structs import SHF_ALLOC, SHF_EXECINSTR, SHF_WRITE
from repro.elf.writer import ElfBuilder
from repro.isa.assembler import AssembledProgram, Assembler
from repro.machine.loader import LoadedImage, load_elf
from repro.machine.machine import ExitStatus, Machine
from repro.machine.memory import PROT_READ, PROT_EXEC, PROT_RW, page_align_up
from repro.machine.vfs import FileSystem

#: Conventional load addresses (mirroring Linux x86-64 binaries).
DEFAULT_TEXT_BASE = 0x400000
DEFAULT_DATA_BASE = 0x600000


def compile_program(source: str, data_source: str = "",
                    text_base: int = DEFAULT_TEXT_BASE,
                    data_base: int = DEFAULT_DATA_BASE,
                    ) -> Tuple[AssembledProgram, Optional[AssembledProgram]]:
    """Assemble code (and optional data) at their load addresses.

    Labels in *source* may reference labels in *data_source* and vice
    versa is **not** supported — keep data labels in the data source and
    reference them from code.  For single-blob programs just pass
    everything in *source*.
    """
    if not data_source:
        return Assembler(base=text_base).add(source).assemble(), None
    # Two-region assembly: assemble data first so code can reference its
    # labels through a shared assembler symbol table.
    joint = Assembler(base=text_base)
    joint.add(source)
    code_size = joint.current_offset
    pad = data_base - text_base - code_size
    if pad < 0:
        raise ValueError("code overflows into the data region")
    joint.emit_bytes(b"\x00" * pad)
    joint.add(data_source)
    program = joint.assemble()
    split = data_base - text_base
    code = AssembledProgram(
        base=text_base, code=program.code[:code_size],
        labels={k: v for k, v in program.labels.items() if v < data_base},
        relocs=[off for off in program.relocs if off < code_size],
    )
    data = AssembledProgram(
        base=data_base,
        code=program.code[split:],
        labels={k: v for k, v in program.labels.items() if v >= data_base},
        relocs=[off - split for off in program.relocs if off >= split],
    )
    return code, data


def build_executable(source: str, data_source: str = "",
                     entry_label: str = "_start",
                     text_base: int = DEFAULT_TEXT_BASE,
                     data_base: int = DEFAULT_DATA_BASE,
                     bss_pages: int = 4) -> bytes:
    """Assemble *source* and produce a statically linked ELF executable.

    The code lands in an executable ``.text`` section at *text_base*;
    *data_source* (if any) lands in a writable ``.data`` at *data_base*.
    A zeroed ``.bss`` of *bss_pages* pages follows ``.data`` for scratch
    space.  The entry point is *entry_label* (default ``_start``).
    """
    code, data = compile_program(source, data_source, text_base, data_base)
    all_labels = dict(code.labels)
    if data is not None:
        all_labels.update(data.labels)
    if entry_label not in all_labels:
        raise ValueError("entry label %r not defined" % entry_label)
    builder = ElfBuilder(entry=all_labels[entry_label])
    builder.add_section(
        ".text", code.code, addr=text_base,
        flags=SHF_ALLOC | SHF_EXECINSTR, align=16,
        prot=PROT_READ | PROT_EXEC,
    )
    if data is not None and data.code:
        builder.add_section(
            ".data", data.code, addr=data_base,
            flags=SHF_ALLOC | SHF_WRITE, align=16, prot=PROT_RW,
        )
        bss_base = page_align_up(data_base + len(data.code))
    else:
        bss_base = page_align_up(text_base + len(code.code)) + 0x1000
    if bss_pages:
        builder.add_section(
            ".bss", b"\x00" * (bss_pages * 4096), addr=bss_base,
            flags=SHF_ALLOC | SHF_WRITE, align=4096, prot=PROT_RW,
        )
        all_labels["__bss_start"] = bss_base
    reloc_vaddrs = [text_base + off for off in code.relocs]
    if data is not None:
        reloc_vaddrs.extend(data_base + off for off in data.relocs)
    builder.add_relocations(reloc_vaddrs)
    for name, value in sorted(all_labels.items()):
        builder.add_symbol(name, value)
    return builder.build()


def run_program(image: bytes, seed: int = 0,
                argv: Optional[Sequence[str]] = None,
                fs: Optional[FileSystem] = None,
                max_instructions: Optional[int] = None,
                root: str = "/",
                aslr_seed: Optional[int] = None,
                ) -> Tuple[Machine, ExitStatus, LoadedImage]:
    """Load an ELF image into a fresh machine and run it.

    Returns (machine, exit status, loaded image) for inspection.
    """
    machine = Machine(seed=seed, fs=fs, root=root)
    loaded = load_elf(machine, image, argv=argv, aslr_seed=aslr_seed)
    status = machine.run(max_instructions=max_instructions)
    return machine, status, loaded
