"""JSON-lines run manifests: one record per job, for observability.

A campaign appends one record per finished job (including cache hits
and failures) to a ``.jsonl`` file.  Records are flat dicts so the file
greps and ``jq``s well::

    {"job": "502.gcc_r/log0", "stage": "log", "state": "ok",
     "cache": "miss", "wall_s": 1.84, "worker": 512, "attempts": 1, ...}

``state`` is ``ok`` | ``failed`` | ``blocked`` (an upstream dependency
failed); ``cache`` is ``hit`` | ``miss`` | ``none`` (uncached job).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

Record = Dict[str, Any]


class RunManifest:
    """Appends job records to a JSON-lines file as they complete."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # truncate: one manifest describes one campaign run
        with open(path, "w"):
            pass

    def append(self, record: Record) -> None:
        record = dict(record)
        record.setdefault("ts", time.time())
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_manifest(path: str) -> List[Record]:
    records: List[Record] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_manifest(records: List[Record]) -> Dict[str, Any]:
    """Aggregate counts a campaign prints after a run."""
    summary: Dict[str, Any] = {
        "jobs": len(records),
        "ok": 0, "failed": 0, "blocked": 0,
        "cache_hits": 0, "cache_misses": 0,
        "retries": 0,
        "executed_wall_s": 0.0,
        "executed_icount": 0,
        "interp_wall_s": 0.0,
        "mips": 0.0,
        "workers": set(),
        "stages": {},
    }
    for record in records:
        state = record.get("state", "")
        if state in summary:
            summary[state] += 1
        cache = record.get("cache")
        if cache == "hit":
            summary["cache_hits"] += 1
        elif cache == "miss":
            summary["cache_misses"] += 1
        summary["retries"] += max(0, record.get("attempts", 1) - 1)
        if cache != "hit" and record.get("wall_s"):
            summary["executed_wall_s"] += record["wall_s"]
        if record.get("worker"):
            summary["workers"].add(record["worker"])
        stage = record.get("stage") or "other"
        per_stage = summary["stages"].setdefault(
            stage, {"jobs": 0, "hits": 0, "executed": 0, "wall_s": 0.0,
                    "icount": 0, "mips": 0.0})
        per_stage["jobs"] += 1
        if cache == "hit":
            per_stage["hits"] += 1
        elif state == "ok":
            per_stage["executed"] += 1
        if cache != "hit" and record.get("wall_s"):
            per_stage["wall_s"] += record["wall_s"]
            # Interpreter MIPS: only jobs that report an executed icount
            # contribute, and their wall time is pooled separately so
            # non-interpreting stages don't dilute the rate.
            icount = record.get("icount")
            if icount:
                per_stage["icount"] += icount
                summary["executed_icount"] += icount
                summary["interp_wall_s"] += record["wall_s"]
    summary["workers"] = sorted(summary["workers"])
    summary["executed_wall_s"] = round(summary["executed_wall_s"], 4)
    summary["interp_wall_s"] = round(summary["interp_wall_s"], 4)
    if summary["interp_wall_s"]:
        summary["mips"] = round(
            summary["executed_icount"] / summary["interp_wall_s"] / 1e6, 3)
    for per_stage in summary["stages"].values():
        per_stage["wall_s"] = round(per_stage["wall_s"], 4)
        if per_stage["icount"] and per_stage["wall_s"]:
            per_stage["mips"] = round(
                per_stage["icount"] / per_stage["wall_s"] / 1e6, 3)
    return summary


def executed_jobs(records: List[Record],
                  stage: Optional[str] = None) -> List[Record]:
    """Records of jobs that actually ran (not cache hits/blocked)."""
    return [record for record in records
            if record.get("state") == "ok" and record.get("cache") != "hit"
            and (stage is None or record.get("stage") == stage)]
