"""JSON-lines run manifests: one record per job, for observability.

A campaign appends one record per finished job (including cache hits
and failures) to a ``.jsonl`` file.  Records are flat dicts so the file
greps and ``jq``s well::

    {"job": "502.gcc_r/log0", "stage": "log", "state": "ok",
     "cache": "miss", "wall_s": 1.84, "worker": 512, "attempts": 1, ...}

``state`` is ``ok`` | ``failed`` | ``blocked`` (an upstream dependency
failed); ``cache`` is ``hit`` | ``miss`` | ``none`` (uncached job).

Appends are crash- and concurrency-safe: each record is written as one
``os.write`` to an ``O_APPEND`` descriptor, so concurrent writers never
interleave bytes within a line, and a killed writer leaves at most one
partial trailing line — which :func:`read_manifest` tolerates.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

Record = Dict[str, Any]


class RunManifest:
    """Appends job records to a JSON-lines file as they complete.

    ``resume`` keeps whatever is already in the file (several writers —
    e.g. service campaign clients — sharing one manifest); the default
    truncates, because one manifest normally describes one campaign run.
    """

    def __init__(self, path: str, resume: bool = False) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "a" if resume else "w"):
            pass

    def append(self, record: Record) -> None:
        record = dict(record)
        record.setdefault("ts", time.time())
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        # One O_APPEND write per record: POSIX appends are atomic with
        # respect to each other, so records from concurrent runners (or
        # a runner killed mid-append) never corrupt earlier lines.
        fd = os.open(self.path, os.O_RDWR | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            size = os.fstat(fd).st_size
            if size and os.pread(fd, 1, size - 1) != b"\n":
                # a killed writer left a torn tail: terminate it so this
                # record starts on a fresh line (the reader drops both
                # the torn fragment and any stray blank line)
                os.write(fd, b"\n")
            os.write(fd, line)
        finally:
            os.close(fd)


def read_manifest(path: str) -> List[Record]:
    """Parse a manifest, skipping an unparseable (torn) trailing line."""
    records: List[Record] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                # a writer died mid-append; the torn line carries no
                # completed job, so skipping it loses nothing
                continue
    return records


def summarize_manifest(records: List[Record]) -> Dict[str, Any]:
    """Aggregate counts a campaign prints after a run."""
    summary: Dict[str, Any] = {
        "jobs": len(records),
        "ok": 0, "failed": 0, "blocked": 0,
        "cache_hits": 0, "cache_misses": 0,
        "retries": 0,
        "executed_wall_s": 0.0,
        "executed_icount": 0,
        "interp_wall_s": 0.0,
        "mips": 0.0,
        "workers": set(),
        "stages": {},
    }
    for record in records:
        state = record.get("state", "")
        if state in summary:
            summary[state] += 1
        cache = record.get("cache")
        if cache == "hit":
            summary["cache_hits"] += 1
        elif cache == "miss":
            summary["cache_misses"] += 1
        summary["retries"] += max(0, record.get("attempts", 1) - 1)
        if cache != "hit" and record.get("wall_s"):
            summary["executed_wall_s"] += record["wall_s"]
        if record.get("worker"):
            summary["workers"].add(record["worker"])
        stage = record.get("stage") or "other"
        per_stage = summary["stages"].setdefault(
            stage, {"jobs": 0, "hits": 0, "executed": 0, "wall_s": 0.0,
                    "icount": 0, "mips": 0.0})
        per_stage["jobs"] += 1
        if cache == "hit":
            per_stage["hits"] += 1
        elif state == "ok":
            per_stage["executed"] += 1
        if cache != "hit" and record.get("wall_s"):
            per_stage["wall_s"] += record["wall_s"]
            # Interpreter MIPS: only jobs that report an executed icount
            # contribute, and their wall time is pooled separately so
            # non-interpreting stages don't dilute the rate.
            icount = record.get("icount")
            if icount:
                per_stage["icount"] += icount
                summary["executed_icount"] += icount
                summary["interp_wall_s"] += record["wall_s"]
    # workers are pids on the local path and names on the service path
    summary["workers"] = sorted(summary["workers"], key=str)
    summary["executed_wall_s"] = round(summary["executed_wall_s"], 4)
    summary["interp_wall_s"] = round(summary["interp_wall_s"], 4)
    if summary["interp_wall_s"]:
        summary["mips"] = round(
            summary["executed_icount"] / summary["interp_wall_s"] / 1e6, 3)
    for per_stage in summary["stages"].values():
        per_stage["wall_s"] = round(per_stage["wall_s"], 4)
        if per_stage["icount"] and per_stage["wall_s"]:
            per_stage["mips"] = round(
                per_stage["icount"] / per_stage["wall_s"] / 1e6, 3)
    return summary


def executed_jobs(records: List[Record],
                  stage: Optional[str] = None) -> List[Record]:
    """Records of jobs that actually ran (not cache hits/blocked)."""
    return [record for record in records
            if record.get("state") == "ok" and record.get("cache") != "hit"
            and (stage is None or record.get("stage") == stage)]
