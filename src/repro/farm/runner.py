"""The campaign runner: execute a job graph over a worker pool.

Scheduling rules:

- a job is *ready* once all dependencies completed successfully;
- ready jobs whose memoization key is present in the artifact store are
  **cache hits**: the stored result is served without executing;
- other ready jobs fan out across a ``multiprocessing`` pool
  (``jobs=N``, default ``os.cpu_count()``); ``jobs=1`` runs everything
  in-process, which is also the reference semantics the pool must match;
- a failing job is retried with capped exponential backoff, then marked
  ``failed``; jobs downstream of a failure are marked ``blocked``;
- every terminal state appends one record to the run manifest.

Results are held in the parent; jobs with a key are written to the
store as they complete, so the next campaign with unchanged keys is a
warm run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.farm.jobs import Job, JobGraph, resolve_refs
from repro.farm.manifest import RunManifest
from repro.farm.store import ArtifactStore, StoreCorruption
from repro.observe import hooks


class JobError(Exception):
    """A job exhausted its retries."""


class CampaignError(Exception):
    """One or more jobs failed (strict mode)."""

    def __init__(self, failures: Dict[str, str]) -> None:
        self.failures = failures
        lines = ["%s: %s" % (name, error)
                 for name, error in sorted(failures.items())]
        super().__init__("campaign failed: " + "; ".join(lines))


def _call_job(fn, args, kwargs, resume=None):
    """Worker-side wrapper: returns (worker pid, wall seconds, result)."""
    if resume is not None:
        # Seed the pool worker's process-global preemption context so
        # the job body resumes from the shipped checkpoint.
        from repro.snapshot import preempt
        preempt.GLOBAL.take_resume()  # drop any stale slot
        preempt.set_resume(resume)
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return os.getpid(), time.perf_counter() - start, result


def _job_icount(result: Any) -> Optional[int]:
    """Interpreter instructions executed to produce *result* (duck-typed).

    Recognizes the pipeline's artifact shapes: a profile carries
    ``total_icount``; a pinball's run ends at ``region.end`` global
    instructions; a single-pass log group (dict of pinballs) ran to the
    latest window end.  Returns ``None`` for results that required no
    interpretation (clustering, conversion, assembly).
    """
    if result is None:
        return None
    total = getattr(result, "total_icount", None)
    if isinstance(total, int) and total > 0:
        return total
    region = getattr(result, "region", None)
    if region is not None:
        end = getattr(region, "end", None)
        if isinstance(end, int) and end > 0:
            return end
    if isinstance(result, dict):
        icounts = [count for count in
                   (_job_icount(value) for value in result.values())
                   if count]
        if icounts:
            return max(icounts)
    return None


@dataclass
class _Pending:
    """Book-keeping for one submitted-but-unfinished job."""

    job: Job
    async_result: Any
    attempts: int
    submitted: float


@dataclass
class RunReport:
    """What :meth:`FarmRunner.run` observed, beyond the results dict."""

    states: Dict[str, str] = field(default_factory=dict)
    cache: Dict[str, str] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for value in self.cache.values() if value == "hit")


class FarmRunner:
    """Executes :class:`JobGraph`s with memoization, retries, fan-out."""

    def __init__(self, store: Optional[ArtifactStore] = None,
                 jobs: Optional[int] = None,
                 retries: int = 2,
                 backoff: float = 0.05,
                 max_backoff: float = 2.0,
                 manifest_path: Optional[str] = None,
                 preemptible: bool = False) -> None:
        self.store = store
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.manifest = RunManifest(manifest_path) if manifest_path else None
        #: cooperate with :mod:`repro.snapshot.preempt`: stop scheduling
        #: once a preemption is requested, persist checkpoints raised by
        #: job bodies under ``snap/<job key>``, and seed resumes from
        #: such artifacts on the next campaign of the same graph
        self.preemptible = preemptible
        self.report = RunReport()

    @staticmethod
    def snapshot_key(job_key: str) -> str:
        return "snap/" + job_key

    # -- manifest ----------------------------------------------------------

    def _record(self, job: Job, state: str, cache: str, wall_s: float,
                worker: Optional[int], attempts: int,
                error: str = "", icount: Optional[int] = None) -> None:
        self.report.states[job.name] = state
        self.report.cache[job.name] = cache
        if state != "ok":
            self.report.failures[job.name] = error or state
        wall = round(wall_s, 6)
        if self.manifest is not None:
            self.manifest.append({
                "job": job.name,
                "stage": job.stage,
                "selector": job.selector,
                "key": job.key,
                "state": state,
                "cache": cache,
                "wall_s": wall,
                "worker": worker,
                "attempts": attempts,
                "error": error,
                "icount": icount,
            })
        obs = hooks.OBS
        if obs.enabled:
            obs.count("farm.jobs")
            obs.count("farm.cache.%s" % cache)
            if attempts > 1:
                obs.count("farm.retries", attempts - 1)
            if state != "ok":
                obs.count("farm.%s" % state)
            if wall:
                # Executed jobs ran in a pool worker the tracer cannot
                # see; emit the span parent-side from the measured wall
                # time, so trace and manifest agree exactly.
                obs.observe("farm.job_wall_s", wall)
                obs.complete(job.name, wall,
                             cat="farm.%s" % (job.stage or "job"),
                             state=state, cache=cache, worker=worker,
                             attempts=attempts)

    # -- execution ---------------------------------------------------------

    def run(self, graph: JobGraph, strict: bool = True) -> Dict[str, Any]:
        """Run every job; returns ``{job name: result}``.

        With ``strict`` (default) raises :class:`CampaignError` after
        the graph drains if anything failed; non-strict returns the
        partial results.
        """
        self.report = RunReport()
        results: Dict[str, Any] = {}
        done: Dict[str, str] = {}          # name -> ok|failed|blocked
        inflight: Dict[str, _Pending] = {}
        retry_at: Dict[str, tuple] = {}    # name -> (when, attempts)
        pool = (multiprocessing.Pool(processes=self.jobs)
                if self.jobs > 1 else None)
        try:
            while True:
                progressed = self._schedule(graph, results, done,
                                            inflight, retry_at, pool)
                progressed |= self._collect(graph, results, done,
                                            inflight, retry_at, pool)
                remaining = [name for name in graph.order()
                             if name not in done]
                if not remaining and not inflight:
                    break
                if not progressed:
                    if inflight or retry_at:
                        time.sleep(0.003)
                    elif self._preempt_requested():
                        # drained: the rest of the campaign resumes from
                        # the store (results + checkpoints) next run
                        for name in remaining:
                            self._record(graph.jobs[name], "deferred",
                                         "none", 0.0, None, 0,
                                         "campaign preempted")
                            done[name] = "deferred"
                        break
                    else:
                        # jobs remain but none can ever become ready
                        for name in remaining:
                            self._record(graph.jobs[name], "blocked", "none",
                                         0.0, None, 0,
                                         "dependency never completed")
                            done[name] = "blocked"
                        break
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()
        if strict and self.report.failures:
            raise CampaignError(dict(self.report.failures))
        return results

    def _ready(self, graph: JobGraph, results: Dict[str, Any],
               done: Dict[str, str], inflight: Dict[str, _Pending],
               retry_at: Dict[str, tuple]) -> List[Job]:
        ready: List[Job] = []
        for name in graph.order():
            if name in done or name in inflight or name in retry_at:
                continue
            job = graph.jobs[name]
            dep_states = [done.get(dep) for dep in job.deps]
            if any(state in ("failed", "blocked") for state in dep_states):
                self._record(job, "blocked", "none", 0.0, None, 0,
                             "upstream failure: %s" % ", ".join(
                                 dep for dep in job.deps
                                 if done.get(dep) in ("failed", "blocked")))
                done[name] = "blocked"
                continue
            if all(state == "ok" for state in dep_states):
                ready.append(job)
        return ready

    def _preempt_requested(self) -> bool:
        if not self.preemptible:
            return False
        from repro.snapshot import preempt
        return preempt.requested()

    def _resume_snapshot(self, job: Job):
        """The parked checkpoint for *job*, if a prior run left one."""
        if not (self.preemptible and job.key and self.store is not None):
            return None
        snap_key = self.snapshot_key(job.key)
        try:
            if self.store.contains(snap_key):
                return self.store.get(snap_key)
        except StoreCorruption:
            self.store.delete(snap_key)
        return None

    def _save_preemption(self, job: Job, snapshot) -> None:
        if job.key and self.store is not None:
            self.store.put(self.snapshot_key(job.key), snapshot, "snapshot")

    def _schedule(self, graph, results, done, inflight, retry_at,
                  pool) -> bool:
        if self._preempt_requested():
            return False  # draining: collect in-flight work only
        progressed = False
        now = time.time()
        # resubmit due retries
        for name in list(retry_at):
            when, attempts = retry_at[name]
            if when <= now:
                del retry_at[name]
                job = graph.jobs[name]
                progressed |= self._launch(job, results, done, inflight,
                                           pool, attempts, graph)
        for job in self._ready(graph, results, done, inflight, retry_at):
            # cache lookup happens at schedule time, in the parent
            if job.key and self.store is not None and \
                    self.store.contains(job.key):
                try:
                    result = self.store.get(job.key)
                except StoreCorruption:
                    # a damaged entry must never poison a campaign:
                    # drop it and recompute
                    self.store.delete(job.key)
                else:
                    results[job.name] = result
                    done[job.name] = "ok"
                    self._record(job, "ok", "hit", 0.0, None, 0)
                    self._finish(job, result, graph, results)
                    progressed = True
                    continue
            progressed |= self._launch(job, results, done, inflight, pool,
                                       attempts=1, graph=graph)
        return progressed

    def _launch(self, job: Job, results, done, inflight, pool,
                attempts: int, graph) -> bool:
        args = resolve_refs(job.args, results)
        kwargs = resolve_refs(job.kwargs, results)
        resume = self._resume_snapshot(job)
        if pool is None or job.local:
            self._run_inline(job, args, kwargs, results, done, graph,
                             attempts, resume)
            return True
        async_result = pool.apply_async(_call_job,
                                        (job.fn, args, kwargs, resume))
        inflight[job.name] = _Pending(job=job, async_result=async_result,
                                      attempts=attempts,
                                      submitted=time.time())
        return True

    def _run_inline(self, job: Job, args, kwargs, results, done, graph,
                    attempts: int, resume=None) -> None:
        max_attempts = 1 + (job.retries if job.retries is not None
                            else self.retries)
        error = ""
        while attempts <= max_attempts:
            if resume is not None:
                from repro.snapshot import preempt
                preempt.GLOBAL.take_resume()
                preempt.set_resume(resume)
            start = time.perf_counter()
            try:
                result = job.fn(*args, **kwargs)
            except Exception as exc:
                if self.preemptible:
                    from repro.snapshot.preempt import Preempted
                    if isinstance(exc, Preempted):
                        self._save_preemption(job, exc.snapshot)
                        done[job.name] = "preempted"
                        self._record(job, "preempted",
                                     "miss" if job.key else "none",
                                     time.perf_counter() - start,
                                     os.getpid(), attempts, str(exc))
                        return
                error = "%s: %s" % (type(exc).__name__, exc)
                if attempts < max_attempts:
                    time.sleep(self._delay(attempts))
                attempts += 1
                continue
            wall = time.perf_counter() - start
            self._complete(job, result, wall, os.getpid(), attempts,
                           results, done, graph)
            return
        done[job.name] = "failed"
        self._record(job, "failed", "miss" if job.key else "none", 0.0,
                     os.getpid(), max_attempts, error)

    def _collect(self, graph, results, done, inflight, retry_at,
                 pool) -> bool:
        progressed = False
        for name in list(inflight):
            pending = inflight[name]
            if not pending.async_result.ready():
                continue
            del inflight[name]
            progressed = True
            job = pending.job
            try:
                worker, wall, result = pending.async_result.get()
            except Exception as exc:
                if self.preemptible:
                    from repro.snapshot.preempt import Preempted
                    if isinstance(exc, Preempted):
                        self._save_preemption(job, exc.snapshot)
                        done[name] = "preempted"
                        self._record(job, "preempted",
                                     "miss" if job.key else "none",
                                     0.0, None, pending.attempts, str(exc))
                        continue
                error = "%s: %s" % (type(exc).__name__, exc)
                max_attempts = 1 + (job.retries if job.retries is not None
                                    else self.retries)
                if pending.attempts < max_attempts:
                    retry_at[name] = (
                        time.time() + self._delay(pending.attempts),
                        pending.attempts + 1,
                    )
                else:
                    done[name] = "failed"
                    self._record(job, "failed",
                                 "miss" if job.key else "none",
                                 0.0, None, pending.attempts, error)
                continue
            self._complete(job, result, wall, worker, pending.attempts,
                           results, done, graph)
        return progressed

    def _delay(self, attempt: int) -> float:
        return min(self.backoff * (2 ** (attempt - 1)), self.max_backoff)

    def _complete(self, job: Job, result, wall: float, worker: int,
                  attempts: int, results, done, graph) -> None:
        if job.key and self.store is not None:
            self.store.put(job.key, result, job.kind)
            if self.preemptible:
                # the job settled: its resume checkpoint is garbage now
                self.store.delete(self.snapshot_key(job.key))
        results[job.name] = result
        done[job.name] = "ok"
        self._record(job, "ok", "miss" if job.key else "none", wall,
                     worker, attempts, icount=_job_icount(result))
        self._finish(job, result, graph, results)

    def _finish(self, job: Job, result, graph, results) -> None:
        if job.expand is not None:
            job.expand(result, graph, results)
