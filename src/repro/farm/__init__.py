"""The checkpoint farm: artifact store + parallel campaign runner.

The paper's economics depend on checkpoint reuse: pinballs and ELFies
are expensive to create (whole-program logging runs) but cheap to run,
so real deployments — e.g. the SPEC CPU2017 PinPoints release this
subsystem is modelled after — generate them once and share them.  This
package provides that substrate for the reproduction:

- :mod:`repro.farm.codec` — content-addressed encoding: pinball pages
  and ELFie image chunks deduplicated by SHA-256, stable digests for
  memoization keys,
- :mod:`repro.farm.store` — the on-disk block pool + artifact index
  with zlib compression, integrity verification on every read,
  ``gc`` and ``stats``,
- :mod:`repro.farm.jobs` — dependency-ordered job graphs with
  result references and dynamic expansion,
- :mod:`repro.farm.runner` — the executor: ``multiprocessing``
  fan-out, store-backed memoization (a re-run with unchanged keys is a
  cache hit), capped-backoff retries,
- :mod:`repro.farm.manifest` — JSON-lines run manifests (one record
  per job: key, state, cache hit/miss, wall time, worker, error).

The PinPoints campaign built on top lives in
:func:`repro.simpoint.run_pinpoints_campaign`; the ``farm run`` /
``farm stats`` / ``farm gc`` CLI subcommands expose it from the shell.
"""

from repro.farm.codec import sha256_hex, stable_digest
from repro.farm.jobs import Job, JobGraph, Ref
from repro.farm.manifest import (
    RunManifest,
    executed_jobs,
    read_manifest,
    summarize_manifest,
)
from repro.farm.runner import CampaignError, FarmRunner, RunReport
from repro.farm.store import (
    ArtifactStore,
    GCStats,
    StoreCorruption,
    StoreStats,
    build_record,
    open_store,
)

__all__ = [
    "sha256_hex",
    "stable_digest",
    "Job",
    "JobGraph",
    "Ref",
    "RunManifest",
    "read_manifest",
    "summarize_manifest",
    "executed_jobs",
    "FarmRunner",
    "RunReport",
    "CampaignError",
    "ArtifactStore",
    "StoreStats",
    "GCStats",
    "StoreCorruption",
    "build_record",
    "open_store",
]
