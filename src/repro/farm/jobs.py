"""Dependency-ordered job graphs for checkpoint campaigns.

A :class:`Job` is a picklable function plus arguments; arguments may
contain :class:`Ref` placeholders naming earlier jobs, which the runner
replaces with those jobs' results before execution.  Jobs carry an
optional memoization *key*: when the key is already present in the
artifact store, the runner serves the cached result instead of running
the function.

The graph is built in dependency order — a job's ``deps`` must already
be registered when it is added — which makes cycles unrepresentable.
Jobs added later (e.g. by a completed job's ``expand`` callback, the
mechanism PinPoints uses once clustering has decided how many regions
exist) obey the same rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass
class Ref:
    """Placeholder for a dependency's result inside ``Job.args``.

    ``select`` optionally post-processes the referenced result in the
    parent process (e.g. pick one pinball out of a logged group) before
    it is shipped to a worker.
    """

    job: str
    select: Optional[Callable[[Any], Any]] = None

    def resolve(self, results: Dict[str, Any]) -> Any:
        value = results[self.job]
        return self.select(value) if self.select is not None else value


def resolve_refs(value: Any, results: Dict[str, Any]) -> Any:
    """Recursively substitute :class:`Ref` placeholders in *value*."""
    if isinstance(value, Ref):
        return value.resolve(results)
    if isinstance(value, tuple):
        return tuple(resolve_refs(item, results) for item in value)
    if isinstance(value, list):
        return [resolve_refs(item, results) for item in value]
    if isinstance(value, dict):
        return {key: resolve_refs(item, results)
                for key, item in value.items()}
    return value


def iter_refs(value: Any) -> Iterator[Ref]:
    if isinstance(value, Ref):
        yield value
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from iter_refs(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_refs(item)


@dataclass
class Job:
    """One unit of campaign work."""

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Store memoization key; empty string disables caching.
    key: str = ""
    #: Codec kind the result is stored under ("" lets the store infer).
    kind: str = ""
    #: Names of jobs that must complete first.
    deps: Tuple[str, ...] = ()
    #: Per-job retry override (None uses the runner default).
    retries: Optional[int] = None
    #: Run in the parent process (for cheap assembly steps whose inputs
    #: are large — avoids shipping them through the pool).
    local: bool = False
    #: Pipeline stage label for the manifest ("profile", "log", ...).
    stage: str = ""
    #: Region-selector identity ("bbv-simpoint/v1", "looppoint/v1") for
    #: the manifest; campaigns also fold it into memo keys so artifacts
    #: from different selectors never collide in the store.
    selector: str = ""
    #: Parent-side callback ``expand(result, graph, results)`` invoked
    #: on completion (cache hits included); may add downstream jobs.
    expand: Optional[Callable[[Any, "JobGraph", Dict[str, Any]], None]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        implied = tuple(ref.job for ref in iter_refs((self.args, self.kwargs))
                        if ref.job not in self.deps)
        if implied:
            self.deps = self.deps + implied


class JobGraph:
    """An append-only DAG of jobs.

    Dependencies must exist when a job is added, so the add order is a
    topological order and the graph can never contain a cycle.
    """

    def __init__(self) -> None:
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []

    def add(self, job: Job) -> Job:
        if job.name in self.jobs:
            raise ValueError("duplicate job name %r" % job.name)
        for dep in job.deps:
            if dep not in self.jobs:
                raise ValueError("job %r depends on unknown job %r"
                                 % (job.name, dep))
        self.jobs[job.name] = job
        self._order.append(job.name)
        return job

    def __len__(self) -> int:
        return len(self.jobs)

    def __contains__(self, name: str) -> bool:
        return name in self.jobs

    def order(self) -> List[str]:
        """Job names in (a) topological order: the insertion order."""
        return list(self._order)

    def dependents(self, name: str) -> List[str]:
        return [job.name for job in self.jobs.values() if name in job.deps]
