"""The on-disk, content-addressed checkpoint-artifact store.

Layout under the store root::

    store.json             format marker
    blocks/<d2>/<digest>   zlib-compressed block contents
    objects/<k2>/<key>.json  artifact meta (kind + codec record + sizes)

Blocks are shared: two artifacts referencing the same page store it
once.  Every read decompresses the block and re-hashes it; a mismatch
against the addressed digest raises :class:`StoreCorruption`, so a
flipped bit on disk can never silently reach a simulation.

Writes are crash-safe in the usual content-addressed way: blocks are
written first (atomic rename, idempotent), the meta record last, so a
partially written artifact is simply absent.  ``gc`` mark-sweeps the
block pool against the live object set.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List

from repro.farm import codec
from repro.observe import hooks

_FORMAT = {"format": "repro-farm-store", "version": 1}

#: Temp files older than this are considered abandoned by a killed
#: writer and are reclaimed by ``gc`` (an active writer holds its temp
#: file for milliseconds, not minutes).
STALE_TMP_S = 300.0


class StoreCorruption(Exception):
    """An on-disk block or meta record failed integrity verification."""


@dataclass
class StoreStats:
    """Aggregate store statistics (the ``farm stats`` report)."""

    objects: int = 0
    objects_by_kind: Dict[str, int] = field(default_factory=dict)
    blocks: int = 0
    #: Bytes the artifacts describe (sum of referenced block sizes,
    #: counting shared blocks once per reference).
    logical_bytes: int = 0
    #: Raw bytes of the unique blocks (post-dedup, pre-compression).
    unique_bytes: int = 0
    #: Compressed bytes on disk (whole block pool, referenced or not).
    stored_bytes: int = 0
    #: Compressed on-disk bytes of the *referenced* blocks only — the
    #: consistent denominator for the compression ratio (stray blocks
    #: awaiting gc have no known raw size and would skew it).
    compressed_bytes: int = 0

    @property
    def dedup_ratio(self) -> float:
        """logical / unique: >1 means sharing is paying off."""
        return self.logical_bytes / self.unique_bytes if self.unique_bytes else 1.0

    @property
    def compression_ratio(self) -> float:
        """unique / compressed: raw-to-compressed factor over the
        referenced block pool."""
        if not self.compressed_bytes:
            return 1.0
        return self.unique_bytes / self.compressed_bytes

    def to_json(self) -> dict:
        return {
            "objects": self.objects,
            "objects_by_kind": dict(sorted(self.objects_by_kind.items())),
            "blocks": self.blocks,
            "logical_bytes": self.logical_bytes,
            "unique_bytes": self.unique_bytes,
            "stored_bytes": self.stored_bytes,
            "dedup_ratio": round(self.dedup_ratio, 3),
            "compression_ratio": round(self.compression_ratio, 3),
            "block_pool": {
                "raw_bytes": self.unique_bytes,
                "compressed_bytes": self.compressed_bytes,
                "compression_ratio": round(self.compression_ratio, 3),
            },
        }


@dataclass
class GCStats:
    """Result of a mark-sweep pass (real or ``dry_run``)."""

    live_blocks: int = 0
    removed_blocks: int = 0
    freed_bytes: int = 0
    removed_snapshots: int = 0
    dry_run: bool = False

    def to_json(self) -> dict:
        return {"live_blocks": self.live_blocks,
                "removed_blocks": self.removed_blocks,
                "freed_bytes": self.freed_bytes,
                "removed_snapshots": self.removed_snapshots,
                "dry_run": self.dry_run}


def build_record(key: str, kind: str, meta: dict,
                 blocks: Dict[str, bytes]) -> dict:
    """The meta record :meth:`ArtifactStore.put` writes for an artifact.

    Shared with the sharded store and the service's ``put-artifact``
    verb so every writer produces byte-identical records for identical
    content.
    """
    sizes = {digest: len(data) for digest, data in blocks.items()}
    return {
        "key": key,
        "kind": kind,
        "meta": meta,
        "block_sizes": sizes,
        "logical_bytes": sum(sizes[digest]
                             for digest in _referenced_digests(meta)),
    }


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class ArtifactStore:
    """A content-addressed repository for pinballs, ELFies and results."""

    def __init__(self, root: str, compress_level: int = 6) -> None:
        self.root = root
        self.compress_level = compress_level
        os.makedirs(self._blocks_dir, exist_ok=True)
        os.makedirs(self._objects_dir, exist_ok=True)
        marker = os.path.join(root, "store.json")
        if not os.path.exists(marker):
            _atomic_write(marker, json.dumps(_FORMAT).encode("utf-8"))

    # -- paths -------------------------------------------------------------

    @property
    def _blocks_dir(self) -> str:
        return os.path.join(self.root, "blocks")

    @property
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _block_path(self, digest: str) -> str:
        return os.path.join(self._blocks_dir, digest[:2], digest)

    def _meta_path(self, key: str) -> str:
        # keys may contain "/" (the service's run-scoped result keys);
        # they become sub-directories, but must never escape the store
        if not key or key.startswith(("/", ".")) or ".." in key.split("/"):
            raise ValueError("invalid store key %r" % key)
        return os.path.join(self._objects_dir, key[:2], key + ".json")

    # -- blocks ------------------------------------------------------------

    def _write_block(self, digest: str, data: bytes) -> None:
        path = self._block_path(digest)
        obs = hooks.OBS
        if os.path.exists(path):
            if obs.enabled:
                obs.count("store.blocks_deduped")
                obs.count("store.bytes_deduped", len(data))
            return  # content-addressed: existing contents are identical
        compressed = zlib.compress(data, self.compress_level)
        if obs.enabled:
            obs.count("store.blocks_written")
            obs.count("store.bytes_raw", len(data))
            obs.count("store.bytes_stored", len(compressed))
        _atomic_write(path, compressed)

    def _read_block(self, digest: str) -> bytes:
        obs = hooks.OBS
        if obs.enabled:
            obs.count("store.blocks_read")
        path = self._block_path(digest)
        try:
            with open(path, "rb") as handle:
                compressed = handle.read()
        except FileNotFoundError:
            raise StoreCorruption("missing block %s" % digest)
        try:
            data = zlib.decompress(compressed)
        except zlib.error as exc:
            self._drop_corrupt_block(path)
            raise StoreCorruption("block %s: %s" % (digest, exc))
        if codec.sha256_hex(data) != digest:
            self._drop_corrupt_block(path)
            raise StoreCorruption("block %s fails digest verification"
                                  % digest)
        return data

    @staticmethod
    def _drop_corrupt_block(path: str) -> None:
        """Unlink a block that failed verification.

        ``_write_block`` treats an existing file as authoritative (the
        content-addressed invariant), so a damaged block must leave the
        pool or a later re-put of the same content would be skipped and
        the corruption would persist.
        """
        try:
            os.unlink(path)
        except OSError:
            pass

    # Public block-level interface: the sharded store and the service's
    # artifact verbs route individual blocks by digest, so the per-shard
    # primitives must be reachable from outside this class.

    def has_block(self, digest: str) -> bool:
        return os.path.exists(self._block_path(digest))

    def write_block(self, digest: str, data: bytes) -> None:
        """Idempotent, atomic write of one verified raw block."""
        self._write_block(digest, data)

    def read_block(self, digest: str) -> bytes:
        """Read and integrity-verify one block (raises StoreCorruption)."""
        return self._read_block(digest)

    def remove_block(self, digest: str) -> bool:
        try:
            os.unlink(self._block_path(digest))
            return True
        except FileNotFoundError:
            return False

    def block_digests(self) -> Iterator[str]:
        """Digests of every block file in the pool."""
        return self._iter_block_files()

    def block_size(self, digest: str) -> int:
        return os.path.getsize(self._block_path(digest))

    # -- objects -----------------------------------------------------------

    def put(self, key: str, obj: Any, kind: str = "") -> str:
        """Store *obj* under *key*; returns the key.

        Overwrites an existing entry for the same key (blocks are
        content-addressed, so re-putting identical content is free).
        """
        kind, meta, blocks = codec.encode(obj, kind)
        for digest, data in blocks.items():
            self._write_block(digest, data)
        self.put_record(key, build_record(key, kind, meta, blocks))
        return key

    def put_record(self, key: str, record: dict) -> None:
        """Atomically install an artifact meta record.

        The record must only reference blocks that are already in the
        pool — this is the commit point that makes a partially written
        artifact simply absent rather than corrupt.
        """
        _atomic_write(self._meta_path(key),
                      json.dumps(record, sort_keys=True).encode("utf-8"))

    def get_record(self, key: str) -> dict:
        """The raw meta record for *key* (KeyError when absent)."""
        return self._load_record(key)

    def remove_record(self, key: str) -> bool:
        try:
            os.unlink(self._meta_path(key))
            return True
        except FileNotFoundError:
            return False

    def _load_record(self, key: str) -> dict:
        try:
            with open(self._meta_path(key)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise KeyError(key)
        except (ValueError, OSError) as exc:
            raise StoreCorruption("meta record for %s: %s" % (key, exc))

    def get(self, key: str) -> Any:
        """Fetch and decode the artifact stored under *key*.

        Raises :class:`KeyError` when absent, :class:`StoreCorruption`
        when any referenced block fails verification.
        """
        record = self._load_record(key)
        return codec.decode(record["kind"], record["meta"], self._read_block)

    def contains(self, key: str) -> bool:
        return os.path.exists(self._meta_path(key))

    def kind_of(self, key: str) -> str:
        return self._load_record(key)["kind"]

    def delete(self, key: str) -> bool:
        """Drop the meta record (blocks are reclaimed by :meth:`gc`)."""
        return self.remove_record(key)

    def keys(self) -> Iterator[str]:
        for dirpath, dirnames, filenames in os.walk(self._objects_dir):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".json"):
                    continue
                relative = os.path.relpath(os.path.join(dirpath, name),
                                           self._objects_dir)
                parts = relative.split(os.sep)
                # drop the two-char fan-out prefix; the rest is the key
                yield "/".join(parts[1:])[:-len(".json")]

    # -- maintenance -------------------------------------------------------

    def _iter_block_files(self) -> Iterator[str]:
        for shard in sorted(os.listdir(self._blocks_dir)):
            shard_dir = os.path.join(self._blocks_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.startswith(".tmp-"):
                    yield name

    def stats(self) -> StoreStats:
        stats = StoreStats()
        unique: Dict[str, int] = {}
        for key in self.keys():
            record = self._load_record(key)
            stats.objects += 1
            kind = record["kind"]
            stats.objects_by_kind[kind] = stats.objects_by_kind.get(kind, 0) + 1
            stats.logical_bytes += record.get("logical_bytes", 0)
            unique.update({digest: size for digest, size
                           in record.get("block_sizes", {}).items()})
        for digest in self._iter_block_files():
            stats.blocks += 1
            stats.stored_bytes += os.path.getsize(self._block_path(digest))
            # size known only for blocks some live object references
        for digest, size in unique.items():
            path = self._block_path(digest)
            if os.path.exists(path):
                stats.unique_bytes += size
                stats.compressed_bytes += os.path.getsize(path)
        return stats

    def gc(self, dry_run: bool = False,
           tmp_ttl_s: float = STALE_TMP_S,
           prune_snapshots: bool = False,
           snapshot_roots: Iterable[str] = ()) -> GCStats:
        """Mark-sweep: delete blocks no live artifact references.

        With ``dry_run`` nothing is unlinked; the returned stats report
        what a real sweep *would* remove (the ``farm gc --dry-run``
        report).  Also reclaims temp files abandoned by killed writers
        (older than *tmp_ttl_s*).

        With ``prune_snapshots``, preemption checkpoints (records of
        kind ``snapshot``) whose key is not in *snapshot_roots* are
        deleted before the mark phase — a root is the checkpoint of a
        job that is still queued or leased (the scheduler's
        ``snapshot_roots()``), everything else is a drained worker's
        leftover whose job has since settled.  Without the flag,
        snapshot records are ordinary artifacts and keep their blocks
        live.
        """
        result = GCStats(dry_run=dry_run)
        pruned: set = set()
        if prune_snapshots:
            roots = set(snapshot_roots)
            for key in list(self.keys()):
                record = self._load_record(key)
                if record["kind"] == "snapshot" and key not in roots:
                    pruned.add(key)
                    result.removed_snapshots += 1
                    if not dry_run:
                        self.remove_record(key)
        live: set = set()
        for key in self.keys():
            if key in pruned:
                continue  # dry_run keeps the record; mark as if gone
            record = self._load_record(key)
            live.update(_referenced_digests(record["meta"]))
        for digest in list(self._iter_block_files()):
            if digest in live:
                result.live_blocks += 1
                continue
            path = self._block_path(digest)
            result.freed_bytes += os.path.getsize(path)
            if not dry_run:
                os.unlink(path)
            result.removed_blocks += 1
        if not dry_run:
            self.sweep_tmp(tmp_ttl_s)
        obs = hooks.OBS
        if obs.enabled and not dry_run:
            obs.count("store.gc_removed_blocks", result.removed_blocks)
            obs.count("store.gc_freed_bytes", result.freed_bytes)
        return result

    def sweep_tmp(self, ttl_s: float = STALE_TMP_S) -> int:
        """Unlink ``.tmp-`` files older than *ttl_s* (killed writers).

        A SIGKILLed ``put`` can leave the temp file a pending atomic
        rename was staged in; it is invisible to readers (every lookup
        goes through the final path) but holds disk until swept.
        """
        removed = 0
        now = time.time()
        for base in (self._blocks_dir, self._objects_dir):
            for dirpath, _dirs, files in os.walk(base):
                for name in files:
                    if not name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        if now - os.path.getmtime(path) >= ttl_s:
                            os.unlink(path)
                            removed += 1
                    except OSError:
                        continue
        return removed

    def verify(self) -> List[str]:
        """Re-hash every live reference; returns corrupt keys."""
        bad: List[str] = []
        for key in self.keys():
            record = self._load_record(key)
            try:
                for digest in set(_referenced_digests(record["meta"])):
                    self._read_block(digest)
            except StoreCorruption:
                bad.append(key)
        return bad


def open_store(root: str, compress_level: int = 6) -> Any:
    """Open whatever store lives at *root*.

    A root carrying the ``shards.json`` marker opens as a
    :class:`repro.service.shards.ShardedStore`; anything else (including
    a fresh directory) opens as a plain single-root
    :class:`ArtifactStore`.  This is what the CLI uses so ``farm`` and
    ``service`` subcommands transparently accept either layout.
    """
    from repro.service.shards import SHARDS_MARKER, ShardedStore

    if os.path.exists(os.path.join(root, SHARDS_MARKER)):
        return ShardedStore(root, compress_level=compress_level)
    return ArtifactStore(root, compress_level=compress_level)


def _referenced_digests(meta: dict) -> Iterator[str]:
    """All block digests an artifact meta record references."""
    if "members" in meta:
        for member in meta["members"].values():
            yield from _referenced_digests(member)
        return
    if "pages" in meta:
        for _addr, _prot, digest in meta["pages"]:
            yield digest
        yield meta["rest"]
        return
    if "chunks" in meta:
        yield from meta["chunks"]
        return
    if "blob" in meta:
        yield meta["blob"]
