"""Content-addressed encoding of checkpoint artifacts.

The farm store keeps artifacts as a small JSON *meta* record plus a set
of *blocks* in a shared, deduplicated pool.  Blocks are addressed by the
SHA-256 of their raw contents, so identical pinball pages — the common
case across regions of one program, and across lazy/fat or train/ref
variants — are stored once no matter how many artifacts reference them.

Three artifact kinds have dedicated codecs:

``pinball``
    Page contents become one block each; everything else (registers,
    syscall log, schedule, metadata) travels through
    :meth:`Pinball.save_bytes` as a single "rest" block.
``elfie``
    The ELF image is chunked at page granularity for cross-artifact
    dedup; scalar fields and symbols live in the meta record.  The
    startup plan is preserved field-by-field.
``object``
    Any picklable Python value as a single blob (used for pipeline
    results: BBV profiles, SimPoint selections, validation outcomes).
``snapshot``
    A whole-machine :class:`~repro.snapshot.state.MachineSnapshot`:
    pages become one block each (same pool as pinball pages, so an
    incremental snapshot shares every unchanged page) and the canonical
    JSON state blob is the "rest" block.

A ``pinballs`` codec wraps a ``{name: Pinball}`` mapping (the unit the
multi-region logger produces) so a whole capture pass is one store
entry sharing one block pool.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import pickle
import sys
from typing import Any, Callable, Dict, List, Tuple

from repro.core.pinball2elf import ElfieArtifact
from repro.core.startup import StartupPlan
from repro.machine.memory import PAGE_SIZE
from repro.pinplay.pinball import Pinball

#: fetch callback: block digest -> verified raw bytes.
Fetch = Callable[[str], bytes]
#: encoder result: (meta record, {digest: raw block bytes}).
Encoded = Tuple[dict, Dict[str, bytes]]


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _canonical(value: Any) -> Any:
    """Reduce *value* to canonical JSON-able form for key derivation."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return {"__bytes_sha256__": sha256_hex(bytes(value))}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _canonical(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                         key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError("cannot canonicalize %r for a stable digest"
                    % type(value).__name__)


def stable_digest(value: Any) -> str:
    """Deterministic digest of a (nested) spec value.

    Dicts are key-sorted, dataclasses flattened, ``bytes`` replaced by
    their SHA-256, so equal specs digest equally across processes and
    sessions regardless of construction order.
    """
    blob = json.dumps(_canonical(value), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return sha256_hex(blob)


# -- pinball ---------------------------------------------------------------

def encode_pinball(pinball: Pinball) -> Encoded:
    blocks: Dict[str, bytes] = {}
    pages: List[List[Any]] = []
    for addr in sorted(pinball.pages):
        prot, data = pinball.pages[addr]
        digest = sha256_hex(data)
        blocks[digest] = data
        pages.append([addr, prot, digest])
    shell = dataclasses.replace(pinball, pages={})
    rest = shell.save_bytes()
    rest_digest = sha256_hex(rest)
    blocks[rest_digest] = rest
    return {"pages": pages, "rest": rest_digest}, blocks


def decode_pinball(meta: dict, fetch: Fetch) -> Pinball:
    pinball = Pinball.load_bytes(fetch(meta["rest"]))
    pinball.pages = {addr: (prot, fetch(digest))
                     for addr, prot, digest in meta["pages"]}
    return pinball


# -- pinball groups --------------------------------------------------------

def encode_pinballs(group: Dict[str, Pinball]) -> Encoded:
    members: Dict[str, dict] = {}
    blocks: Dict[str, bytes] = {}
    for name in sorted(group):
        meta, member_blocks = encode_pinball(group[name])
        members[name] = meta
        blocks.update(member_blocks)
    return {"members": members}, blocks


def decode_pinballs(meta: dict, fetch: Fetch) -> Dict[str, Pinball]:
    return {name: decode_pinball(member, fetch)
            for name, member in meta["members"].items()}


# -- ELFie artifacts -------------------------------------------------------

def encode_elfie(artifact: ElfieArtifact) -> Encoded:
    blocks: Dict[str, bytes] = {}
    chunks: List[str] = []
    image = artifact.image
    for offset in range(0, len(image), PAGE_SIZE):
        chunk = image[offset:offset + PAGE_SIZE]
        digest = sha256_hex(chunk)
        blocks[digest] = chunk
        chunks.append(digest)
    plan = None
    if artifact.plan is not None:
        plan = {
            "tail_instructions": [[tid, count] for tid, count in
                                  sorted(artifact.plan.tail_instructions.items())],
            "symbol_labels": list(artifact.plan.symbol_labels),
            "context_symbols": [list(item) for item in
                                artifact.plan.context_symbols],
        }
    meta = {
        "chunks": chunks,
        "image_len": len(image),
        "e_type": artifact.e_type,
        "entry": artifact.entry,
        "startup_base": artifact.startup_base,
        "plan": plan,
        "linker_script": artifact.linker_script,
        "context_listing": artifact.context_listing,
        "symbols": [[name, value] for name, value in artifact.symbols],
    }
    return meta, blocks


def decode_elfie(meta: dict, fetch: Fetch) -> ElfieArtifact:
    image = io.BytesIO()
    for digest in meta["chunks"]:
        image.write(fetch(digest))
    plan = None
    if meta["plan"] is not None:
        plan = StartupPlan(
            tail_instructions={tid: count for tid, count in
                               meta["plan"]["tail_instructions"]},
            symbol_labels=list(meta["plan"]["symbol_labels"]),
            context_symbols=[tuple(item) for item in
                             meta["plan"]["context_symbols"]],
        )
    return ElfieArtifact(
        image=image.getvalue()[:meta["image_len"]],
        e_type=meta["e_type"],
        entry=meta["entry"],
        startup_base=meta["startup_base"],
        plan=plan,
        linker_script=meta["linker_script"],
        context_listing=meta["context_listing"],
        symbols=[(name, value) for name, value in meta["symbols"]],
    )


# -- machine snapshots -------------------------------------------------------

def encode_snapshot(snapshot: Any) -> Encoded:
    """Encode a :class:`MachineSnapshot` (duck-typed to avoid a cycle:
    ``repro.snapshot`` depends on machine/pinplay which this module's
    clients already import)."""
    blocks: Dict[str, bytes] = {}
    pages: List[List[Any]] = []
    for addr in sorted(snapshot.pages):
        prot, data = snapshot.pages[addr]
        digest = sha256_hex(data)
        blocks[digest] = data
        pages.append([addr, prot, digest])
    rest = snapshot.state_bytes()
    rest_digest = sha256_hex(rest)
    blocks[rest_digest] = rest
    return {"pages": pages, "rest": rest_digest}, blocks


def decode_snapshot(meta: dict, fetch: Fetch) -> Any:
    from repro.snapshot.state import MachineSnapshot
    pages = {addr: (prot, fetch(digest))
             for addr, prot, digest in meta["pages"]}
    return MachineSnapshot.from_state_bytes(pages, fetch(meta["rest"]))


# -- arbitrary objects -----------------------------------------------------

def encode_object(obj: Any) -> Encoded:
    blob = pickle.dumps(obj, protocol=4)
    digest = sha256_hex(blob)
    return {"blob": digest}, {digest: blob}


def decode_object(meta: dict, fetch: Fetch) -> Any:
    return pickle.loads(fetch(meta["blob"]))


# -- dispatch --------------------------------------------------------------

_CODECS = {
    "pinball": (encode_pinball, decode_pinball),
    "pinballs": (encode_pinballs, decode_pinballs),
    "elfie": (encode_elfie, decode_elfie),
    "object": (encode_object, decode_object),
    "snapshot": (encode_snapshot, decode_snapshot),
}


def infer_kind(obj: Any) -> str:
    """Pick the richest codec that understands *obj*."""
    if isinstance(obj, Pinball):
        return "pinball"
    if isinstance(obj, ElfieArtifact):
        return "elfie"
    # Checked via sys.modules so this module never imports the snapshot
    # package (which would be a cycle); an object can only be a
    # MachineSnapshot if its defining module is already loaded.
    snapshot_module = sys.modules.get("repro.snapshot.state")
    if (snapshot_module is not None
            and isinstance(obj, snapshot_module.MachineSnapshot)):
        return "snapshot"
    if (isinstance(obj, dict) and obj
            and all(isinstance(v, Pinball) for v in obj.values())):
        return "pinballs"
    return "object"


def encode(obj: Any, kind: str = "") -> Tuple[str, dict, Dict[str, bytes]]:
    kind = kind or infer_kind(obj)
    if kind not in _CODECS:
        raise ValueError("unknown artifact kind %r" % kind)
    meta, blocks = _CODECS[kind][0](obj)
    return kind, meta, blocks


def decode(kind: str, meta: dict, fetch: Fetch) -> Any:
    if kind not in _CODECS:
        raise ValueError("unknown artifact kind %r" % kind)
    return _CODECS[kind][1](meta, fetch)
