"""Cooperative preemption: checkpoint-on-SIGTERM plumbing.

The farm/service worker cannot interrupt a job at an arbitrary Python
bytecode — but it doesn't need to.  Long-running job bodies (the BBV
profiler is the expensive one) poll :func:`requested` at quantum-aligned
points (slice boundaries) and, when a preemption has been requested,
capture a :class:`~repro.snapshot.state.MachineSnapshot` with their loop
progress in ``extra`` and raise :class:`Preempted`.  The worker catches
it, pushes the snapshot as a store artifact, and completes the lease as
*preempted* so the scheduler re-queues the job with the snapshot key
attached.

The resume side is the mirror image: before invoking a re-leased job's
function, the worker parks the fetched snapshot in the context; the job
body claims it (by kind tag) and restores instead of starting cold.

The context is process-global because the signal handler and the job
body live in the same process but different stack frames; it is safe
for the single-job-at-a-time worker loop this repo uses.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.snapshot.state import MachineSnapshot


class Preempted(Exception):
    """A job checkpointed itself in response to a preemption request.

    Carries the snapshot to persist; ``str(exc)`` is the reason.
    """

    def __init__(self, snapshot: "MachineSnapshot",
                 reason: str = "preempted") -> None:
        super().__init__(reason)
        self.snapshot = snapshot

    def __reduce__(self):
        # Default exception pickling keeps only ``args``; the snapshot
        # must cross a multiprocessing pool boundary intact.
        return (Preempted, (self.snapshot, str(self)))


class PreemptionContext:
    """One process's preemption request flag + resume snapshot slot."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._resume: Optional["MachineSnapshot"] = None

    # -- request side (signal handler / drain watchdog) -----------------

    def request(self) -> None:
        self._event.set()

    @property
    def requested(self) -> bool:
        return self._event.is_set()

    def reset(self) -> None:
        """Clear the flag and drop any unclaimed resume snapshot."""
        self._event.clear()
        with self._lock:
            self._resume = None

    # -- resume side (worker -> job body handoff) ------------------------

    def set_resume(self, snapshot: "MachineSnapshot") -> None:
        with self._lock:
            self._resume = snapshot

    def take_resume(self, kind: str = "") -> Optional["MachineSnapshot"]:
        """Claim the parked resume snapshot.

        With *kind*, only a snapshot whose ``extra["kind"]`` matches is
        claimed — a mismatched snapshot is left parked so a stale
        artifact can't derail an unrelated job body.
        """
        with self._lock:
            snapshot = self._resume
            if snapshot is None:
                return None
            if kind and snapshot.extra.get("kind") != kind:
                return None
            self._resume = None
            return snapshot


#: The process-wide context used by workers and job bodies.
GLOBAL = PreemptionContext()


def request() -> None:
    GLOBAL.request()


def requested() -> bool:
    return GLOBAL.requested


def reset() -> None:
    GLOBAL.reset()


def set_resume(snapshot: "MachineSnapshot") -> None:
    GLOBAL.set_resume(snapshot)


def take_resume(kind: str = "") -> Optional["MachineSnapshot"]:
    return GLOBAL.take_resume(kind)
