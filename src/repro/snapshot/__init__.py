"""repro.snapshot — the self-checkpointing VM.

The paper's ELFies checkpoint a *region's entry state*; this package
checkpoints the *simulator itself*: any run can be suspended at a
quantum boundary, serialized into a content-addressed snapshot, and
resumed bit-identically — in the same process, after a restart, or on
a different worker (migration).

- :mod:`repro.snapshot.plugins` — the DMTCP-style registry: each
  component (``machine``, ``kernel``, ``pinplay``, ``observe``)
  contributes save/restore hooks for its own state,
- :mod:`repro.snapshot.state` — capture / restore / digest over the
  registry, with pages kept block-pool-friendly for incremental
  dedup through :mod:`repro.farm.codec`,
- :mod:`repro.snapshot.preempt` — the checkpoint-on-SIGTERM handshake
  between workers and cooperative job bodies.

Importing this package registers the component plugins.
"""

from repro.snapshot.plugins import (
    SnapshotPlugin,
    get_plugin,
    plugins,
    register_plugin,
)
from repro.snapshot.state import (
    FORMAT_VERSION,
    MachineSnapshot,
    capture,
    restore,
    snapshot_digest,
    snapshot_info,
)
from repro.snapshot.preempt import (
    GLOBAL,
    Preempted,
    PreemptionContext,
)

# Component plugin registration (import side effects).
import repro.machine.snapshot_plugin  # noqa: F401,E402
import repro.pinplay.snapshot_plugin  # noqa: F401,E402
import repro.observe.snapshot_plugin  # noqa: F401,E402

__all__ = [
    "FORMAT_VERSION",
    "GLOBAL",
    "MachineSnapshot",
    "Preempted",
    "PreemptionContext",
    "SnapshotPlugin",
    "capture",
    "get_plugin",
    "plugins",
    "register_plugin",
    "restore",
    "snapshot_digest",
    "snapshot_info",
]
