"""Whole-machine snapshots: capture, restore, digest.

A :class:`MachineSnapshot` is the simulator's analog of an ELFie taken
of *itself*: the full page-level address space plus one JSON-serializable
state slice per registered :class:`~repro.snapshot.plugins.SnapshotPlugin`
(machine/threads/scheduler/CPU timing state, kernel/VFS, tool cursors).
Captured at any quantum boundary — a ``Machine.run`` that returned
``kind == "stopped"`` — and restored onto a fresh machine that continues
bit-identically: same instruction stream, same schedule (the jitter
RNG's Mersenne state travels along), same syscall results, same digests.

Pages are kept separate from the JSON state so the content-addressed
store codec (:mod:`repro.farm.codec`) can dedupe them through the block
pool: two snapshots of the same run share every unchanged page block,
which is what makes incremental checkpointing cheap.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.machine.machine import Machine
from repro.machine.memory import PAGE_SHIFT
from repro.machine.tool import Tool
from repro.snapshot.plugins import plugins

#: Bumped when the snapshot state layout changes incompatibly.
FORMAT_VERSION = 1


@dataclass
class MachineSnapshot:
    """One suspended machine, ready to travel."""

    #: page base address -> (protection bits, page bytes)
    pages: Dict[int, Tuple[int, bytes]]
    #: plugin name -> that plugin's JSON-serializable state slice
    state: Dict[str, dict]
    #: caller-owned progress (e.g. a preempted job's loop state)
    extra: dict = field(default_factory=dict)
    version: int = FORMAT_VERSION

    def memory_bytes(self) -> int:
        return sum(len(data) for _, data in self.pages.values())

    def state_bytes(self) -> bytes:
        """Canonical encoding of the non-page state (the codec's rest
        blob): sorted-keys JSON, so equal states hash equally."""
        payload = {"version": self.version, "state": self.state,
                   "extra": self.extra}
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_state_bytes(cls, pages: Dict[int, Tuple[int, bytes]],
                         blob: bytes) -> "MachineSnapshot":
        payload = json.loads(blob.decode("utf-8"))
        return cls(pages=pages, state=payload["state"],
                   extra=payload.get("extra", {}),
                   version=payload.get("version", FORMAT_VERSION))


def capture(machine: Machine, extra: Optional[dict] = None) -> MachineSnapshot:
    """Snapshot *machine* at a quantum boundary.

    The machine must be suspended, not finished: a run that returned
    ``kind == "stopped"`` leaves ``exit_status`` None, which is the
    resumable state.  Every registered plugin contributes its slice;
    plugins that find nothing of theirs attached contribute nothing.
    """
    if machine.exit_status is not None:
        raise ValueError(
            "machine has exited (%s); only a stopped machine is resumable"
            % machine.exit_status.kind)
    pages = machine.mem.snapshot()
    perms = machine.mem.snapshot_perms()
    state: Dict[str, dict] = {}
    for plugin in plugins():
        piece = plugin.save(machine)
        if piece is not None:
            state[plugin.name] = piece
    return MachineSnapshot(
        pages={page << PAGE_SHIFT: (perms[page], bytes(data))
               for page, data in pages.items()},
        state=state,
        extra=dict(extra or {}),
    )


def restore(snapshot: MachineSnapshot,
            tools: Sequence[Tool] = ()) -> Machine:
    """Rebuild a machine from *snapshot*, bit-identical to the captured
    one.

    Two-phase, DMTCP-style: core plugins (machine, kernel) restore
    against the bare machine first; then the caller's freshly
    constructed *tools* are attached (in the same order as on the
    captured machine) and the ``needs_tools`` plugins rehydrate their
    internal cursors.  The decode/superblock caches are rebuilt lazily
    from the restored code pages — dropping them is safe because they
    are a pure function of mapped bytes.
    """
    if snapshot.version != FORMAT_VERSION:
        raise ValueError("snapshot format v%d not supported (expected v%d)"
                         % (snapshot.version, FORMAT_VERSION))
    core = snapshot.state.get("machine")
    if core is None:
        raise ValueError("snapshot has no machine state")
    scheduler_state = core["scheduler"]
    machine = Machine(seed=scheduler_state["seed"],
                      base_quantum=scheduler_state["base_quantum"])
    for addr in sorted(snapshot.pages):
        prot, data = snapshot.pages[addr]
        machine.mem.map(addr, len(data), prot, data=bytes(data))
    for plugin in plugins():
        if not plugin.needs_tools and plugin.name in snapshot.state:
            plugin.restore(machine, snapshot.state[plugin.name])
    for tool in tools:
        machine.attach(tool)
    for plugin in plugins():
        if plugin.needs_tools and plugin.name in snapshot.state:
            plugin.restore(machine, snapshot.state[plugin.name])
    return machine


def snapshot_digest(snapshot: MachineSnapshot) -> str:
    """sha256 over the canonical snapshot encoding.

    Two snapshots digest equally iff they describe the same machine:
    page image (address, protection, contents in address order) plus the
    canonical state blob.  This is the bit-identity witness the tests
    and ``snapshot info`` use.
    """
    digest = hashlib.sha256()
    for addr in sorted(snapshot.pages):
        prot, data = snapshot.pages[addr]
        digest.update(struct.pack("<QI", addr, prot))
        digest.update(data)
    digest.update(snapshot.state_bytes())
    return digest.hexdigest()


def snapshot_info(snapshot: MachineSnapshot) -> dict:
    """Human-facing summary (the ``snapshot info`` CLI payload)."""
    core = snapshot.state.get("machine", {})
    threads = core.get("threads", [])
    return {
        "version": snapshot.version,
        "digest": snapshot_digest(snapshot),
        "pages": len(snapshot.pages),
        "memory_bytes": snapshot.memory_bytes(),
        "state_bytes": len(snapshot.state_bytes()),
        "executed_total": core.get("executed_total", 0),
        "threads": [{"tid": record["tid"], "alive": record["alive"],
                     "blocked": record["blocked"],
                     "icount": record["icount"]}
                    for record in threads],
        "plugins": sorted(snapshot.state),
        "extra_keys": sorted(snapshot.extra),
    }
