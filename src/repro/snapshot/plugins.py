"""DMTCP-style plugin registry for whole-machine checkpointing.

DMTCP checkpoints unmodified processes by letting each subsystem
register hooks that quiesce, serialize, and restore its own state; the
coordinator only sequences them.  This module is that coordinator's
registry for the simulated machine: each component package (``machine``,
``kernel``, ``pinplay``, ``observe``) contributes a
:class:`SnapshotPlugin` that knows how to save and restore *its* slice
of a :class:`~repro.machine.machine.Machine`, and
:mod:`repro.snapshot.state` walks the registry in registration order.

Two-phase restore: plugins with ``needs_tools = False`` run against the
bare machine (threads, scheduler, kernel) *before* tools are
re-attached; plugins with ``needs_tools = True`` run after, so they can
rehydrate tool-internal cursors (logger queues, BBV accumulators) into
the already-attached instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine


class SnapshotPlugin:
    """One component's save/restore hooks.

    ``save`` returns a JSON-serializable dict (or None to contribute
    nothing to this snapshot); ``restore`` receives that dict back on a
    freshly constructed machine whose address space is already mapped.
    """

    #: Registry key; also the key of this plugin's slice in the snapshot.
    name: str = ""
    #: True to run restore after tools have been re-attached.
    needs_tools: bool = False

    def save(self, machine: "Machine") -> Optional[dict]:
        raise NotImplementedError

    def restore(self, machine: "Machine", state: dict) -> None:
        raise NotImplementedError


_REGISTRY: Dict[str, SnapshotPlugin] = {}


def register_plugin(plugin: SnapshotPlugin) -> SnapshotPlugin:
    """Register *plugin* (idempotent per name; re-registering replaces)."""
    if not plugin.name:
        raise ValueError("snapshot plugin needs a non-empty name")
    _REGISTRY[plugin.name] = plugin
    return plugin


def get_plugin(name: str) -> SnapshotPlugin:
    plugin = _REGISTRY.get(name)
    if plugin is None:
        raise KeyError("no snapshot plugin registered as %r" % name)
    return plugin


def plugins() -> Tuple[SnapshotPlugin, ...]:
    """All registered plugins, in registration order."""
    return tuple(_REGISTRY.values())
