"""Span-based structured tracing with Chrome trace-event export.

A :class:`Tracer` collects *events* — completed spans (``ph: "X"``),
instant marks (``ph: "i"``) and metadata (``ph: "M"``) — into a
process-wide, thread-safe list and serializes them in the Chrome
trace-event JSON format, so a ``farm run --trace run.json`` artifact
loads directly into ``chrome://tracing`` or https://ui.perfetto.dev.

Spans nest per thread: each thread keeps its own span stack, so a
``logger.record`` span opened inside a ``pinpoints.capture`` span is
rendered as a child row in the viewer (the format infers nesting from
``ts``/``dur`` within one ``tid``).  Externally-timed work — a farm job
that ran in a worker process, whose wall time the parent learns from
the pool result — is recorded with :meth:`Tracer.complete`, which
back-dates the span start so the duration matches the measured wall
time exactly (this is what lets tests cross-check trace spans against
the JSONL run manifest).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional


class Span:
    """A context manager that emits one complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start_us")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start_us: Optional[float] = None

    def set(self, **args: Any) -> "Span":
        """Attach extra args to the span (shown in the viewer)."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        self._start_us = self._tracer._now_us()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_us = self._tracer._now_us()
        self._tracer._pop(self)
        if exc_type is not None:
            self.args.setdefault("error", "%s: %s" % (exc_type.__name__, exc))
        self._tracer._emit({
            "name": self.name,
            "cat": self.cat or "repro",
            "ph": "X",
            "ts": round(self._start_us, 3),
            "dur": round(end_us - self._start_us, 3),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": self.args,
        })
        return False


class Tracer:
    """Process-wide collector of trace events.

    Thread-safe: events append under a lock, and the span stack used
    for nesting is ``threading.local``.  Timestamps are microseconds
    since tracer creation (``time.perf_counter`` based).
    """

    def __init__(self, process_name: str = "repro") -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._emit({
            "name": "process_name",
            "ph": "M",
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": {"name": process_name},
        })

    # -- clock / stack ------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def depth(self) -> int:
        """Current span-nesting depth of the calling thread."""
        return len(self._stack())

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- event production ---------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(event)

    def span(self, name: str, cat: str = "", **args: Any) -> Span:
        """Open a nested span: ``with tracer.span("logger.record"): ...``"""
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """Record a zero-duration mark (divergence, ROI transition...)."""
        self._emit({
            "name": name,
            "cat": cat or "repro",
            "ph": "i",
            "s": "t",
            "ts": round(self._now_us(), 3),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        })

    def complete(self, name: str, wall_s: float, cat: str = "",
                 **args: Any) -> None:
        """Record an externally-timed span of *wall_s* seconds ending now.

        Used when the timed work ran somewhere the tracer could not see
        (a pool worker process): the caller supplies the measured wall
        time and the span is back-dated so ``dur`` equals it exactly.
        """
        dur_us = wall_s * 1e6
        self._emit({
            "name": name,
            "cat": cat or "repro",
            "ph": "X",
            "ts": round(max(0.0, self._now_us() - dur_us), 3),
            "dur": round(dur_us, 3),
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": args,
        })

    # -- export -------------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
        }

    def export(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=1, sort_keys=True)
