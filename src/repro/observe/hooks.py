"""Null-object observability hooks for the pipeline's hot paths.

Instrumented modules do::

    from repro.observe import hooks
    ...
    obs = hooks.OBS
    if obs.enabled:
        obs.count("kernel.syscalls")

``hooks.OBS`` is a module attribute holding either the shared
:data:`NULL` observer (``enabled`` is ``False`` — the default) or a
live :class:`Observer` wired to a :class:`~repro.observe.trace.Tracer`
and :class:`~repro.observe.metrics.MetricsRegistry`.  With
observability disabled a call site therefore costs one module-attribute
lookup plus a class-attribute test; ``benchmarks/bench_observe_overhead``
holds this to <3% of interpreter throughput on the Table I workloads.

Hot loops must keep the ``if obs.enabled:`` guard and fire at batch
granularity (the interpreter counts instructions once per scheduler
quantum, not per instruction; its superblock translation cache flushes
``cpu.block_cache.{hits,misses,invalidations}`` counter deltas once per
quantum and records a ``cpu.block_cache.block_length`` histogram sample
per block build).  Cold paths may call the no-op methods
unconditionally — on the null observer they do nothing and return a
shared no-op context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import Tracer


class _NullSpan:
    """Context manager that does nothing; shared by every null call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The disabled path: every method is a no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, name: str, wall_s: float, cat: str = "",
                 **args: Any) -> None:
        pass

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


class Observer(NullObserver):
    """The enabled path: forwards to a tracer and a metrics registry."""

    __slots__ = ("tracer", "metrics")
    enabled = True

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def span(self, name: str, cat: str = "", **args: Any):
        return self.tracer.span(name, cat, **args)

    def complete(self, name: str, wall_s: float, cat: str = "",
                 **args: Any) -> None:
        self.tracer.complete(name, wall_s, cat, **args)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        self.tracer.instant(name, cat, **args)

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)


NULL = NullObserver()

#: The process-wide observer every instrumented call site reads.
OBS: NullObserver = NULL


def enable(tracer: Optional[Tracer] = None,
           metrics: Optional[MetricsRegistry] = None) -> Observer:
    """Install (and return) a live observer as the process-wide hooks."""
    global OBS
    OBS = Observer(tracer=tracer, metrics=metrics)
    return OBS


def disable() -> None:
    """Restore the no-op observer."""
    global OBS
    OBS = NULL


def active() -> NullObserver:
    return OBS


@contextmanager
def observed(tracer: Optional[Tracer] = None,
             metrics: Optional[MetricsRegistry] = None) -> Iterator[Observer]:
    """Scoped enable/restore — the test-friendly entry point."""
    global OBS
    previous = OBS
    obs = enable(tracer=tracer, metrics=metrics)
    try:
        yield obs
    finally:
        OBS = previous
