"""Observability: tracing and metrics telemetry for the pipeline.

The paper's pipeline (capture -> convert -> replay -> simulate) is
itself a long-running system; this package gives it near-zero-overhead
introspection:

- :mod:`repro.observe.trace` — span tracing with Chrome trace-event
  JSON export (``chrome://tracing`` / Perfetto loadable);
- :mod:`repro.observe.metrics` — counters, gauges and p50/p95/p99
  histograms with JSON/text snapshots;
- :mod:`repro.observe.hooks` — the null-object dispatch point the
  instrumented modules read (``hooks.OBS``), plus ``enable`` /
  ``disable`` / ``observed``.
"""

from repro.observe.hooks import (
    NullObserver,
    Observer,
    active,
    disable,
    enable,
    observed,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)
from repro.observe.trace import Span, Tracer

__all__ = [
    "NullObserver",
    "Observer",
    "active",
    "disable",
    "enable",
    "observed",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "load_snapshot",
    "Span",
    "Tracer",
]
