"""Snapshot save/restore hooks for observation tools.

Covers the measurement-side tools that ride along on a run: the BBV
profiler's block counter (mid-slice accumulator and open-block cursors)
and the verifier's dirty-page tracker.  Both are matched by class name
and attachment order, like the PinPlay plugin — the restore side
attaches fresh instances, this plugin refills their accumulators so a
resumed profile continues exactly where the suspended one stopped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.simpoint.bbv import _BlockCounter
from repro.snapshot.plugins import SnapshotPlugin, register_plugin
from repro.verify.digest import DirtyPageTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine


def _save_block_counter(tool: _BlockCounter) -> dict:
    return {
        "current": [[pc, count] for pc, count in sorted(tool.current.items())],
        "open_block": [[tid, pc]
                       for tid, pc in sorted(tool._open_block.items())],
        "open_icount": [[tid, icount]
                        for tid, icount in sorted(tool._open_icount.items())],
    }


def _restore_block_counter(tool: _BlockCounter, state: dict) -> None:
    tool.current = {pc: count for pc, count in state["current"]}
    tool._open_block = {tid: pc for tid, pc in state["open_block"]}
    tool._open_icount = {tid: icount for tid, icount in state["open_icount"]}


def _save_dirty_tracker(tool: DirtyPageTracker) -> dict:
    return {"dirty": sorted(tool.dirty)}


def _restore_dirty_tracker(tool: DirtyPageTracker, state: dict) -> None:
    tool.dirty = set(state["dirty"])


_SAVERS = {
    "_BlockCounter": _save_block_counter,
    "DirtyPageTracker": _save_dirty_tracker,
}
_RESTORERS = {
    "_BlockCounter": _restore_block_counter,
    "DirtyPageTracker": _restore_dirty_tracker,
}


class ObserveSnapshotPlugin(SnapshotPlugin):
    name = "observe"
    needs_tools = True

    def save(self, machine: "Machine") -> Optional[dict]:
        records = []
        for tool in machine.tools:
            saver = _SAVERS.get(tool.__class__.__name__)
            if saver is not None:
                records.append([tool.__class__.__name__, saver(tool)])
        return {"tools": records} if records else None

    def restore(self, machine: "Machine", state: dict) -> None:
        pools = {}
        for tool in machine.tools:
            pools.setdefault(tool.__class__.__name__, []).append(tool)
        taken = {}
        for class_name, tool_state in state["tools"]:
            index = taken.get(class_name, 0)
            taken[class_name] = index + 1
            pool = pools.get(class_name, [])
            if index < len(pool):
                _RESTORERS[class_name](pool[index], tool_state)


register_plugin(ObserveSnapshotPlugin())
