"""A registry of counters, gauges and histograms with snapshot export.

Three metric kinds, mirroring the usual telemetry trio:

- :class:`Counter` — monotonically increasing totals (instructions
  executed, syscalls by name, cache hits);
- :class:`Gauge` — last-value-wins measurements (live worker count);
- :class:`Histogram` — sampled distributions with nearest-rank
  p50/p95/p99 summaries (per-job wall times).

The :class:`MetricsRegistry` is thread-safe (one lock guards both
metric creation and mutation — metrics are only touched on the enabled
observability path, where the lock cost is irrelevant) and snapshots to
a plain JSON-able dict, so ``--metrics FILE`` output round-trips
through :func:`load_snapshot`.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Any, Dict, List

#: Cap on retained histogram samples; beyond it every other sample is
#: dropped (keeps memory bounded on million-observation runs while the
#: retained set stays distribution-representative).
MAX_SAMPLES = 65536


class Counter:
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    __slots__ = ("name", "count", "total", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._samples.append(value)
        if len(self._samples) > MAX_SAMPLES:
            self._samples = self._samples[::2]

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        if not self._samples:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": min(self._samples),
            "max": max(self._samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named metrics with get-or-create access and JSON/text snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if other_kind != kind and name in table:
                raise ValueError("metric %r already registered as a %s"
                                 % (name, other_kind))

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, "counter")
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, "gauge")
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, "histogram")
                metric = self._histograms[name] = Histogram(name)
            return metric

    # -- convenience mutators (the hook layer calls these) -----------------

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, "counter")
                metric = self._counters[name] = Counter(name)
            metric.value += n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, "histogram")
                metric = self._histograms[name] = Histogram(name)
        metric.observe(value)

    # -- snapshots ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": {name: metric.value for name, metric
                             in sorted(self._counters.items())},
                "gauges": {name: metric.value for name, metric
                           in sorted(self._gauges.items())},
                "histograms": {name: metric.summary() for name, metric
                               in sorted(self._histograms.items())},
            }

    def render_text(self) -> str:
        """A flat ``name value`` listing (greppable snapshot form)."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append("%s %d" % (name, value))
        for name, value in snap["gauges"].items():
            lines.append("%s %g" % (name, value))
        for name, summary in snap["histograms"].items():
            for stat in ("count", "sum", "min", "max", "p50", "p95", "p99"):
                lines.append("%s.%s %g" % (name, stat, summary[stat]))
        return "\n".join(lines) + ("\n" if lines else "")

    def export(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.snapshot(), handle, indent=1, sort_keys=True)


def load_snapshot(path: str) -> Dict[str, Any]:
    """Read back a snapshot written by :meth:`MetricsRegistry.export`."""
    with open(path) as handle:
        snapshot = json.load(handle)
    for section in ("counters", "gauges", "histograms"):
        if section not in snapshot:
            raise ValueError("not a metrics snapshot: missing %r" % section)
    return snapshot
