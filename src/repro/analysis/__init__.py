"""Measurement and reporting helpers for the case studies."""

from repro.analysis.perfstat import PerfStats, perf_stat_program, perf_stat_elfie
from repro.analysis.report import Table, format_table, bar_chart, timings_table

__all__ = [
    "PerfStats",
    "perf_stat_program",
    "perf_stat_elfie",
    "Table",
    "format_table",
    "bar_chart",
    "timings_table",
]
