"""perf-stat-style native measurement on the simulated PMU (§III-B).

``perf stat`` works with ELFies, but needs to avoid measuring the
startup code and to end gracefully — which is what the pinball2elf
callbacks provide.  These helpers are the host-side equivalent:
whole-program counters for any binary, and marker-delimited region
counters for ELFies.  Because cycles come from the simulated hardware
timing model, attaching the measurement tool does not perturb the
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.machine.loader import load_elf
from repro.machine.machine import Machine
from repro.machine.vfs import FileSystem


@dataclass
class PerfStats:
    """A perf-stat summary."""

    instructions: int
    cycles: int
    llc_misses: int
    branches: int
    exit_kind: str

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """LLC misses per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions


def perf_stat_program(image: bytes, seed: int = 0,
                      fs: Optional[FileSystem] = None,
                      max_instructions: Optional[int] = None) -> PerfStats:
    """Run a binary natively and report whole-run counters."""
    machine = Machine(seed=seed, fs=fs)
    load_elf(machine, image)
    status = machine.run(max_instructions=max_instructions)
    totals = machine.pmu.totals()
    return PerfStats(
        instructions=totals["instructions"],
        cycles=totals["cycles"],
        llc_misses=totals["llc_misses"],
        branches=totals["branches"],
        exit_kind=status.kind,
    )


def perf_stat_elfie(image: bytes, region_length: int,
                    warmup: int = 0, seed: int = 0,
                    fs: Optional[FileSystem] = None,
                    workdir: str = "/") -> Optional[PerfStats]:
    """Measure an ELFie's captured region with marker-based gating.

    Counters cover ``region_length`` instructions beginning ``warmup``
    instructions after the ROI marker.  Returns None when the ELFie
    fails before completing the measurement window.
    """
    from repro.pinplay.regions import RegionSpec
    from repro.simpoint.validation import measure_elfie_region
    from repro.core.pinball2elf import ElfieArtifact
    from repro.elf.structs import ET_EXEC

    artifact = ElfieArtifact(image=image, e_type=ET_EXEC, entry=0,
                             startup_base=0, plan=None)
    region = RegionSpec(start=warmup if warmup else 0,
                        length=region_length,
                        warmup=warmup, name="perfstat")
    measurement = measure_elfie_region(artifact, region, seed=seed,
                                       fs=fs, workdir=workdir)
    if not measurement.ok:
        return None
    cycles = int(round(measurement.cpi * region_length))
    return PerfStats(
        instructions=region_length,
        cycles=cycles,
        llc_misses=0,
        branches=0,
        exit_kind="measured",
    )
