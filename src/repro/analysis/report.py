"""Plain-text tables and bar charts for benchmark output.

The benchmark harnesses print the same rows and series the paper's
tables and figures report; these helpers keep that output readable in a
terminal and in the captured bench logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


@dataclass
class Table:
    """A simple column-aligned table builder."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                "expected %d cells, got %d" % (len(self.headers), len(cells))
            )
        self.rows.append([_render(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i])
                             for i, cell in enumerate(cells)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = [self.title, rule, line(self.headers), rule]
        out += [line(row) for row in self.rows]
        out.append(rule)
        return "\n".join(out)


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Cell]]) -> str:
    """One-call table rendering."""
    table = Table(title=title, headers=list(headers))
    for row in rows:
        table.add_row(*row)
    return table.render()


def timings_table(title: str,
                  entries: Sequence[Tuple[str, float]]) -> str:
    """Wall-time comparison table with speedups vs the first entry.

    Used by the farm-backed benchmarks to report cold (empty store) vs
    warm (fully cached) campaign timings.
    """
    table = Table(title=title, headers=["run", "wall time (s)", "speedup"])
    if not entries:
        return table.render()
    baseline = entries[0][1]
    for label, seconds in entries:
        speedup = (baseline / seconds) if seconds > 0 else float("inf")
        table.add_row(label, "%.3f" % seconds, "%.1fx" % speedup)
    return table.render()


def bar_chart(title: str, entries: Sequence[Tuple[str, float]],
              width: int = 50, unit: str = "") -> str:
    """Horizontal ASCII bar chart (the benches' 'figure' output)."""
    if not entries:
        return title + "\n(no data)"
    label_width = max(len(label) for label, _ in entries)
    peak = max(abs(value) for _, value in entries) or 1.0
    lines = [title]
    for label, value in entries:
        bar = "#" * max(1, int(round(abs(value) / peak * width)))
        sign = "-" if value < 0 else ""
        lines.append("%s  %s%s %s%.3f%s"
                     % (label.ljust(label_width), sign, bar,
                        sign, abs(value), unit))
    return "\n".join(lines)
