"""Linker-script model for ELFie object linking (paper §II-B5).

When ``pinball2elf`` emits an object file instead of an executable, it
also emits a linker script recording the parent pinball's memory layout
so that a user can link the ELFie object with their own callback object
while preserving every section's virtual address.  This module models
that script: it can be rendered to GNU-ld-like text and used by
:meth:`LinkerScript.link` to combine an ELFie object with a user object
into a final executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.elf.reader import ElfFile
from repro.elf.structs import ET_EXEC, SHF_ALLOC
from repro.elf.writer import ElfBuilder


@dataclass(frozen=True)
class LinkerRegion:
    """One fixed-address output section from the parent pinball."""

    section: str
    address: int
    size: int


@dataclass
class LinkerScript:
    """The memory layout of an ELFie, as a linkable contract."""

    entry_symbol: str
    regions: List[LinkerRegion] = field(default_factory=list)
    #: Address range reserved for user callback code sections.
    user_code_base: int = 0

    def render(self) -> str:
        """Render as GNU-ld-style linker script text."""
        lines = ["/* pinball2elf generated linker script */",
                 "ENTRY(%s)" % self.entry_symbol,
                 "SECTIONS", "{"]
        for region in self.regions:
            lines.append(
                "  %s 0x%x : { *(%s) } /* size 0x%x */"
                % (region.section, region.address, region.section, region.size)
            )
        if self.user_code_base:
            lines.append(
                "  .text.user 0x%x : { *(.text.user) }" % self.user_code_base
            )
        lines.append("}")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "LinkerScript":
        """Parse text produced by :meth:`render`."""
        entry = ""
        regions: List[LinkerRegion] = []
        user_base = 0
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("ENTRY(") and line.endswith(")"):
                entry = line[len("ENTRY("):-1]
            elif line.startswith(".") and " : " in line:
                name, rest = line.split(None, 1)
                addr_text = rest.split(None, 1)[0]
                address = int(addr_text, 16)
                size = 0
                if "size 0x" in line:
                    size = int(line.split("size 0x")[1].split()[0].rstrip("*/ "), 16)
                if name == ".text.user":
                    user_base = address
                else:
                    regions.append(LinkerRegion(name, address, size))
        if not entry:
            raise ValueError("linker script has no ENTRY")
        return cls(entry_symbol=entry, regions=regions,
                   user_code_base=user_base)

    @classmethod
    def from_elf(cls, elf: ElfFile, entry_symbol: str = "_start",
                 user_code_base: int = 0) -> "LinkerScript":
        """Derive the layout contract from an ELFie object's sections."""
        regions = [
            LinkerRegion(section.name, section.addr, len(section.data))
            for section in elf.sections
            if section.name and section.addr
        ]
        return cls(entry_symbol=entry_symbol, regions=regions,
                   user_code_base=user_code_base)

    def link(self, elfie_object: ElfFile, user_object: Optional[ElfFile],
             entry: int) -> bytes:
        """Link an ELFie object (plus optional user object) into an
        executable, preserving the pinball memory layout.

        Sections from the user object must not overlap the pinball
        layout; they are placed at their recorded addresses (the user
        object is expected to have been built against this script, i.e.
        its allocatable sections carry their final addresses).
        """
        builder = ElfBuilder(e_type=ET_EXEC, entry=entry)
        claimed: List[LinkerRegion] = []

        def claim(name: str, addr: int, size: int) -> None:
            for region in claimed:
                if addr < region.address + region.size and region.address < addr + size:
                    raise ValueError(
                        "section %s at 0x%x overlaps %s at 0x%x"
                        % (name, addr, region.section, region.address)
                    )
            claimed.append(LinkerRegion(name, addr, size))

        for source in filter(None, [elfie_object, user_object]):
            for section in source.sections:
                if not section.name or not section.flags & SHF_ALLOC:
                    continue
                if not section.addr:
                    continue
                claim(section.name, section.addr, len(section.data))
                prot = 1
                if section.flags & 0x1:  # SHF_WRITE
                    prot |= 2
                if section.flags & 0x4:  # SHF_EXECINSTR
                    prot |= 4
                builder.add_section(
                    section.name, section.data, addr=section.addr,
                    flags=section.flags, prot=prot,
                )
        for source in filter(None, [elfie_object, user_object]):
            for symbol in source.symbols:
                builder.add_symbol(symbol.name, symbol.value, symbol.size,
                                   symbol.sym_type)
        return builder.build()
