"""ELF64 data structures and constants (TIS ELF specification v1.2).

Only the fields and constants this project uses are defined, but the
binary layouts are the real ones: an ELFie built by this library has a
well-formed 64-byte ELF header, 56-byte program headers, 64-byte section
headers, and 24-byte symbol records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

# e_ident layout.
ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EV_CURRENT = 1

# e_type values.
ET_REL = 1
ET_EXEC = 2

#: Fictional machine value for the PX architecture ("PX" little-endian).
EM_PX = 0x5850

# Program header types and flags.
PT_NULL = 0
PT_LOAD = 1
PF_X = 1
PF_W = 2
PF_R = 4

# Section header types.
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8

# Section header flags.
SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4

# Symbol binding/type helpers.
STB_LOCAL = 0
STB_GLOBAL = 1
STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
SHN_UNDEF = 0
SHN_ABS = 0xFFF1

EHDR_SIZE = 64
PHDR_SIZE = 56
SHDR_SIZE = 64
SYM_SIZE = 24

_EHDR_FMT = "<16sHHIQQQIHHHHHH"
_PHDR_FMT = "<IIQQQQQQ"
_SHDR_FMT = "<IIQQQQIIQQ"
_SYM_FMT = "<IBBHQQ"


@dataclass
class ElfHeader:
    """The ELF file header (Ehdr)."""

    e_type: int = ET_EXEC
    e_machine: int = EM_PX
    e_entry: int = 0
    e_phoff: int = 0
    e_shoff: int = 0
    e_flags: int = 0
    e_phnum: int = 0
    e_shnum: int = 0
    e_shstrndx: int = 0

    def pack(self) -> bytes:
        ident = ELF_MAGIC + bytes(
            [ELFCLASS64, ELFDATA2LSB, EV_CURRENT, 0] + [0] * 8
        )
        return struct.pack(
            _EHDR_FMT,
            ident,
            self.e_type,
            self.e_machine,
            EV_CURRENT,
            self.e_entry,
            self.e_phoff,
            self.e_shoff,
            self.e_flags,
            EHDR_SIZE,
            PHDR_SIZE if self.e_phnum else 0,
            self.e_phnum,
            SHDR_SIZE if self.e_shnum else 0,
            self.e_shnum,
            self.e_shstrndx,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ElfHeader":
        fields = struct.unpack_from(_EHDR_FMT, data, 0)
        ident = fields[0]
        if ident[:4] != ELF_MAGIC:
            raise ValueError("bad ELF magic")
        if ident[4] != ELFCLASS64 or ident[5] != ELFDATA2LSB:
            raise ValueError("only little-endian ELF64 is supported")
        return cls(
            e_type=fields[1],
            e_machine=fields[2],
            e_entry=fields[4],
            e_phoff=fields[5],
            e_shoff=fields[6],
            e_flags=fields[7],
            e_phnum=fields[10],
            e_shnum=fields[12],
            e_shstrndx=fields[13],
        )


@dataclass
class ProgramHeader:
    """One program (segment) header (Phdr)."""

    p_type: int = PT_LOAD
    p_flags: int = PF_R
    p_offset: int = 0
    p_vaddr: int = 0
    p_paddr: int = 0
    p_filesz: int = 0
    p_memsz: int = 0
    p_align: int = 0x1000

    def pack(self) -> bytes:
        return struct.pack(
            _PHDR_FMT,
            self.p_type,
            self.p_flags,
            self.p_offset,
            self.p_vaddr,
            self.p_paddr,
            self.p_filesz,
            self.p_memsz,
            self.p_align,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "ProgramHeader":
        fields = struct.unpack_from(_PHDR_FMT, data, offset)
        return cls(
            p_type=fields[0],
            p_flags=fields[1],
            p_offset=fields[2],
            p_vaddr=fields[3],
            p_paddr=fields[4],
            p_filesz=fields[5],
            p_memsz=fields[6],
            p_align=fields[7],
        )


@dataclass
class SectionHeader:
    """One section header (Shdr)."""

    sh_name: int = 0
    sh_type: int = SHT_PROGBITS
    sh_flags: int = 0
    sh_addr: int = 0
    sh_offset: int = 0
    sh_size: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 1
    sh_entsize: int = 0

    def pack(self) -> bytes:
        return struct.pack(
            _SHDR_FMT,
            self.sh_name,
            self.sh_type,
            self.sh_flags,
            self.sh_addr,
            self.sh_offset,
            self.sh_size,
            self.sh_link,
            self.sh_info,
            self.sh_addralign,
            self.sh_entsize,
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> "SectionHeader":
        fields = struct.unpack_from(_SHDR_FMT, data, offset)
        return cls(
            sh_name=fields[0],
            sh_type=fields[1],
            sh_flags=fields[2],
            sh_addr=fields[3],
            sh_offset=fields[4],
            sh_size=fields[5],
            sh_link=fields[6],
            sh_info=fields[7],
            sh_addralign=fields[8],
            sh_entsize=fields[9],
        )


@dataclass
class Symbol:
    """One symbol-table entry (Sym).

    ``name`` is the resolved string; the on-disk ``st_name`` offset is
    managed by the writer/reader.
    """

    name: str
    value: int
    size: int = 0
    binding: int = STB_GLOBAL
    sym_type: int = STT_NOTYPE
    shndx: int = SHN_ABS

    def pack(self, name_offset: int) -> bytes:
        info = (self.binding << 4) | (self.sym_type & 0xF)
        return struct.pack(
            _SYM_FMT, name_offset, info, 0, self.shndx, self.value, self.size
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int, strtab: bytes) -> "Symbol":
        name_off, info, _other, shndx, value, size = struct.unpack_from(
            _SYM_FMT, data, offset
        )
        end = strtab.index(b"\x00", name_off)
        return cls(
            name=strtab[name_off:end].decode("utf-8", "replace"),
            value=value,
            size=size,
            binding=info >> 4,
            sym_type=info & 0xF,
            shndx=shndx,
        )


class StringTable:
    """An ELF string table under construction."""

    def __init__(self) -> None:
        self._data = bytearray(b"\x00")
        self._offsets = {"": 0}

    def add(self, name: str) -> int:
        """Intern *name*, returning its offset."""
        if name in self._offsets:
            return self._offsets[name]
        offset = len(self._data)
        self._data += name.encode("utf-8") + b"\x00"
        self._offsets[name] = offset
        return offset

    def bytes(self) -> bytes:
        return bytes(self._data)


def prot_to_pflags(prot: int) -> int:
    """Convert mmap PROT_* bits to ELF segment PF_* bits."""
    flags = 0
    if prot & 1:
        flags |= PF_R
    if prot & 2:
        flags |= PF_W
    if prot & 4:
        flags |= PF_X
    return flags


def pflags_to_prot(pflags: int) -> int:
    """Convert ELF segment PF_* bits to mmap PROT_* bits."""
    prot = 0
    if pflags & PF_R:
        prot |= 1
    if pflags & PF_W:
        prot |= 2
    if pflags & PF_X:
        prot |= 4
    return prot
