"""ELF64 object-format library.

A self-contained reader/writer for the Executable and Linkable Format,
sufficient to build the statically linked executables and relocatable
objects that ``pinball2elf`` emits.  The files produced are structurally
valid ELF64 (magic, headers, section/program header tables, symbol and
string tables); ``e_machine`` carries the PX architecture value since
the code sections contain PX instructions.
"""

from repro.elf.structs import (
    EM_PX,
    ET_EXEC,
    ET_REL,
    PF_R,
    PF_W,
    PF_X,
    PT_LOAD,
    SHF_ALLOC,
    SHF_EXECINSTR,
    SHF_WRITE,
    SHT_NOBITS,
    SHT_PROGBITS,
    SHT_STRTAB,
    SHT_SYMTAB,
    ElfHeader,
    ProgramHeader,
    SectionHeader,
    Symbol,
)
from repro.elf.writer import ElfBuilder, Section
from repro.elf.reader import ElfFile, ElfFormatError
from repro.elf.linkscript import LinkerScript, LinkerRegion

__all__ = [
    "EM_PX",
    "ET_EXEC",
    "ET_REL",
    "PF_R",
    "PF_W",
    "PF_X",
    "PT_LOAD",
    "SHF_ALLOC",
    "SHF_EXECINSTR",
    "SHF_WRITE",
    "SHT_NOBITS",
    "SHT_PROGBITS",
    "SHT_STRTAB",
    "SHT_SYMTAB",
    "ElfHeader",
    "ProgramHeader",
    "SectionHeader",
    "Symbol",
    "ElfBuilder",
    "Section",
    "ElfFile",
    "ElfFormatError",
    "LinkerScript",
    "LinkerRegion",
]
