"""ELF64 file parser.

Parses files produced by :class:`repro.elf.writer.ElfBuilder` (and any
structurally similar ELF64).  Used by the loader (program headers), by
debugging helpers (sections, symbols), and by tests that verify ELFie
structure.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.elf.structs import (
    EHDR_SIZE,
    PHDR_SIZE,
    SHDR_SIZE,
    SHT_SYMTAB,
    SYM_SIZE,
    ElfHeader,
    ProgramHeader,
    SectionHeader,
    Symbol,
)


class ElfFormatError(Exception):
    """Raised when a file is not a parseable ELF64 image."""


@dataclass
class ParsedSection:
    """A section with its resolved name and contents."""

    name: str
    header: SectionHeader
    data: bytes

    @property
    def addr(self) -> int:
        return self.header.sh_addr

    @property
    def flags(self) -> int:
        return self.header.sh_flags


class ElfFile:
    """A parsed ELF file."""

    def __init__(self, data: bytes) -> None:
        if len(data) < EHDR_SIZE:
            raise ElfFormatError("file too small for an ELF header")
        try:
            self.header = ElfHeader.unpack(data)
        except ValueError as exc:
            raise ElfFormatError(str(exc)) from exc
        self.data = bytes(data)
        self.segments: List[ProgramHeader] = []
        for i in range(self.header.e_phnum):
            offset = self.header.e_phoff + i * PHDR_SIZE
            if offset + PHDR_SIZE > len(data):
                raise ElfFormatError("program header table out of bounds")
            self.segments.append(ProgramHeader.unpack(data, offset))
        raw_sections: List[SectionHeader] = []
        for i in range(self.header.e_shnum):
            offset = self.header.e_shoff + i * SHDR_SIZE
            if offset + SHDR_SIZE > len(data):
                raise ElfFormatError("section header table out of bounds")
            raw_sections.append(SectionHeader.unpack(data, offset))
        shstrtab = b""
        if raw_sections and self.header.e_shstrndx < len(raw_sections):
            sh = raw_sections[self.header.e_shstrndx]
            shstrtab = data[sh.sh_offset : sh.sh_offset + sh.sh_size]
        self.sections: List[ParsedSection] = []
        for sh in raw_sections:
            name = ""
            if shstrtab and sh.sh_name < len(shstrtab):
                end = shstrtab.index(b"\x00", sh.sh_name)
                name = shstrtab[sh.sh_name:end].decode("utf-8", "replace")
            body = data[sh.sh_offset : sh.sh_offset + sh.sh_size]
            self.sections.append(ParsedSection(name=name, header=sh, data=body))
        self._symbols: Optional[List[Symbol]] = None

    @property
    def entry(self) -> int:
        return self.header.e_entry

    def section(self, name: str) -> ParsedSection:
        """Find a section by name."""
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError("no section named %r" % name)

    def has_section(self, name: str) -> bool:
        return any(s.name == name for s in self.sections)

    def section_names(self) -> List[str]:
        return [s.name for s in self.sections if s.name]

    def segment_data(self, segment: ProgramHeader) -> bytes:
        """File bytes backing a segment, zero-padded to p_memsz."""
        body = self.data[segment.p_offset : segment.p_offset + segment.p_filesz]
        if segment.p_memsz > segment.p_filesz:
            body += b"\x00" * (segment.p_memsz - segment.p_filesz)
        return body

    @property
    def symbols(self) -> List[Symbol]:
        """Symbols from .symtab (empty if none)."""
        if self._symbols is None:
            self._symbols = []
            for section in self.sections:
                if section.header.sh_type != SHT_SYMTAB:
                    continue
                link = section.header.sh_link
                strtab = b""
                if link < len(self.sections):
                    strtab = self.sections[link].data
                count = len(section.data) // SYM_SIZE
                for i in range(1, count):  # skip the null symbol
                    self._symbols.append(
                        Symbol.unpack(section.data, i * SYM_SIZE, strtab)
                    )
        return self._symbols

    def symbol_map(self) -> Dict[str, int]:
        """Mapping from symbol name to value (later entries win)."""
        return {symbol.name: symbol.value for symbol in self.symbols}

    def relocations(self) -> List[int]:
        """Image-base relocation vaddrs from ``.pxreloc`` (empty if none).

        Each is the link-time virtual address of an 8-byte slot holding
        an absolute in-image address; an ASLR loader adds its slide to
        the slot and to the address stored there.
        """
        for section in self.sections:
            if section.name == ".pxreloc":
                count = len(section.data) // 8
                return list(struct.unpack("<%dQ" % count, section.data[:count * 8]))
        return []

    @classmethod
    def from_path(cls, path: str) -> "ElfFile":
        with open(path, "rb") as handle:
            return cls(handle.read())
