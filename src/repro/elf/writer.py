"""ELF64 file builder.

Produces executables (with one PT_LOAD program header per allocatable
section) or relocatable objects (sections only, no program headers).
Non-allocatable sections — the trick behind the paper's stack-collision
fix (§II-B3) — are present in the file and visible in the section header
table but get no PT_LOAD entry, so the loader never maps them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List

from repro.elf.structs import (
    EHDR_SIZE,
    EM_PX,
    ET_EXEC,
    PHDR_SIZE,
    PT_LOAD,
    SHF_ALLOC,
    SHT_NULL,
    SHT_PROGBITS,
    SHT_STRTAB,
    SHT_SYMTAB,
    SYM_SIZE,
    ElfHeader,
    ProgramHeader,
    SectionHeader,
    StringTable,
    Symbol,
    prot_to_pflags,
)


@dataclass
class Section:
    """A section under construction."""

    name: str
    data: bytes
    addr: int = 0
    flags: int = 0
    sh_type: int = SHT_PROGBITS
    align: int = 1
    #: mmap-style PROT bits used to derive the segment flags.
    prot: int = 5  # PROT_READ | PROT_EXEC default

    @property
    def allocatable(self) -> bool:
        return bool(self.flags & SHF_ALLOC)


class ElfBuilder:
    """Accumulates sections and symbols, then lays out an ELF file."""

    def __init__(self, e_type: int = ET_EXEC, entry: int = 0,
                 machine: int = EM_PX) -> None:
        self.e_type = e_type
        self.entry = entry
        self.machine = machine
        self.sections: List[Section] = []
        self.symbols: List[Symbol] = []
        self._names: Dict[str, int] = {}

    def add_section(self, name: str, data: bytes, addr: int = 0,
                    flags: int = 0, sh_type: int = SHT_PROGBITS,
                    align: int = 1, prot: int = 5) -> Section:
        """Add a section; names must be unique."""
        if name in self._names:
            raise ValueError("duplicate section name %r" % name)
        section = Section(name=name, data=bytes(data), addr=addr,
                          flags=flags, sh_type=sh_type, align=align,
                          prot=prot)
        self._names[name] = len(self.sections)
        self.sections.append(section)
        return section

    def section(self, name: str) -> Section:
        return self.sections[self._names[name]]

    def has_section(self, name: str) -> bool:
        return name in self._names

    def add_symbol(self, name: str, value: int, size: int = 0,
                   sym_type: int = 0) -> None:
        """Add a global symbol with an absolute value."""
        self.symbols.append(
            Symbol(name=name, value=value, size=size, sym_type=sym_type)
        )

    def add_relocations(self, vaddrs: "List[int]") -> None:
        """Record image-base relocations in a non-alloc ``.pxreloc``.

        Each entry is the virtual address (at the link-time base) of an
        8-byte slot holding an absolute in-image address; an ASLR loader
        adds its slide to every slot.  The section is not allocatable,
        so non-randomizing loaders never see it.
        """
        if not vaddrs:
            return
        payload = struct.pack("<%dQ" % len(vaddrs), *sorted(vaddrs))
        self.add_section(".pxreloc", payload, addr=0, flags=0,
                        sh_type=SHT_PROGBITS, align=8, prot=0)

    # -- layout ---------------------------------------------------------------

    def build(self) -> bytes:
        """Lay out and serialize the ELF file."""
        shstrtab = StringTable()
        loadable = [s for s in self.sections if s.allocatable]
        phnum = len(loadable) if self.e_type == ET_EXEC else 0

        # File layout: ehdr | phdrs | section data... | symtab | strtab
        #              | shstrtab | shdrs
        offset = EHDR_SIZE + phnum * PHDR_SIZE
        placements: List[int] = []
        for section in self.sections:
            align = max(section.align, 1)
            offset += (-offset) % align
            placements.append(offset)
            offset += len(section.data)

        # Symbol table (if any symbols).
        strtab = StringTable()
        symtab_data = b""
        if self.symbols:
            records = [Symbol(name="", value=0).pack(0)]  # mandatory null sym
            for symbol in self.symbols:
                records.append(symbol.pack(strtab.add(symbol.name)))
            symtab_data = b"".join(records)
        offset += (-offset) % 8
        symtab_offset = offset
        offset += len(symtab_data)
        strtab_data = strtab.bytes() if self.symbols else b""
        strtab_offset = offset
        offset += len(strtab_data)

        # Section header string table and header table offsets.
        headers: List[SectionHeader] = [SectionHeader(sh_type=SHT_NULL)]
        for section, place in zip(self.sections, placements):
            headers.append(
                SectionHeader(
                    sh_name=shstrtab.add(section.name),
                    sh_type=section.sh_type,
                    sh_flags=section.flags,
                    sh_addr=section.addr,
                    sh_offset=place,
                    sh_size=len(section.data),
                    sh_addralign=max(section.align, 1),
                )
            )
        symtab_index = 0
        if self.symbols:
            symtab_index = len(headers)
            headers.append(
                SectionHeader(
                    sh_name=shstrtab.add(".symtab"),
                    sh_type=SHT_SYMTAB,
                    sh_offset=symtab_offset,
                    sh_size=len(symtab_data),
                    sh_link=symtab_index + 1,
                    sh_info=1,
                    sh_entsize=SYM_SIZE,
                    sh_addralign=8,
                )
            )
            headers.append(
                SectionHeader(
                    sh_name=shstrtab.add(".strtab"),
                    sh_type=SHT_STRTAB,
                    sh_offset=strtab_offset,
                    sh_size=len(strtab_data),
                )
            )
        shstrndx = len(headers)
        shstr_name = shstrtab.add(".shstrtab")
        shstrtab_data = shstrtab.bytes()
        shstrtab_offset = offset
        offset += len(shstrtab_data)
        headers.append(
            SectionHeader(
                sh_name=shstr_name,
                sh_type=SHT_STRTAB,
                sh_offset=shstrtab_offset,
                sh_size=len(shstrtab_data),
            )
        )
        offset += (-offset) % 8
        shoff = offset

        ehdr = ElfHeader(
            e_type=self.e_type,
            e_machine=self.machine,
            e_entry=self.entry,
            e_phoff=EHDR_SIZE if phnum else 0,
            e_shoff=shoff,
            e_phnum=phnum,
            e_shnum=len(headers),
            e_shstrndx=shstrndx,
        )

        # Program headers: one PT_LOAD per allocatable section.
        phdrs: List[ProgramHeader] = []
        if phnum:
            for index, section in enumerate(self.sections):
                if not section.allocatable:
                    continue
                phdrs.append(
                    ProgramHeader(
                        p_type=PT_LOAD,
                        p_flags=prot_to_pflags(section.prot),
                        p_offset=placements[index],
                        p_vaddr=section.addr,
                        p_paddr=section.addr,
                        p_filesz=len(section.data),
                        p_memsz=len(section.data),
                    )
                )

        # Serialize.
        out = bytearray()
        out += ehdr.pack()
        for phdr in phdrs:
            out += phdr.pack()
        for section, place in zip(self.sections, placements):
            out += b"\x00" * (place - len(out))
            out += section.data
        out += b"\x00" * (symtab_offset - len(out))
        out += symtab_data
        out += strtab_data
        out += b"\x00" * (shstrtab_offset - len(out))
        out += shstrtab_data
        out += b"\x00" * (shoff - len(out))
        for header in headers:
            out += header.pack()
        return bytes(out)
