"""The PX interpreter core with a lightweight hardware timing model.

This module is the "native hardware" of the reproduction: it executes PX
instructions functionally and accrues cycles through a fixed per-opcode
cost table plus a small direct-mapped last-level-cache model.  Different
program phases (streaming, pointer chasing, branchy code) therefore show
different CPI — which is what makes SimPoint region selection and its
ELFie-based validation meaningful.

Branch-misprediction cost is folded into the static opcode costs rather
than modelled dynamically; this is a documented simplification that
preserves phase-to-phase CPI contrast at a fraction of the interpreter
cost.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.isa.encoding import decode, InstructionDecodeError
from repro.isa.instructions import Instruction, Op
from repro.machine.memory import AddressSpace, PAGE_SHIFT, PageFault
from repro.observe import hooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine, Thread

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63

#: Sentinel for "no PMU trap armed".
NO_TRAP = sys.maxsize


class CpuFault(Exception):
    """Base class for synchronous CPU faults (delivered as signals)."""

    signal = 11  # SIGSEGV by default


class DivideError(CpuFault):
    """Integer divide by zero (delivered as SIGFPE)."""

    signal = 8


class InvalidOpcode(CpuFault):
    """Undecodable instruction bytes (delivered as SIGILL)."""

    signal = 4


def _signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


# -- timing model -------------------------------------------------------------

#: Cycles charged per opcode (beyond memory penalties).
_DEFAULT_COST = 1
_OP_COST_OVERRIDES = {
    Op.IMUL_RR: 3, Op.IMUL_RI: 3,
    Op.DIV_RR: 22, Op.MOD_RR: 22,
    Op.FADD: 3, Op.FSUB: 3, Op.FMUL: 4, Op.FDIV: 14, Op.FCMP: 2,
    Op.CVTSI2SD: 4, Op.CVTSD2SI: 4,
    Op.SYSCALL: 60,
    Op.JZ: 2, Op.JNZ: 2, Op.JL: 2, Op.JGE: 2, Op.JG: 2, Op.JLE: 2,
    Op.JB: 2, Op.JAE: 2,
    Op.CALL: 2, Op.CALL_R: 3, Op.RET: 2, Op.JMP_R: 3,
    Op.XADD: 8, Op.CMPXCHG: 8, Op.XCHG: 6,
    Op.XSAVE: 20, Op.XRSTOR: 20,
    Op.CPUID: 30, Op.RDTSC: 10,
    Op.PAUSE: 4,
}

OP_COST: List[int] = [_DEFAULT_COST] * 256
for _op, _cost in _OP_COST_OVERRIDES.items():
    OP_COST[int(_op)] = _cost

#: Hardware cache model: two direct-mapped levels with 64-byte lines.
#: L1 is 32 KiB (512 lines, 10-cycle miss-to-L2); the LLC is 256 KiB
#: (4096 lines, 40-cycle miss-to-memory).  The LLC takes on the order of
#: 10^5 instructions to warm, which is what makes the paper's warmup
#: tuning (Table II) observable at this reproduction's scale.
HW_L1_SETS = 512
HW_L1_PENALTY = 10
HW_LLC_SETS = 4096
HW_LLC_PENALTY = 40

#: Safety cap on superblock length (straight-line runs longer than this
#: are split; keeps quantum spills and invalidation granularity sane).
BLOCK_LIMIT = 512


class Block:
    """A decoded superblock: one straight-line run of instructions.

    ``steps`` is the pre-bound trace executed by the fast dispatch loop:
    one ``(next_pc, handler, operands, cost)`` tuple per instruction,
    with the successor PC precomputed and the handler/cost resolved so
    the hot loop does no dict lookup, enum conversion, or property
    access.  A branch (taken or not) can only ever be the final step.
    """

    __slots__ = ("entry", "steps", "n", "ends_branch", "pages")

    def __init__(self, entry: int, steps: List[tuple], ends_branch: bool,
                 pages: Tuple[int, ...]) -> None:
        self.entry = entry
        self.steps = steps
        self.n = len(steps)
        self.ends_branch = ends_branch
        self.pages = pages


class Cpu:
    """Executes PX instructions for the threads of one machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.mem: AddressSpace = machine.mem
        self.decode_cache: Dict[int, Tuple[Instruction, int]] = {}
        #: Superblock translation cache, keyed by entry PC.
        self.block_cache: Dict[int, Block] = {}
        # Page-granular invalidation indices: code page -> cached PCs /
        # block entry PCs whose bytes live (at least partly) on that page.
        self._decode_index: Dict[int, set] = {}
        self._block_index: Dict[int, set] = {}
        #: True when no instruction tools are attached (Machine keeps
        #: this in sync); selects the superblock fast path.
        self.fast_dispatch = True
        # Set by _invalidate_code_page while the fast loop is inside a
        # block whose backing bytes just changed (self-modifying code).
        self._smc_dirty = False
        self.block_hits = 0
        self.block_misses = 0
        self.block_invalidations = 0
        self._reported_hits = 0
        self._reported_misses = 0
        self._reported_invalidations = 0
        self.hw_l1: List[int] = [-1] * HW_L1_SETS
        self.hw_llc: List[int] = [-1] * HW_LLC_SETS
        #: Set by Machine.request_stop to break out of the slice loop.
        self.stop_flag: Optional[str] = None
        # Memory instrumentation hooks (set by Machine when tools want them).
        self.read_hook: Optional[Callable[["Thread", int, int], None]] = None
        self.write_hook: Optional[Callable[["Thread", int, int], None]] = None
        self._handlers = _build_handlers()
        self.mem.exec_invalidate_hook = self._invalidate_code_page

    def invalidate_decode_cache(self) -> None:
        """Drop every cached decode and superblock (full clear)."""
        if self.block_cache:
            self.block_invalidations += len(self.block_cache)
        self.decode_cache.clear()
        self.block_cache.clear()
        self._decode_index.clear()
        self._block_index.clear()
        self._smc_dirty = True

    def _invalidate_code_page(self, page: int) -> None:
        """Drop cached decodes and superblocks touching one code page.

        Called by the address space when an executable page is written,
        remapped, unmapped, or re-protected.  Sets ``_smc_dirty`` so a
        fast-path block that is currently executing stops at the next
        step boundary and re-dispatches against fresh bytes.
        """
        pcs = self._decode_index.pop(page, None)
        if pcs:
            dcache = self.decode_cache
            for pc in pcs:
                dcache.pop(pc, None)
        entries = self._block_index.pop(page, None)
        if entries:
            bcache = self.block_cache
            block_index = self._block_index
            for entry in entries:
                block = bcache.pop(entry, None)
                if block is not None:
                    for other in block.pages:
                        if other != page:
                            refs = block_index.get(other)
                            if refs is not None:
                                refs.discard(entry)
            self.block_invalidations += len(entries)
        self._smc_dirty = True

    def _decode_at(self, pc: int) -> Tuple[Instruction, int]:
        """Decode (and cache + page-index) the instruction at *pc*."""
        raw = self.mem.fetch(pc)
        try:
            insn, size = decode(raw)
        except InstructionDecodeError as exc:
            if exc.truncated:
                raise PageFault(pc, 4, mapped=False) from exc
            raise InvalidOpcode(
                "invalid instruction at 0x%x: %s" % (pc, exc)
            ) from exc
        self.decode_cache[pc] = (insn, size)
        page = pc >> PAGE_SHIFT
        self._decode_index.setdefault(page, set()).add(pc)
        last_page = (pc + size - 1) >> PAGE_SHIFT
        if last_page != page:
            self._decode_index.setdefault(last_page, set()).add(pc)
        return insn, size

    def _build_block(self, entry_pc: int) -> Optional[Block]:
        """Decode the straight-line run starting at *entry_pc*.

        The block ends at (and includes) the first branch, or at a
        SYSCALL (the kernel may remap code, block the thread, or arm the
        PMU), or before an undecodable/unfetchable instruction (the
        fault must fire only if execution actually reaches it, matching
        lazy per-instruction decode), or when the next PC leaves the
        entry page, or at ``BLOCK_LIMIT``.  Returns ``None`` when even
        the first instruction fails to decode.
        """
        dcache = self.decode_cache
        handlers = self._handlers
        op_cost = OP_COST
        entry_page = entry_pc >> PAGE_SHIFT
        pages = {entry_page}
        steps: List[tuple] = []
        ends_branch = False
        syscall_op = int(Op.SYSCALL)
        pc = entry_pc
        while True:
            entry = dcache.get(pc)
            if entry is None:
                try:
                    entry = self._decode_at(pc)
                except (PageFault, CpuFault):
                    break
            insn, size = entry
            next_pc = (pc + size) & MASK64
            pages.add((pc + size - 1) >> PAGE_SHIFT)
            opint = int(insn.op)
            steps.append((next_pc, handlers[opint], insn.operands,
                          op_cost[opint]))
            if insn.is_branch:
                ends_branch = True
                break
            if opint == syscall_op:
                break
            pc = next_pc
            if (pc >> PAGE_SHIFT) != entry_page:
                break
            if len(steps) >= BLOCK_LIMIT:
                break
        if not steps:
            return None
        block = Block(entry_pc, steps, ends_branch, tuple(pages))
        self.block_cache[entry_pc] = block
        block_index = self._block_index
        for page in block.pages:
            block_index.setdefault(page, set()).add(entry_pc)
        obs = hooks.OBS
        if obs.enabled:
            obs.observe("cpu.block_cache.block_length", block.n)
        return block

    # -- memory helpers used by handlers ----------------------------------

    def _charge(self, thread: "Thread", addr: int) -> None:
        """Charge cycles for a data access through the HW cache model."""
        line = addr >> 6
        l1 = self.hw_l1
        index = line & (HW_L1_SETS - 1)
        if l1[index] != line:
            l1[index] = line
            thread.cycles += HW_L1_PENALTY
            llc = self.hw_llc
            index = line & (HW_LLC_SETS - 1)
            if llc[index] != line:
                llc[index] = line
                thread.cycles += HW_LLC_PENALTY
                thread.llc_misses += 1

    def read64(self, thread: "Thread", addr: int) -> int:
        if self.read_hook is not None:
            self.read_hook(thread, addr, 8)
        self._charge(thread, addr)
        return int.from_bytes(self.mem.read(addr, 8), "little")

    def write64(self, thread: "Thread", addr: int, value: int) -> None:
        if self.write_hook is not None:
            self.write_hook(thread, addr, 8)
        self._charge(thread, addr)
        self.mem.write(addr, (value & MASK64).to_bytes(8, "little"))

    def _push(self, thread: "Thread", value: int) -> None:
        rsp = (thread.regs.gpr[4] - 8) & MASK64
        thread.regs.gpr[4] = rsp
        self.write64(thread, rsp, value)

    def _pop(self, thread: "Thread") -> int:
        rsp = thread.regs.gpr[4]
        value = self.read64(thread, rsp)
        thread.regs.gpr[4] = (rsp + 8) & MASK64
        return value

    # -- main loop -----------------------------------------------------------

    def run_thread(self, thread: "Thread", quantum: int) -> int:
        """Run *thread* for up to *quantum* instructions.

        Returns the number of instructions executed.  CPU faults and page
        faults propagate to the caller (the machine delivers them as
        fatal signals).  Dispatches to the superblock fast path unless an
        instruction tool is attached (exact per-instruction semantics).
        """
        if self.fast_dispatch:
            executed = self._run_fast(thread, quantum)
        else:
            executed = self._run_slow(thread, quantum)
        # Telemetry fires once per quantum, not per instruction, so the
        # disabled path costs one attribute lookup per scheduler slice.
        obs = hooks.OBS
        if obs.enabled:
            if executed:
                obs.count("cpu.instructions", executed)
            self._flush_block_stats(obs)
        return executed

    def _run_fast(self, thread: "Thread", quantum: int) -> int:
        """Superblock dispatch: execute cached blocks with all
        per-instruction bookkeeping amortised to block granularity.

        Architecturally bit-identical to :meth:`_run_slow`: per-step
        icount/cycles updates keep RDTSC and mid-block faults exact, the
        PMU guard routes the final approach to an armed trap through the
        slow path so the redirect fires at the exact icount, and quantum
        expiry spills mid-block by slicing the pre-bound trace.
        """
        machine = self.machine
        regs = thread.regs
        bcache = self.block_cache
        block_tools = machine.block_tools
        executed = 0

        while executed < quantum:
            if (self.stop_flag is not None or not thread.alive
                    or thread.blocked):
                break
            if thread.icount >= thread.icount_limit:
                # Exactly at the limit: report it and re-check (the hook
                # may clear the limit, block the thread, or stop the run;
                # Machine.on_icount_limit stops by itself otherwise).
                machine.on_icount_limit(thread)
                continue
            pc = regs.rip
            block = bcache.get(pc)
            if block is None:
                self.block_misses += 1
                block = self._build_block(pc)
                if block is None:
                    # Undecodable entry: the slow path raises the fault.
                    executed += self._run_slow(thread, 1)
                    continue
            else:
                self.block_hits += 1

            if block_tools and thread.new_block:
                thread.new_block = False
                for tool in block_tools:
                    tool.on_basic_block(machine, thread, pc)
                if self.stop_flag is not None:
                    # A tool requested a stop: one more instruction
                    # retires before the stop lands, as on the slow path.
                    executed += self._run_slow(thread, 1)
                    break

            n = block.n
            limit = thread.pmu_trap_at
            if thread.icount_limit < limit:
                limit = thread.icount_limit
            if thread.icount + n >= limit:
                # Within trap/limit range: step exactly up to the
                # boundary (both are > icount here, so room >= 1).
                executed += self._run_slow(
                    thread, min(limit - thread.icount, quantum - executed))
                continue
            remaining = quantum - executed
            steps = block.steps
            full = True
            if n > remaining:
                # Quantum expires mid-block: a branch can only be the
                # final step, so any prefix is a valid straight-line run.
                steps = steps[:remaining]
                n = remaining
                full = False

            before = thread.icount
            self._smc_dirty = False
            for next_pc, handler, operands, cost in steps:
                regs.rip = next_pc
                handler(self, thread, operands)
                thread.cycles += cost
                thread.icount += 1
                if self._smc_dirty:
                    break
            ran = thread.icount - before
            executed += ran
            if full and ran == n and block.ends_branch:
                thread.new_block = True
                thread.branches += 1
            if thread.icount >= thread.pmu_trap_at:
                # Only reachable when the trap was armed mid-block (a
                # SYSCALL, necessarily the final step) with a threshold
                # of zero; fires at the same retire boundary as the
                # per-instruction loop.
                self._pmu_redirect(thread)
            if self._smc_dirty:
                # The block we were executing was invalidated under our
                # feet (self-modifying code); re-dispatch at the current
                # rip against freshly decoded bytes.
                self._smc_dirty = False
        return executed

    def _run_slow(self, thread: "Thread", quantum: int) -> int:
        """Exact per-instruction interpretation (tools, PMU, faults)."""
        machine = self.machine
        regs = thread.regs
        dcache = self.decode_cache
        handlers = self._handlers
        op_cost = OP_COST
        instr_tools = machine.instr_tools
        block_tools = machine.block_tools
        executed = 0

        while executed < quantum:
            if thread.icount >= thread.icount_limit:
                machine.on_icount_limit(thread)
                if (self.stop_flag is not None or not thread.runnable):
                    break
                continue
            pc = regs.rip
            entry = dcache.get(pc)
            if entry is None:
                insn, size = self._decode_at(pc)
            else:
                insn, size = entry

            if block_tools and thread.new_block:
                thread.new_block = False
                for tool in block_tools:
                    tool.on_basic_block(machine, thread, pc)
            if instr_tools:
                for tool in instr_tools:
                    tool.on_instruction(machine, thread, pc, insn)

            regs.rip = (pc + size) & MASK64
            opint = int(insn.op)
            handlers[opint](self, thread, insn.operands)
            thread.cycles += op_cost[opint]
            thread.icount += 1
            executed += 1
            if insn.is_branch:
                thread.new_block = True
                thread.branches += 1
            if thread.icount >= thread.pmu_trap_at:
                self._pmu_redirect(thread)
            if not thread.alive or thread.blocked:
                break
            if self.stop_flag is not None:
                break
        return executed

    def _flush_block_stats(self, obs) -> None:
        """Emit block-cache counter deltas accrued since the last flush."""
        delta = self.block_hits - self._reported_hits
        if delta:
            obs.count("cpu.block_cache.hits", delta)
            self._reported_hits = self.block_hits
        delta = self.block_misses - self._reported_misses
        if delta:
            obs.count("cpu.block_cache.misses", delta)
            self._reported_misses = self.block_misses
        delta = self.block_invalidations - self._reported_invalidations
        if delta:
            obs.count("cpu.block_cache.invalidations", delta)
            self._reported_invalidations = self.block_invalidations

    def _pmu_redirect(self, thread: "Thread") -> None:
        """Deliver a PMU overflow: redirect to the registered handler.

        Mimics a perf_event overflow signal whose handler is the
        ``libperfle`` callback linked into the ELFie: the interrupted RIP
        is pushed (a minimal signal frame) and control transfers to the
        handler.  The counter is disarmed so the handler itself runs
        freely.
        """
        obs = hooks.OBS
        if obs.enabled:
            obs.count("cpu.pmu_traps")
        handler = thread.pmu_handler
        thread.pmu_trap_at = NO_TRAP
        thread.pmu_handler = None
        if handler is None:
            # Armed for counting only: treated as a hard stop request.
            thread.alive = False
            thread.exit_code = 0
            self.machine.on_thread_exited(thread)
            return
        self._push(thread, thread.regs.rip)
        thread.regs.rip = handler
        thread.new_block = True


# -- instruction handlers ------------------------------------------------------
# Handlers are module-level functions f(cpu, thread, operands); rip has
# already been advanced past the instruction when a handler runs.


def _set_zf_sf(thread: "Thread", result: int) -> None:
    flags = thread.regs.flags
    flags.zf = result == 0
    flags.sf = bool(result & SIGN_BIT)
    flags.cf = False
    flags.of = False


def _h_nop(cpu, thread, ops):  # noqa: ANN001
    pass


def _h_hlt(cpu, thread, ops):
    raise InvalidOpcode("hlt executed in user mode at 0x%x" % thread.regs.rip)


def _h_syscall(cpu, thread, ops):
    cpu.machine.do_syscall(thread)


def _h_pause(cpu, thread, ops):
    thread.spin_pauses += 1


def _h_marker(cpu, thread, ops):
    # Visible to tools via on_instruction; a no-op architecturally.
    pass


def _h_rdtsc(cpu, thread, ops):
    thread.regs.gpr[0] = thread.cycles & MASK64
    thread.regs.gpr[2] = (thread.cycles >> 32) & MASK64


def _h_mov_ri(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = ops[1] & MASK64


def _h_mov_rr(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = thread.regs.gpr[ops[1]]


def _ea(thread, mem_op):
    base, disp = mem_op
    return (thread.regs.gpr[base] + disp) & MASK64


def _h_ld(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = cpu.read64(thread, _ea(thread, ops[1]))


def _h_st(cpu, thread, ops):
    cpu.write64(thread, _ea(thread, ops[0]), thread.regs.gpr[ops[1]])


def _h_lea(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = _ea(thread, ops[1])


def _h_ld4(cpu, thread, ops):
    addr = _ea(thread, ops[1])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, 4)
    cpu._charge(thread, addr)
    thread.regs.gpr[ops[0]] = int.from_bytes(cpu.mem.read(addr, 4), "little")


def _h_st4(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, 4)
    cpu._charge(thread, addr)
    cpu.mem.write(addr, (thread.regs.gpr[ops[1]] & 0xFFFFFFFF).to_bytes(4, "little"))


def _h_ld1(cpu, thread, ops):
    addr = _ea(thread, ops[1])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, 1)
    cpu._charge(thread, addr)
    thread.regs.gpr[ops[0]] = cpu.mem.read(addr, 1)[0]


def _h_st1(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, 1)
    cpu._charge(thread, addr)
    cpu.mem.write(addr, bytes([thread.regs.gpr[ops[1]] & 0xFF]))


def _alu_rr(operation):
    def handler(cpu, thread, ops):
        gpr = thread.regs.gpr
        result = operation(gpr[ops[0]], gpr[ops[1]]) & MASK64
        gpr[ops[0]] = result
        _set_zf_sf(thread, result)
    return handler


def _alu_ri(operation):
    def handler(cpu, thread, ops):
        gpr = thread.regs.gpr
        result = operation(gpr[ops[0]], ops[1]) & MASK64
        gpr[ops[0]] = result
        _set_zf_sf(thread, result)
    return handler


def _h_div_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    divisor = gpr[ops[1]]
    if divisor == 0:
        raise DivideError("divide by zero at 0x%x" % thread.regs.rip)
    result = gpr[ops[0]] // divisor
    gpr[ops[0]] = result & MASK64
    _set_zf_sf(thread, result)


def _h_mod_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    divisor = gpr[ops[1]]
    if divisor == 0:
        raise DivideError("divide by zero at 0x%x" % thread.regs.rip)
    result = gpr[ops[0]] % divisor
    gpr[ops[0]] = result & MASK64
    _set_zf_sf(thread, result)


def _compare(thread, a: int, b: int) -> None:
    flags = thread.regs.flags
    flags.zf = a == b
    flags.cf = a < b                       # unsigned below
    flags.sf = _signed(a) < _signed(b)     # with of=0, JL tests exactly this
    flags.of = False


def _h_cmp_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    _compare(thread, gpr[ops[0]], gpr[ops[1]])


def _h_cmp_ri(cpu, thread, ops):
    _compare(thread, thread.regs.gpr[ops[0]], ops[1] & MASK64)


def _h_test_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    _set_zf_sf(thread, gpr[ops[0]] & gpr[ops[1]])


def _h_jmp(cpu, thread, ops):
    thread.regs.rip = (thread.regs.rip + ops[0]) & MASK64


def _cond_jump(predicate):
    def handler(cpu, thread, ops):
        if predicate(thread.regs.flags):
            thread.regs.rip = (thread.regs.rip + ops[0]) & MASK64
    return handler


def _h_jmp_r(cpu, thread, ops):
    thread.regs.rip = thread.regs.gpr[ops[0]]


def _h_jmpabs(cpu, thread, ops):
    thread.regs.rip = ops[0] & MASK64


def _h_call(cpu, thread, ops):
    cpu._push(thread, thread.regs.rip)
    thread.regs.rip = (thread.regs.rip + ops[0]) & MASK64


def _h_call_r(cpu, thread, ops):
    cpu._push(thread, thread.regs.rip)
    thread.regs.rip = thread.regs.gpr[ops[0]]


def _h_ret(cpu, thread, ops):
    thread.regs.rip = cpu._pop(thread)


def _h_push(cpu, thread, ops):
    cpu._push(thread, thread.regs.gpr[ops[0]])


def _h_pop(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = cpu._pop(thread)


def _h_pushf(cpu, thread, ops):
    cpu._push(thread, thread.regs.flags.to_word())


def _h_popf(cpu, thread, ops):
    from repro.isa.registers import Flags

    thread.regs.flags = Flags.from_word(cpu._pop(thread))


def _h_xadd(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    old = cpu.read64(thread, addr)
    cpu.write64(thread, addr, (old + thread.regs.gpr[ops[1]]) & MASK64)
    thread.regs.gpr[ops[1]] = old
    _set_zf_sf(thread, old)


def _h_cmpxchg(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    current = cpu.read64(thread, addr)
    expected = thread.regs.gpr[0]
    if current == expected:
        cpu.write64(thread, addr, thread.regs.gpr[ops[1]])
        thread.regs.flags.zf = True
    else:
        thread.regs.gpr[0] = current
        thread.regs.flags.zf = False


def _h_xchg(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    old = cpu.read64(thread, addr)
    cpu.write64(thread, addr, thread.regs.gpr[ops[1]])
    thread.regs.gpr[ops[1]] = old


def _h_fmov_xi(cpu, thread, ops):
    thread.regs.xmm[ops[0]] = float(ops[1])


def _h_fmov_xx(cpu, thread, ops):
    thread.regs.xmm[ops[0]] = thread.regs.xmm[ops[1]]


def _h_fld(cpu, thread, ops):
    import struct as _struct

    addr = _ea(thread, ops[1])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, 8)
    cpu._charge(thread, addr)
    (thread.regs.xmm[ops[0]],) = _struct.unpack("<d", cpu.mem.read(addr, 8))


def _h_fst(cpu, thread, ops):
    import struct as _struct

    addr = _ea(thread, ops[0])
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, 8)
    cpu._charge(thread, addr)
    cpu.mem.write(addr, _struct.pack("<d", thread.regs.xmm[ops[1]]))


def _farith(operation):
    def handler(cpu, thread, ops):
        xmm = thread.regs.xmm
        try:
            xmm[ops[0]] = operation(xmm[ops[0]], xmm[ops[1]])
        except (ZeroDivisionError, OverflowError):
            xmm[ops[0]] = float("inf")
    return handler


def _h_fcmp(cpu, thread, ops):
    xmm = thread.regs.xmm
    a, b = xmm[ops[0]], xmm[ops[1]]
    flags = thread.regs.flags
    flags.zf = a == b
    flags.cf = a < b
    flags.sf = a < b
    flags.of = False


def _h_cvtsi2sd(cpu, thread, ops):
    thread.regs.xmm[ops[0]] = float(_signed(thread.regs.gpr[ops[1]]))


def _h_cvtsd2si(cpu, thread, ops):
    value = thread.regs.xmm[ops[1]]
    try:
        thread.regs.gpr[ops[0]] = int(value) & MASK64
    except (ValueError, OverflowError):
        thread.regs.gpr[ops[0]] = SIGN_BIT  # x86 integer-indefinite value


def _h_xsave(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    blob = thread.regs.xsave_bytes()
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, len(blob))
    cpu.mem.write(addr, blob)


def _h_xrstor(cpu, thread, ops):
    from repro.isa.registers import XSAVE_AREA_SIZE

    addr = _ea(thread, ops[0])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, XSAVE_AREA_SIZE)
    thread.regs.xrstor_bytes(cpu.mem.read(addr, XSAVE_AREA_SIZE))


def _h_wrfsbase(cpu, thread, ops):
    thread.regs.fs_base = thread.regs.gpr[ops[0]]


def _h_wrgsbase(cpu, thread, ops):
    thread.regs.gs_base = thread.regs.gpr[ops[0]]


def _h_rdfsbase(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = thread.regs.fs_base


def _h_rdgsbase(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = thread.regs.gs_base


def _build_handlers():
    """Build the opcode-indexed dispatch table."""
    table = [None] * 256

    def set_handler(op, fn):
        table[int(op)] = fn

    import operator

    set_handler(Op.NOP, _h_nop)
    set_handler(Op.HLT, _h_hlt)
    set_handler(Op.SYSCALL, _h_syscall)
    set_handler(Op.CPUID, _h_marker)
    set_handler(Op.PAUSE, _h_pause)
    set_handler(Op.MARKER, _h_marker)
    set_handler(Op.RDTSC, _h_rdtsc)
    set_handler(Op.MOV_RI, _h_mov_ri)
    set_handler(Op.MOV_RR, _h_mov_rr)
    set_handler(Op.LD, _h_ld)
    set_handler(Op.ST, _h_st)
    set_handler(Op.LEA, _h_lea)
    set_handler(Op.LD4, _h_ld4)
    set_handler(Op.ST4, _h_st4)
    set_handler(Op.LD1, _h_ld1)
    set_handler(Op.ST1, _h_st1)
    set_handler(Op.ADD_RR, _alu_rr(operator.add))
    set_handler(Op.SUB_RR, _alu_rr(operator.sub))
    set_handler(Op.IMUL_RR, _alu_rr(operator.mul))
    set_handler(Op.DIV_RR, _h_div_rr)
    set_handler(Op.MOD_RR, _h_mod_rr)
    set_handler(Op.AND_RR, _alu_rr(operator.and_))
    set_handler(Op.OR_RR, _alu_rr(operator.or_))
    set_handler(Op.XOR_RR, _alu_rr(operator.xor))
    set_handler(Op.SHL_RR, _alu_rr(lambda a, b: a << (b & 63)))
    set_handler(Op.SHR_RR, _alu_rr(lambda a, b: a >> (b & 63)))
    set_handler(Op.ADD_RI, _alu_ri(operator.add))
    set_handler(Op.SUB_RI, _alu_ri(operator.sub))
    set_handler(Op.IMUL_RI, _alu_ri(operator.mul))
    set_handler(Op.AND_RI, _alu_ri(operator.and_))
    set_handler(Op.OR_RI, _alu_ri(operator.or_))
    set_handler(Op.XOR_RI, _alu_ri(operator.xor))
    set_handler(Op.SHL_RI, _alu_ri(lambda a, b: a << (b & 63)))
    set_handler(Op.SHR_RI, _alu_ri(lambda a, b: a >> (b & 63)))
    set_handler(Op.CMP_RR, _h_cmp_rr)
    set_handler(Op.CMP_RI, _h_cmp_ri)
    set_handler(Op.TEST_RR, _h_test_rr)
    set_handler(Op.JMP, _h_jmp)
    set_handler(Op.JZ, _cond_jump(lambda f: f.zf))
    set_handler(Op.JNZ, _cond_jump(lambda f: not f.zf))
    set_handler(Op.JL, _cond_jump(lambda f: f.sf != f.of))
    set_handler(Op.JGE, _cond_jump(lambda f: f.sf == f.of))
    set_handler(Op.JG, _cond_jump(lambda f: not f.zf and f.sf == f.of))
    set_handler(Op.JLE, _cond_jump(lambda f: f.zf or f.sf != f.of))
    set_handler(Op.JB, _cond_jump(lambda f: f.cf))
    set_handler(Op.JAE, _cond_jump(lambda f: not f.cf))
    set_handler(Op.JMP_R, _h_jmp_r)
    set_handler(Op.JMPABS, _h_jmpabs)
    set_handler(Op.CALL, _h_call)
    set_handler(Op.CALL_R, _h_call_r)
    set_handler(Op.RET, _h_ret)
    set_handler(Op.PUSH, _h_push)
    set_handler(Op.POP, _h_pop)
    set_handler(Op.PUSHF, _h_pushf)
    set_handler(Op.POPF, _h_popf)
    set_handler(Op.XADD, _h_xadd)
    set_handler(Op.CMPXCHG, _h_cmpxchg)
    set_handler(Op.XCHG, _h_xchg)
    set_handler(Op.FMOV_XI, _h_fmov_xi)
    set_handler(Op.FMOV_XX, _h_fmov_xx)
    set_handler(Op.FLD, _h_fld)
    set_handler(Op.FST, _h_fst)
    set_handler(Op.FADD, _farith(operator.add))
    set_handler(Op.FSUB, _farith(operator.sub))
    set_handler(Op.FMUL, _farith(operator.mul))
    set_handler(Op.FDIV, _farith(operator.truediv))
    set_handler(Op.FCMP, _h_fcmp)
    set_handler(Op.CVTSI2SD, _h_cvtsi2sd)
    set_handler(Op.CVTSD2SI, _h_cvtsd2si)
    set_handler(Op.XSAVE, _h_xsave)
    set_handler(Op.XRSTOR, _h_xrstor)
    set_handler(Op.WRFSBASE, _h_wrfsbase)
    set_handler(Op.WRGSBASE, _h_wrgsbase)
    set_handler(Op.RDFSBASE, _h_rdfsbase)
    set_handler(Op.RDGSBASE, _h_rdgsbase)
    return table
