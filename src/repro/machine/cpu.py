"""The PX interpreter core with a lightweight hardware timing model.

This module is the "native hardware" of the reproduction: it executes PX
instructions functionally and accrues cycles through a fixed per-opcode
cost table plus a small direct-mapped last-level-cache model.  Different
program phases (streaming, pointer chasing, branchy code) therefore show
different CPI — which is what makes SimPoint region selection and its
ELFie-based validation meaningful.

Branch-misprediction cost is folded into the static opcode costs rather
than modelled dynamically; this is a documented simplification that
preserves phase-to-phase CPI contrast at a fraction of the interpreter
cost.
"""

from __future__ import annotations

import heapq
import os
import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.isa.encoding import decode, InstructionDecodeError
from repro.isa.instructions import Instruction, Op
from repro.machine.memory import AddressSpace, PAGE_SHIFT, PageFault
from repro.observe import hooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine, Thread

MASK64 = (1 << 64) - 1
SIGN_BIT = 1 << 63

#: Sentinel for "no PMU trap armed".
NO_TRAP = sys.maxsize


class CpuFault(Exception):
    """Base class for synchronous CPU faults (delivered as signals)."""

    signal = 11  # SIGSEGV by default


class DivideError(CpuFault):
    """Integer divide by zero (delivered as SIGFPE)."""

    signal = 8


class InvalidOpcode(CpuFault):
    """Undecodable instruction bytes (delivered as SIGILL)."""

    signal = 4


def _signed(value: int) -> int:
    """Interpret a 64-bit value as signed."""
    return value - (1 << 64) if value & SIGN_BIT else value


# -- timing model -------------------------------------------------------------

#: Cycles charged per opcode (beyond memory penalties).
_DEFAULT_COST = 1
_OP_COST_OVERRIDES = {
    Op.IMUL_RR: 3, Op.IMUL_RI: 3,
    Op.DIV_RR: 22, Op.MOD_RR: 22,
    Op.FADD: 3, Op.FSUB: 3, Op.FMUL: 4, Op.FDIV: 14, Op.FCMP: 2,
    Op.CVTSI2SD: 4, Op.CVTSD2SI: 4,
    Op.SYSCALL: 60,
    Op.JZ: 2, Op.JNZ: 2, Op.JL: 2, Op.JGE: 2, Op.JG: 2, Op.JLE: 2,
    Op.JB: 2, Op.JAE: 2,
    Op.CALL: 2, Op.CALL_R: 3, Op.RET: 2, Op.JMP_R: 3,
    Op.XADD: 8, Op.CMPXCHG: 8, Op.XCHG: 6,
    Op.XSAVE: 20, Op.XRSTOR: 20,
    Op.CPUID: 30, Op.RDTSC: 10,
    Op.PAUSE: 4,
}

OP_COST: List[int] = [_DEFAULT_COST] * 256
for _op, _cost in _OP_COST_OVERRIDES.items():
    OP_COST[int(_op)] = _cost

#: Hardware cache model: two direct-mapped levels with 64-byte lines.
#: L1 is 32 KiB (512 lines, 10-cycle miss-to-L2); the LLC is 256 KiB
#: (4096 lines, 40-cycle miss-to-memory).  The LLC takes on the order of
#: 10^5 instructions to warm, which is what makes the paper's warmup
#: tuning (Table II) observable at this reproduction's scale.
HW_L1_SETS = 512
HW_L1_PENALTY = 10
HW_LLC_SETS = 4096
HW_LLC_PENALTY = 40

#: Safety cap on superblock length (straight-line runs longer than this
#: are split; keeps quantum spills and invalidation granularity sane).
BLOCK_LIMIT = 512

#: Entry caps for the translation caches.  SMC-heavy and fuzz workloads
#: churn code pages without bound; past the cap the oldest-stamped
#: eighth of the cache is evicted (eviction severs chain edges exactly
#: like page invalidation does).
BLOCK_CACHE_LIMIT = 8192
COMPILED_CACHE_LIMIT = 2048

#: Full-block executions of one block before it is handed to the
#: threaded-code compiler.
COMPILE_THRESHOLD = 4

#: Dispatch tiers, weakest to strongest.  Each tier includes everything
#: below it: "block" adds the superblock cache over per-instruction
#: interpretation, "chain" links block exits to cached successors, and
#: "compiled" additionally runs hot blocks as generated Python
#: functions.  All four are architecturally bit-identical; the knob
#: exists for differential testing (``verify fuzz --dispatch``) and for
#: benchmarking the tiers against each other.
DISPATCH_TIERS = ("slow", "block", "chain", "compiled")

_default_dispatch = os.environ.get("REPRO_DISPATCH", "compiled")
if _default_dispatch not in DISPATCH_TIERS:  # pragma: no cover
    _default_dispatch = "compiled"


def default_dispatch() -> str:
    """The dispatch tier new :class:`Cpu` instances start in."""
    return _default_dispatch


def set_default_dispatch(tier: str) -> str:
    """Set the process-wide default dispatch tier; returns the old one.

    Affects every Machine constructed afterwards (the fuzz and verify
    pipelines construct machines internally, so this is the one switch
    that retiers a whole differential run).
    """
    global _default_dispatch
    if tier not in DISPATCH_TIERS:
        raise ValueError("unknown dispatch tier: %r" % (tier,))
    previous = _default_dispatch
    _default_dispatch = tier
    return previous


#: Sentinel for "this chain slot has never been linked" (distinct from a
#: severed slot, whose pc marker is reset so it can relink).
_NO_PC = -1


class Block:
    """A decoded superblock: one straight-line run of instructions.

    ``steps`` is the pre-bound trace executed by the fast dispatch loop:
    one ``(next_pc, handler, operands, cost)`` tuple per instruction,
    with the successor PC precomputed and the handler/cost resolved so
    the hot loop does no dict lookup, enum conversion, or property
    access.  A branch (taken or not) can only ever be the final step.

    Chain slots link a block's exit directly to the successor Block so
    the fast loop flows block-to-block without re-entering the dispatch
    header: ``chain_next`` for fall-through/unconditional exits, and a
    taken/not-taken slot pair (keyed by the exit pc that selected them)
    for conditional branches.  ``in_edges`` is the reverse index: every
    predecessor that may hold a chain reference to this block, so that
    dropping the block from the cache (invalidation or eviction) can
    sever all inbound edges — a chained transition never consults
    ``block_cache``, so a stale edge would execute dead code.
    """

    __slots__ = (
        "entry", "steps", "n", "ends_branch", "ends_syscall", "pages",
        "ops", "hits", "compiled", "compiled_loop", "compiled_part",
        "no_compile", "stamp",
        "in_edges", "chain_next", "chain_taken", "chain_taken_pc",
        "chain_not_taken", "chain_not_taken_pc",
    )

    def __init__(self, entry: int, steps: List[tuple], ends_branch: bool,
                 ends_syscall: bool, pages: Tuple[int, ...],
                 ops: Tuple[int, ...]) -> None:
        self.entry = entry
        self.steps = steps
        self.n = len(steps)
        self.ends_branch = ends_branch
        self.ends_syscall = ends_syscall
        self.pages = pages
        #: Opcode ints, parallel to ``steps`` (codegen needs opcodes;
        #: steps store only the bound handlers).
        self.ops = ops
        self.hits = 0
        #: Compiled function (cpu, thread, base) -> instructions retired,
        #: or None while cold / after a codegen bailout.
        self.compiled: Optional[Callable] = None
        #: True when ``compiled`` is a self-loop variant taking an extra
        #: iteration-budget argument and spinning internally.
        self.compiled_loop = False
        #: Partial-execution variant for quantum spills: runs exactly
        #: ``_stop`` < n steps with bit-exact state at every stop point.
        self.compiled_part: Optional[Callable] = None
        self.no_compile = False
        #: LRU stamp, bumped on every dispatch-header hit.
        self.stamp = 0
        self.in_edges: List["Block"] = []
        self.chain_next: Optional["Block"] = None
        self.chain_taken: Optional["Block"] = None
        self.chain_taken_pc = _NO_PC
        self.chain_not_taken: Optional["Block"] = None
        self.chain_not_taken_pc = _NO_PC


class Cpu:
    """Executes PX instructions for the threads of one machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.mem: AddressSpace = machine.mem
        self.decode_cache: Dict[int, Tuple[Instruction, int]] = {}
        #: Superblock translation cache, keyed by entry PC.
        self.block_cache: Dict[int, Block] = {}
        # Page-granular invalidation indices: code page -> cached PCs /
        # block entry PCs whose bytes live (at least partly) on that page.
        self._decode_index: Dict[int, set] = {}
        self._block_index: Dict[int, set] = {}
        #: True when no instruction tools are attached (Machine keeps
        #: this in sync) and the dispatch tier is above "slow"; selects
        #: the superblock fast path.
        self.fast_dispatch = True
        # Set by _invalidate_code_page while the fast loop is inside a
        # block whose backing bytes just changed (self-modifying code).
        self._smc_dirty = False
        self.block_hits = 0
        self.block_misses = 0
        self.block_invalidations = 0
        self.block_evictions = 0
        self.chain_hits = 0
        self.compiled_blocks = 0
        self.compiled_calls = 0
        self.compiled_bailouts = 0
        self._reported_hits = 0
        self._reported_misses = 0
        self._reported_invalidations = 0
        self._reported_evictions = 0
        self._reported_chain_hits = 0
        self._reported_compiled_blocks = 0
        self._reported_compiled_calls = 0
        self._reported_compiled_bailouts = 0
        self._stamp = 0
        self.block_cache_limit = BLOCK_CACHE_LIMIT
        self._compiler = None  # built lazily on the first hot block
        self.hw_l1: List[int] = [-1] * HW_L1_SETS
        self.hw_llc: List[int] = [-1] * HW_LLC_SETS
        #: Set by Machine.request_stop to break out of the slice loop.
        self.stop_flag: Optional[str] = None
        #: Set by the kernel when a syscall raised or unmasked a signal:
        #: the current slice ends so delivery (a quantum-boundary event)
        #: happens promptly.  The recorded schedule keeps the shortened
        #: slice, so replay ends it at the same instruction.
        self.yield_flag = False
        # Memory instrumentation hooks (set by Machine when tools want them).
        self.read_hook: Optional[Callable[["Thread", int, int], None]] = None
        self.write_hook: Optional[Callable[["Thread", int, int], None]] = None
        self._handlers = _build_handlers()
        self.mem.exec_invalidate_hook = self._invalidate_code_page
        self.dispatch_tier = "compiled"
        self.chain_enabled = True
        self.compile_enabled = True
        self.set_dispatch(default_dispatch())

    def set_dispatch(self, tier: str) -> None:
        """Select the dispatch tier (see :data:`DISPATCH_TIERS`).

        Derives ``fast_dispatch``/``chain_enabled``/``compile_enabled``;
        per-instruction tools still force the slow path regardless of
        tier (Machine._rebuild_tool_lists owns that conjunction).
        """
        if tier not in DISPATCH_TIERS:
            raise ValueError("unknown dispatch tier: %r" % (tier,))
        self.dispatch_tier = tier
        self.chain_enabled = tier in ("chain", "compiled")
        self.compile_enabled = tier == "compiled"
        instr_tools = getattr(self.machine, "instr_tools", None)
        self.fast_dispatch = tier != "slow" and not instr_tools

    def invalidate_decode_cache(self) -> None:
        """Drop every cached decode and superblock (full clear)."""
        if self.block_cache:
            self.block_invalidations += len(self.block_cache)
        self.decode_cache.clear()
        self.block_cache.clear()
        self._decode_index.clear()
        self._block_index.clear()
        self._smc_dirty = True

    def _invalidate_code_page(self, page: int) -> None:
        """Drop cached decodes and superblocks touching one code page.

        Called by the address space when an executable page is written,
        remapped, unmapped, or re-protected.  Sets ``_smc_dirty`` so a
        fast-path block that is currently executing stops at the next
        step boundary and re-dispatches against fresh bytes.
        """
        pcs = self._decode_index.pop(page, None)
        if pcs:
            dcache = self.decode_cache
            for pc in pcs:
                dcache.pop(pc, None)
        entries = self._block_index.pop(page, None)
        if entries:
            bcache = self.block_cache
            block_index = self._block_index
            for entry in entries:
                block = bcache.pop(entry, None)
                if block is not None:
                    for other in block.pages:
                        if other != page:
                            refs = block_index.get(other)
                            if refs is not None:
                                refs.discard(entry)
                    self._unlink_block(block)
            self.block_invalidations += len(entries)
        self._smc_dirty = True

    def _unlink_block(self, block: Block) -> None:
        """Sever every chain edge into and out of *block*.

        Must run whenever a block leaves ``block_cache``: chained
        execution follows edges without consulting the cache, so any
        surviving inbound edge would keep executing the dead block.
        ``in_edges`` may hold stale predecessors (themselves already
        dropped) — the identity check makes those entries inert.
        """
        for pred in block.in_edges:
            if pred.chain_next is block:
                pred.chain_next = None
            if pred.chain_taken is block:
                pred.chain_taken = None
                pred.chain_taken_pc = _NO_PC
            if pred.chain_not_taken is block:
                pred.chain_not_taken = None
                pred.chain_not_taken_pc = _NO_PC
        block.in_edges = []
        block.chain_next = None
        block.chain_taken = None
        block.chain_taken_pc = _NO_PC
        block.chain_not_taken = None
        block.chain_not_taken_pc = _NO_PC

    def _evict_blocks(self) -> None:
        """LRU-evict the oldest-stamped eighth of the block cache."""
        bcache = self.block_cache
        count = max(1, len(bcache) // 8)
        victims = heapq.nsmallest(count, bcache.values(),
                                  key=lambda b: b.stamp)
        block_index = self._block_index
        for block in victims:
            bcache.pop(block.entry, None)
            for page in block.pages:
                refs = block_index.get(page)
                if refs is not None:
                    refs.discard(block.entry)
                    if not refs:
                        block_index.pop(page, None)
            self._unlink_block(block)
        self.block_evictions += len(victims)
        # Blocks may be mid-execution in the fast loop; force it back to
        # the dispatch header at the next boundary, same as invalidation.
        self._smc_dirty = True

    def _decode_at(self, pc: int) -> Tuple[Instruction, int]:
        """Decode (and cache + page-index) the instruction at *pc*."""
        raw = self.mem.fetch(pc)
        try:
            insn, size = decode(raw)
        except InstructionDecodeError as exc:
            if exc.truncated:
                raise PageFault(pc, 4, mapped=False) from exc
            raise InvalidOpcode(
                "invalid instruction at 0x%x: %s" % (pc, exc)
            ) from exc
        self.decode_cache[pc] = (insn, size)
        page = pc >> PAGE_SHIFT
        self._decode_index.setdefault(page, set()).add(pc)
        last_page = (pc + size - 1) >> PAGE_SHIFT
        if last_page != page:
            self._decode_index.setdefault(last_page, set()).add(pc)
        return insn, size

    def _build_block(self, entry_pc: int) -> Optional[Block]:
        """Decode the straight-line run starting at *entry_pc*.

        The block ends at (and includes) the first branch, or at a
        SYSCALL (the kernel may remap code, block the thread, or arm the
        PMU), or before an undecodable/unfetchable instruction (the
        fault must fire only if execution actually reaches it, matching
        lazy per-instruction decode), or when the next PC leaves the
        entry page, or at ``BLOCK_LIMIT``.  Returns ``None`` when even
        the first instruction fails to decode.
        """
        dcache = self.decode_cache
        handlers = self._handlers
        op_cost = OP_COST
        entry_page = entry_pc >> PAGE_SHIFT
        pages = {entry_page}
        steps: List[tuple] = []
        ops: List[int] = []
        ends_branch = False
        ends_syscall = False
        syscall_op = int(Op.SYSCALL)
        pc = entry_pc
        while True:
            entry = dcache.get(pc)
            if entry is None:
                try:
                    entry = self._decode_at(pc)
                except (PageFault, CpuFault):
                    break
            insn, size = entry
            next_pc = (pc + size) & MASK64
            pages.add((pc + size - 1) >> PAGE_SHIFT)
            opint = int(insn.op)
            steps.append((next_pc, handlers[opint], insn.operands,
                          op_cost[opint]))
            ops.append(opint)
            if insn.is_branch:
                ends_branch = True
                break
            if opint == syscall_op:
                ends_syscall = True
                break
            pc = next_pc
            if (pc >> PAGE_SHIFT) != entry_page:
                break
            if len(steps) >= BLOCK_LIMIT:
                break
        if not steps:
            return None
        if len(self.block_cache) >= self.block_cache_limit:
            self._evict_blocks()
        block = Block(entry_pc, steps, ends_branch, ends_syscall,
                      tuple(pages), tuple(ops))
        block.stamp = self._stamp = self._stamp + 1
        self.block_cache[entry_pc] = block
        block_index = self._block_index
        for page in block.pages:
            block_index.setdefault(page, set()).add(entry_pc)
        obs = hooks.OBS
        if obs.enabled:
            obs.observe("cpu.block_cache.block_length", block.n)
        return block

    # -- memory helpers used by handlers ----------------------------------

    def _charge(self, thread: "Thread", addr: int) -> None:
        """Charge cycles for a data access through the HW cache model."""
        line = addr >> 6
        l1 = self.hw_l1
        index = line & (HW_L1_SETS - 1)
        if l1[index] != line:
            l1[index] = line
            thread.cycles += HW_L1_PENALTY
            llc = self.hw_llc
            index = line & (HW_LLC_SETS - 1)
            if llc[index] != line:
                llc[index] = line
                thread.cycles += HW_LLC_PENALTY
                thread.llc_misses += 1

    def read64(self, thread: "Thread", addr: int) -> int:
        if self.read_hook is not None:
            self.read_hook(thread, addr, 8)
        self._charge(thread, addr)
        return int.from_bytes(self.mem.read(addr, 8), "little")

    def write64(self, thread: "Thread", addr: int, value: int) -> None:
        if self.write_hook is not None:
            self.write_hook(thread, addr, 8)
        self._charge(thread, addr)
        self.mem.write(addr, (value & MASK64).to_bytes(8, "little"))

    def _push(self, thread: "Thread", value: int) -> None:
        rsp = (thread.regs.gpr[4] - 8) & MASK64
        thread.regs.gpr[4] = rsp
        self.write64(thread, rsp, value)

    def _pop(self, thread: "Thread") -> int:
        rsp = thread.regs.gpr[4]
        value = self.read64(thread, rsp)
        thread.regs.gpr[4] = (rsp + 8) & MASK64
        return value

    # -- main loop -----------------------------------------------------------

    def run_thread(self, thread: "Thread", quantum: int) -> int:
        """Run *thread* for up to *quantum* instructions.

        Returns the number of instructions executed.  CPU faults and page
        faults propagate to the caller (the machine delivers them as
        fatal signals).  Dispatches to the superblock fast path unless an
        instruction tool is attached (exact per-instruction semantics).
        """
        if self.fast_dispatch:
            executed = self._run_fast(thread, quantum)
        else:
            executed = self._run_slow(thread, quantum)
        # Telemetry fires once per quantum, not per instruction, so the
        # disabled path costs one attribute lookup per scheduler slice.
        obs = hooks.OBS
        if obs.enabled:
            if executed:
                obs.count("cpu.instructions", executed)
            self._flush_block_stats(obs)
        return executed

    def _run_fast(self, thread: "Thread", quantum: int) -> int:
        """Superblock dispatch: execute cached blocks with all
        per-instruction bookkeeping amortised to block granularity.

        Architecturally bit-identical to :meth:`_run_slow`: per-step
        icount/cycles updates keep RDTSC and mid-block faults exact, the
        PMU guard routes the final approach to an armed trap through the
        slow path so the redirect fires at the exact icount, and quantum
        expiry spills mid-block by indexing a prefix of the pre-bound
        trace.

        On the "chain" and "compiled" tiers the inner loop follows
        chain edges from one block's exit straight to the cached
        successor, re-entering the dispatch header only when a chain
        boundary is hit: quantum exhaustion, an armed PMU trap or icount
        limit within reach of the next block, SMC invalidation, a
        syscall terminator (the kernel may block the thread, remap code,
        or stop the run), or a missing edge.  Block tools disable
        chaining entirely so every block entry still fires the hooks.
        """
        machine = self.machine
        regs = thread.regs
        bcache = self.block_cache
        block_tools = machine.block_tools
        chain_ok = self.chain_enabled and not block_tools
        compile_ok = (self.compile_enabled and self.read_hook is None
                      and self.write_hook is None)
        executed = 0
        # Telemetry deltas batched per quantum (flushed before return; a
        # propagating fault abandons the in-flight quantum's deltas).
        calls_delta = 0
        chain_delta = 0

        while executed < quantum:
            if (self.stop_flag is not None or not thread.alive
                    or thread.blocked):
                break
            if self.yield_flag:
                # Left set: the machine consumes it to forfeit the
                # slice remainder (not park it), so delivery runs next.
                break
            if thread.icount >= thread.icount_limit:
                # Exactly at the limit: report it and re-check (the hook
                # may clear the limit, block the thread, or stop the run;
                # Machine.on_icount_limit stops by itself otherwise).
                machine.on_icount_limit(thread)
                continue
            pc = regs.rip
            block = bcache.get(pc)
            if block is None:
                self.block_misses += 1
                block = self._build_block(pc)
                if block is None:
                    # Undecodable entry: the slow path raises the fault.
                    executed += self._run_slow(thread, 1)
                    continue
            else:
                self.block_hits += 1
                block.stamp = self._stamp = self._stamp + 1

            if block_tools and thread.new_block:
                thread.new_block = False
                for tool in block_tools:
                    tool.on_basic_block(machine, thread, pc)
                if self.stop_flag is not None:
                    # A tool requested a stop: one more instruction
                    # retires before the stop lands, as on the slow path.
                    executed += self._run_slow(thread, 1)
                    break

            # -- chained execution: run block after block without
            # re-entering the dispatch header until a boundary breaks
            # the chain.  The trap/limit bound is loop-invariant: only a
            # syscall can rearm either one, and syscall blocks always
            # break the chain.
            limit = thread.pmu_trap_at
            if thread.icount_limit < limit:
                limit = thread.icount_limit
            # Local countdown to the bound: icount advances by exactly
            # ``ran`` per block, so the guard needs no attribute reads.
            headroom = limit - thread.icount
            while True:
                n = block.n
                if n >= headroom:
                    # Within trap/limit range: step exactly up to the
                    # boundary (both are > icount here, so room >= 1).
                    executed += self._run_slow(
                        thread, min(headroom, quantum - executed))
                    break
                remaining = quantum - executed
                if n > remaining:
                    # Quantum expires mid-block: a branch can only be
                    # the final step, so any prefix is a valid
                    # straight-line run.  Hot blocks carry a compiled
                    # partial variant that runs exactly ``remaining``
                    # steps (remaining < n here, so it never reaches
                    # the terminator); the trap/limit guard above
                    # ensures no PMU boundary falls inside the prefix.
                    pfn = block.compiled_part
                    if pfn is not None and compile_ok:
                        calls_delta += 1
                        self._smc_dirty = False
                        executed += pfn(self, thread, block.entry,
                                        remaining)
                        self._smc_dirty = False
                        break
                    # Indexing (not slicing) avoids copying the trace
                    # on every spill.
                    steps = block.steps
                    before = thread.icount
                    self._smc_dirty = False
                    for index in range(remaining):
                        next_pc, handler, operands, cost = steps[index]
                        regs.rip = next_pc
                        handler(self, thread, operands)
                        thread.cycles += cost
                        thread.icount += 1
                        if self._smc_dirty:
                            self._smc_dirty = False
                            break
                    executed += thread.icount - before
                    break

                fn = block.compiled
                if fn is None and compile_ok and not block.no_compile:
                    count = block.hits = block.hits + 1
                    if count >= COMPILE_THRESHOLD:
                        fn = self._compile_block(block)
                self._smc_dirty = False
                if fn is not None and compile_ok:
                    calls_delta += 1
                    if block.compiled_loop and chain_ok:
                        # Self-loop variant: spin inside the generated
                        # code, bounded so no iteration can cross the
                        # quantum or the trap/limit headroom.  Both
                        # bounds are >= 1 here (n <= remaining and
                        # n < headroom).
                        k = remaining // n
                        h = (headroom - 1) // n
                        if h < k:
                            k = h
                        ran = fn(self, thread, block.entry, k)
                    else:
                        ran = fn(self, thread, block.entry)
                else:
                    before = thread.icount
                    for next_pc, handler, operands, cost in block.steps:
                        regs.rip = next_pc
                        handler(self, thread, operands)
                        thread.cycles += cost
                        thread.icount += 1
                        if self._smc_dirty:
                            break
                    ran = thread.icount - before
                executed += ran
                headroom -= ran
                if ran != n:
                    full, part = divmod(ran, n)
                    if part or full == 0:
                        # The block was invalidated under our feet
                        # (self-modifying code) and stopped at a step
                        # boundary; re-dispatch at the current rip
                        # against freshly decoded bytes.
                        self._smc_dirty = False
                        break
                    # A compiled self-loop spun `full` complete
                    # iterations: account the branch retires and the
                    # fused self-transitions.
                    thread.new_block = True
                    thread.branches += full
                    chain_delta += full - 1
                else:
                    if block.ends_branch:
                        thread.new_block = True
                        thread.branches += 1
                    if block.ends_syscall:
                        # Only a syscall can move the trap/limit bound
                        # under the chain; the loop-invariant guard
                        # covers every other block.
                        if thread.icount >= thread.pmu_trap_at:
                            # The syscall armed a trap with a threshold
                            # of zero; fires at the same retire boundary
                            # as the per-instruction loop.
                            self._pmu_redirect(thread)
                        break
                if self._smc_dirty:
                    # Final step invalidated its own block; rip is
                    # already the architectural successor.
                    self._smc_dirty = False
                    break
                if not chain_ok or executed >= quantum:
                    break

                # -- resolve the chain edge for the exit we just took.
                rip = regs.rip
                if block.ends_branch:
                    if rip == block.chain_taken_pc:
                        nxt = block.chain_taken
                    elif rip == block.chain_not_taken_pc:
                        nxt = block.chain_not_taken
                    else:
                        nxt = bcache.get(rip)
                        if nxt is None:
                            break
                        if rip == block.steps[-1][0]:
                            block.chain_not_taken = nxt
                            block.chain_not_taken_pc = rip
                        else:
                            # Taken edge; indirect branches relink this
                            # slot as their target moves.
                            block.chain_taken = nxt
                            block.chain_taken_pc = rip
                        nxt.in_edges.append(block)
                else:
                    nxt = block.chain_next
                    if nxt is None:
                        nxt = bcache.get(rip)
                        if nxt is None:
                            break
                        block.chain_next = nxt
                        nxt.in_edges.append(block)
                if nxt is None:
                    # Severed edge (pc marker survives an unlink only
                    # until the slot relinks); fall back to the header.
                    break
                chain_delta += 1
                block = nxt
        if calls_delta:
            self.compiled_calls += calls_delta
        if chain_delta:
            self.chain_hits += chain_delta
        return executed

    def _compile_block(self, block: Block) -> Optional[Callable]:
        """Hand a hot block to the threaded-code compiler.

        Returns the compiled function (also attached to the block), or
        None after marking the block uncompilable (unsupported handler,
        non-monotonic layout).
        """
        compiler = self._compiler
        if compiler is None:
            from repro.machine.compile import BlockCompiler

            compiler = self._compiler = BlockCompiler()
        fn = compiler.compile_block(block)
        if fn is None:
            block.no_compile = True
            self.compiled_bailouts += 1
            return None
        block.compiled = fn
        block.compiled_loop = getattr(fn, "__px_loop__", False)
        block.compiled_part = getattr(fn, "__px_part__", None)
        self.compiled_blocks += 1
        return fn

    def _run_slow(self, thread: "Thread", quantum: int) -> int:
        """Exact per-instruction interpretation (tools, PMU, faults)."""
        machine = self.machine
        regs = thread.regs
        dcache = self.decode_cache
        handlers = self._handlers
        op_cost = OP_COST
        instr_tools = machine.instr_tools
        block_tools = machine.block_tools
        executed = 0

        while executed < quantum:
            if thread.icount >= thread.icount_limit:
                machine.on_icount_limit(thread)
                if (self.stop_flag is not None or not thread.runnable):
                    break
                continue
            pc = regs.rip
            entry = dcache.get(pc)
            if entry is None:
                insn, size = self._decode_at(pc)
            else:
                insn, size = entry

            if block_tools and thread.new_block:
                thread.new_block = False
                for tool in block_tools:
                    tool.on_basic_block(machine, thread, pc)
            if instr_tools:
                for tool in instr_tools:
                    tool.on_instruction(machine, thread, pc, insn)

            regs.rip = (pc + size) & MASK64
            opint = int(insn.op)
            handlers[opint](self, thread, insn.operands)
            thread.cycles += op_cost[opint]
            thread.icount += 1
            executed += 1
            if insn.is_branch:
                thread.new_block = True
                thread.branches += 1
            if thread.icount >= thread.pmu_trap_at:
                self._pmu_redirect(thread)
            if not thread.alive or thread.blocked:
                break
            if self.yield_flag:
                break
            if self.stop_flag is not None:
                break
        return executed

    def _flush_block_stats(self, obs) -> None:
        """Emit block-cache counter deltas accrued since the last flush."""
        delta = self.block_hits - self._reported_hits
        if delta:
            obs.count("cpu.block_cache.hits", delta)
            self._reported_hits = self.block_hits
        delta = self.block_misses - self._reported_misses
        if delta:
            obs.count("cpu.block_cache.misses", delta)
            self._reported_misses = self.block_misses
        delta = self.block_invalidations - self._reported_invalidations
        if delta:
            obs.count("cpu.block_cache.invalidations", delta)
            self._reported_invalidations = self.block_invalidations
        delta = self.block_evictions - self._reported_evictions
        if delta:
            obs.count("cpu.block_cache.evictions", delta)
            self._reported_evictions = self.block_evictions
        delta = self.chain_hits - self._reported_chain_hits
        if delta:
            obs.count("cpu.block_cache.chain_hits", delta)
            self._reported_chain_hits = self.chain_hits
        delta = self.compiled_blocks - self._reported_compiled_blocks
        if delta:
            obs.count("cpu.compiled.blocks", delta)
            self._reported_compiled_blocks = self.compiled_blocks
        delta = self.compiled_calls - self._reported_compiled_calls
        if delta:
            obs.count("cpu.compiled.calls", delta)
            self._reported_compiled_calls = self.compiled_calls
        delta = self.compiled_bailouts - self._reported_compiled_bailouts
        if delta:
            obs.count("cpu.compiled.bailouts", delta)
            self._reported_compiled_bailouts = self.compiled_bailouts

    def _pmu_redirect(self, thread: "Thread") -> None:
        """Deliver a PMU overflow: redirect to the registered handler.

        Mimics a perf_event overflow signal whose handler is the
        ``libperfle`` callback linked into the ELFie: the interrupted RIP
        is pushed (a minimal signal frame) and control transfers to the
        handler.  The counter is disarmed so the handler itself runs
        freely.
        """
        obs = hooks.OBS
        if obs.enabled:
            obs.count("cpu.pmu_traps")
        handler = thread.pmu_handler
        thread.pmu_trap_at = NO_TRAP
        thread.pmu_handler = None
        if handler is None:
            # Armed for counting only: treated as a hard stop request.
            thread.alive = False
            thread.exit_code = 0
            self.machine.on_thread_exited(thread)
            return
        self._push(thread, thread.regs.rip)
        thread.regs.rip = handler
        thread.new_block = True


# -- instruction handlers ------------------------------------------------------
# Handlers are module-level functions f(cpu, thread, operands); rip has
# already been advanced past the instruction when a handler runs.


def _set_zf_sf(thread: "Thread", result: int) -> None:
    flags = thread.regs.flags
    flags.zf = result == 0
    flags.sf = bool(result & SIGN_BIT)
    flags.cf = False
    flags.of = False


def _h_nop(cpu, thread, ops):  # noqa: ANN001
    pass


def _h_hlt(cpu, thread, ops):
    raise InvalidOpcode("hlt executed in user mode at 0x%x" % thread.regs.rip)


def _h_syscall(cpu, thread, ops):
    cpu.machine.do_syscall(thread)


def _h_pause(cpu, thread, ops):
    thread.spin_pauses += 1


def _h_marker(cpu, thread, ops):
    # Visible to tools via on_instruction; a no-op architecturally.
    pass


def _h_rdtsc(cpu, thread, ops):
    thread.regs.gpr[0] = thread.cycles & MASK64
    thread.regs.gpr[2] = (thread.cycles >> 32) & MASK64


def _h_mov_ri(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = ops[1] & MASK64


def _h_mov_rr(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = thread.regs.gpr[ops[1]]


def _ea(thread, mem_op):
    base, disp = mem_op
    return (thread.regs.gpr[base] + disp) & MASK64


def _h_ld(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = cpu.read64(thread, _ea(thread, ops[1]))


def _h_st(cpu, thread, ops):
    cpu.write64(thread, _ea(thread, ops[0]), thread.regs.gpr[ops[1]])


def _h_lea(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = _ea(thread, ops[1])


def _h_ld4(cpu, thread, ops):
    addr = _ea(thread, ops[1])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, 4)
    cpu._charge(thread, addr)
    thread.regs.gpr[ops[0]] = int.from_bytes(cpu.mem.read(addr, 4), "little")


def _h_st4(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, 4)
    cpu._charge(thread, addr)
    cpu.mem.write(addr, (thread.regs.gpr[ops[1]] & 0xFFFFFFFF).to_bytes(4, "little"))


def _h_ld1(cpu, thread, ops):
    addr = _ea(thread, ops[1])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, 1)
    cpu._charge(thread, addr)
    thread.regs.gpr[ops[0]] = cpu.mem.read(addr, 1)[0]


def _h_st1(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, 1)
    cpu._charge(thread, addr)
    cpu.mem.write(addr, bytes([thread.regs.gpr[ops[1]] & 0xFF]))


def _alu_rr(operation):
    def handler(cpu, thread, ops):
        gpr = thread.regs.gpr
        result = operation(gpr[ops[0]], gpr[ops[1]]) & MASK64
        gpr[ops[0]] = result
        _set_zf_sf(thread, result)
    return handler


def _alu_ri(operation):
    def handler(cpu, thread, ops):
        gpr = thread.regs.gpr
        result = operation(gpr[ops[0]], ops[1]) & MASK64
        gpr[ops[0]] = result
        _set_zf_sf(thread, result)
    return handler


def _h_div_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    divisor = gpr[ops[1]]
    if divisor == 0:
        raise DivideError("divide by zero at 0x%x" % thread.regs.rip)
    result = gpr[ops[0]] // divisor
    gpr[ops[0]] = result & MASK64
    _set_zf_sf(thread, result)


def _h_mod_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    divisor = gpr[ops[1]]
    if divisor == 0:
        raise DivideError("divide by zero at 0x%x" % thread.regs.rip)
    result = gpr[ops[0]] % divisor
    gpr[ops[0]] = result & MASK64
    _set_zf_sf(thread, result)


def _compare(thread, a: int, b: int) -> None:
    flags = thread.regs.flags
    flags.zf = a == b
    flags.cf = a < b                       # unsigned below
    flags.sf = _signed(a) < _signed(b)     # with of=0, JL tests exactly this
    flags.of = False


def _h_cmp_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    _compare(thread, gpr[ops[0]], gpr[ops[1]])


def _h_cmp_ri(cpu, thread, ops):
    _compare(thread, thread.regs.gpr[ops[0]], ops[1] & MASK64)


def _h_test_rr(cpu, thread, ops):
    gpr = thread.regs.gpr
    _set_zf_sf(thread, gpr[ops[0]] & gpr[ops[1]])


def _h_jmp(cpu, thread, ops):
    thread.regs.rip = (thread.regs.rip + ops[0]) & MASK64


def _cond_jump(predicate):
    def handler(cpu, thread, ops):
        if predicate(thread.regs.flags):
            thread.regs.rip = (thread.regs.rip + ops[0]) & MASK64
    return handler


def _h_jmp_r(cpu, thread, ops):
    thread.regs.rip = thread.regs.gpr[ops[0]]


def _h_jmpabs(cpu, thread, ops):
    thread.regs.rip = ops[0] & MASK64


def _h_call(cpu, thread, ops):
    cpu._push(thread, thread.regs.rip)
    thread.regs.rip = (thread.regs.rip + ops[0]) & MASK64


def _h_call_r(cpu, thread, ops):
    cpu._push(thread, thread.regs.rip)
    thread.regs.rip = thread.regs.gpr[ops[0]]


def _h_ret(cpu, thread, ops):
    thread.regs.rip = cpu._pop(thread)


def _h_push(cpu, thread, ops):
    cpu._push(thread, thread.regs.gpr[ops[0]])


def _h_pop(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = cpu._pop(thread)


def _h_pushf(cpu, thread, ops):
    cpu._push(thread, thread.regs.flags.to_word())


def _h_popf(cpu, thread, ops):
    from repro.isa.registers import Flags

    thread.regs.flags = Flags.from_word(cpu._pop(thread))


def _h_xadd(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    old = cpu.read64(thread, addr)
    cpu.write64(thread, addr, (old + thread.regs.gpr[ops[1]]) & MASK64)
    thread.regs.gpr[ops[1]] = old
    _set_zf_sf(thread, old)


def _h_cmpxchg(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    current = cpu.read64(thread, addr)
    expected = thread.regs.gpr[0]
    if current == expected:
        cpu.write64(thread, addr, thread.regs.gpr[ops[1]])
        thread.regs.flags.zf = True
    else:
        thread.regs.gpr[0] = current
        thread.regs.flags.zf = False


def _h_xchg(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    old = cpu.read64(thread, addr)
    cpu.write64(thread, addr, thread.regs.gpr[ops[1]])
    thread.regs.gpr[ops[1]] = old


def _h_fmov_xi(cpu, thread, ops):
    thread.regs.xmm[ops[0]] = float(ops[1])


def _h_fmov_xx(cpu, thread, ops):
    thread.regs.xmm[ops[0]] = thread.regs.xmm[ops[1]]


def _h_fld(cpu, thread, ops):
    import struct as _struct

    addr = _ea(thread, ops[1])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, 8)
    cpu._charge(thread, addr)
    (thread.regs.xmm[ops[0]],) = _struct.unpack("<d", cpu.mem.read(addr, 8))


def _h_fst(cpu, thread, ops):
    import struct as _struct

    addr = _ea(thread, ops[0])
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, 8)
    cpu._charge(thread, addr)
    cpu.mem.write(addr, _struct.pack("<d", thread.regs.xmm[ops[1]]))


def _farith(operation):
    def handler(cpu, thread, ops):
        xmm = thread.regs.xmm
        try:
            xmm[ops[0]] = operation(xmm[ops[0]], xmm[ops[1]])
        except (ZeroDivisionError, OverflowError):
            xmm[ops[0]] = float("inf")
    return handler


def _h_fcmp(cpu, thread, ops):
    xmm = thread.regs.xmm
    a, b = xmm[ops[0]], xmm[ops[1]]
    flags = thread.regs.flags
    flags.zf = a == b
    flags.cf = a < b
    flags.sf = a < b
    flags.of = False


def _h_cvtsi2sd(cpu, thread, ops):
    thread.regs.xmm[ops[0]] = float(_signed(thread.regs.gpr[ops[1]]))


def _h_cvtsd2si(cpu, thread, ops):
    value = thread.regs.xmm[ops[1]]
    try:
        thread.regs.gpr[ops[0]] = int(value) & MASK64
    except (ValueError, OverflowError):
        thread.regs.gpr[ops[0]] = SIGN_BIT  # x86 integer-indefinite value


def _h_xsave(cpu, thread, ops):
    addr = _ea(thread, ops[0])
    blob = thread.regs.xsave_bytes()
    if cpu.write_hook is not None:
        cpu.write_hook(thread, addr, len(blob))
    cpu.mem.write(addr, blob)


def _h_xrstor(cpu, thread, ops):
    from repro.isa.registers import XSAVE_AREA_SIZE

    addr = _ea(thread, ops[0])
    if cpu.read_hook is not None:
        cpu.read_hook(thread, addr, XSAVE_AREA_SIZE)
    thread.regs.xrstor_bytes(cpu.mem.read(addr, XSAVE_AREA_SIZE))


def _h_wrfsbase(cpu, thread, ops):
    thread.regs.fs_base = thread.regs.gpr[ops[0]]


def _h_wrgsbase(cpu, thread, ops):
    thread.regs.gs_base = thread.regs.gpr[ops[0]]


def _h_rdfsbase(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = thread.regs.fs_base


def _h_rdgsbase(cpu, thread, ops):
    thread.regs.gpr[ops[0]] = thread.regs.gs_base


def _build_handlers():
    """Build the opcode-indexed dispatch table."""
    table = [None] * 256

    def set_handler(op, fn):
        table[int(op)] = fn

    import operator

    set_handler(Op.NOP, _h_nop)
    set_handler(Op.HLT, _h_hlt)
    set_handler(Op.SYSCALL, _h_syscall)
    set_handler(Op.CPUID, _h_marker)
    set_handler(Op.PAUSE, _h_pause)
    set_handler(Op.MARKER, _h_marker)
    set_handler(Op.RDTSC, _h_rdtsc)
    set_handler(Op.MOV_RI, _h_mov_ri)
    set_handler(Op.MOV_RR, _h_mov_rr)
    set_handler(Op.LD, _h_ld)
    set_handler(Op.ST, _h_st)
    set_handler(Op.LEA, _h_lea)
    set_handler(Op.LD4, _h_ld4)
    set_handler(Op.ST4, _h_st4)
    set_handler(Op.LD1, _h_ld1)
    set_handler(Op.ST1, _h_st1)
    set_handler(Op.ADD_RR, _alu_rr(operator.add))
    set_handler(Op.SUB_RR, _alu_rr(operator.sub))
    set_handler(Op.IMUL_RR, _alu_rr(operator.mul))
    set_handler(Op.DIV_RR, _h_div_rr)
    set_handler(Op.MOD_RR, _h_mod_rr)
    set_handler(Op.AND_RR, _alu_rr(operator.and_))
    set_handler(Op.OR_RR, _alu_rr(operator.or_))
    set_handler(Op.XOR_RR, _alu_rr(operator.xor))
    set_handler(Op.SHL_RR, _alu_rr(lambda a, b: a << (b & 63)))
    set_handler(Op.SHR_RR, _alu_rr(lambda a, b: a >> (b & 63)))
    set_handler(Op.ADD_RI, _alu_ri(operator.add))
    set_handler(Op.SUB_RI, _alu_ri(operator.sub))
    set_handler(Op.IMUL_RI, _alu_ri(operator.mul))
    set_handler(Op.AND_RI, _alu_ri(operator.and_))
    set_handler(Op.OR_RI, _alu_ri(operator.or_))
    set_handler(Op.XOR_RI, _alu_ri(operator.xor))
    set_handler(Op.SHL_RI, _alu_ri(lambda a, b: a << (b & 63)))
    set_handler(Op.SHR_RI, _alu_ri(lambda a, b: a >> (b & 63)))
    set_handler(Op.CMP_RR, _h_cmp_rr)
    set_handler(Op.CMP_RI, _h_cmp_ri)
    set_handler(Op.TEST_RR, _h_test_rr)
    set_handler(Op.JMP, _h_jmp)
    set_handler(Op.JZ, _cond_jump(lambda f: f.zf))
    set_handler(Op.JNZ, _cond_jump(lambda f: not f.zf))
    set_handler(Op.JL, _cond_jump(lambda f: f.sf != f.of))
    set_handler(Op.JGE, _cond_jump(lambda f: f.sf == f.of))
    set_handler(Op.JG, _cond_jump(lambda f: not f.zf and f.sf == f.of))
    set_handler(Op.JLE, _cond_jump(lambda f: f.zf or f.sf != f.of))
    set_handler(Op.JB, _cond_jump(lambda f: f.cf))
    set_handler(Op.JAE, _cond_jump(lambda f: not f.cf))
    set_handler(Op.JMP_R, _h_jmp_r)
    set_handler(Op.JMPABS, _h_jmpabs)
    set_handler(Op.CALL, _h_call)
    set_handler(Op.CALL_R, _h_call_r)
    set_handler(Op.RET, _h_ret)
    set_handler(Op.PUSH, _h_push)
    set_handler(Op.POP, _h_pop)
    set_handler(Op.PUSHF, _h_pushf)
    set_handler(Op.POPF, _h_popf)
    set_handler(Op.XADD, _h_xadd)
    set_handler(Op.CMPXCHG, _h_cmpxchg)
    set_handler(Op.XCHG, _h_xchg)
    set_handler(Op.FMOV_XI, _h_fmov_xi)
    set_handler(Op.FMOV_XX, _h_fmov_xx)
    set_handler(Op.FLD, _h_fld)
    set_handler(Op.FST, _h_fst)
    set_handler(Op.FADD, _farith(operator.add))
    set_handler(Op.FSUB, _farith(operator.sub))
    set_handler(Op.FMUL, _farith(operator.mul))
    set_handler(Op.FDIV, _farith(operator.truediv))
    set_handler(Op.FCMP, _h_fcmp)
    set_handler(Op.CVTSI2SD, _h_cvtsi2sd)
    set_handler(Op.CVTSD2SI, _h_cvtsd2si)
    set_handler(Op.XSAVE, _h_xsave)
    set_handler(Op.XRSTOR, _h_xrstor)
    set_handler(Op.WRFSBASE, _h_wrfsbase)
    set_handler(Op.WRGSBASE, _h_wrgsbase)
    set_handler(Op.RDFSBASE, _h_rdfsbase)
    set_handler(Op.RDGSBASE, _h_rdgsbase)
    return table
