"""Preemptive round-robin thread scheduler with seeded quantum jitter.

The scheduler's random seed is the platform's source of run-to-run
variation: two native runs (or two ELFie runs) with different seeds can
interleave threads differently, which is exactly the non-determinism the
paper attributes to ELFies.  The PinPlay logger records the realized
schedule as a sequence of :class:`ScheduleSlice` records, and the
replayer feeds them back through :class:`Scheduler.replay` to get
constrained (deterministic) replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence


@dataclass(frozen=True, slots=True)
class ScheduleSlice:
    """One scheduling decision: run thread *tid* for *quantum* instructions."""

    tid: int
    quantum: int


class Scheduler:
    """Chooses which runnable thread executes next and for how long.

    In free-run mode, threads are rotated round-robin with a quantum
    jittered around ``base_quantum`` by a seeded RNG.  In replay mode, a
    recorded slice log is consumed instead, reproducing the captured
    interleaving exactly.
    """

    def __init__(self, seed: int = 0, base_quantum: int = 64,
                 jitter: float = 0.5) -> None:
        if base_quantum <= 0:
            raise ValueError("base_quantum must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.seed = seed
        self.base_quantum = base_quantum
        self.jitter = jitter
        self._rng = random.Random(seed)
        # randint(-s, s) == -s + _randbelow(2s + 1) draw-for-draw; going
        # straight to _randbelow skips randrange's argument plumbing on
        # the per-quantum hot path while consuming identical RNG state.
        self._randbelow = getattr(self._rng, "_randbelow", None)
        self._next_index = 0
        self._replay_log: Optional[List[ScheduleSlice]] = None
        self._replay_pos = 0
        self._replay_pending: Optional[ScheduleSlice] = None
        #: True while the parked remainder belongs to a still-runnable
        #: thread (a budget/stop cut, not a block).  The machine defers
        #: signal delivery while this is set so a budget-stepped run
        #: delivers at the same retire boundaries as a straight run.
        self._pending_resumable = False
        self.trace: List[ScheduleSlice] = []
        self.record = False

    def replay(self, log: Sequence[ScheduleSlice]) -> None:
        """Switch to replay mode, consuming *log* slice by slice."""
        self._replay_log = list(log)
        self._replay_pos = 0
        self._replay_pending = None
        self._pending_resumable = False

    @property
    def mid_slice(self) -> bool:
        """True when a cut slice's remainder from a still-runnable thread
        is parked (the logical quantum has not finished yet)."""
        return self._replay_pending is not None and self._pending_resumable

    @property
    def replaying(self) -> bool:
        return self._replay_log is not None

    @property
    def replay_exhausted(self) -> bool:
        """True when a replay log has been fully consumed."""
        return (self._replay_log is not None
                and self._replay_pending is None
                and self._replay_pos >= len(self._replay_log))

    def pick(self, runnable_tids: Iterable[int]) -> ScheduleSlice:
        """Choose the next thread and quantum from *runnable_tids*.

        Raises ``RuntimeError`` if no thread is runnable (caller must
        detect deadlock) or if a replay log names a non-runnable thread.
        """
        tids = sorted(runnable_tids)
        if not tids:
            raise RuntimeError("no runnable threads (deadlock)")
        if self._replay_pending is not None:
            # Remainder of a slice that was interrupted early (an epoch
            # boundary or snapshot point clamped the quantum): finish it
            # before drawing the next decision, so a stepped or
            # suspended/resumed run sees the same interleaving as an
            # uninterrupted one.
            entry = self._replay_pending
            self._replay_pending = None
            self._pending_resumable = False
            if entry.tid in tids:
                if self.record:
                    self.trace.append(entry)
                return entry
            # The thread blocked or exited at the interruption point;
            # the trim semantics drop the rest of the slice.
        if self._replay_log is not None:
            if self._replay_pos >= len(self._replay_log):
                # Log exhausted: fall through to free-run (used by
                # injection-less replay past the recorded region).
                pass
            else:
                entry = self._replay_log[self._replay_pos]
                self._replay_pos += 1
                if entry.tid not in tids:
                    raise RuntimeError(
                        "replay schedule names thread %d which is not runnable"
                        % entry.tid
                    )
                if self.record:
                    self.trace.append(entry)
                return entry
        # round-robin with jittered quantum
        candidates = [tid for tid in tids if tid >= self._next_index]
        tid = candidates[0] if candidates else tids[0]
        self._next_index = tid + 1
        if self.jitter:
            spread = int(self.base_quantum * self.jitter)
            if spread and self._randbelow is not None:
                quantum = (self.base_quantum - spread
                           + self._randbelow(2 * spread + 1))
            else:
                quantum = self.base_quantum + self._rng.randint(
                    -spread, spread)
        else:
            quantum = self.base_quantum
        quantum = max(1, quantum)
        chosen = ScheduleSlice(tid=tid, quantum=quantum)
        if self.record:
            self.trace.append(chosen)
        return chosen

    def note_partial(self, slice_: ScheduleSlice, executed: int,
                     resumable: bool = False) -> None:
        """Adjust the recorded trace when a slice ended early.

        A thread can exit, block, or hit a region boundary before its
        quantum expires; the recorded schedule must reflect the executed
        length so replay stays aligned.

        With *resumable* (the thread is still runnable — the cut came
        from an instruction budget or a stop request, not from the
        thread itself), the unexecuted remainder is parked so the next
        ``pick()`` finishes the slice first.  This makes budgeted
        stepping — epoch sweeps, BBV slices, snapshot suspend points —
        schedule-transparent: the interleaving matches an uninterrupted
        run, in free-run and replay mode alike.
        """
        if self.record and self.trace and self.trace[-1] is slice_:
            self.trace[-1] = ScheduleSlice(tid=slice_.tid, quantum=executed)
        if executed < slice_.quantum and (resumable
                                          or self._replay_log is not None):
            self._replay_pending = ScheduleSlice(
                tid=slice_.tid, quantum=slice_.quantum - executed)
            self._pending_resumable = resumable
