"""Simulated hardware performance-monitoring unit (PMU).

The counters themselves live on :class:`~repro.machine.machine.Thread`
(``icount``, ``cycles``, ``llc_misses``, ``branches``) so the interpreter
hot path pays nothing for them.  This module provides the user-facing
facade: named events, perf-stat-style reads, and the overflow-arming
primitive behind the paper's graceful-exit mechanism (one counter per
thread counting retired instructions, with a callback at the recorded
region instruction count — paper §I-B, §II-C1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine, Thread


class PerfEvent(enum.Enum):
    """Countable hardware events."""

    INSTRUCTIONS_RETIRED = "instructions"
    CYCLES = "cycles"
    LLC_MISSES = "llc_misses"
    BRANCHES = "branches"


_THREAD_FIELD = {
    PerfEvent.INSTRUCTIONS_RETIRED: "icount",
    PerfEvent.CYCLES: "cycles",
    PerfEvent.LLC_MISSES: "llc_misses",
    PerfEvent.BRANCHES: "branches",
}


@dataclass
class PerfCounter:
    """A snapshot-style counter: reads the delta since it was started."""

    thread: "Thread"
    event: PerfEvent
    base: int = 0

    def start(self) -> None:
        """Reset the counter's reference point to now."""
        self.base = getattr(self.thread, _THREAD_FIELD[self.event])

    def read(self) -> int:
        """Event count since :meth:`start` (or thread start)."""
        return getattr(self.thread, _THREAD_FIELD[self.event]) - self.base


class PMU:
    """Performance-monitoring facade over a machine's threads."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine

    def counter(self, tid: int, event: PerfEvent) -> PerfCounter:
        """Create a delta counter for (tid, event), started at zero."""
        thread = self._thread(tid)
        counter = PerfCounter(thread=thread, event=event)
        return counter

    def _thread(self, tid: int) -> "Thread":
        thread = self.machine.threads.get(tid)
        if thread is None:
            raise KeyError("no such thread: %d" % tid)
        return thread

    def read(self, tid: int, event: PerfEvent) -> int:
        """Absolute value of a thread's counter."""
        return getattr(self._thread(tid), _THREAD_FIELD[event])

    def arm(self, tid: int, threshold: int,
            handler_address: Optional[int] = None) -> None:
        """Arm the retired-instruction overflow trap for a thread.

        At ``current icount + threshold`` the CPU redirects the thread to
        *handler_address* (a signal-handler analog); with no handler the
        thread is terminated at the threshold.  This is the substrate
        behind ``libperfle``'s graceful exit.
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        thread = self._thread(tid)
        thread.pmu_trap_at = thread.icount + threshold
        thread.pmu_handler = handler_address

    def disarm(self, tid: int) -> None:
        """Remove any armed overflow trap on a thread."""
        from repro.machine.cpu import NO_TRAP

        thread = self._thread(tid)
        thread.pmu_trap_at = NO_TRAP
        thread.pmu_handler = None

    def snapshot(self, tid: int) -> Dict[str, int]:
        """All counters of one thread, keyed by event name."""
        thread = self._thread(tid)
        return {
            event.value: getattr(thread, field)
            for event, field in _THREAD_FIELD.items()
        }

    def totals(self) -> Dict[str, int]:
        """Counters summed over all threads (alive and exited)."""
        out = {event.value: 0 for event in PerfEvent}
        for thread in self.machine.threads.values():
            for event, field in _THREAD_FIELD.items():
                out[event.value] += getattr(thread, field)
        return out
