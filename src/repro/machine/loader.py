"""The system ELF loader (execve analog) with stack randomization.

Mirrors what the paper relies on from the Linux loader (§II-B3):

1. parse the ELF file and map each PT_LOAD segment at its virtual
   address,
2. reserve and populate a stack for the new process (argc/argv/envp and
   a minimal auxv), with the stack base *randomized* per run,
3. set the entry point and start the initial thread.

Because an ELFie carries the parent pinball's stack pages, a randomized
new stack can collide with them.  When the collidable pages are mapped
(allocatable stack sections), the loader can only reserve the shrunken
remainder; if that is too small to hold the arguments and environment,
the process is killed before any ELFie code executes —
:class:`StackCollisionError`.  ELFies built with non-allocatable stack
sections avoid this entirely.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.elf.reader import ElfFile, ElfFormatError
from repro.elf.structs import PT_LOAD, pflags_to_prot
from repro.machine.machine import Machine, Thread
from repro.machine.memory import PAGE_SIZE, PROT_RW, page_align_down, page_align_up

#: Highest usable stack address (one guard page below the 47-bit top).
STACK_TOP_LIMIT = 0x7FFF_FFFF_E000
#: Default stack reservation: 16 pages (64 KiB).  Kept modest because an
#: ELFie's startup code copies the whole captured stack range byte by
#: byte; PX programs are hand-written assembly with shallow stacks.
STACK_PAGES = 16
#: The loader randomizes the stack top within this many pages.
STACK_RANDOM_PAGES = 2048
#: Minimum usable stack bytes below the argument block for startup code.
MIN_STACK_BYTES = 4 * PAGE_SIZE
#: ASLR slides the image base by 1..ASLR_SLIDE_PAGES-1 pages (never 0,
#: so a randomized load is always observably different from a fixed
#: one).  128 MiB of spread keeps slid images far below the stack
#: region while exercising every relocation.
ASLR_SLIDE_PAGES = 32768

AT_NULL = 0
AT_PAGESZ = 6
AT_ENTRY = 9
AT_RANDOM = 25


class LoaderError(Exception):
    """The file could not be loaded (bad format, overlap, etc.)."""


class StackCollisionError(LoaderError):
    """The randomized stack collided with pre-mapped (pinball) pages and
    the surviving sliver is too small — the process dies before running
    any program code (paper Figure 4)."""


@dataclass
class LoadedImage:
    """Result of loading an ELF executable into a machine."""

    entry: int
    stack_top: int
    initial_rsp: int
    main_thread: Thread
    elf: ElfFile
    symbols: Dict[str, int] = field(default_factory=dict)
    stack_shrunk: bool = False
    #: Bytes the image base was slid by (0 = loaded at link addresses).
    load_bias: int = 0


def _randomized_stack_top(seed: int) -> int:
    rng = random.Random(seed ^ 0x5AC4_B00C)
    offset_pages = rng.randrange(STACK_RANDOM_PAGES)
    return STACK_TOP_LIMIT - offset_pages * PAGE_SIZE


def aslr_slide(aslr_seed: int) -> int:
    """Deterministic page-aligned image-base slide for *aslr_seed*."""
    rng = random.Random(aslr_seed ^ 0xA51E_D1CE)
    return rng.randrange(1, ASLR_SLIDE_PAGES) * PAGE_SIZE


def _build_stack(machine: Machine, stack_top: int, stack_bottom: int,
                 argv: Sequence[str], envp: Sequence[str],
                 entry: int, seed: int) -> int:
    """Populate argc/argv/envp/auxv; returns the initial rsp."""
    mem = machine.mem
    cursor = stack_top

    def push_bytes(data: bytes) -> int:
        nonlocal cursor
        cursor -= len(data)
        mem.write(cursor, data)
        return cursor

    # Strings (highest addresses), then pointer arrays below them.
    env_ptrs = [push_bytes(s.encode("utf-8") + b"\x00") for s in envp]
    arg_ptrs = [push_bytes(s.encode("utf-8") + b"\x00") for s in argv]
    random_bytes = bytes(random.Random(seed).randrange(256) for _ in range(16))
    at_random = push_bytes(random_bytes)
    cursor &= ~0xF  # 16-byte alignment for the vectors

    auxv = [
        (AT_PAGESZ, PAGE_SIZE),
        (AT_ENTRY, entry),
        (AT_RANDOM, at_random),
        (AT_NULL, 0),
    ]
    block = bytearray()
    block += struct.pack("<Q", len(argv))
    for ptr in arg_ptrs:
        block += struct.pack("<Q", ptr)
    block += struct.pack("<Q", 0)
    for ptr in env_ptrs:
        block += struct.pack("<Q", ptr)
    block += struct.pack("<Q", 0)
    for key, value in auxv:
        block += struct.pack("<QQ", key, value)
    cursor -= len(block)
    cursor &= ~0xF
    if cursor - MIN_STACK_BYTES < stack_bottom:
        raise StackCollisionError(
            "stack too small after collision: %d usable bytes below "
            "argument block" % (cursor - stack_bottom)
        )
    mem.write(cursor, bytes(block))
    return cursor


def load_elf(machine: Machine, image: bytes,
             argv: Optional[Sequence[str]] = None,
             envp: Optional[Sequence[str]] = None,
             stack_seed: Optional[int] = None,
             stack_pages: int = STACK_PAGES,
             aslr_seed: Optional[int] = None) -> LoadedImage:
    """Load an ELF executable into *machine* and create its main thread.

    *stack_seed* drives stack randomization; it defaults to the
    machine's scheduler seed so one seed reproduces one run exactly.

    *aslr_seed*, when given, slides the whole image (segments, entry,
    symbols, heap break) by a deterministic nonzero page-aligned offset
    and patches every ``.pxreloc`` slot so absolute addresses embedded
    in code and data stay correct.  An image without relocation records
    is slid as-is (assumed to hold no absolute addresses).
    """
    argv = list(argv) if argv is not None else ["a.out"]
    envp = list(envp) if envp is not None else ["PATH=/usr/bin"]
    if stack_seed is None:
        stack_seed = machine.scheduler.seed
    try:
        elf = ElfFile(image)
    except ElfFormatError as exc:
        raise LoaderError(str(exc)) from exc
    if not elf.segments:
        raise LoaderError("no loadable segments (not an executable?)")

    slide = 0
    relocs: List[int] = []
    if aslr_seed is not None:
        slide = aslr_slide(aslr_seed)
        relocs = elf.relocations()

    max_end = 0
    for segment in elf.segments:
        if segment.p_type != PT_LOAD:
            continue
        if segment.p_memsz == 0:
            continue
        prot = pflags_to_prot(segment.p_flags)
        vaddr = segment.p_vaddr + slide
        base = page_align_down(vaddr)
        end = page_align_up(vaddr + segment.p_memsz)
        machine.mem.map(base, end - base, prot)
        data = elf.segment_data(segment)
        if slide:
            seg_lo = segment.p_vaddr
            seg_hi = segment.p_vaddr + len(data)
            patched = bytearray(data)
            for slot in relocs:
                if seg_lo <= slot and slot + 8 <= seg_hi:
                    off = slot - seg_lo
                    value = struct.unpack_from("<Q", patched, off)[0]
                    struct.pack_into("<Q", patched, off,
                                     (value + slide) & 0xFFFF_FFFF_FFFF_FFFF)
            data = bytes(patched)
        machine.mem._write_raw(vaddr, data)
        max_end = max(max_end, end)

    # Stack reservation with randomization and collision shrink.
    stack_top = _randomized_stack_top(stack_seed)
    desired_bottom = stack_top - stack_pages * PAGE_SIZE
    bottom = desired_bottom
    shrunk = False
    page = stack_top - PAGE_SIZE
    while page >= desired_bottom:
        if machine.mem.is_mapped(page):
            bottom = page + PAGE_SIZE
            shrunk = True
            break
        page -= PAGE_SIZE
    if machine.mem.is_mapped(stack_top - PAGE_SIZE):
        raise StackCollisionError(
            "stack top page 0x%x already mapped by a loaded segment"
            % (stack_top - PAGE_SIZE)
        )
    machine.mem.map(bottom, stack_top - bottom, PROT_RW)

    entry = elf.entry + slide
    rsp = _build_stack(machine, stack_top, bottom, argv, envp,
                       entry, stack_seed)

    # Heap break goes just past the highest mapped segment.
    machine.kernel.set_brk(max_end + PAGE_SIZE)

    thread = machine.create_thread()
    thread.regs.rip = entry
    thread.regs.rsp = rsp

    symbols = elf.symbol_map()
    if slide:
        symbols = {name: value + slide for name, value in symbols.items()}

    return LoadedImage(
        entry=entry,
        stack_top=stack_top,
        initial_rsp=rsp,
        main_thread=thread,
        elf=elf,
        symbols=symbols,
        stack_shrunk=shrunk,
        load_bias=slide,
    )
