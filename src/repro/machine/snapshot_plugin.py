"""Snapshot save/restore hooks for the machine core and the kernel.

Registered with :mod:`repro.snapshot.plugins` when :mod:`repro.snapshot`
is imported.  The ``machine`` plugin owns everything the run loop needs
to continue bit-identically: thread contexts (GPRs/RFLAGS/FS-GS/XSAVE,
PMU traps, icount limits), the scheduler (including the jitter RNG's
Mersenne state and any replay log position), and the CPU's *timing*
state — the hardware cache-model sets and superblock-cache counters.
The decode and superblock caches themselves are deliberately dropped:
they are a pure function of mapped code bytes and are rebuilt on demand,
so restoring them would only risk staleness (superblock-cache-safe by
construction).

The ``kernel`` plugin owns OS state: the break, the futex wait queues,
the in-memory filesystem, and the descriptor table — preserving
``dup``-shared open-file identity and descriptors onto unlinked inodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.isa.registers import RegisterFile
from repro.machine.cpu import NO_TRAP
from repro.machine.kernel import Listener, ShmSegment
from repro.machine.scheduler import ScheduleSlice
from repro.machine.vfs import Channel, OpenFile, _Inode
from repro.snapshot.plugins import SnapshotPlugin, register_plugin

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.machine import Machine, Thread


def _encode_limit(value: int) -> Optional[int]:
    """NO_TRAP is sys.maxsize — encode the sentinel portably as null."""
    return None if value == NO_TRAP else value


def _decode_limit(value: Optional[int]) -> int:
    return NO_TRAP if value is None else int(value)


def _encode_thread(thread: "Thread") -> dict:
    return {
        "tid": thread.tid,
        "regs": thread.regs.to_dict(),
        "alive": thread.alive,
        "blocked": thread.blocked,
        "futex_addr": thread.futex_addr,
        "exit_code": thread.exit_code,
        "icount": thread.icount,
        "cycles": thread.cycles,
        "llc_misses": thread.llc_misses,
        "branches": thread.branches,
        "spin_pauses": thread.spin_pauses,
        "pmu_trap_at": _encode_limit(thread.pmu_trap_at),
        "pmu_handler": thread.pmu_handler,
        "icount_limit": _encode_limit(thread.icount_limit),
        "new_block": thread.new_block,
        "sigmask": thread.sigmask,
        "pending": thread.pending,
        "wait_channel": thread.wait_channel,
    }


def _slices(entries) -> list:
    return [[entry.tid, entry.quantum] for entry in entries]


def _unslices(entries) -> list:
    return [ScheduleSlice(tid=tid, quantum=quantum) for tid, quantum in entries]


class MachineSnapshotPlugin(SnapshotPlugin):
    name = "machine"

    def save(self, machine: "Machine") -> dict:
        scheduler = machine.scheduler
        rng_state = scheduler._rng.getstate()
        cpu = machine.cpu
        return {
            "next_tid": machine._next_tid,
            "executed_total": machine.executed_total,
            "threads": [_encode_thread(machine.threads[tid])
                        for tid in sorted(machine.threads)],
            "scheduler": {
                "seed": scheduler.seed,
                "base_quantum": scheduler.base_quantum,
                "jitter": scheduler.jitter,
                "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
                "next_index": scheduler._next_index,
                "replay_log": (None if scheduler._replay_log is None
                               else _slices(scheduler._replay_log)),
                "replay_pos": scheduler._replay_pos,
                "replay_pending": (
                    None if scheduler._replay_pending is None
                    else [scheduler._replay_pending.tid,
                          scheduler._replay_pending.quantum]),
                "record": scheduler.record,
                "trace": _slices(scheduler.trace),
                "pending_resumable": scheduler._pending_resumable,
            },
            "cpu": {
                "hw_l1": list(cpu.hw_l1),
                "hw_llc": list(cpu.hw_llc),
                "block_hits": cpu.block_hits,
                "block_misses": cpu.block_misses,
                "block_invalidations": cpu.block_invalidations,
                "block_evictions": cpu.block_evictions,
                "chain_hits": cpu.chain_hits,
                "compiled_blocks": cpu.compiled_blocks,
                "compiled_calls": cpu.compiled_calls,
                "compiled_bailouts": cpu.compiled_bailouts,
                "reported_hits": cpu._reported_hits,
                "reported_misses": cpu._reported_misses,
                "reported_invalidations": cpu._reported_invalidations,
                "reported_evictions": cpu._reported_evictions,
                "reported_chain_hits": cpu._reported_chain_hits,
                "reported_compiled_blocks": cpu._reported_compiled_blocks,
                "reported_compiled_calls": cpu._reported_compiled_calls,
                "reported_compiled_bailouts": cpu._reported_compiled_bailouts,
            },
        }

    def restore(self, machine: "Machine", state: dict) -> None:
        for record in state["threads"]:
            thread = machine.create_thread(
                regs=RegisterFile.from_dict(record["regs"]),
                tid=record["tid"])
            thread.alive = record["alive"]
            thread.blocked = record["blocked"]
            thread.futex_addr = record["futex_addr"]
            thread.exit_code = record["exit_code"]
            thread.icount = record["icount"]
            thread.cycles = record["cycles"]
            thread.llc_misses = record["llc_misses"]
            thread.branches = record["branches"]
            thread.spin_pauses = record["spin_pauses"]
            thread.pmu_trap_at = _decode_limit(record["pmu_trap_at"])
            thread.pmu_handler = record["pmu_handler"]
            thread.icount_limit = _decode_limit(record["icount_limit"])
            thread.new_block = record["new_block"]
            thread.sigmask = record.get("sigmask", 0)
            thread.pending = record.get("pending", 0)
            thread.wait_channel = record.get("wait_channel")
        machine._next_tid = state["next_tid"]
        machine.executed_total = state["executed_total"]

        sched_state = state["scheduler"]
        scheduler = machine.scheduler
        scheduler.seed = sched_state["seed"]
        scheduler.base_quantum = sched_state["base_quantum"]
        scheduler.jitter = sched_state["jitter"]
        rng = sched_state["rng"]
        scheduler._rng.setstate((rng[0], tuple(rng[1]), rng[2]))
        scheduler._next_index = sched_state["next_index"]
        if sched_state["replay_log"] is not None:
            scheduler._replay_log = _unslices(sched_state["replay_log"])
        scheduler._replay_pos = sched_state["replay_pos"]
        pending = sched_state["replay_pending"]
        scheduler._replay_pending = (
            None if pending is None
            else ScheduleSlice(tid=pending[0], quantum=pending[1]))
        scheduler.record = sched_state["record"]
        scheduler.trace = _unslices(sched_state["trace"])
        scheduler._pending_resumable = sched_state.get(
            "pending_resumable", False)

        cpu_state = state["cpu"]
        cpu = machine.cpu
        cpu.hw_l1 = list(cpu_state["hw_l1"])
        cpu.hw_llc = list(cpu_state["hw_llc"])
        cpu.block_hits = cpu_state["block_hits"]
        cpu.block_misses = cpu_state["block_misses"]
        cpu.block_invalidations = cpu_state["block_invalidations"]
        cpu._reported_hits = cpu_state["reported_hits"]
        cpu._reported_misses = cpu_state["reported_misses"]
        cpu._reported_invalidations = cpu_state["reported_invalidations"]
        # Chaining/compilation counters post-date some snapshots; the
        # caches themselves (chain edges, compiled functions) are
        # derived state — never captured, rebuilt lazily on demand.
        cpu.block_evictions = cpu_state.get("block_evictions", 0)
        cpu.chain_hits = cpu_state.get("chain_hits", 0)
        cpu.compiled_blocks = cpu_state.get("compiled_blocks", 0)
        cpu.compiled_calls = cpu_state.get("compiled_calls", 0)
        cpu.compiled_bailouts = cpu_state.get("compiled_bailouts", 0)
        cpu._reported_evictions = cpu_state.get("reported_evictions", 0)
        cpu._reported_chain_hits = cpu_state.get("reported_chain_hits", 0)
        cpu._reported_compiled_blocks = cpu_state.get(
            "reported_compiled_blocks", 0)
        cpu._reported_compiled_calls = cpu_state.get(
            "reported_compiled_calls", 0)
        cpu._reported_compiled_bailouts = cpu_state.get(
            "reported_compiled_bailouts", 0)


class KernelSnapshotPlugin(SnapshotPlugin):
    name = "kernel"

    def save(self, machine: "Machine") -> dict:
        kernel = machine.kernel
        fdt = kernel.fdt
        # Inode table first: identity matters because open descriptors
        # share inode objects with the filesystem (and with each other),
        # and an unlinked file may live on only through a descriptor.
        inodes = []
        inode_index = {}
        for path in sorted(kernel.fs._inodes):
            inode = kernel.fs._inodes[path]
            inode_index[id(inode)] = len(inodes)
            inodes.append({"path": path, "data": bytes(inode.data).hex()})
        files = []
        file_index = {}
        fds = []
        for fd in sorted(fdt._fds):
            open_file = fdt._fds[fd]
            index = file_index.get(id(open_file))
            if index is None:
                inode_ref = None
                if open_file.inode is not None:
                    inode_ref = inode_index.get(id(open_file.inode))
                    if inode_ref is None:  # unlinked but still open
                        inode_ref = len(inodes)
                        inode_index[id(open_file.inode)] = inode_ref
                        inodes.append({
                            "path": None,
                            "data": bytes(open_file.inode.data).hex()})
                index = len(files)
                file_index[id(open_file)] = index
                files.append({
                    "path": open_file.path,
                    "flags": open_file.flags,
                    "offset": open_file.offset,
                    "is_console": open_file.is_console,
                    "inode": inode_ref,
                    "kind": open_file.kind,
                    "read_cid": (open_file.read_ch.cid
                                 if open_file.read_ch else None),
                    "write_cid": (open_file.write_ch.cid
                                  if open_file.write_ch else None),
                    "bound_port": open_file.bound_port,
                })
            fds.append([fd, index])
        return {
            "pid": kernel.pid,
            "brk_start": kernel.brk_start,
            "brk_end": kernel.brk_end,
            "trace": list(kernel.trace),
            "last_effects": [[addr, data.hex()]
                             for addr, data in kernel.last_effects],
            "futex_waiters": [[addr, list(tids)] for addr, tids
                              in sorted(kernel._futex_waiters.items())],
            "root": fdt.root,
            "inodes": inodes,
            "files": files,
            "fds": fds,
            "stdin": bytes(fdt.stdin).hex(),
            "stdout": bytes(fdt.stdout).hex(),
            "stderr": bytes(fdt.stderr).hex(),
            "sigactions": [[sig, handler, mask] for sig, (handler, mask)
                           in sorted(kernel.sigactions.items())],
            "process_pending": kernel.process_pending,
            "channels": [{
                "cid": chan.cid,
                "capacity": chan.capacity,
                "data": bytes(chan.data).hex(),
                "readers": chan.readers,
                "writers": chan.writers,
            } for cid, chan in sorted(kernel.channels.items())],
            "next_channel_id": kernel._next_channel_id,
            "channel_waiters": [[cid, list(tids)] for cid, tids
                                in sorted(kernel._channel_waiters.items())],
            "listeners": [{
                "port": listener.port,
                "backlog": listener.backlog,
                "queue": [[rc, wc] for rc, wc in listener.queue],
                "wait_cid": listener.wait_cid,
            } for port, listener in sorted(kernel._listeners.items())],
            "shm_segments": [{
                "shmid": seg.shmid,
                "key": seg.key,
                "size": seg.size,
                "data": bytes(seg.data).hex(),
                "attached_at": seg.attached_at,
                "attached_len": seg.attached_len,
            } for shmid, seg in sorted(kernel.shm_segments.items())],
            "next_shmid": kernel._next_shmid,
        }

    def restore(self, machine: "Machine", state: dict) -> None:
        kernel = machine.kernel
        fdt = kernel.fdt
        kernel.pid = state["pid"]
        kernel.set_brk(state["brk_start"], state["brk_end"])
        kernel.trace = list(state["trace"])
        kernel.last_effects = [(addr, bytes.fromhex(data))
                               for addr, data in state["last_effects"]]
        kernel._futex_waiters = {addr: list(tids)
                                 for addr, tids in state["futex_waiters"]}
        kernel.sigactions = {sig: (handler, mask) for sig, handler, mask
                             in state.get("sigactions", [])}
        kernel.process_pending = state.get("process_pending", 0)
        kernel.channels = {}
        for record in state.get("channels", []):
            kernel.channels[record["cid"]] = Channel(
                cid=record["cid"], capacity=record["capacity"],
                data=bytearray(bytes.fromhex(record["data"])),
                readers=record["readers"], writers=record["writers"])
        kernel._next_channel_id = state.get("next_channel_id", 1)
        kernel._channel_waiters = {cid: list(tids) for cid, tids
                                   in state.get("channel_waiters", [])}
        kernel._listeners = {}
        for record in state.get("listeners", []):
            kernel._listeners[record["port"]] = Listener(
                port=record["port"], backlog=record["backlog"],
                queue=[(rc, wc) for rc, wc in record["queue"]],
                wait_cid=record["wait_cid"])
        kernel.shm_segments = {}
        for record in state.get("shm_segments", []):
            kernel.shm_segments[record["shmid"]] = ShmSegment(
                shmid=record["shmid"], key=record["key"],
                size=record["size"],
                data=bytearray(bytes.fromhex(record["data"])),
                attached_at=record["attached_at"],
                attached_len=record["attached_len"])
        kernel._next_shmid = state.get("next_shmid", 1)
        kernel.fs._inodes.clear()
        inode_objects = []
        for record in state["inodes"]:
            inode = _Inode(bytearray(bytes.fromhex(record["data"])))
            if record["path"] is not None:
                kernel.fs._inodes[record["path"]] = inode
            inode_objects.append(inode)
        fdt.root = state["root"]
        file_objects = []
        for record in state["files"]:
            inode = (inode_objects[record["inode"]]
                     if record["inode"] is not None else None)
            read_cid = record.get("read_cid")
            write_cid = record.get("write_cid")
            file_objects.append(OpenFile(
                path=record["path"], flags=record["flags"],
                offset=record["offset"], inode=inode,
                is_console=record["is_console"],
                kind=record.get("kind", "file"),
                read_ch=(kernel.channels[read_cid]
                         if read_cid is not None else None),
                write_ch=(kernel.channels[write_cid]
                          if write_cid is not None else None),
                bound_port=record.get("bound_port")))
        fdt._fds.clear()
        # Direct assignment: channel reader/writer counts were captured
        # with the channel records and must not be re-accounted.
        for fd, index in state["fds"]:
            fdt._fds[fd] = file_objects[index]
        fdt.stdin = bytearray(bytes.fromhex(state["stdin"]))
        fdt.stdout = bytearray(bytes.fromhex(state["stdout"]))
        fdt.stderr = bytearray(bytes.fromhex(state["stderr"]))


register_plugin(MachineSnapshotPlugin())
register_plugin(KernelSnapshotPlugin())
