"""Simulated execution platform (CPU, memory, OS kernel) for PX binaries.

This package is the stand-in for the native x86 Linux machine of the
paper.  It provides:

- :mod:`repro.machine.memory` -- a paged virtual address space with
  permissions and page faults (the "ungraceful exit" substrate),
- :mod:`repro.machine.cpu` -- the PX interpreter with a lightweight
  hardware timing model (the "native hardware" of the case studies),
- :mod:`repro.machine.kernel` -- Linux-x86-64-numbered system calls, an
  in-memory VFS, ``brk``/``mmap`` and ``clone``-based threads,
- :mod:`repro.machine.scheduler` -- a seeded preemptive scheduler whose
  seed is the source of run-to-run variation (ELFie non-determinism),
- :mod:`repro.machine.perf` -- a simulated PMU with overflow callbacks
  (the graceful-exit substrate),
- :mod:`repro.machine.tool` -- Pin-style instrumentation hooks,
- :mod:`repro.machine.loader` -- the ELF loader with stack randomization
  (the stack-collision substrate),
- :mod:`repro.machine.machine` -- the :class:`Machine` facade.
"""

from repro.machine.memory import (
    PAGE_SIZE,
    PROT_READ,
    PROT_WRITE,
    PROT_EXEC,
    PROT_RW,
    PROT_RX,
    PROT_RWX,
    AddressSpace,
    PageFault,
    page_align_down,
    page_align_up,
)
from repro.machine.vfs import FileSystem, FileDescriptorTable, VfsError
from repro.machine.scheduler import Scheduler, ScheduleSlice
from repro.machine.perf import PerfCounter, PMU, PerfEvent
from repro.machine.tool import Tool
from repro.machine.cpu import CpuFault, DivideError, InvalidOpcode
from repro.machine.kernel import Kernel, SyscallError, NR
from repro.machine.machine import Machine, Thread, ExitStatus
from repro.machine.loader import load_elf, LoaderError, LoadedImage

__all__ = [
    "PAGE_SIZE",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
    "PROT_RW",
    "PROT_RX",
    "PROT_RWX",
    "AddressSpace",
    "PageFault",
    "page_align_down",
    "page_align_up",
    "FileSystem",
    "FileDescriptorTable",
    "VfsError",
    "Scheduler",
    "ScheduleSlice",
    "PerfCounter",
    "PMU",
    "PerfEvent",
    "Tool",
    "CpuFault",
    "DivideError",
    "InvalidOpcode",
    "Kernel",
    "SyscallError",
    "NR",
    "Machine",
    "Thread",
    "ExitStatus",
    "load_elf",
    "LoaderError",
    "LoadedImage",
]
