"""Simulated Linux kernel: system calls, memory management, threads.

System-call numbers, argument registers (rdi, rsi, rdx, r10, r8, r9) and
the negative-errno return convention follow the Linux x86-64 ABI, so PX
programs read like real Linux assembly.  Every user-memory write a
syscall performs is recorded in ``last_effects`` — the PinPlay logger
captures these as the side-effect-injection log that constrained replay
feeds back (paper §I-A).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.machine.memory import (
    PROT_RW,
    page_align_up,
)
from repro.machine.vfs import FileDescriptorTable, FileSystem, VfsError
from repro.observe import hooks

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine, Thread

MASK64 = (1 << 64) - 1


class NR:
    """Linux x86-64 syscall numbers (subset), plus two PMU pseudo-calls."""

    READ = 0
    WRITE = 1
    OPEN = 2
    CLOSE = 3
    LSEEK = 8
    MMAP = 9
    MPROTECT = 10
    MUNMAP = 11
    BRK = 12
    DUP = 32
    DUP2 = 33
    GETPID = 39
    CLONE = 56
    EXIT = 60
    GETTIMEOFDAY = 96
    PRCTL = 157
    ARCH_PRCTL = 158
    TIME = 201
    FUTEX = 202
    EXIT_GROUP = 231
    #: perf_event_open stand-in: arms a per-thread retired-instruction
    #: counter with a threshold and an overflow-handler address.
    PERF_EVENT_OPEN = 298
    #: Pseudo-call to read a PMU counter (rdi selects the event).
    PERF_READ = 334

    NAMES: Dict[int, str] = {}


NR.NAMES = {
    value: name.lower()
    for name, value in vars(NR).items()
    if isinstance(value, int)
}

# errno values (returned as -errno).
EPERM, ENOENT, EBADF, EAGAIN, ENOMEM, EACCES, EFAULT = 1, 2, 9, 11, 12, 13, 14
EINVAL, EMFILE, ENOSYS = 22, 24, 38

# arch_prctl codes.
ARCH_SET_GS = 0x1001
ARCH_SET_FS = 0x1002
ARCH_GET_FS = 0x1003
ARCH_GET_GS = 0x1004

# prctl PR_SET_MM and sub-codes (heap layout restoration, paper §II-C2).
PR_SET_MM = 35
PR_SET_MM_START_BRK = 6
PR_SET_MM_BRK = 7

# mmap flags (subset).
MAP_PRIVATE = 0x02
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20

# futex ops.
FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_PRIVATE_FLAG = 128

# clone flags (only CLONE_VM threads are supported).
CLONE_VM = 0x100

# PMU event codes for PERF_EVENT_OPEN / PERF_READ.
PERF_COUNT_INSTRUCTIONS = 0
PERF_COUNT_CYCLES = 1
PERF_COUNT_LLC_MISSES = 2
PERF_COUNT_BRANCHES = 3


class SyscallError(Exception):
    """Internal kernel error (bad machine state, not a guest errno)."""


class Kernel:
    """System-call layer bound to one :class:`Machine`."""

    #: Simulated CPU frequency for converting cycles to wall time.
    CYCLES_PER_SEC = 1_000_000_000
    #: Simulated boot wall-clock (seconds since epoch).
    BOOT_EPOCH = 1_600_000_000

    def __init__(self, machine: "Machine", fs: Optional[FileSystem] = None,
                 root: str = "/") -> None:
        self.machine = machine
        self.fs = fs if fs is not None else FileSystem()
        self.fdt = FileDescriptorTable(self.fs, root=root)
        self.pid = 1000
        self.brk_start = 0
        self.brk_end = 0
        #: User-memory writes performed by the most recent syscall,
        #: as (address, bytes) pairs.  Consumed by the PinPlay logger.
        self.last_effects: List[Tuple[int, bytes]] = []
        #: Names of syscalls executed (for tests and sysstate analysis).
        self.trace: List[str] = []
        self._futex_waiters: Dict[int, List[int]] = {}
        self._dispatch: Dict[int, Callable[["Thread"], int]] = {
            NR.READ: self._sys_read,
            NR.WRITE: self._sys_write,
            NR.OPEN: self._sys_open,
            NR.CLOSE: self._sys_close,
            NR.LSEEK: self._sys_lseek,
            NR.MMAP: self._sys_mmap,
            NR.MPROTECT: self._sys_mprotect,
            NR.MUNMAP: self._sys_munmap,
            NR.BRK: self._sys_brk,
            NR.DUP: self._sys_dup,
            NR.DUP2: self._sys_dup2,
            NR.GETPID: self._sys_getpid,
            NR.CLONE: self._sys_clone,
            NR.EXIT: self._sys_exit,
            NR.GETTIMEOFDAY: self._sys_gettimeofday,
            NR.PRCTL: self._sys_prctl,
            NR.ARCH_PRCTL: self._sys_arch_prctl,
            NR.TIME: self._sys_time,
            NR.FUTEX: self._sys_futex,
            NR.EXIT_GROUP: self._sys_exit_group,
            NR.PERF_EVENT_OPEN: self._sys_perf_event_open,
            NR.PERF_READ: self._sys_perf_read,
        }

    # -- helpers ----------------------------------------------------------

    def _write_user(self, addr: int, data: bytes) -> None:
        """Write guest memory, recording the effect for the logger."""
        self.machine.mem.write(addr, data)
        self.last_effects.append((addr, data))

    def set_brk(self, start: int, end: Optional[int] = None) -> None:
        """Initialize the heap break (called by the loader)."""
        self.brk_start = start
        self.brk_end = end if end is not None else start

    def wall_time(self) -> Tuple[int, int]:
        """Current simulated (seconds, microseconds)."""
        cycles = self.machine.total_cycles()
        seconds = self.BOOT_EPOCH + cycles // self.CYCLES_PER_SEC
        usec = (cycles % self.CYCLES_PER_SEC) // 1000
        return seconds, usec

    # -- dispatch -----------------------------------------------------------

    def dispatch(self, thread: "Thread") -> int:
        """Execute the syscall selected by the thread's rax.

        Sets rax to the result (or -errno) and returns it.
        """
        number = thread.regs.gpr[0]
        self.last_effects = []
        handler = self._dispatch.get(number)
        name = NR.NAMES.get(number, "nr_%d" % number)
        self.trace.append(name)
        obs = hooks.OBS
        if obs.enabled:
            obs.count("kernel.syscalls")
            obs.count("kernel.syscall.%s" % name)
        if handler is None:
            result = -ENOSYS
        else:
            try:
                result = handler(thread)
            except VfsError as exc:
                result = -exc.errno
        thread.regs.gpr[0] = result & MASK64
        return result

    # -- file I/O -----------------------------------------------------------

    def _sys_read(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, buf, count = gpr[7], gpr[6], gpr[2]
        data = self.fdt.read(fd, count)
        if data:
            self._write_user(buf, data)
        return len(data)

    def _sys_write(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        fd, buf, count = gpr[7], gpr[6], gpr[2]
        data = self.machine.mem.read(buf, count) if count else b""
        return self.fdt.write(fd, data)

    def _sys_open(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        path = self.machine.mem.read_cstring(gpr[7]).decode("utf-8", "replace")
        flags = gpr[6]
        return self.fdt.open(path, flags)

    def _sys_close(self, thread: "Thread") -> int:
        self.fdt.close(thread.regs.gpr[7])
        return 0

    def _sys_lseek(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        offset = gpr[6]
        if offset & (1 << 63):
            offset -= 1 << 64
        return self.fdt.lseek(gpr[7], offset, gpr[2])

    def _sys_dup(self, thread: "Thread") -> int:
        return self.fdt.dup(thread.regs.gpr[7])

    def _sys_dup2(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        return self.fdt.dup2(gpr[7], gpr[6])

    # -- memory --------------------------------------------------------------

    def _sys_mmap(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        addr, length, prot = gpr[7], gpr[6], gpr[2]
        flags, fd, offset = gpr[10], gpr[8], gpr[9]
        if length == 0:
            return -EINVAL
        if flags & MAP_FIXED and addr:
            base = addr
        elif addr and not self.machine.mem.any_mapped(addr, length):
            base = addr
        else:
            base = self.machine.mem.find_free_range(length)
        self.machine.mem.map(base, length, prot if prot else PROT_RW)
        if not flags & MAP_ANONYMOUS:
            fd_signed = fd if fd < (1 << 63) else fd - (1 << 64)
            if fd_signed >= 0:
                try:
                    self.fdt.lseek(fd_signed, offset, 0)
                    data = self.fdt.read(fd_signed, length)
                except VfsError as exc:
                    return -exc.errno
                if data:
                    self._write_user(base, data)
        return base

    def _sys_mprotect(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        try:
            self.machine.mem.protect(gpr[7], gpr[6], gpr[2])
        except Exception:
            return -ENOMEM
        return 0

    def _sys_munmap(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        if gpr[6] == 0:
            return -EINVAL
        self.machine.mem.unmap(gpr[7], gpr[6])
        return 0

    def _sys_brk(self, thread: "Thread") -> int:
        request = thread.regs.gpr[7]
        if request == 0 or request < self.brk_start:
            return self.brk_end
        new_end = request
        if new_end > self.brk_end:
            start = page_align_up(self.brk_end)
            end = page_align_up(new_end)
            if end > start:
                self.machine.mem.map(start, end - start, PROT_RW)
        self.brk_end = new_end
        return self.brk_end

    # -- process / thread ------------------------------------------------------

    def _sys_getpid(self, thread: "Thread") -> int:
        return self.pid

    def _sys_clone(self, thread: "Thread") -> int:
        """clone(flags, child_stack, fn).

        Follows the glibc-wrapper convention the paper's startup code
        relies on: the child starts executing at *fn* with rsp set to
        *child_stack*; with fn == 0 the child resumes at the parent's
        next instruction with rax == 0.
        """
        gpr = thread.regs.gpr
        child_stack, fn = gpr[6], gpr[2]
        child = self.machine.create_thread(parent=thread)
        if child_stack:
            child.regs.gpr[4] = child_stack
        if fn:
            child.regs.rip = fn
        child.regs.gpr[0] = 0
        return child.tid

    def _sys_exit(self, thread: "Thread") -> int:
        code = thread.regs.gpr[7] & 0xFF
        thread.alive = False
        thread.exit_code = code
        self.machine.on_thread_exited(thread)
        return 0

    def _sys_exit_group(self, thread: "Thread") -> int:
        code = thread.regs.gpr[7] & 0xFF
        self.machine.exit_process(code)
        return 0

    # -- time ---------------------------------------------------------------

    def _sys_gettimeofday(self, thread: "Thread") -> int:
        tv_addr = thread.regs.gpr[7]
        if tv_addr:
            seconds, usec = self.wall_time()
            self._write_user(tv_addr, struct.pack("<qq", seconds, usec))
        return 0

    def _sys_time(self, thread: "Thread") -> int:
        seconds, _ = self.wall_time()
        out_addr = thread.regs.gpr[7]
        if out_addr:
            self._write_user(out_addr, struct.pack("<q", seconds))
        return seconds

    # -- prctl family ---------------------------------------------------------

    def _sys_prctl(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        option, arg2, arg3 = gpr[7], gpr[6], gpr[2]
        if option == PR_SET_MM:
            if arg2 == PR_SET_MM_START_BRK:
                self.brk_start = arg3
                if self.brk_end < arg3:
                    self.brk_end = arg3
                return 0
            if arg2 == PR_SET_MM_BRK:
                self.brk_end = arg3
                if self.brk_start == 0 or self.brk_start > arg3:
                    self.brk_start = arg3
                return 0
            return -EINVAL
        return -EINVAL

    def _sys_arch_prctl(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        code, addr = gpr[7], gpr[6]
        if code == ARCH_SET_FS:
            thread.regs.fs_base = addr
            return 0
        if code == ARCH_SET_GS:
            thread.regs.gs_base = addr
            return 0
        if code == ARCH_GET_FS:
            self._write_user(addr, struct.pack("<Q", thread.regs.fs_base))
            return 0
        if code == ARCH_GET_GS:
            self._write_user(addr, struct.pack("<Q", thread.regs.gs_base))
            return 0
        return -EINVAL

    # -- futex ------------------------------------------------------------------

    def _sys_futex(self, thread: "Thread") -> int:
        gpr = thread.regs.gpr
        uaddr, op, val = gpr[7], gpr[6] & ~FUTEX_PRIVATE_FLAG, gpr[2]
        if op == FUTEX_WAIT:
            current = self.machine.mem.read_u32(uaddr)
            if current != val & 0xFFFFFFFF:
                return -EAGAIN
            thread.blocked = True
            thread.futex_addr = uaddr
            self._futex_waiters.setdefault(uaddr, []).append(thread.tid)
            return 0
        if op == FUTEX_WAKE:
            waiters = self._futex_waiters.get(uaddr, [])
            woken = 0
            while waiters and woken < val:
                tid = waiters.pop(0)
                waiter = self.machine.threads.get(tid)
                if waiter is not None and waiter.blocked:
                    waiter.blocked = False
                    waiter.futex_addr = None
                    woken += 1
            return woken
        return -ENOSYS

    # -- PMU pseudo-calls ----------------------------------------------------------

    def _sys_perf_event_open(self, thread: "Thread") -> int:
        """Arm the calling thread's retired-instruction counter.

        rdi: event (must be PERF_COUNT_INSTRUCTIONS), rsi: threshold,
        rdx: overflow-handler address (0 = terminate thread at threshold).
        """
        gpr = thread.regs.gpr
        event, threshold, handler = gpr[7], gpr[6], gpr[2]
        if event != PERF_COUNT_INSTRUCTIONS:
            return -EINVAL
        if threshold == 0:
            return -EINVAL
        # +1: the arming syscall instruction itself retires after this
        # handler returns; the threshold counts instructions *after* it.
        thread.pmu_trap_at = thread.icount + 1 + threshold
        thread.pmu_handler = handler if handler else None
        return 0

    def _sys_perf_read(self, thread: "Thread") -> int:
        event = thread.regs.gpr[7]
        if event == PERF_COUNT_INSTRUCTIONS:
            return thread.icount
        if event == PERF_COUNT_CYCLES:
            return thread.cycles
        if event == PERF_COUNT_LLC_MISSES:
            return thread.llc_misses
        if event == PERF_COUNT_BRANCHES:
            return thread.branches
        return -EINVAL
